//! Integration tests for the one query API: every backend family constructed
//! through `SearchPipeline::over(..).build()` agrees with its legacy entry
//! point and with `LinearScan`, across metric × backend × sharding × caching
//! configurations, and every validation failure comes back as a typed
//! `SearchError`.

use ap_knn::jaccard::brute_force_jaccard;
use ap_serve::backend::jaccard_distance;
use ap_similarity::prelude::*;
use proptest::prelude::*;

fn fixtures(n: usize, dims: usize, seed: u64) -> (BinaryDataset, Vec<BinaryVector>) {
    (
        binvec::generate::uniform_dataset(n, dims, seed),
        binvec::generate::uniform_queries(5, dims, seed.wrapping_add(77)),
    )
}

/// The acceptance sweep: every backend family is constructible through the
/// builder and answers identically to its legacy entry point.
#[test]
fn every_backend_family_matches_its_legacy_entry_point() {
    let dims = 16;
    let k = 4;
    let (data, queries) = fixtures(48, dims, 7);
    let design = KnnDesign::new(dims);
    let options = QueryOptions::top(k);

    let run = |spec: BackendSpec| -> Vec<Vec<Neighbor>> {
        SearchPipeline::over(data.clone())
            .backend(spec)
            .build()
            .expect("constructible backend family")
            .query_batch(&queries, &options)
            .expect("well-formed queries")
            .into_iter()
            .map(|r| r.neighbors)
            .collect()
    };

    // 1. The paper's AP engine (cycle-accurate), vs the direct engine call.
    let (direct_ap, _) = ApKnnEngine::new(design)
        .try_search_batch(&data, &queries, &options)
        .expect("well-formed direct engine run");
    assert_eq!(run(BackendSpec::ap()), direct_ap, "AP engine");

    // 2. The multi-board scheduler.
    let (legacy_sched, _) = ParallelApScheduler::new(design)
        .with_workers(3)
        .search_batch(&data, &queries, k);
    assert_eq!(
        run(BackendSpec::scheduler(3)),
        legacy_sched,
        "multi-board scheduler"
    );

    // 3. The Jaccard searcher (similarities quantized into the shared
    //    distance key).
    let legacy_jaccard: Vec<Vec<Neighbor>> = JaccardSearcher::new(design)
        .search_batch(&data, &queries, k)
        .expect("valid Jaccard network")
        .into_iter()
        .map(|neighbors| {
            let mut converted: Vec<Neighbor> = neighbors
                .into_iter()
                .map(|n| Neighbor::new(n.id, jaccard_distance(n.similarity)))
                .collect();
            converted.sort_unstable();
            converted
        })
        .collect();
    let via_pipeline: Vec<Vec<Neighbor>> = SearchPipeline::over(data.clone())
        .metric(Metric::Jaccard)
        .backend(BackendSpec::ap())
        .build()
        .expect("Jaccard over the AP engine")
        .query_batch(&queries, &options)
        .expect("well-formed queries")
        .into_iter()
        .map(|r| r.neighbors)
        .collect();
    assert_eq!(via_pipeline, legacy_jaccard, "Jaccard searcher");

    // 4. The §III-D indexed front ends (deterministic seeded default configs,
    //    so the pipeline's index build equals the hand-wired one).
    use ap_knn::indexed::{DatasetBackedIndex, IndexedApEngine};
    use baselines::{KMeansConfig, KdForestConfig, LshConfig};
    let kinds: [(IndexKind, Vec<Vec<Neighbor>>); 3] = [
        (IndexKind::KdForest, {
            let backed = DatasetBackedIndex {
                index: KdForest::build(data.clone(), KdForestConfig::default()),
                data: data.clone(),
            };
            IndexedApEngine::new(&backed, design)
                .search_batch(&queries, k)
                .0
        }),
        (IndexKind::KMeans, {
            let backed = DatasetBackedIndex {
                index: HierarchicalKMeans::build(data.clone(), KMeansConfig::default()),
                data: data.clone(),
            };
            IndexedApEngine::new(&backed, design)
                .search_batch(&queries, k)
                .0
        }),
        (IndexKind::Lsh, {
            let backed = DatasetBackedIndex {
                index: LshIndex::build(data.clone(), LshConfig::default()),
                data: data.clone(),
            };
            IndexedApEngine::new(&backed, design)
                .search_batch(&queries, k)
                .0
        }),
    ];
    for (kind, legacy) in kinds {
        assert_eq!(
            run(BackendSpec::Indexed(kind)),
            legacy,
            "indexed front end {kind:?}"
        );
    }

    // 5. Every baselines index family.
    use baselines::{KMeansConfig as KmC, KdForestConfig as KdC, LshConfig as LshC};
    assert_eq!(
        run(BackendSpec::Baseline(BaselineKind::Linear)),
        LinearScan::new(data.clone()).search_batch(&queries, k),
        "LinearScan"
    );
    assert_eq!(
        run(BackendSpec::Baseline(BaselineKind::ParallelLinear {
            threads: 4
        })),
        ParallelLinearScan::new(data.clone(), 4).search_batch(&queries, k),
        "ParallelLinearScan"
    );
    assert_eq!(
        run(BackendSpec::Baseline(BaselineKind::KdForest)),
        KdForest::build(data.clone(), KdC::default()).search_batch(&queries, k),
        "KdForest"
    );
    assert_eq!(
        run(BackendSpec::Baseline(BaselineKind::KMeans)),
        HierarchicalKMeans::build(data.clone(), KmC::default()).search_batch(&queries, k),
        "HierarchicalKMeans"
    );
    assert_eq!(
        run(BackendSpec::Baseline(BaselineKind::Lsh)),
        LshIndex::build(data.clone(), LshC::default()).search_batch(&queries, k),
        "LshIndex"
    );
}

/// The §VII acceptance criterion: on a cycle-accurate AP run, a distance bound
/// returns exactly the neighbors within the bound.
#[test]
fn cycle_accurate_distance_bound_returns_exactly_the_in_range_set() {
    let dims = 12;
    let (data, queries) = fixtures(32, dims, 13);
    let bound = 5u32;
    let mut pipeline = SearchPipeline::over(data.clone())
        .backend(BackendSpec::ap()) // cycle-accurate
        .build()
        .unwrap();
    // k = corpus size, so the bound is the only cap on the result set.
    let options = QueryOptions::top(data.len()).within(bound);
    let responses = pipeline.query_batch(&queries, &options).unwrap();
    for (q, response) in queries.iter().zip(&responses) {
        let mut expected: Vec<Neighbor> = (0..data.len())
            .map(|i| Neighbor::new(i, data.hamming_to(i, q)))
            .filter(|n| n.distance < bound)
            .collect();
        expected.sort_unstable();
        assert_eq!(response.neighbors, expected);
    }
}

/// Jaccard sweeps: sharding and caching never change which similarity values
/// make the global top-k.
#[test]
fn jaccard_pipeline_matches_brute_force_across_sharding_and_caching() {
    let dims = 16;
    let k = 4;
    let (data, queries) = fixtures(36, dims, 19);
    for shards in [1usize, 3] {
        for cache in [0usize, 32] {
            let mut pipeline = SearchPipeline::over(data.clone())
                .metric(Metric::Jaccard)
                .backend(BackendSpec::ap())
                .sharded(shards)
                .cached(cache)
                .build()
                .unwrap();
            // Two passes so the cached configuration also exercises hits.
            for pass in 0..2 {
                let responses = pipeline
                    .query_batch(&queries, &QueryOptions::top(k))
                    .unwrap();
                for (q, response) in queries.iter().zip(&responses) {
                    let expected: Vec<u32> = brute_force_jaccard(&data, q, k)
                        .into_iter()
                        .map(|n| jaccard_distance(n.similarity))
                        .collect();
                    let got: Vec<u32> = response.neighbors.iter().map(|n| n.distance).collect();
                    assert_eq!(got, expected, "shards={shards} cache={cache} pass={pass}");
                }
            }
        }
    }
}

/// Explicit error paths: dim mismatch, k = 0, zero-dim design, zero bound.
#[test]
fn error_paths_surface_as_typed_search_errors() {
    let (data, _) = fixtures(20, 16, 23);
    let mut pipeline = SearchPipeline::over(data.clone())
        .backend(BackendSpec::behavioral())
        .build()
        .unwrap();

    // Dim mismatch.
    assert_eq!(
        pipeline
            .query(&BinaryVector::zeros(8), &QueryOptions::top(2))
            .unwrap_err(),
        SearchError::DimMismatch {
            expected: 16,
            actual: 8
        }
    );
    // k = 0.
    assert_eq!(
        pipeline
            .query(&BinaryVector::zeros(16), &QueryOptions::top(0))
            .unwrap_err(),
        SearchError::ZeroK
    );
    // Distance bound of 0.
    assert_eq!(
        pipeline
            .query(&BinaryVector::zeros(16), &QueryOptions::top(2).within(0))
            .unwrap_err(),
        SearchError::ZeroDistanceBound
    );
    // Zero-dim design.
    let err = SearchPipeline::over(BinaryDataset::new(0)).build().err();
    assert_eq!(err, Some(SearchError::ZeroDims));
    // The validated service config rejects the same classes at construction.
    assert_eq!(
        ServiceConfig::default().with_k(0).build().unwrap_err(),
        SearchError::ZeroK
    );
    assert!(matches!(
        ServiceConfig::default().with_batch_size(0).build(),
        Err(SearchError::InvalidConfig {
            field: "batch_size",
            ..
        })
    ));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The configuration sweep: any exact Hamming backend × sharding × caching
    /// pipeline agrees with `LinearScan` on random corpora.
    #[test]
    fn exact_pipelines_agree_with_linear_scan(
        n in 8usize..40,
        dims in 4usize..20,
        k in 1usize..6,
        backend_choice in 0usize..4,
        shards in 1usize..4,
        cached in any::<bool>(),
        seed in 0u64..1000,
    ) {
        let data = binvec::generate::uniform_dataset(n, dims, seed);
        let queries = binvec::generate::uniform_queries(3, dims, seed.wrapping_add(1));
        let spec = match backend_choice {
            0 => BackendSpec::ap(),
            1 => BackendSpec::behavioral(),
            2 => BackendSpec::scheduler(2),
            _ => BackendSpec::Baseline(BaselineKind::ParallelLinear { threads: 2 }),
        };
        let mut pipeline = SearchPipeline::over(data.clone())
            .metric(Metric::Hamming)
            .backend(spec)
            .sharded(shards)
            .cached(if cached { 64 } else { 0 })
            .build()
            .unwrap();
        let expected = LinearScan::new(data).search_batch(&queries, k);
        // Two passes: the second exercises the cache path when enabled.
        for _ in 0..2 {
            let responses = pipeline.query_batch(&queries, &QueryOptions::top(k)).unwrap();
            for (response, want) in responses.iter().zip(&expected) {
                prop_assert_eq!(&response.neighbors, want);
            }
        }
    }

    /// A distance bound composed with any exact backend returns the bounded
    /// prefix of the unbounded answer.
    #[test]
    fn bounded_results_are_the_clipped_prefix(
        n in 8usize..32,
        dims in 4usize..16,
        bound in 1u32..10,
        seed in 0u64..1000,
    ) {
        let data = binvec::generate::uniform_dataset(n, dims, seed);
        let queries = binvec::generate::uniform_queries(2, dims, seed.wrapping_add(2));
        let mut pipeline = SearchPipeline::over(data.clone())
            .backend(BackendSpec::behavioral())
            .build()
            .unwrap();
        let unbounded = pipeline.query_batch(&queries, &QueryOptions::top(n)).unwrap();
        let bounded = pipeline
            .query_batch(&queries, &QueryOptions::top(n).within(bound))
            .unwrap();
        for (u, b) in unbounded.iter().zip(&bounded) {
            let expected: Vec<Neighbor> = u
                .neighbors
                .iter()
                .copied()
                .filter(|nb| nb.distance < bound)
                .collect();
            prop_assert_eq!(&b.neighbors, &expected);
        }
    }
}
