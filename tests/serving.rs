//! Integration tests for the `ap-serve` serving subsystem: a sharded service
//! must answer exactly like a brute-force scan of the unsharded corpus.

use ap_similarity::prelude::*;

fn build_sharded_ap_service(
    data: &BinaryDataset,
    shards: usize,
    config: ServiceConfig,
) -> SearchService {
    let dims = data.dims();
    let sharding = ShardedDataset::split(data, shards);
    let backend = ShardedBackend::try_build(&sharding, |_, shard| {
        ApEngineBackend::try_new(
            ApKnnEngine::new(KnnDesign::new(dims)).with_mode(ExecutionMode::Behavioral),
            shard.clone(),
        )
    })
    .unwrap();
    SearchService::try_new(Box::new(backend), config).unwrap()
}

#[test]
fn sharded_service_matches_linear_scan_on_1k_corpus() {
    let dims = 64;
    let k = 10;
    let data = binvec::generate::uniform_dataset(1000, dims, 101);
    let queries = binvec::generate::uniform_queries(64, dims, 102);
    let ground_truth = LinearScan::new(data.clone());

    let mut service = build_sharded_ap_service(&data, 4, ServiceConfig::default().with_k(k));
    let tickets: Vec<_> = queries.iter().map(|q| service.submit(q.clone())).collect();
    let completed = service.drain();

    assert_eq!(completed.len(), queries.len());
    for ((completed, ticket), query) in completed.iter().zip(&tickets).zip(&queries) {
        assert_eq!(completed.ticket, *ticket);
        assert_eq!(
            completed.neighbors,
            ground_truth.search(query, k),
            "sharded AP service must equal the exact scan"
        );
    }

    let stats = service.stats();
    assert_eq!(stats.queries_served, 64);
    assert_eq!(stats.shard_cycles.len(), 4);
    // Contiguous sharding of a uniform corpus keeps the boards near-evenly
    // loaded: every shard streams the same windows per batch.
    for utilization in stats.shard_utilization() {
        assert!(utilization > 0.9, "shard underutilized: {utilization}");
    }
}

#[test]
fn shard_count_does_not_change_results() {
    let dims = 32;
    let k = 5;
    let data = binvec::generate::uniform_dataset(257, dims, 103);
    let queries = binvec::generate::uniform_queries(21, dims, 104);

    let mut reference: Option<Vec<Vec<Neighbor>>> = None;
    for shards in [1usize, 2, 4, 8] {
        let mut service =
            build_sharded_ap_service(&data, shards, ServiceConfig::default().with_k(k));
        for q in &queries {
            service.submit(q.clone());
        }
        let results: Vec<Vec<Neighbor>> =
            service.drain().into_iter().map(|c| c.neighbors).collect();
        match &reference {
            None => reference = Some(results),
            Some(expected) => assert_eq!(&results, expected, "shards = {shards}"),
        }
    }
}

#[test]
fn cached_replay_serves_without_new_dispatches() {
    let dims = 32;
    let data = binvec::generate::uniform_dataset(300, dims, 105);
    let queries = binvec::generate::uniform_queries(14, dims, 106);

    let mut service = build_sharded_ap_service(&data, 2, ServiceConfig::default().with_k(4));
    for q in &queries {
        service.submit(q.clone());
    }
    let first = service.drain();
    let batches_after_first_wave = service.stats().batches_dispatched;

    for q in &queries {
        service.submit(q.clone());
    }
    let second = service.drain();

    let stats = service.stats();
    assert_eq!(
        stats.batches_dispatched, batches_after_first_wave,
        "replayed queries must be served by the cache"
    );
    assert_eq!(stats.cache_hits, queries.len() as u64);
    for (a, b) in first.iter().zip(&second) {
        assert_eq!(a.neighbors, b.neighbors);
    }
}

#[test]
fn scheduler_backend_behaves_like_sharded_backend() {
    // The multi-board scheduler is itself a sharded deployment (partitions
    // spread over workers); served through the service it must agree with the
    // exact scan too.
    let dims = 16;
    let k = 3;
    let data = binvec::generate::uniform_dataset(96, dims, 107);
    let queries = binvec::generate::uniform_queries(10, dims, 108);
    let ground_truth = LinearScan::new(data.clone());

    let scheduler = ParallelApScheduler::new(KnnDesign::new(dims))
        .with_capacity(BoardCapacity {
            vectors_per_board: 24,
            model: ap_knn::capacity::CapacityModel::PaperCalibrated,
        })
        .with_workers(4);
    let backend = ApSchedulerBackend::new(scheduler, data);
    let mut service =
        SearchService::try_new(Box::new(backend), ServiceConfig::default().with_k(k)).unwrap();
    for q in &queries {
        service.submit(q.clone());
    }
    for (completed, query) in service.drain().iter().zip(&queries) {
        assert_eq!(completed.neighbors, ground_truth.search(query, k));
    }
    let stats = service.stats();
    assert_eq!(stats.shard_cycles.len(), 4);
}
