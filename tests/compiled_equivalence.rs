//! Equivalence sweep: the compiled sparse-frontier core must be bit-identical to
//! the naive reference stepper, on random automata networks (STEs with arbitrary
//! classes and start kinds, counters in both modes, boolean chains, self-loops)
//! and random symbol streams — and the parallel partition engine must be
//! indistinguishable from the serial one across forced reconfigurations.

use ap_similarity::ap_sim::{
    AutomataNetwork, BooleanFunction, ConnectPort, CounterMode, ElementId, ReferenceSimulator,
    Simulator, StartKind, SymbolClass,
};
use ap_similarity::prelude::*;
use proptest::prelude::*;

/// Tiny deterministic PRNG (xorshift64*) so one `u64` seed fully describes a
/// network; keeps the generator identical under the offline proptest shim and the
/// real crate.
struct Gen(u64);

impl Gen {
    fn new(seed: u64) -> Self {
        Gen(seed | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, bound: usize) -> usize {
        (self.next() % bound.max(1) as u64) as usize
    }

    fn chance(&mut self, percent: usize) -> bool {
        self.below(100) < percent
    }
}

/// Symbols are drawn from a small alphabet so random streams regularly hit the
/// random classes.
const ALPHABET: u8 = 8;

fn random_class(g: &mut Gen) -> SymbolClass {
    match g.below(5) {
        0 => SymbolClass::any(),
        1 => SymbolClass::single(g.below(ALPHABET as usize) as u8),
        2 => SymbolClass::all_except(g.below(ALPHABET as usize) as u8),
        3 => {
            let lo = g.below(ALPHABET as usize) as u8;
            let hi = lo + g.below((ALPHABET - lo) as usize) as u8;
            SymbolClass::range(lo, hi)
        }
        _ => SymbolClass::bit_slice(g.below(3) as u8, g.chance(50)),
    }
}

/// Builds a random, always-valid network: STEs first, then counters, then boolean
/// gates (ids ascending), with every structural validation rule satisfied by
/// construction. Gate-to-gate edges may form chains and cycles.
fn random_network(seed: u64) -> AutomataNetwork {
    let mut g = Gen::new(seed);
    let mut net = AutomataNetwork::new();
    let n_stes = 1 + g.below(10);
    let n_counters = g.below(4);
    let n_booleans = g.below(5);

    let mut stes = Vec::with_capacity(n_stes);
    for i in 0..n_stes {
        // STE 0 is always a start state so every element can trace a driver.
        let start = if i == 0 || g.chance(30) {
            if g.chance(25) {
                StartKind::StartOfData
            } else {
                StartKind::AllInput
            }
        } else {
            StartKind::None
        };
        let report = g.chance(70).then_some(i as u32);
        stes.push(net.add_ste(format!("s{i}"), random_class(&mut g), start, report));
    }
    // Drivers: every non-start STE gets at least one activation predecessor;
    // extra edges and self-loops are sprinkled on top.
    for i in 0..n_stes {
        let e = net.element(stes[i]).unwrap().clone();
        let needs_driver = matches!(e.kind, ap_similarity::ap_sim::ElementKind::Ste { start, .. } if start == StartKind::None);
        if (needs_driver || g.chance(40)) && i > 0 {
            let from = stes[g.below(i)];
            net.connect(from, stes[i]).unwrap();
        } else if needs_driver {
            // Only STE 0 can land here, and it is a start state by construction.
            unreachable!("non-start STE without an earlier driver");
        }
        if g.chance(25) {
            net.connect(stes[i], stes[i]).unwrap(); // self-loop
        }
    }

    let mut counters = Vec::with_capacity(n_counters);
    for c in 0..n_counters {
        let mode = if g.chance(50) {
            CounterMode::Pulse
        } else {
            CounterMode::Latch
        };
        let report = g.chance(70).then_some((1000 + c) as u32);
        let counter = net.add_counter_with_increment(
            format!("c{c}"),
            1 + g.below(6) as u32,
            mode,
            report,
            1 + g.below(3) as u32,
        );
        // At least one enable, possibly several (exercises the increment cap).
        for _ in 0..1 + g.below(3) {
            net.connect_port(stes[g.below(n_stes)], counter, ConnectPort::CountEnable)
                .unwrap();
        }
        if g.chance(60) {
            net.connect_port(stes[g.below(n_stes)], counter, ConnectPort::CountReset)
                .unwrap();
        }
        // Counters may drive STEs downstream.
        if g.chance(60) {
            net.connect(counter, stes[g.below(n_stes)]).unwrap();
        }
        counters.push(counter);
    }

    let mut booleans = Vec::with_capacity(n_booleans);
    for b in 0..n_booleans {
        let function = match g.below(6) {
            0 => BooleanFunction::And,
            1 => BooleanFunction::Or,
            2 => BooleanFunction::Nand,
            3 => BooleanFunction::Nor,
            4 => BooleanFunction::Xor,
            _ => BooleanFunction::Not,
        };
        let report = g.chance(70).then_some((2000 + b) as u32);
        booleans.push((net.add_boolean(format!("b{b}"), function, report), function));
    }
    for b in 0..booleans.len() {
        let (gate, function) = booleans[b];
        let inputs = if function == BooleanFunction::Not {
            1
        } else {
            1 + g.below(3)
        };
        for _ in 0..inputs {
            // Inputs come from STEs, counters, or *any* gate — including later ones
            // and itself, so chains and combinational cycles are both covered.
            let pool = n_stes + counters.len() + booleans.len();
            let pick = g.below(pool);
            let from = if pick < n_stes {
                stes[pick]
            } else if pick < n_stes + counters.len() {
                counters[pick - n_stes]
            } else {
                booleans[pick - n_stes - counters.len()].0
            };
            net.connect(from, gate).unwrap();
        }
        // Gates may feed STEs back.
        if g.chance(50) {
            net.connect(gate, stes[g.below(n_stes)]).unwrap();
        }
    }

    net.validate().expect("generator must build valid networks");
    net
}

fn report_pairs(reports: &[ap_similarity::ap_sim::ReportEvent]) -> Vec<(usize, u32, u64)> {
    reports
        .iter()
        .map(|r| (r.element.index(), r.code, r.offset))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Step-for-step equivalence: identical report events, identical per-element
    /// activations, identical counter values — then again after a reset.
    #[test]
    fn compiled_core_equals_reference_stepper(
        seed in proptest::prelude::any::<u64>(),
        stream in prop::collection::vec(0u8..ALPHABET, 0..60),
    ) {
        let net = random_network(seed);
        let mut compiled = Simulator::new(&net).unwrap();
        let mut reference = ReferenceSimulator::new(&net).unwrap();
        for &symbol in &stream {
            let a = compiled.step(symbol);
            let b = reference.step(symbol);
            prop_assert_eq!(&a, &b, "seed {} symbol {}", seed, symbol);
            for id in 0..net.len() {
                prop_assert_eq!(
                    compiled.is_active(ElementId(id)),
                    reference.is_active(ElementId(id)),
                    "activation of element {} diverged (seed {})", id, seed
                );
            }
            for e in net.elements() {
                if e.is_counter() {
                    prop_assert_eq!(
                        compiled.counter_value(e.id).unwrap(),
                        reference.counter_value(e.id).unwrap(),
                        "counter {} diverged (seed {})", e.id.index(), seed
                    );
                }
            }
        }
        prop_assert_eq!(compiled.cycle(), reference.cycle());
        // Whole-run equivalence from a clean reset, via the reusable sink.
        compiled.reset();
        reference.reset();
        let mut sink = Vec::new();
        compiled.run_into(&stream, &mut sink);
        prop_assert_eq!(report_pairs(&sink), report_pairs(&reference.run(&stream)));
    }

    /// The kNN board networks (the hot path) produce identical report streams from
    /// both cores on encoded query batches.
    #[test]
    fn knn_partition_networks_compile_faithfully(
        n in 1usize..12,
        dims in 1usize..14,
        n_queries in 1usize..4,
        seed in 0u64..1000,
    ) {
        let data = binvec::generate::uniform_dataset(n, dims, seed);
        let queries = binvec::generate::uniform_queries(n_queries, dims, seed.wrapping_add(1));
        let design = KnnDesign::new(dims);
        let pn = ap_knn::PartitionNetwork::build_from_dataset(&data, 0, &design);
        let stream = StreamLayout::for_design(&design).encode_batch(&queries);
        let mut compiled = pn.simulator().unwrap();
        let mut reference = ReferenceSimulator::new(&pn.network).unwrap();
        prop_assert_eq!(
            report_pairs(&compiled.run(&stream)),
            report_pairs(&reference.run(&stream))
        );
    }

    /// Lane-core bit identity: up to 8 independent random symbol streams run
    /// as bit-planes of one lane pass must reproduce — per lane — exactly the
    /// reference stepper's report events, final activations, and counter
    /// values on the same random networks the scalar sweep covers.
    #[test]
    fn lane_core_equals_reference_per_lane(
        seed in proptest::prelude::any::<u64>(),
        width in 1usize..9,
        len in 0usize..40,
    ) {
        let net = random_network(seed);
        let mut g = Gen::new(seed ^ 0xD6E8_FEB8_6659_FD93);
        let streams: Vec<Vec<u8>> = (0..width)
            .map(|_| (0..len).map(|_| g.below(ALPHABET as usize) as u8).collect())
            .collect();
        let views: Vec<&[u8]> = streams.iter().map(Vec::as_slice).collect();
        let lane_stream = ap_similarity::ap_sim::lanes::LaneStream::from_streams(&views);

        let compiled = ap_similarity::ap_sim::CompiledNetwork::compile(&net).unwrap();
        let mut state = compiled.new_lane_state();
        let mut lane_reports = Vec::new();
        compiled.run_lanes_into(&mut state, &lane_stream, &mut lane_reports);

        for (lane, stream) in streams.iter().enumerate() {
            let mut reference = ReferenceSimulator::new(&net).unwrap();
            let scalar = report_pairs(&reference.run(stream));
            let demuxed: Vec<(usize, u32, u64)> = lane_reports
                .iter()
                .filter(|r| (r.lanes >> lane) & 1 == 1)
                .map(|r| (r.element.index(), r.code, r.offset))
                .collect();
            prop_assert_eq!(demuxed, scalar, "reports of lane {} (seed {})", lane, seed);
            for id in 0..net.len() {
                prop_assert_eq!(
                    state.is_active(id, lane),
                    reference.is_active(ElementId(id)),
                    "activation of element {} on lane {} diverged (seed {})", id, lane, seed
                );
            }
            for e in net.elements() {
                if e.is_counter() {
                    prop_assert_eq!(
                        compiled.lane_counter_count(&state, e.id.index(), lane),
                        Some(reference.counter_value(e.id).unwrap()),
                        "counter {} on lane {} diverged (seed {})", e.id.index(), lane, seed
                    );
                }
            }
        }
    }

    /// Parallel partition execution is transparent: identical neighbors and stats
    /// for any worker count, across forced reconfigurations.
    #[test]
    fn parallel_engine_is_transparent(
        n in 1usize..40,
        dims in 1usize..12,
        k in 1usize..6,
        board in 1usize..7,
        workers in 2usize..6,
        seed in 0u64..1000,
    ) {
        let data = binvec::generate::uniform_dataset(n, dims, seed);
        let queries = binvec::generate::uniform_queries(3, dims, seed.wrapping_add(1));
        let capacity = BoardCapacity {
            vectors_per_board: board,
            model: ap_knn::capacity::CapacityModel::PaperCalibrated,
        };
        let serial = ApKnnEngine::new(KnnDesign::new(dims))
            .with_capacity(capacity)
            .with_parallelism(1);
        let parallel = ApKnnEngine::new(KnnDesign::new(dims))
            .with_capacity(capacity)
            .with_parallelism(workers);
        let options = QueryOptions::top(k);
        let (expected, expected_stats) = serial.try_search_batch(&data, &queries, &options).unwrap();
        let (got, got_stats) = parallel.try_search_batch(&data, &queries, &options).unwrap();
        prop_assert_eq!(got, expected);
        prop_assert_eq!(got_stats, expected_stats);
        prop_assert_eq!(got_stats.board_configurations, n.div_ceil(board));
    }
}
