//! Workspace-level property tests: the AP engine (cycle-accurate, behavioural,
//! packed, multiplexed) is equivalent to brute force on random inputs.

use ap_knn::multiplex::{
    append_sliced_vector_macro, decode_multiplexed_code, encode_multiplexed_window,
    multiplexed_report_code,
};
use ap_knn::packing::append_packed_group;
use ap_similarity::prelude::*;
use proptest::prelude::*;

fn arb_dataset(max_n: usize, max_d: usize) -> impl Strategy<Value = (Vec<Vec<bool>>, Vec<bool>)> {
    (1..=max_d).prop_flat_map(move |d| {
        (
            prop::collection::vec(prop::collection::vec(any::<bool>(), d), 1..=max_n),
            prop::collection::vec(any::<bool>(), d),
        )
    })
}

fn to_dataset(rows: &[Vec<bool>]) -> BinaryDataset {
    let dims = rows[0].len();
    BinaryDataset::from_vectors(dims, rows.iter().map(|r| BinaryVector::from_bools(r)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Cycle-accurate AP search == exact CPU search, for arbitrary data / queries / k.
    #[test]
    fn cycle_accurate_engine_equals_brute_force(
        (rows, query) in arb_dataset(24, 20),
        k in 1usize..8,
    ) {
        let data = to_dataset(&rows);
        let dims = data.dims();
        let query = BinaryVector::from_bools(&query);
        let engine = ApKnnEngine::new(KnnDesign::new(dims));
        let (ap, _) = engine
            .try_search_batch(&data, std::slice::from_ref(&query), &QueryOptions::top(k))
            .unwrap();
        let cpu = LinearScan::new(data).search(&query, k);
        prop_assert_eq!(&ap[0], &cpu);
    }

    /// Forcing tiny board configurations (many reconfigurations) never changes results.
    #[test]
    fn partitioning_is_transparent(
        (rows, query) in arb_dataset(30, 16),
        k in 1usize..6,
        board in 1usize..8,
    ) {
        let data = to_dataset(&rows);
        let dims = data.dims();
        let query = BinaryVector::from_bools(&query);
        let whole = ApKnnEngine::new(KnnDesign::new(dims))
            .with_mode(ExecutionMode::Behavioral);
        let split = ApKnnEngine::new(KnnDesign::new(dims))
            .with_mode(ExecutionMode::Behavioral)
            .with_capacity(BoardCapacity { vectors_per_board: board, model: ap_knn::capacity::CapacityModel::PaperCalibrated });
        let (a, _) = whole
            .try_search_batch(&data, std::slice::from_ref(&query), &QueryOptions::top(k))
            .unwrap();
        let (b, stats) = split
            .try_search_batch(&data, std::slice::from_ref(&query), &QueryOptions::top(k))
            .unwrap();
        prop_assert_eq!(a, b);
        prop_assert_eq!(stats.board_configurations, data.len().div_ceil(board));
    }

    /// A packed group reports the same (code, offset) pairs as unpacked macros.
    #[test]
    fn packed_and_unpacked_macros_are_equivalent(
        (rows, query) in arb_dataset(8, 12),
    ) {
        let data = to_dataset(&rows);
        let dims = data.dims();
        let query = BinaryVector::from_bools(&query);
        let design = KnnDesign::new(dims);
        let layout = StreamLayout::for_design(&design);
        let vectors: Vec<BinaryVector> = data.iter().collect();
        let codes: Vec<u32> = (0..vectors.len() as u32).collect();

        let mut packed = AutomataNetwork::new();
        append_packed_group(&mut packed, &vectors, &codes, &design);
        let mut unpacked = AutomataNetwork::new();
        for (v, &c) in vectors.iter().zip(codes.iter()) {
            ap_knn::macros::append_vector_macro(&mut unpacked, v, c, &design);
        }
        let stream = layout.encode_query(&query);
        let mut ps = Simulator::new(&packed).unwrap();
        let mut us = Simulator::new(&unpacked).unwrap();
        let mut pr: Vec<(u32, u64)> = ps.run(&stream).into_iter().map(|r| (r.code, r.offset)).collect();
        let mut ur: Vec<(u32, u64)> = us.run(&stream).into_iter().map(|r| (r.code, r.offset)).collect();
        pr.sort_unstable();
        ur.sort_unstable();
        prop_assert_eq!(pr, ur);
    }

    /// Multiplexed streams answer every slice's query with its true distances.
    #[test]
    fn multiplexed_slices_decode_to_true_distances(
        (rows, _unused) in arb_dataset(4, 10),
        query_rows in prop::collection::vec(prop::collection::vec(any::<bool>(), 10), 1..=7),
    ) {
        let data = to_dataset(&rows);
        let dims = data.dims();
        // Reshape the query rows to the dataset dimensionality.
        let queries: Vec<BinaryVector> = query_rows
            .iter()
            .map(|r| {
                let mut bits = r.clone();
                bits.resize(dims, false);
                BinaryVector::from_bools(&bits)
            })
            .collect();
        let design = KnnDesign::new(dims);
        let layout = StreamLayout::for_design(&design);
        let mut net = AutomataNetwork::new();
        for v in 0..data.len() {
            for s in 0..queries.len() {
                append_sliced_vector_macro(
                    &mut net,
                    &data.vector(v),
                    multiplexed_report_code(v, s),
                    &design,
                    s,
                );
            }
        }
        let refs: Vec<&BinaryVector> = queries.iter().collect();
        let stream = encode_multiplexed_window(&layout, &refs);
        let mut sim = Simulator::new(&net).unwrap();
        let reports = sim.run(&stream);
        prop_assert_eq!(reports.len(), data.len() * queries.len());
        for r in reports {
            let (v, s) = decode_multiplexed_code(r.code);
            let expected = data.vector(v).hamming(&queries[s]);
            prop_assert_eq!(
                layout.distance_for_report_offset(r.offset as usize),
                Some(expected)
            );
        }
    }
}
