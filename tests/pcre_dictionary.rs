//! Integration tests for the PCRE front end: dictionary scanning on the
//! cycle-accurate simulator, cross-checked against host-side references, and
//! resource accounting through the same placement model the kNN experiments use.

use ap_sim::dot::to_dot;
use ap_sim::{CompiledPcre, PcreOptions, PcreSet, Placer};
use ap_similarity::prelude::*;

/// Naive host-side reference for plain literal patterns: every end offset of every
/// occurrence of `needle` in `haystack`.
fn literal_match_ends(needle: &[u8], haystack: &[u8]) -> Vec<u64> {
    if needle.is_empty() || haystack.len() < needle.len() {
        return Vec::new();
    }
    haystack
        .windows(needle.len())
        .enumerate()
        .filter(|(_, w)| *w == needle)
        .map(|(i, _)| (i + needle.len() - 1) as u64)
        .collect()
}

fn synthetic_log() -> Vec<u8> {
    let lines = [
        "user=alice GET /api/v1 status 200",
        "user=bob POST /api/v2 error timeout after 350ms status 503",
        "user=carol GET /static/logo.png status 404",
        "user=dave PUT /api/v1/items/42 status 201",
        "user=erin GET /api/v3 warn retry status 500",
    ];
    lines.join("\n").into_bytes()
}

#[test]
fn literal_dictionary_matches_substring_search() {
    let log = synthetic_log();
    let patterns = ["status", "error", "GET", "api", "retry", "zebra"];
    let set = PcreSet::compile(&patterns).expect("dictionary compiles");
    let matches = set.find_all(&log).expect("scan");
    for (pi, pattern) in patterns.iter().enumerate() {
        let expected = literal_match_ends(pattern.as_bytes(), &log);
        let got: Vec<u64> = matches
            .iter()
            .filter(|m| m.pattern == pi)
            .map(|m| m.end_offset)
            .collect();
        assert_eq!(got, expected, "pattern {pattern:?}");
    }
    // "zebra" never occurs.
    assert!(matches.iter().all(|m| m.pattern != 5));
}

#[test]
fn structured_patterns_find_expected_lines() {
    let log = synthetic_log();
    let patterns = [
        "status [45]\\d\\d",        // the two error lines
        "timeout after \\d+ms",     // one line
        "user=[a-z]+ (?:GET|POST)", // four lines (PUT excluded)
    ];
    let set = PcreSet::compile(&patterns).expect("compiles");
    let matches = set.find_all(&log).expect("scan");
    let count = |p: usize| matches.iter().filter(|m| m.pattern == p).count();
    assert_eq!(count(0), 3, "status 503, 404 and 500");
    assert_eq!(count(1), 1);
    assert_eq!(count(2), 4, "alice, bob, carol and erin use GET/POST");
}

#[test]
fn anchored_pattern_only_fires_on_stream_start() {
    let log = synthetic_log();
    let anchored = CompiledPcre::compile("^user=alice").unwrap();
    assert!(anchored.is_anchored());
    assert_eq!(anchored.find_match_ends(&log).unwrap().len(), 1);
    let elsewhere = CompiledPcre::compile("^user=bob").unwrap();
    assert!(elsewhere.find_match_ends(&log).unwrap().is_empty());
}

#[test]
fn large_literal_dictionary_places_on_one_board() {
    // A few hundred signature-like literals — the classic AP rule-matching shape.
    let patterns: Vec<String> = (0..200)
        .map(|i| format!("sig{i:03}payload{}", (b'a' + (i % 26) as u8) as char))
        .collect();
    let set = PcreSet::compile(&patterns).expect("compiles");
    let stats = set.network().stats();
    assert_eq!(stats.components, 200);
    assert_eq!(stats.reporting, 200);

    let placement = Placer::new(DeviceConfig::gen1())
        .place(set.network())
        .expect("fits");
    assert!(placement.fits());
    assert!(
        placement.ste_utilization < 0.01,
        "a literal dictionary is tiny"
    );

    // Every signature is found when its payload appears in the stream.
    let mut haystack = b"noise ".to_vec();
    haystack.extend_from_slice(patterns[137].as_bytes());
    haystack.extend_from_slice(b" more noise ");
    haystack.extend_from_slice(patterns[5].as_bytes());
    let matches = set.find_all(&haystack).expect("scan");
    let hit: Vec<usize> = matches.iter().map(|m| m.pattern).collect();
    assert!(hit.contains(&137));
    assert!(hit.contains(&5));
    assert_eq!(hit.len(), 2);
}

#[test]
fn compiled_pattern_exports_anml_and_dot() {
    let compiled = CompiledPcre::compile("(?:GET|POST) /api/v\\d").unwrap();
    let dot = to_dot(compiled.network(), "api");
    assert!(dot.contains("digraph"));
    assert!(dot.matches("shape=ellipse").count() >= compiled.position_count());

    let anml = ap_sim::anml::to_anml(compiled.network(), "api");
    let reparsed = ap_sim::anml::from_anml(&anml).expect("round-trips");
    assert_eq!(reparsed.stats(), compiled.network().stats());
}

#[test]
fn report_code_budget_respects_options() {
    let options = PcreOptions {
        report_base: 1000,
        ..PcreOptions::default()
    };
    let compiled = CompiledPcre::compile_with("abc|de|f", &options).unwrap();
    assert_eq!(compiled.accept_codes(), &[1000, 1001, 1002]);
}
