//! Soundness gates for the static analyzer.
//!
//! Two contracts are enforced here, on random automata networks:
//!
//! * **Dead-element soundness** — every element the reach pass flags as
//!   `dead-element` (dead *and* individually removable) can be deleted, one
//!   at a time, without changing the [`ReferenceSimulator`] report stream of
//!   any input by a single event, and without invalidating the network.
//! * **Clean-network totality** — a network with zero `Error`-severity
//!   findings always passes `validate()`, always compiles, and its compiled
//!   image always passes translation validation.
//!
//! Plus directed translation-validation checks over the real board images
//! the engines serve (kNN partitions, the PCRE dictionary), including the
//! mutated-CSR-edge rejection the strict mode relies on.

use ap_similarity::ap_analyze::{reach_pass, transval_pass, verify_compilation};
use ap_similarity::ap_sim::{
    AutomataNetwork, BooleanFunction, CompiledEdge, CompiledNetwork, ConnectPort, CounterMode,
    ElementId, ElementKind, ReferenceSimulator, ReportEvent, StartKind, SymbolClass,
};
use ap_similarity::prelude::*;
use proptest::prelude::*;

/// Tiny deterministic PRNG (xorshift64*) so one `u64` seed fully describes a
/// network; keeps the generator identical under the offline proptest shim and
/// the real crate.
struct Gen(u64);

impl Gen {
    fn new(seed: u64) -> Self {
        Gen(seed | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, bound: usize) -> usize {
        (self.next() % bound.max(1) as u64) as usize
    }

    fn chance(&mut self, percent: usize) -> bool {
        self.below(100) < percent
    }
}

/// Symbols are drawn from a small alphabet so random streams regularly hit
/// the random classes.
const ALPHABET: u8 = 8;

fn random_class(g: &mut Gen) -> SymbolClass {
    match g.below(5) {
        0 => SymbolClass::any(),
        1 => SymbolClass::single(g.below(ALPHABET as usize) as u8),
        2 => SymbolClass::all_except(g.below(ALPHABET as usize) as u8),
        3 => {
            let lo = g.below(ALPHABET as usize) as u8;
            let hi = lo + g.below((ALPHABET - lo) as usize) as u8;
            SymbolClass::range(lo, hi)
        }
        _ => SymbolClass::bit_slice(g.below(3) as u8, g.chance(50)),
    }
}

/// Builds a random, always-valid, fully-live network: STEs first (STE 0 is a
/// start state and every non-start STE has an earlier driver, so everything
/// traces to a start), then counters, then boolean gates.
fn random_live_network(seed: u64) -> (AutomataNetwork, Vec<ElementId>, Vec<bool>) {
    let mut g = Gen::new(seed);
    let mut net = AutomataNetwork::new();
    let n_stes = 1 + g.below(10);
    let n_counters = g.below(4);
    let n_booleans = g.below(4);

    let mut stes = Vec::with_capacity(n_stes);
    let mut is_start = Vec::with_capacity(n_stes);
    for i in 0..n_stes {
        let start = if i == 0 || g.chance(30) {
            if g.chance(25) {
                StartKind::StartOfData
            } else {
                StartKind::AllInput
            }
        } else {
            StartKind::None
        };
        is_start.push(start != StartKind::None);
        let report = g.chance(70).then_some(i as u32);
        stes.push(net.add_ste(format!("s{i}"), random_class(&mut g), start, report));
    }
    for i in 1..n_stes {
        if !is_start[i] || g.chance(40) {
            net.connect(stes[g.below(i)], stes[i]).unwrap();
        }
        if g.chance(25) {
            net.connect(stes[i], stes[i]).unwrap();
        }
    }

    for c in 0..n_counters {
        let mode = if g.chance(50) {
            CounterMode::Pulse
        } else {
            CounterMode::Latch
        };
        let report = g.chance(70).then_some((1000 + c) as u32);
        let counter = net.add_counter_with_increment(
            format!("c{c}"),
            1 + g.below(6) as u32,
            mode,
            report,
            1 + g.below(3) as u32,
        );
        for _ in 0..1 + g.below(3) {
            net.connect_port(stes[g.below(n_stes)], counter, ConnectPort::CountEnable)
                .unwrap();
        }
        if g.chance(60) {
            net.connect_port(stes[g.below(n_stes)], counter, ConnectPort::CountReset)
                .unwrap();
        }
        if g.chance(60) {
            net.connect(counter, stes[g.below(n_stes)]).unwrap();
        }
    }

    for b in 0..n_booleans {
        let function = match g.below(6) {
            0 => BooleanFunction::And,
            1 => BooleanFunction::Or,
            2 => BooleanFunction::Nand,
            3 => BooleanFunction::Nor,
            4 => BooleanFunction::Xor,
            _ => BooleanFunction::Not,
        };
        let report = g.chance(70).then_some((2000 + b) as u32);
        let gate = net.add_boolean(format!("b{b}"), function, report);
        let inputs = if function == BooleanFunction::Not {
            1
        } else {
            1 + g.below(3)
        };
        for _ in 0..inputs {
            net.connect(stes[g.below(n_stes)], gate).unwrap();
        }
    }

    net.validate().expect("generator must build valid networks");
    (net, stes, is_start)
}

/// Grafts deliberately-dead fabric onto a live network: a dead two-cycle
/// (whose members are *not* individually removable) plus 1–3 fringe STEs
/// hanging off it, which the reach pass must flag as removable
/// `dead-element`s — some reporting, some also driving live STEs that keep
/// an alternative driver.
fn random_network_with_dead_fabric(seed: u64) -> AutomataNetwork {
    let (mut net, stes, is_start) = random_live_network(seed);
    let mut g = Gen::new(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1);

    let d0 = net.add_ste("dead-cycle-0", random_class(&mut g), StartKind::None, None);
    let d1 = net.add_ste("dead-cycle-1", random_class(&mut g), StartKind::None, None);
    net.connect(d0, d1).unwrap();
    net.connect(d1, d0).unwrap();

    let driven: Vec<ElementId> = stes
        .iter()
        .zip(&is_start)
        .filter(|&(_, &start)| !start)
        .map(|(&id, _)| id)
        .collect();
    for f in 0..1 + g.below(3) {
        let report = g.chance(50).then_some((3000 + f) as u32);
        let fringe = net.add_ste(
            format!("dead-fringe-{f}"),
            random_class(&mut g),
            StartKind::None,
            report,
        );
        net.connect(if g.chance(50) { d0 } else { d1 }, fringe)
            .unwrap();
        // Optionally fan the dead fringe into a live non-start STE: that STE
        // keeps its original (live) driver, so the fringe stays removable.
        if !driven.is_empty() && g.chance(50) {
            net.connect(fringe, driven[g.below(driven.len())]).unwrap();
        }
    }

    net.validate()
        .expect("dead fabric must not invalidate the network");
    net
}

/// Rebuilds `net` without `dead`, preserving element parameters, labels, and
/// global connection insertion order (which fixes boolean input order).
fn without_element(net: &AutomataNetwork, dead: ElementId) -> AutomataNetwork {
    let mut out = AutomataNetwork::new();
    let mut map: Vec<Option<ElementId>> = vec![None; net.len()];
    for e in net.elements() {
        if e.id == dead {
            continue;
        }
        let new_id = match &e.kind {
            ElementKind::Ste {
                symbols,
                start,
                report,
            } => out.add_ste(e.label.clone(), *symbols, *start, *report),
            ElementKind::Counter {
                threshold,
                mode,
                report,
                max_increment_per_cycle,
            } => out.add_counter_with_increment(
                e.label.clone(),
                *threshold,
                *mode,
                *report,
                *max_increment_per_cycle,
            ),
            ElementKind::Boolean { function, report } => {
                out.add_boolean(e.label.clone(), *function, *report)
            }
        };
        map[e.id.index()] = Some(new_id);
    }
    for c in net.connections() {
        if let (Some(from), Some(to)) = (map[c.from.index()], map[c.to.index()]) {
            out.connect_port(from, to, c.port).unwrap();
        }
    }
    out
}

/// Element ids shift when an element is deleted, so report streams are
/// compared as (code, offset) pairs — the externally observable surface.
fn report_keys(reports: &[ReportEvent]) -> Vec<(u32, u64)> {
    reports.iter().map(|r| (r.code, r.offset)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Deleting any single analyzer-flagged `dead-element` leaves the
    /// reference report stream bit-identical and the network valid.
    #[test]
    fn deleting_any_flagged_dead_element_preserves_the_report_stream(
        seed in proptest::prelude::any::<u64>(),
        stream in prop::collection::vec(0u8..ALPHABET, 0..60),
    ) {
        let net = random_network_with_dead_fabric(seed);
        let dead: Vec<usize> = reach_pass(&net)
            .iter()
            .filter(|f| f.code == "dead-element")
            .flat_map(|f| f.elements.clone())
            .collect();
        // The injected fringe guarantees the property is never vacuous.
        prop_assert!(!dead.is_empty(), "no removable dead element flagged (seed {})", seed);

        let baseline = report_keys(&ReferenceSimulator::new(&net).unwrap().run(&stream));
        for id in dead {
            let pruned = without_element(&net, ElementId(id));
            prop_assert!(
                pruned.validate().is_ok(),
                "deleting flagged element {} invalidated the network (seed {})", id, seed
            );
            let got = report_keys(&ReferenceSimulator::new(&pruned).unwrap().run(&stream));
            prop_assert_eq!(
                got, baseline.clone(),
                "deleting flagged element {} changed the report stream (seed {})", id, seed
            );
        }
    }

    /// Analyzer-clean networks (zero `Error` findings) always validate,
    /// always compile, and their images pass translation validation.
    #[test]
    fn analyzer_clean_networks_validate_and_compile(seed in proptest::prelude::any::<u64>()) {
        // Half the cases carry dead (Warn/Info) fabric: clean means
        // Error-free, not finding-free.
        let net = if seed.is_multiple_of(2) {
            random_live_network(seed).0
        } else {
            random_network_with_dead_fabric(seed)
        };
        let report = Analyzer::new().analyze_network("random", &net);
        prop_assert!(report.is_clean(), "generator produced Error findings (seed {})", seed);
        prop_assert!(net.validate().is_ok(), "clean network failed validate() (seed {})", seed);
        let compiled = CompiledNetwork::compile(&net);
        prop_assert!(compiled.is_ok(), "clean network failed to compile (seed {})", seed);
        prop_assert!(
            verify_compilation(&net, &compiled.unwrap()).is_ok(),
            "fresh image failed translation validation (seed {})", seed
        );
    }
}

/// Every real board image the engines serve must pass translation validation
/// as compiled — kNN partitions across shapes, and the PCRE dictionary.
#[test]
fn translation_validator_accepts_real_board_images() {
    for (n, dims, seed) in [(24usize, 16usize, 1u64), (40, 32, 2), (16, 48, 3)] {
        let design = KnnDesign::new(dims);
        let data = binvec::generate::uniform_dataset(n, dims, seed);
        let pn = ap_knn::PartitionNetwork::build_from_dataset(&data, 0, &design);
        let compiled = CompiledNetwork::compile(&pn.network).expect("board image compiles");
        verify_compilation(&pn.network, &compiled).expect("fresh kNN image validates");
    }

    let patterns = ["status", "error", "GET", "status [45]\\d\\d", "user=[a-z]+"];
    let set = PcreSet::compile(&patterns).expect("dictionary compiles");
    let compiled = CompiledNetwork::compile(set.network()).expect("pcre image compiles");
    verify_compilation(set.network(), &compiled).expect("fresh PCRE image validates");
}

/// A single mutated CSR successor edge in a real kNN board image must be
/// rejected with an `Error` finding pinned to the corrupted element.
#[test]
fn corrupted_csr_edge_is_rejected_with_a_pinned_finding() {
    let design = KnnDesign::new(16);
    let data = binvec::generate::uniform_dataset(12, 16, 7);
    let pn = ap_knn::PartitionNetwork::build_from_dataset(&data, 0, &design);
    let mut compiled = CompiledNetwork::compile(&pn.network).expect("board image compiles");

    let (victim, original) = {
        let view = compiled.view();
        (0..pn.network.len())
            .find_map(|e| {
                view.successor_edges(e)
                    .first()
                    .copied()
                    .map(|edge| (e, edge))
            })
            .expect("a kNN board image has successor edges")
    };
    // Flip the edge to a different kind (the image has counters, so slot 0
    // always exists).
    let mutated = match original {
        CompiledEdge::ActivateSte { .. } | CompiledEdge::CountEnable { .. } => {
            CompiledEdge::CountReset { slot: 0 }
        }
        CompiledEdge::CountReset { slot } => CompiledEdge::CountEnable { slot },
    };
    compiled
        .inject_successor_fault(victim, 0, mutated)
        .expect("fault injection targets a real edge");

    let findings = transval_pass(&pn.network, &compiled);
    let finding = findings
        .iter()
        .find(|f| f.code == "successor-edge-mismatch")
        .expect("the mutated edge is detected");
    assert_eq!(finding.severity, Severity::Error);
    assert!(
        finding.elements.contains(&victim),
        "finding {finding} does not pin element {victim}"
    );
    let err = verify_compilation(&pn.network, &compiled).expect_err("strict mode rejects");
    assert!(err.contains("successor-edge-mismatch"), "{err}");
}
