//! Server lifecycle integration tests: real loopback TCP, concurrent client
//! fleets with poison queries in flight, graceful shutdown draining, failure
//! containment per connection, and single-thread multiplexing of a thousand
//! in-flight tickets.

use ap_serve::net::{ApClient, ApServer, CompletionSet, NetError};
use ap_serve::{
    BackendBatch, QueryOptions, RuntimeConfig, SearchError, ServiceRuntime, SimilarityBackend,
};
use baselines::{LinearScan, SearchIndex};
use binvec::generate::{uniform_dataset, uniform_queries};
use binvec::BinaryVector;
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Generous bound for anything to resolve; the suite only sleeps this long
/// when something is genuinely wedged.
const RESOLVE_TIMEOUT: Duration = Duration::from_secs(30);

/// A backend that fails any batch containing the poison query — the wire-side
/// twin of the runtime_concurrent suite's dispatch-failure exercises.
struct PoisonSensitive {
    inner: LinearScan,
    poison: BinaryVector,
}

impl SimilarityBackend for PoisonSensitive {
    fn name(&self) -> String {
        "poison-sensitive".to_string()
    }
    fn len(&self) -> usize {
        SearchIndex::len(&self.inner)
    }
    fn dims(&self) -> usize {
        SearchIndex::dims(&self.inner)
    }
    fn serve_batch(&self, queries: &[BinaryVector], k: usize) -> BackendBatch {
        BackendBatch::host_only(SearchIndex::search_batch(&self.inner, queries, k))
    }
    fn try_serve_batch(
        &self,
        queries: &[BinaryVector],
        options: &QueryOptions,
    ) -> Result<BackendBatch, SearchError> {
        if queries.contains(&self.poison) {
            return Err(SearchError::Backend {
                backend: self.name(),
                reason: "poison query in batch".to_string(),
            });
        }
        options.validate()?;
        let mut batch = self.serve_batch(queries, options.k);
        for neighbors in &mut batch.results {
            options.clip(neighbors);
        }
        Ok(batch)
    }
}

/// A manually opened gate blocking dispatches until the test releases them,
/// so in-flight population at shutdown time is deterministic.
struct Gate {
    open: Mutex<bool>,
    released: Condvar,
}

impl Gate {
    fn new() -> Arc<Self> {
        Arc::new(Self {
            open: Mutex::new(false),
            released: Condvar::new(),
        })
    }
    fn open(&self) {
        *self.open.lock().unwrap() = true;
        self.released.notify_all();
    }
    fn wait(&self) {
        let mut open = self.open.lock().unwrap();
        while !*open {
            open = self.released.wait(open).unwrap();
        }
    }
}

/// A gated linear scan: dispatches block until the gate opens.
struct Gated {
    inner: LinearScan,
    gate: Arc<Gate>,
}

impl SimilarityBackend for Gated {
    fn name(&self) -> String {
        "gated".to_string()
    }
    fn len(&self) -> usize {
        SearchIndex::len(&self.inner)
    }
    fn dims(&self) -> usize {
        SearchIndex::dims(&self.inner)
    }
    fn serve_batch(&self, queries: &[BinaryVector], k: usize) -> BackendBatch {
        BackendBatch::host_only(SearchIndex::search_batch(&self.inner, queries, k))
    }
    fn try_serve_batch(
        &self,
        queries: &[BinaryVector],
        options: &QueryOptions,
    ) -> Result<BackendBatch, SearchError> {
        self.gate.wait();
        options.validate()?;
        let mut batch = self.serve_batch(queries, options.k);
        for neighbors in &mut batch.results {
            options.clip(neighbors);
        }
        Ok(batch)
    }
}

fn linear_runtime(
    dims: usize,
    vectors: usize,
    workers: usize,
    queue: usize,
) -> Arc<ServiceRuntime> {
    let data = uniform_dataset(vectors, dims, 71);
    Arc::new(
        ServiceRuntime::try_new(
            RuntimeConfig::default()
                .with_workers(workers)
                .with_queue_capacity(queue)
                .with_cache_capacity(0)
                .with_options(QueryOptions::top(5)),
            move |_| Ok(Box::new(LinearScan::new(data.clone())) as Box<dyn SimilarityBackend>),
        )
        .unwrap(),
    )
}

#[test]
fn client_fleet_with_poison_queries_gets_exactly_one_response_per_request() {
    let dims = 16;
    let clients = 5usize;
    let per_client = 40usize;
    let window = 8usize;
    let data = uniform_dataset(80, dims, 61);
    let direct = LinearScan::new(data.clone());
    let poison = BinaryVector::ones(dims);

    let backend_data = data.clone();
    let backend_poison = poison.clone();
    let runtime = Arc::new(
        ServiceRuntime::try_new(
            RuntimeConfig::default()
                .with_workers(3)
                .with_batch_size(5)
                .with_queue_capacity(1024)
                .with_cache_capacity(0)
                .with_options(QueryOptions::top(4)),
            move |_| {
                Ok(Box::new(PoisonSensitive {
                    inner: LinearScan::new(backend_data.clone()),
                    poison: backend_poison.clone(),
                }) as Box<dyn SimilarityBackend>)
            },
        )
        .unwrap(),
    );
    let server = ApServer::bind("127.0.0.1:0", Arc::clone(&runtime)).unwrap();
    let addr = server.local_addr();

    // Each client keeps a pipelined window in flight; client 0 keeps poison
    // in the stream the whole run. Every submission must come back exactly
    // once, matched by correlation id.
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let poison = &poison;
                let direct = &direct;
                scope.spawn(move || {
                    let mut client = ApClient::connect(addr).expect("connect");
                    let queries = uniform_queries(per_client, dims, 62 + c as u64);
                    let mut in_flight: HashMap<u64, BinaryVector> = HashMap::new();
                    let mut responses = 0usize;
                    let deadline = Instant::now() + RESOLVE_TIMEOUT;
                    for (i, q) in queries.into_iter().enumerate() {
                        let q = if c == 0 && i % 8 == 0 {
                            poison.clone()
                        } else {
                            q
                        };
                        let correlation = client
                            .submit(q.clone(), QueryOptions::top(4))
                            .expect("pipelined submit");
                        assert!(
                            in_flight.insert(correlation, q).is_none(),
                            "correlation ids must be unique per connection"
                        );
                        while in_flight.len() >= window {
                            assert!(Instant::now() < deadline, "fleet wedged");
                            let (corr, outcome) = client.recv_completion().expect("completion");
                            let query = in_flight
                                .remove(&corr)
                                .expect("completion matches exactly one in-flight request");
                            responses += 1;
                            match outcome {
                                Ok(neighbors) => {
                                    assert_ne!(&query, poison, "a poison query can never succeed");
                                    assert_eq!(neighbors, direct.search(&query, 4));
                                }
                                Err(error) => {
                                    // Either the poison itself or batch
                                    // collateral; always the backend's typed
                                    // error.
                                    assert!(matches!(error, SearchError::Backend { .. }));
                                }
                            }
                        }
                    }
                    while !in_flight.is_empty() {
                        assert!(Instant::now() < deadline, "drain wedged");
                        let (corr, outcome) = client.recv_completion().expect("completion");
                        let query = in_flight.remove(&corr).expect("matched completion");
                        responses += 1;
                        if let Ok(neighbors) = outcome {
                            assert_ne!(&query, poison);
                            assert_eq!(neighbors, direct.search(&query, 4));
                        }
                    }
                    assert_eq!(responses, per_client, "exactly one response per request");
                })
            })
            .collect();
        for handle in handles {
            handle.join().expect("client thread");
        }
    });

    let stats = server.shutdown();
    assert_eq!(
        stats.queries_submitted,
        stats.queries_served + stats.failed_queries + stats.deadline_expired,
        "every admitted ticket resolved exactly once"
    );
    assert_eq!(stats.queries_submitted, (clients * per_client) as u64);
    assert!(stats.failed_queries > 0, "poison batches must have failed");
    Arc::try_unwrap(runtime)
        .unwrap_or_else(|_| panic!("server released its runtime handle"))
        .shutdown();
}

#[test]
fn graceful_shutdown_drains_in_flight_tickets_before_closing_sockets() {
    let dims = 16;
    let in_flight = 24usize;
    let data = uniform_dataset(60, dims, 73);
    let direct = LinearScan::new(data.clone());
    let gate = Gate::new();

    let backend_data = data.clone();
    let backend_gate = Arc::clone(&gate);
    let runtime = Arc::new(
        ServiceRuntime::try_new(
            RuntimeConfig::default()
                .with_workers(2)
                .with_queue_capacity(256)
                .with_cache_capacity(0)
                .with_options(QueryOptions::top(5)),
            move |_| {
                Ok(Box::new(Gated {
                    inner: LinearScan::new(backend_data.clone()),
                    gate: Arc::clone(&backend_gate),
                }) as Box<dyn SimilarityBackend>)
            },
        )
        .unwrap(),
    );
    let server = ApServer::bind("127.0.0.1:0", Arc::clone(&runtime)).unwrap();
    let addr = server.local_addr();

    let mut client = ApClient::connect(addr).expect("connect");
    let queries = uniform_queries(in_flight, dims, 74);
    let mut pending: HashMap<u64, BinaryVector> = HashMap::new();
    for q in &queries {
        let corr = client
            .submit(q.clone(), QueryOptions::top(5))
            .expect("submit");
        pending.insert(corr, q.clone());
    }

    // Wait until every submission is admitted (in flight behind the gate):
    // shutdown stops *reading*, so the drain contract covers admitted
    // tickets, not bytes still sitting in the socket buffer.
    let admitted_by = Instant::now() + RESOLVE_TIMEOUT;
    while runtime.stats().queries_submitted < in_flight as u64 {
        assert!(Instant::now() < admitted_by, "admission wedged");
        std::thread::sleep(Duration::from_millis(5));
    }

    // Shut down while every query is gated in flight. The shutdown must not
    // complete until the drain does — and the client must still receive
    // every response before its socket closes.
    let shutdown = std::thread::spawn(move || server.shutdown());
    // Give the shutdown a moment to reach the draining phase, then release
    // the backend.
    std::thread::sleep(Duration::from_millis(100));
    gate.open();

    let deadline = Instant::now() + RESOLVE_TIMEOUT;
    while !pending.is_empty() {
        assert!(Instant::now() < deadline, "drain wedged");
        let (corr, outcome) = client
            .recv_completion()
            .expect("draining server must answer every in-flight query");
        let query = pending.remove(&corr).expect("matched completion");
        let neighbors = outcome.expect("gated query succeeds once released");
        assert_eq!(neighbors, direct.search(&query, 5));
    }
    // After the drain the server closes the socket: the next read is EOF,
    // surfaced as a typed protocol error — not a hang, not a panic.
    match client.recv_completion() {
        Err(NetError::Protocol(_)) | Err(NetError::Io(_)) => {}
        other => panic!("expected the drained socket to close, got {other:?}"),
    }

    let stats = shutdown.join().expect("shutdown thread");
    assert_eq!(stats.queries_served, in_flight as u64);
    assert_eq!(
        stats.queries_submitted,
        stats.queries_served + stats.failed_queries + stats.deadline_expired,
    );
    Arc::try_unwrap(runtime)
        .unwrap_or_else(|_| panic!("server released its runtime handle"))
        .shutdown();
}

#[test]
fn malformed_bytes_fail_one_connection_but_the_server_keeps_serving() {
    let runtime = linear_runtime(16, 60, 2, 256);
    let server = ApServer::bind("127.0.0.1:0", Arc::clone(&runtime)).unwrap();
    let addr = server.local_addr();

    // A vandal speaks HTTP at the similarity port.
    {
        use std::io::{Read, Write};
        let mut vandal = std::net::TcpStream::connect(addr).unwrap();
        vandal
            .write_all(b"GET /knn?k=5 HTTP/1.1\r\nHost: localhost\r\n\r\n")
            .unwrap();
        // The server answers with a typed Failed farewell and closes; just
        // read until EOF — the point is that it neither hangs nor panics.
        vandal.set_read_timeout(Some(RESOLVE_TIMEOUT)).unwrap();
        let mut farewell = Vec::new();
        vandal.read_to_end(&mut farewell).unwrap();
        assert!(!farewell.is_empty(), "the farewell frame is written first");
    }

    // A well-behaved client on a fresh connection is unaffected.
    let mut client = ApClient::connect(addr).expect("connect after vandal");
    client.ping().expect("server still serving");
    let query = uniform_queries(1, 16, 75).pop().unwrap();
    let neighbors = client.search(query, QueryOptions::top(5)).expect("search");
    assert_eq!(neighbors.len(), 5);

    drop(client);
    server.shutdown();
    Arc::try_unwrap(runtime)
        .unwrap_or_else(|_| panic!("server released its runtime handle"))
        .shutdown();
}

#[test]
fn wrong_width_queries_fail_typed_and_the_connection_keeps_serving() {
    let runtime = linear_runtime(16, 60, 2, 256);
    let server = ApServer::bind("127.0.0.1:0", Arc::clone(&runtime)).unwrap();
    let mut client = ApClient::connect(server.local_addr()).expect("connect");

    let skinny = uniform_queries(1, 8, 76).pop().unwrap();
    match client.search(skinny, QueryOptions::top(5)) {
        Err(NetError::Query(SearchError::DimMismatch { expected, actual })) => {
            assert_eq!((expected, actual), (16, 8));
        }
        other => panic!("expected a typed dims failure, got {other:?}"),
    }
    // Same socket, next query: still served.
    let query = uniform_queries(1, 16, 77).pop().unwrap();
    assert_eq!(client.search(query, QueryOptions::top(5)).unwrap().len(), 5);

    drop(client);
    server.shutdown();
    Arc::try_unwrap(runtime)
        .unwrap_or_else(|_| panic!("server released its runtime handle"))
        .shutdown();
}

#[test]
fn one_thread_multiplexes_a_thousand_gated_tickets_without_blocking_waits() {
    let dims = 16;
    let tickets = 1_000usize;
    let data = uniform_dataset(60, dims, 78);
    let gate = Gate::new();

    let backend_data = data.clone();
    let backend_gate = Arc::clone(&gate);
    let runtime = ServiceRuntime::try_new(
        RuntimeConfig::default()
            .with_workers(2)
            .with_queue_capacity(tickets + 16)
            .with_cache_capacity(0)
            .with_options(QueryOptions::top(3)),
        move |_| {
            Ok(Box::new(Gated {
                inner: LinearScan::new(backend_data.clone()),
                gate: Arc::clone(&backend_gate),
            }) as Box<dyn SimilarityBackend>)
        },
    )
    .unwrap();

    // Put 1000 tickets in flight behind the closed gate, all registered on
    // one CompletionSet owned by this one thread: no per-ticket wait() ever
    // happens, registration is non-blocking even though nothing can resolve.
    let queries = uniform_queries(tickets, dims, 79);
    let mut set = CompletionSet::new();
    for (i, q) in queries.iter().enumerate() {
        set.register(runtime.try_submit(q.clone()).expect("submit"), i);
    }
    assert_eq!(set.len(), tickets);
    assert!(
        set.drain_ready().is_empty(),
        "nothing resolves while the gate is closed"
    );

    gate.open();
    let mut seen = vec![false; tickets];
    let deadline = Instant::now() + RESOLVE_TIMEOUT;
    while !set.is_empty() {
        assert!(Instant::now() < deadline, "multiplexer wedged");
        for (tag, result) in set.wait_ready(Duration::from_millis(200)) {
            assert!(!seen[tag], "ticket {tag} resolved twice");
            seen[tag] = true;
            result.expect("gated query succeeds once released");
        }
    }
    assert!(seen.iter().all(|&s| s), "all {tickets} tickets resolved");
    runtime.shutdown();
}

#[test]
fn stats_frame_over_the_wire_matches_the_runtime_view() {
    let runtime = linear_runtime(16, 60, 2, 256);
    let server = ApServer::bind("127.0.0.1:0", Arc::clone(&runtime)).unwrap();
    let mut client = ApClient::connect(server.local_addr()).expect("connect");

    for q in uniform_queries(20, 16, 80) {
        client.search(q, QueryOptions::top(5)).expect("search");
    }
    let wire = client.stats().expect("stats over the wire");
    let local = runtime.stats();
    assert_eq!(wire.backend, runtime.backend_name());
    assert_eq!(wire.workers, 2);
    assert_eq!(wire.queue_capacity, 256);
    assert_eq!(wire.queries_submitted, local.queries_submitted);
    assert_eq!(wire.queries_served, 20);
    let (p50, p95, p99) = wire
        .queue_wait_ms
        .expect("queue-wait percentiles present after served queries");
    assert!(p50 <= p95 && p95 <= p99, "percentiles must be ordered");

    drop(client);
    server.shutdown();
    Arc::try_unwrap(runtime)
        .unwrap_or_else(|_| panic!("server released its runtime handle"))
        .shutdown();
}
