//! Wire-codec integration tests: property round-trips over random frames and
//! adversarial decoding of hostile byte streams.
//!
//! The contract under test: every encodable frame decodes back to itself
//! (deadlines round-trip as remaining budget, not an instant); every hostile
//! byte stream — truncation, corruption, oversized declared lengths, garbage
//! mid-stream — yields a typed [`WireError`], never a panic and never an
//! allocation sized from an unvalidated declared length.

use ap_serve::net::{Frame, FrameBuffer, StatsFrame, HEADER_LEN, MAX_PAYLOAD};
use binvec::wire::WireError;
use binvec::{
    Deadline, ExecutionPreference, MutAck, MutationOp, Neighbor, Priority, QueryOptions,
    SearchError,
};
use proptest::prelude::*;
use std::time::Duration;

/// Deterministically builds the `i`-th sample frame from a seed, covering
/// every frame kind and exercising every optional field both ways.
fn sample_frame(seed: u64, kind: usize) -> Frame {
    let mix = seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(kind as u64);
    match kind % 10 {
        0 => Frame::Ping,
        1 => Frame::Pong,
        2 => Frame::StatsRequest,
        3 => {
            let dims = 1 + (mix % 300) as usize;
            let mut options = QueryOptions::top(1 + (mix % 50) as usize);
            if mix.is_multiple_of(2) {
                options = options.within((mix % 1000) as u32);
            }
            options = options.execution(match mix % 3 {
                0 => ExecutionPreference::Auto,
                1 => ExecutionPreference::CycleAccurate,
                _ => ExecutionPreference::Behavioral,
            });
            options = options.prioritized(match mix % 3 {
                0 => Priority::Low,
                1 => Priority::Normal,
                _ => Priority::High,
            });
            if mix.is_multiple_of(3) {
                options = options.by(Deadline::after(Duration::from_micros(mix % 5_000_000)));
            }
            let query = binvec::generate::uniform_queries(1, dims, mix)
                .pop()
                .unwrap();
            Frame::Submit { options, query }
        }
        4 => Frame::Completed {
            neighbors: (0..(mix % 40))
                .map(|i| Neighbor::new(mix.wrapping_add(i) as usize, (mix % 97) as u32 + i as u32))
                .collect(),
        },
        5 => {
            let errors = [
                SearchError::ZeroDims,
                SearchError::DimMismatch {
                    expected: (mix % 512) as usize,
                    actual: (mix % 77) as usize,
                },
                SearchError::ZeroK,
                SearchError::QueueFull {
                    capacity: (mix % 4096) as usize,
                },
                SearchError::DeadlineExceeded,
                SearchError::Backend {
                    backend: format!("backend-{}", mix % 10),
                    reason: format!("reason {} with unicode ✓", mix % 100),
                },
            ];
            Frame::Failed {
                error: errors[(mix % errors.len() as u64) as usize].clone(),
            }
        }
        6 => Frame::Insert {
            options: QueryOptions::top(1 + (mix % 9) as usize),
            vector: binvec::generate::uniform_queries(1, 1 + (mix % 200) as usize, mix)
                .pop()
                .unwrap(),
        },
        7 => Frame::Delete {
            options: QueryOptions::top(1).prioritized(Priority::High),
            id: mix,
        },
        8 => Frame::MutAck(MutAck {
            op: if mix.is_multiple_of(2) {
                MutationOp::Insert
            } else {
                MutationOp::Delete
            },
            id: (mix % 1_000_000) as usize,
            generation: mix / 3,
        }),
        _ => Frame::Stats(Box::new(StatsFrame {
            backend: format!("engine-{}", mix % 5),
            workers: mix % 64,
            queue_capacity: mix % 10_000,
            batch_size: 1 + mix % 7,
            cache_capacity: mix % 2048,
            queries_submitted: mix,
            queries_served: mix / 2,
            failed_queries: mix % 13,
            deadline_expired: mix % 7,
            queue_full_rejections: mix % 29,
            batches_dispatched: mix / 9,
            cache_hits: mix % 1000,
            cache_misses: mix % 999,
            ap_symbol_cycles: mix.wrapping_mul(3),
            generation: mix % 500,
            mutations_submitted: mix % 700,
            mutations_applied: mix % 600,
            mutations_failed: mix % 11,
            delta_vectors: mix % 257,
            tombstones: mix % 31,
            wal_records: mix % 4097,
            wal_bytes: mix.wrapping_mul(37) % 100_000,
            wal_fsyncs: mix % 1025,
            wal_group_max: mix % 65,
            wal_checkpoints: mix % 17,
            wal_replayed: mix % 513,
            wal_truncated_bytes: mix % 47,
            lane_width: if mix.is_multiple_of(5) { 0 } else { 64 },
            lane_batches: mix % 301,
            uptime_ms: (mix % 1_000_000) as f64 / 7.0,
            wal_group_mean: (mix % 64) as f64 / 4.0,
            lane_fill: (mix % 65) as f64 / 64.0,
            queue_wait_ms: if mix.is_multiple_of(2) {
                Some(((mix % 10) as f64, (mix % 100) as f64, (mix % 1000) as f64))
            } else {
                None
            },
            mutation_staleness_ms: if mix.is_multiple_of(3) {
                Some(((mix % 8) as f64, (mix % 80) as f64, (mix % 800) as f64))
            } else {
                None
            },
        })),
    }
}

/// Frame equality for round-trips: everything must match exactly except a
/// Submit deadline, which travels as a remaining budget and re-anchors on
/// decode — compare budgets with a generous tolerance instead.
fn assert_roundtrip_eq(original: &Frame, decoded: &Frame) {
    match (original, decoded) {
        (
            Frame::Submit {
                options: a,
                query: qa,
            },
            Frame::Submit {
                options: b,
                query: qb,
            },
        ) => {
            assert_eq!(qa, qb);
            assert_eq!(a.k, b.k);
            assert_eq!(a.within, b.within);
            assert_eq!(a.execution, b.execution);
            assert_eq!(a.priority, b.priority);
            match (a.deadline, b.deadline) {
                (None, None) => {}
                (Some(da), Some(db)) => {
                    let (ra, rb) = (da.remaining(), db.remaining());
                    let drift = ra.abs_diff(rb);
                    assert!(
                        drift < Duration::from_secs(1),
                        "deadline budget drifted {drift:?} across the wire"
                    );
                }
                (a, b) => panic!("deadline presence changed across the wire: {a:?} vs {b:?}"),
            }
        }
        (a, b) => assert_eq!(a, b),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every frame kind round-trips through encode → decode, whole and under
    /// arbitrary stream fragmentation, for random contents.
    #[test]
    fn random_frames_roundtrip(seed in 0u64..1_000_000, kind in 0usize..10) {
        let frame = sample_frame(seed, kind);
        let correlation = seed.wrapping_mul(31);

        // Whole-buffer decode.
        let mut buf = Vec::new();
        frame.encode(correlation, &mut buf);
        let (corr, decoded, consumed) = Frame::decode(&buf).unwrap().expect("complete frame");
        prop_assert_eq!(corr, correlation);
        prop_assert_eq!(consumed, buf.len());
        assert_roundtrip_eq(&frame, &decoded);

        // Fragmented decode: split the stream at a random point and feed the
        // halves separately; every strict prefix must report "incomplete".
        let cut = (seed % buf.len() as u64) as usize;
        let mut buffer = FrameBuffer::new();
        buffer.feed(&buf[..cut]);
        if cut < buf.len() {
            prop_assert_eq!(buffer.next_frame().unwrap(), None);
        }
        buffer.feed(&buf[cut..]);
        let (corr, decoded) = buffer.next_frame().unwrap().expect("reassembled frame");
        prop_assert_eq!(corr, correlation);
        assert_roundtrip_eq(&frame, &decoded);
        prop_assert_eq!(buffer.pending(), 0);
    }

    /// Corrupting any single byte of a valid frame either still decodes (the
    /// byte was don't-care for structure, e.g. inside the query bits or the
    /// correlation id) or fails with a typed error — never a panic.
    #[test]
    fn single_byte_corruption_never_panics(seed in 0u64..100_000, kind in 0usize..10) {
        let frame = sample_frame(seed, kind);
        let mut buf = Vec::new();
        frame.encode(seed, &mut buf);
        let at = (seed % buf.len() as u64) as usize;
        let flip = 1u8 << (seed % 8);
        buf[at] ^= flip;
        // Either outcome is fine; what must never happen is a panic or an
        // attempt to over-allocate (the 16 MiB cap guards declared lengths).
        let _ = Frame::decode(&buf);
    }

    /// Random garbage never decodes to success silently when it cannot be a
    /// frame, and never panics regardless.
    #[test]
    fn random_garbage_never_panics(seed in 0u64..100_000, len in 0usize..256) {
        let mut state = seed;
        let bytes: Vec<u8> = (0..len)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (state >> 33) as u8
            })
            .collect();
        if let Ok(None) = Frame::decode(&bytes) {
            // Only acceptable while the buffer is still a plausible
            // prefix: the magic must match as far as the bytes reach.
            let check = bytes.len().min(4);
            prop_assert_eq!(&bytes[..check], &b"APWF"[..check]);
        }
    }
}

#[test]
fn truncation_reports_incomplete_for_every_prefix_of_every_kind() {
    for kind in 0..10 {
        let frame = sample_frame(99, kind);
        let mut buf = Vec::new();
        frame.encode(7, &mut buf);
        for cut in 0..buf.len() {
            assert_eq!(
                Frame::decode(&buf[..cut]).unwrap_or_else(|e| panic!(
                    "prefix {cut} of kind {kind} must be incomplete, got error {e}"
                )),
                None,
                "prefix {cut} of kind {kind}"
            );
        }
    }
}

#[test]
fn oversized_declared_length_is_refused_not_buffered() {
    let mut buf = Vec::new();
    Frame::Ping.encode(0, &mut buf);
    buf[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
    assert!(matches!(
        Frame::decode(&buf),
        Err(WireError::Oversized { declared, limit })
            if declared == u64::from(u32::MAX) && limit == MAX_PAYLOAD as u64
    ));

    // The same check through the reassembly buffer: feeding the poisoned
    // header alone must fault immediately, without waiting for 4 GiB.
    let mut buffer = FrameBuffer::new();
    buffer.feed(&buf[..HEADER_LEN]);
    assert!(matches!(
        buffer.next_frame(),
        Err(WireError::Oversized { .. })
    ));
}

#[test]
fn bad_magic_and_version_fail_from_partial_headers() {
    assert!(matches!(
        Frame::decode(b"SSH-2.0-OpenSSH"),
        Err(WireError::BadMagic { .. })
    ));
    assert!(matches!(
        Frame::decode(b"\x00"),
        Err(WireError::BadMagic { .. })
    ));
    // A matching prefix is not yet a fault...
    assert_eq!(Frame::decode(b"APW").unwrap(), None);
    // ...but a wrong version right after the magic is.
    assert!(matches!(
        Frame::decode(b"APWF\x63"),
        Err(WireError::UnsupportedVersion { found: 0x63 })
    ));
}

#[test]
fn hostile_counts_inside_payloads_are_refused_before_allocation() {
    // Completed frame declaring u32::MAX neighbors in a 4-byte payload.
    let mut buf = Vec::new();
    Frame::Completed { neighbors: vec![] }.encode(0, &mut buf);
    buf[HEADER_LEN..HEADER_LEN + 4].copy_from_slice(&u32::MAX.to_le_bytes());
    assert!(matches!(
        Frame::decode(&buf),
        Err(WireError::Oversized { .. })
    ));

    // Submit frame whose query declares a dimension count far beyond its
    // payload: the vector decoder must refuse it, typed.
    let query = binvec::generate::uniform_queries(1, 64, 3).pop().unwrap();
    let mut buf = Vec::new();
    Frame::Submit {
        options: QueryOptions::top(3),
        query,
    }
    .encode(1, &mut buf);
    let dims_at = buf.len() - 8 - 4; // one 64-bit word + the u32 dims field
    buf[dims_at..dims_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
    assert!(Frame::decode(&buf).is_err());
}

#[test]
fn a_stream_of_many_frames_survives_pathological_fragmentation() {
    let frames: Vec<Frame> = (0..30)
        .map(|i| sample_frame(i as u64 * 7 + 1, i % 10))
        .collect();
    let mut stream = Vec::new();
    for (i, frame) in frames.iter().enumerate() {
        frame.encode(i as u64, &mut stream);
    }
    // Feed in chunks of 1, 3, and 17 bytes; each chunking must reproduce the
    // exact frame sequence.
    for chunk in [1usize, 3, 17] {
        let mut buffer = FrameBuffer::new();
        let mut decoded = Vec::new();
        for piece in stream.chunks(chunk) {
            buffer.feed(piece);
            while let Some((corr, frame)) = buffer.next_frame().expect("valid stream") {
                decoded.push((corr, frame));
            }
        }
        assert_eq!(decoded.len(), frames.len(), "chunk size {chunk}");
        for (i, (corr, frame)) in decoded.iter().enumerate() {
            assert_eq!(*corr, i as u64);
            assert_roundtrip_eq(&frames[i], frame);
        }
        assert_eq!(buffer.pending(), 0);
    }
}

#[test]
fn every_search_error_variant_crosses_the_wire_typed() {
    let errors = vec![
        SearchError::ZeroDims,
        SearchError::ZeroK,
        SearchError::ZeroDistanceBound,
        SearchError::DimMismatch {
            expected: 64,
            actual: 32,
        },
        SearchError::CapacityExceeded {
            needed: 1 << 40,
            limit: 1 << 20,
        },
        SearchError::Unsupported {
            what: "jaccard over packed streams".to_string(),
        },
        SearchError::QueueFull { capacity: 128 },
        SearchError::DeadlineExceeded,
        SearchError::Backend {
            backend: "ap-knn".to_string(),
            reason: "fabric fault".to_string(),
        },
    ];
    for error in errors {
        let mut buf = Vec::new();
        Frame::Failed {
            error: error.clone(),
        }
        .encode(0, &mut buf);
        match Frame::decode(&buf).unwrap().unwrap().1 {
            Frame::Failed { error: decoded } => assert_eq!(decoded, error),
            other => panic!("expected Failed, got {other:?}"),
        }
    }
}
