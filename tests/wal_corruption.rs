//! Hostile-input sweep over the durable corpus's on-disk state, in the style
//! of `tests/net_codec.rs`: random bit flips, truncations, and garbage tails
//! over the write-ahead log and the checkpoint image must never panic.
//! Every outcome is a typed [`WalError`] or a successful recovery of the
//! longest valid record prefix — never an abort, never an allocation sized
//! by hostile bytes, never a silently wrong corpus.
//!
//! Every byte of both files is load-bearing, so the sweep asserts sharp
//! outcomes where the format guarantees them:
//!
//! * the checkpoint image is CRC-covered end to end — any flipped bit is a
//!   typed [`WalError`], full stop;
//! * a flipped bit in the log header refuses recovery (typed error); a flip
//!   past the header truncates — recovery keeps at most the records before
//!   the flip and never invents one (the script is insert-only, so the
//!   recovered corpus size states exactly how many records survived);
//! * truncating the log keeps only fully-contained records; garbage appended
//!   after the last record is detected, reported, and cut off.

use ap_knn::live::{LiveConfig, LiveEngine};
use ap_knn::wal::{self, WalConfig, WalError};
use ap_knn::{ApKnnEngine, BoardCapacity, ExecutionMode, KnnDesign};
use binvec::QueryOptions;
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

const DIMS: usize = 16;
const BASE_LEN: usize = 6;
/// Insert-only mutations logged after the initial checkpoint.
const LOGGED: usize = 5;
/// `wal.log` header: magic + version + checkpoint seq.
const HEADER_LEN: usize = 16;

fn scratch(tag: &str) -> PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "ap-wal-hostile-{}-{}-{}",
        std::process::id(),
        tag,
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn engine() -> ApKnnEngine {
    ApKnnEngine::new(KnnDesign::new(DIMS))
        .with_mode(ExecutionMode::Behavioral)
        .with_capacity(BoardCapacity {
            vectors_per_board: 7,
            model: ap_knn::capacity::CapacityModel::PaperCalibrated,
        })
}

fn live_config() -> LiveConfig {
    LiveConfig::default().with_background(false)
}

fn wal_config() -> WalConfig {
    WalConfig::default()
        .with_flush_batch(1)
        .with_checkpoint_every(None)
}

/// Builds a healthy durable corpus — checkpoint 0 holding [`BASE_LEN`]
/// vectors, a log of [`LOGGED`] insert records — and returns its directory.
fn healthy_dir(tag: &str) -> PathBuf {
    let dir = scratch(tag);
    let base = binvec::generate::uniform_dataset(BASE_LEN, DIMS, 700);
    let live = LiveEngine::durable(engine(), &base, live_config(), wal_config(), &dir).unwrap();
    for seed in 0..LOGGED as u64 {
        let vector = binvec::generate::uniform_queries(1, DIMS, 7_700 + seed)
            .pop()
            .unwrap();
        live.insert(&vector).unwrap();
    }
    drop(live);
    dir
}

fn log_path(dir: &Path) -> PathBuf {
    dir.join("wal.log")
}

fn checkpoint_path(dir: &Path) -> PathBuf {
    dir.join("checkpoint-0.ckpt")
}

/// One way to damage the on-disk state.
#[derive(Clone, Debug)]
enum Hostility {
    /// Flip one bit of `wal.log` (position wraps to the file length).
    FlipLog { pos: usize, bit: u8 },
    /// Flip one bit of the checkpoint image.
    FlipCheckpoint { pos: usize, bit: u8 },
    /// Truncate `wal.log` to `keep` bytes (wraps to the file length).
    TruncateLog { keep: usize },
    /// Append raw junk after the last valid record.
    GarbageTail { junk: Vec<u8> },
}

fn hostility_strategy() -> impl Strategy<Value = Hostility> {
    prop_oneof![
        (0usize..4096, 0u8..8).prop_map(|(pos, bit)| Hostility::FlipLog { pos, bit }),
        (0usize..4096, 0u8..8).prop_map(|(pos, bit)| Hostility::FlipCheckpoint { pos, bit }),
        (0usize..4096).prop_map(|keep| Hostility::TruncateLog { keep }),
        prop::collection::vec(0u8..=255, 1..64).prop_map(|junk| Hostility::GarbageTail { junk }),
    ]
}

/// Applies the damage, returning where it landed (for outcome assertions).
fn inflict(dir: &Path, hostility: &Hostility) -> Damage {
    match hostility {
        Hostility::FlipLog { pos, bit } => {
            let path = log_path(dir);
            let mut bytes = std::fs::read(&path).unwrap();
            let pos = pos % bytes.len();
            bytes[pos] ^= 1 << bit;
            std::fs::write(&path, &bytes).unwrap();
            Damage::LogFlip { pos }
        }
        Hostility::FlipCheckpoint { pos, bit } => {
            let path = checkpoint_path(dir);
            let mut bytes = std::fs::read(&path).unwrap();
            let pos = pos % bytes.len();
            bytes[pos] ^= 1 << bit;
            std::fs::write(&path, &bytes).unwrap();
            Damage::CheckpointFlip
        }
        Hostility::TruncateLog { keep } => {
            let path = log_path(dir);
            let mut bytes = std::fs::read(&path).unwrap();
            let keep = keep % (bytes.len() + 1);
            bytes.truncate(keep);
            std::fs::write(&path, &bytes).unwrap();
            Damage::Truncated { keep }
        }
        Hostility::GarbageTail { junk } => {
            let path = log_path(dir);
            let mut bytes = std::fs::read(&path).unwrap();
            bytes.extend_from_slice(junk);
            std::fs::write(&path, &bytes).unwrap();
            Damage::Garbage { junk: junk.len() }
        }
    }
}

enum Damage {
    LogFlip { pos: usize },
    CheckpointFlip,
    Truncated { keep: usize },
    Garbage { junk: usize },
}

/// The sweep body: damage a healthy directory, recover, assert the typed
/// outcome, and — when recovery succeeds — serve a query from the restored
/// engine to prove the surviving prefix is actually usable.
fn check_recovery_survives(hostility: &Hostility) {
    let dir = healthy_dir("case");
    let damage = inflict(&dir, hostility);

    // Stage 1: the raw recovery entry point, for typed-error sharpness.
    let recovered = wal::recover(&dir, wal_config());
    match &recovered {
        Err(WalError::Corrupt { .. } | WalError::Missing { .. } | WalError::Io(_)) => {}
        Err(other) => panic!("unexpected error class: {other}"),
        Ok((image, _wal, report)) => {
            // Never more records than were ever written; insert-only, so the
            // corpus size accounts for every surviving record.
            assert!(report.replayed <= LOGGED as u64, "invented records");
            assert_eq!(image.vectors.len(), BASE_LEN + report.replayed as usize);
            assert_eq!(image.next_id, (BASE_LEN + report.replayed as usize) as u64);
        }
    }

    // Damage-specific sharpness.
    match damage {
        Damage::CheckpointFlip => {
            // Every checkpoint byte is covered by magic/version/CRC checks.
            assert!(recovered.is_err(), "a checkpoint flip must never pass");
        }
        Damage::LogFlip { pos } if pos < HEADER_LEN => {
            assert!(recovered.is_err(), "a header flip must refuse recovery");
        }
        Damage::LogFlip { .. } => {
            // A body flip truncates at (or before) the damaged record: both
            // the length/CRC framing and the payload are covered.
            if let Ok((_, _, report)) = &recovered {
                assert!(
                    report.replayed < LOGGED as u64,
                    "a body flip cannot leave every record intact"
                );
                assert!(report.torn, "the cut tail must be reported");
            }
        }
        Damage::Truncated { keep } => {
            if keep < HEADER_LEN {
                assert!(recovered.is_err(), "a headerless log must refuse recovery");
            } else {
                let (_, _, report) = recovered.as_ref().expect("truncation only shortens");
                assert!(report.replayed <= LOGGED as u64);
            }
        }
        Damage::Garbage { junk } => {
            let (_, _, report) = recovered.as_ref().expect("garbage after the log is cut");
            assert_eq!(
                report.replayed, LOGGED as u64,
                "no valid record may be lost"
            );
            assert!(report.torn);
            assert_eq!(report.truncated_bytes, junk as u64);
        }
    }
    drop(recovered);

    // Stage 2: the engine-level entry point over the same (possibly now
    // repaired) directory — when it restores, it must serve without panicking.
    match LiveEngine::restore(engine(), live_config(), wal_config(), &dir) {
        Err(_) => {} // typed SearchError::Backend("wal"); nothing to serve
        Ok((restored, report)) => {
            assert!(restored.len() <= BASE_LEN + LOGGED);
            assert_eq!(restored.len(), BASE_LEN + report.replayed as usize);
            let queries = binvec::generate::uniform_queries(2, DIMS, 701);
            let (results, _) = restored
                .try_search_batch(&queries, &QueryOptions::top(3))
                .unwrap();
            assert!(results.iter().all(|n| n.len() <= 3));
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The acceptance sweep: arbitrary damage, typed outcomes, no panics.
    #[test]
    fn damaged_durable_state_never_panics(hostility in hostility_strategy()) {
        check_recovery_survives(&hostility);
    }
}

/// Directed worst cases the random sweep might under-sample.
#[test]
fn directed_hostile_states_are_survived() {
    // Every single-bit flip of the 16-byte log header.
    for pos in 0..HEADER_LEN {
        for bit in 0..8 {
            check_recovery_survives(&Hostility::FlipLog { pos, bit });
        }
    }
    // Every truncation point of the header region, including the empty file.
    for keep in 0..=HEADER_LEN {
        check_recovery_survives(&Hostility::TruncateLog { keep });
    }
    // A deleted checkpoint file is a typed Missing, not a panic.
    let dir = healthy_dir("missing-ckpt");
    std::fs::remove_file(checkpoint_path(&dir)).unwrap();
    match wal::recover(&dir, wal_config()) {
        Err(WalError::Missing { path }) => {
            assert!(path.ends_with("checkpoint-0.ckpt"), "{}", path.display());
        }
        Err(other) => panic!("expected Missing, got {other}"),
        Ok(_) => panic!("expected Missing, got a recovery"),
    }
    let _ = std::fs::remove_dir_all(&dir);

    // A deleted log is a typed Missing too — and durable_exists says no.
    let dir = healthy_dir("missing-log");
    std::fs::remove_file(log_path(&dir)).unwrap();
    assert!(!LiveEngine::durable_exists(&dir));
    match wal::recover(&dir, wal_config()) {
        Err(WalError::Missing { path }) => {
            assert!(path.ends_with("wal.log"), "{}", path.display());
        }
        Err(other) => panic!("expected Missing, got {other}"),
        Ok(_) => panic!("expected Missing, got a recovery"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}
