//! Client reconnect/backoff regression: a flaky listener that kills the
//! first N connections must not fail an [`ApClient`] with a [`RetryPolicy`]
//! configured — idempotent operations (ping, stats, search) reconnect,
//! back off, and resubmit under fresh correlation ids — while a client
//! without a policy surfaces the first transport fault unchanged.
//!
//! The flaky listener is a byte-pump proxy in front of a real [`ApServer`]:
//! the first `drop_first` accepted connections are closed immediately (the
//! client sees a reset or a mid-stream EOF); later connections are piped
//! through to the server verbatim.

use ap_knn::{ApKnnEngine, ExecutionMode, KnnDesign};
use ap_serve::net::{ApClient, ApServer, NetError, RetryPolicy};
use ap_serve::{ApEngineBackend, QueryOptions, RuntimeConfig, ServiceRuntime, SimilarityBackend};
use baselines::{LinearScan, SearchIndex};
use binvec::generate::{uniform_dataset, uniform_queries};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

const DIMS: usize = 16;

fn server(n: usize, seed: u64) -> (ApServer, Arc<ServiceRuntime>) {
    let data = uniform_dataset(n, DIMS, seed);
    let runtime = Arc::new(
        ServiceRuntime::try_new(
            RuntimeConfig::default()
                .with_workers(2)
                .with_batch_size(4)
                .with_cache_capacity(0)
                .with_options(QueryOptions::top(3)),
            move |_| {
                let engine =
                    ApKnnEngine::new(KnnDesign::new(DIMS)).with_mode(ExecutionMode::Behavioral);
                Ok(Box::new(ApEngineBackend::try_new(engine, data.clone())?)
                    as Box<dyn SimilarityBackend>)
            },
        )
        .expect("runtime"),
    );
    let server = ApServer::bind("127.0.0.1:0", Arc::clone(&runtime)).expect("bind");
    (server, runtime)
}

/// Binds a proxy that kills its first `drop_first` accepted connections and
/// pipes every later one through to `upstream`. Returns the proxy address.
fn flaky_proxy(upstream: SocketAddr, drop_first: usize) -> SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind proxy");
    let addr = listener.local_addr().expect("proxy addr");
    std::thread::spawn(move || {
        let mut accepted = 0usize;
        while let Ok((conn, _)) = listener.accept() {
            accepted += 1;
            if accepted <= drop_first {
                // Dead on arrival: the client observes a reset or EOF on its
                // first read — the retryable fault class under test.
                drop(conn);
                continue;
            }
            let Ok(server_side) = TcpStream::connect(upstream) else {
                continue;
            };
            pump(conn, server_side);
        }
    });
    addr
}

/// Pipes bytes both ways between two sockets on detached threads.
fn pump(client_side: TcpStream, server_side: TcpStream) {
    let (Ok(c2), Ok(s2)) = (client_side.try_clone(), server_side.try_clone()) else {
        return;
    };
    std::thread::spawn(move || {
        let mut from = client_side;
        let mut to = server_side;
        let _ = std::io::copy(&mut from, &mut to);
        let _ = to.shutdown(std::net::Shutdown::Both);
    });
    std::thread::spawn(move || {
        let mut from = s2;
        let mut to = c2;
        let _ = std::io::copy(&mut from, &mut to);
        let _ = to.shutdown(std::net::Shutdown::Both);
    });
}

fn fast_retry() -> RetryPolicy {
    RetryPolicy::default()
        .with_attempts(5)
        .with_initial_backoff(Duration::from_millis(1))
        .with_max_backoff(Duration::from_millis(10))
}

#[test]
fn retrying_client_survives_a_flaky_listener() {
    let (server, _runtime) = server(40, 810);
    let proxy = flaky_proxy(server.local_addr(), 2);

    // The initial connect succeeds (the proxy accepts before dropping), so
    // the fault surfaces on the first operation — and is retried away.
    let mut client = ApClient::connect(proxy).expect("connect");
    client.set_retry(Some(fast_retry()));
    assert_eq!(client.retry(), Some(fast_retry()));

    client
        .ping()
        .expect("ping survives the dropped connections");

    // The connection is healthy now: stats and search work without faults.
    let stats = client.stats().expect("stats");
    assert_eq!(stats.workers, 2);
    let query = uniform_queries(1, DIMS, 811).pop().unwrap();
    let neighbors = client
        .search(query.clone(), QueryOptions::top(3))
        .expect("search");
    let expected = LinearScan::new(uniform_dataset(40, DIMS, 810)).search(&query, 3);
    assert_eq!(neighbors, expected);

    drop(server.shutdown());
}

#[test]
fn search_resubmits_through_a_mid_session_drop() {
    // Drop the *second* connection: the client establishes a healthy session
    // first (one search served through proxy connection 1), then that
    // connection is severed and the next search must reconnect and resubmit.
    let (server, _runtime) = server(40, 820);
    let upstream = server.local_addr();
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind proxy");
    let proxy = listener.local_addr().expect("proxy addr");
    std::thread::spawn(move || {
        let mut accepted = 0usize;
        while let Ok((conn, _)) = listener.accept() {
            accepted += 1;
            if accepted == 2 {
                drop(conn);
                continue;
            }
            let Ok(server_side) = TcpStream::connect(upstream) else {
                continue;
            };
            pump(conn, server_side);
        }
    });

    let mut client = ApClient::connect(proxy).expect("connect");
    client.set_retry(Some(fast_retry()));
    let queries = uniform_queries(2, DIMS, 821);
    let direct = LinearScan::new(uniform_dataset(40, DIMS, 820));

    let first = client
        .search(queries[0].clone(), QueryOptions::top(3))
        .expect("first search");
    assert_eq!(first, direct.search(&queries[0], 3));

    // Sever the live session: the proxy's pump threads tear down when their
    // upstream socket does, so shut the client's current connection path by
    // reconnecting through the doomed proxy connection 2, then retrying
    // lands on connection 3.
    client.reconnect().expect("redial through the proxy");
    let second = client
        .search(queries[1].clone(), QueryOptions::top(3))
        .expect("search resubmits past the dropped connection");
    assert_eq!(second, direct.search(&queries[1], 3));

    drop(server.shutdown());
}

#[test]
fn without_a_policy_the_fault_is_surfaced_not_retried() {
    let (server, _runtime) = server(20, 830);
    let proxy = flaky_proxy(server.local_addr(), 1);

    let mut client = ApClient::connect(proxy).expect("connect");
    assert_eq!(client.retry(), None, "retries are strictly opt-in");
    let error = client.ping().expect_err("dead connection must surface");
    match error {
        NetError::Io(_) | NetError::Protocol(_) | NetError::Timeout { .. } => {}
        other => panic!("expected a transport fault, got {other}"),
    }

    drop(server.shutdown());
}

#[test]
fn backoff_doubles_and_caps() {
    let policy = RetryPolicy::default()
        .with_initial_backoff(Duration::from_millis(10))
        .with_max_backoff(Duration::from_millis(35));
    assert_eq!(policy.backoff(1), Duration::from_millis(10));
    assert_eq!(policy.backoff(2), Duration::from_millis(20));
    assert_eq!(policy.backoff(3), Duration::from_millis(35), "capped");
    assert_eq!(policy.backoff(60), Duration::from_millis(35), "no overflow");
}
