//! Reproduction of the paper's Figure 3 / Figure 4 worked example as an executable
//! test: the counter trajectory and report times of two 4-dimensional vectors
//! against the query {1,0,0,1}.

use ap_knn::macros::append_vector_macro;
use ap_similarity::prelude::*;

/// Builds the two-vector network of Figure 4 and returns (network layout, trace,
/// counter ids).
fn run_figure4() -> (
    StreamLayout,
    ap_sim::SimulationTrace,
    ap_sim::ElementId,
    ap_sim::ElementId,
) {
    let design = KnnDesign::new(4);
    let layout = StreamLayout::for_design(&design);
    let mut net = AutomataNetwork::new();
    let a = append_vector_macro(
        &mut net,
        &BinaryVector::from_bits(&[1, 0, 1, 1]),
        0,
        &design,
    );
    let b = append_vector_macro(
        &mut net,
        &BinaryVector::from_bits(&[0, 0, 0, 0]),
        1,
        &design,
    );
    let query = BinaryVector::from_bits(&[1, 0, 0, 1]);
    let mut sim = Simulator::new(&net).unwrap();
    let trace = sim.run_traced(&layout.encode_query(&query));
    (layout, trace, a.counter, b.counter)
}

fn counter_series(trace: &ap_sim::SimulationTrace, counter: ap_sim::ElementId) -> Vec<u32> {
    trace
        .counter_values
        .iter()
        .map(|cycle| {
            cycle
                .iter()
                .find(|(id, _)| *id == counter)
                .map(|(_, c)| *c)
                .unwrap()
        })
        .collect()
}

#[test]
fn window_is_twelve_symbols_like_figure_3() {
    let (layout, trace, _, _) = run_figure4();
    assert_eq!(layout.window_len(), 12);
    assert_eq!(trace.counter_values.len(), 12);
}

#[test]
fn counter_trajectories_accumulate_matches_then_sort_increments() {
    let (_, trace, counter_a, counter_b) = run_figure4();
    let a = counter_series(&trace, counter_a);
    let b = counter_series(&trace, counter_b);

    // Vector A = {1,0,1,1} vs query {1,0,0,1}: 3 matching dimensions. The last
    // match (dimension 3, streamed at offset 4) flows through the collector and is
    // visible in the counter two cycles later, so by offset 6 the counter holds the
    // full inverted Hamming distance...
    assert_eq!(
        a[6], 3,
        "A's inverted Hamming distance after the compute phase"
    );
    // ...and vector B = {0,0,0,0} accumulates its 2 matches (dimensions 1 and 2).
    assert_eq!(
        b[6], 2,
        "B's inverted Hamming distance after the compute phase"
    );
    assert_eq!(b[5], 2, "B's matches have all arrived by offset 5");

    // During the sort phase both counters are incremented uniformly, once per cycle,
    // so their difference stays constant until the EOF reset.
    for t in 7..11 {
        assert_eq!(a[t] - b[t], 1, "uniform sort increments at offset {t}");
        assert!(a[t] > a[t - 1], "A must keep counting at offset {t}");
    }

    // Counters never exceed the window and are monotone within the query.
    for t in 1..11 {
        assert!(a[t] >= a[t - 1]);
        assert!(b[t] >= b[t - 1]);
    }
}

#[test]
fn closer_vector_reports_first_and_offsets_encode_distances() {
    let (layout, trace, _, _) = run_figure4();
    assert_eq!(trace.reports.len(), 2, "both vectors report exactly once");
    let report_a = trace.reports.iter().find(|r| r.code == 0).unwrap();
    let report_b = trace.reports.iter().find(|r| r.code == 1).unwrap();
    // A is at Hamming distance 1, B at distance 2: A reports exactly one cycle
    // earlier, and the offsets decode to the true distances.
    assert!(report_a.offset < report_b.offset);
    assert_eq!(report_b.offset - report_a.offset, 1);
    assert_eq!(
        layout.distance_for_report_offset(report_a.offset as usize),
        Some(1)
    );
    assert_eq!(
        layout.distance_for_report_offset(report_b.offset as usize),
        Some(2)
    );
}

#[test]
fn counters_reset_after_eof_for_the_next_query() {
    // Stream two consecutive queries; the second query's results must be unaffected
    // by the first (the EOF state resets the counter).
    let design = KnnDesign::new(4);
    let layout = StreamLayout::for_design(&design);
    let mut net = AutomataNetwork::new();
    append_vector_macro(
        &mut net,
        &BinaryVector::from_bits(&[1, 0, 1, 1]),
        0,
        &design,
    );
    let q1 = BinaryVector::from_bits(&[1, 0, 0, 1]); // distance 1
    let q2 = BinaryVector::from_bits(&[0, 1, 0, 0]); // distance 4
    let mut sim = Simulator::new(&net).unwrap();
    let reports = sim.run(&layout.encode_batch(&[q1, q2]));
    assert_eq!(reports.len(), 2);
    let (first_query, off1) = layout.split_offset(reports[0].offset);
    let (second_query, off2) = layout.split_offset(reports[1].offset);
    assert_eq!((first_query, second_query), (0, 1));
    assert_eq!(layout.distance_for_report_offset(off1), Some(1));
    assert_eq!(layout.distance_for_report_offset(off2), Some(4));
}
