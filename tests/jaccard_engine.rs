//! Integration tests for the Jaccard-similarity automata design: the cycle-accurate
//! searcher against the host-side reference, consistency with the `binvec` Jaccard
//! kernel, and behaviour across board partitions.

use ap_knn::jaccard::{brute_force_jaccard, JaccardSearcher};
use ap_similarity::prelude::*;
use proptest::prelude::*;

#[test]
fn ap_jaccard_matches_brute_force_on_clustered_data() {
    let dims = 24;
    let (data, _clusters) = binvec::generate::clustered_dataset(
        72,
        dims,
        binvec::generate::ClusterParams {
            clusters: 6,
            flip_probability: 0.08,
        },
        17,
    );
    let queries = binvec::generate::uniform_queries(8, dims, 18);
    let searcher = JaccardSearcher::new(KnnDesign::new(dims)).with_chunk(24);
    let results = searcher.search_batch(&data, &queries, 6).unwrap();

    for (query, got) in queries.iter().zip(&results) {
        let expected = brute_force_jaccard(&data, query, 6);
        assert_eq!(got.len(), expected.len());
        for (g, e) in got.iter().zip(&expected) {
            assert!((g.similarity - e.similarity).abs() < 1e-12);
        }
        // Each returned similarity matches the direct binvec computation.
        for n in got {
            let direct = data.vector(n.id).jaccard(query);
            assert!((n.similarity - direct).abs() < 1e-12);
        }
    }
}

#[test]
fn jaccard_and_hamming_rankings_differ_when_set_sizes_differ() {
    // A sparse vector can be Hamming-far but Jaccard-close; make sure the two
    // engines are genuinely ranking by different criteria.
    let dims = 16;
    let mut data = BinaryDataset::new(dims);
    // Vector 0: exactly the query's two bits (Jaccard 1.0, Hamming 0).
    let query = BinaryVector::from_bits(&[1, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0]);
    data.push(&query);
    // Vector 1: superset with many extra bits (high intersection, low Jaccard).
    data.push(&BinaryVector::from_bits(&[
        1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 0, 0, 0, 0, 0, 0,
    ]));
    // Vector 2: shares one bit only.
    data.push(&BinaryVector::from_bits(&[
        1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 0,
    ]));

    let searcher = JaccardSearcher::new(KnnDesign::new(dims));
    let jaccard = &searcher
        .search_batch(&data, std::slice::from_ref(&query), 3)
        .unwrap()[0];
    assert_eq!(jaccard[0].id, 0);
    assert!((jaccard[0].similarity - 1.0).abs() < 1e-12);
    // The superset (id 1) scores 2/10, the single-shared-bit vector (id 2) 1/3;
    // Jaccard prefers id 2 while Hamming prefers id 1.
    assert_eq!(jaccard[1].id, 2);
    assert_eq!(jaccard[2].id, 1);

    let engine = ApKnnEngine::new(KnnDesign::new(dims));
    let (hamming, _) = engine
        .try_search_batch(&data, &[query], &QueryOptions::top(3))
        .unwrap();
    assert_eq!(hamming[0][0].id, 0);
    assert_eq!(hamming[0][1].id, 2, "Hamming: id 2 differs in 2 bits");
    assert_eq!(hamming[0][2].id, 1, "Hamming: id 1 differs in 8 bits");
}

#[test]
fn jaccard_partitioning_is_result_invariant() {
    let dims = 20;
    let data = binvec::generate::uniform_dataset(45, dims, 31);
    let queries = binvec::generate::uniform_queries(4, dims, 32);
    let design = KnnDesign::new(dims);
    let whole = JaccardSearcher::new(design)
        .with_chunk(1024)
        .search_batch(&data, &queries, 5)
        .unwrap();
    for chunk in [4usize, 11, 45] {
        let parts = JaccardSearcher::new(design)
            .with_chunk(chunk)
            .search_batch(&data, &queries, 5)
            .unwrap();
        for (a, b) in whole.iter().zip(&parts) {
            let sa: Vec<f64> = a.iter().map(|n| n.similarity).collect();
            let sb: Vec<f64> = b.iter().map(|n| n.similarity).collect();
            assert_eq!(sa, sb, "chunk {chunk}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The AP Jaccard top-1 similarity always equals the brute-force top-1 similarity.
    #[test]
    fn top1_similarity_matches_brute_force(
        dims in 2usize..16,
        n in 2usize..20,
        seed in 0u64..1000,
    ) {
        let data = binvec::generate::uniform_dataset(n, dims, seed);
        let queries = binvec::generate::uniform_queries(1, dims, seed.wrapping_add(1));
        let searcher = JaccardSearcher::new(KnnDesign::new(dims));
        let got = searcher.search_batch(&data, &queries, 1).unwrap();
        let expected = brute_force_jaccard(&data, &queries[0], 1);
        prop_assert!((got[0][0].similarity - expected[0].similarity).abs() < 1e-12);
    }
}
