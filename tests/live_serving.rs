//! Live-corpus serving integration: mutations travel the full stack — client
//! frame → server → admission queue → live engine — and their effects are
//! immediately visible to subsequent queries, never masked by the result
//! cache. Also pins the client's timeout behavior against a stalled server.

use ap_knn::live::LiveConfig;
use ap_knn::{ApKnnEngine, KnnDesign};
use ap_serve::net::{ApClient, ApServer, NetError};
use ap_serve::{LiveBackend, QueryOptions, RuntimeConfig, SearchError, ServiceRuntime};
use binvec::generate::{uniform_dataset, uniform_queries};
use binvec::MutationOp;
use std::io::Read;
use std::net::TcpListener;
use std::sync::Arc;
use std::time::{Duration, Instant};

const DIMS: usize = 16;

fn live_runtime(n: usize, cache_capacity: usize) -> Arc<ServiceRuntime> {
    let data = uniform_dataset(n, DIMS, 710);
    let backend = LiveBackend::try_new(
        ApKnnEngine::new(KnnDesign::new(DIMS)),
        &data,
        LiveConfig::default(),
    )
    .expect("live backend");
    Arc::new(
        ServiceRuntime::try_shared(
            RuntimeConfig::default()
                .with_workers(2)
                .with_batch_size(4)
                .with_cache_capacity(cache_capacity)
                .with_options(QueryOptions::top(3)),
            Arc::new(backend),
        )
        .expect("runtime"),
    )
}

#[test]
fn mutations_over_loopback_are_acked_and_visible_to_queries() {
    let runtime = live_runtime(20, 64);
    let server = ApServer::bind("127.0.0.1:0", Arc::clone(&runtime)).unwrap();
    let mut client = ApClient::connect(server.local_addr()).expect("connect");

    let options = QueryOptions::top(3);
    let query = uniform_queries(1, DIMS, 711).pop().unwrap();

    // Prime the cache with a pre-mutation answer.
    let before = client.search(query.clone(), options).expect("first search");
    assert_ne!(before[0].distance, 0, "query is not in the base corpus");

    // Insert the query itself over the wire; the ack carries the assigned
    // stable id and the generation at which it became visible.
    let ack = client.insert(query.clone(), options).expect("insert");
    assert_eq!(ack.op, MutationOp::Insert);
    assert_eq!(ack.id, 20);
    assert_eq!(ack.generation, 1);

    // The regression this suite pins: the second search must see the insert
    // (exact match at distance 0), not the cached pre-mutation neighbors.
    let after = client
        .search(query.clone(), options)
        .expect("second search");
    assert_eq!(after[0].id, 20);
    assert_eq!(after[0].distance, 0);

    // Delete it again and confirm it disappears.
    let ack = client.delete(20, options).expect("delete");
    assert_eq!(ack.op, MutationOp::Delete);
    assert_eq!(ack.generation, 2);
    let gone = client.search(query, options).expect("third search");
    assert!(gone.iter().all(|n| n.id != 20));

    // The stats frame surfaces the mutation telemetry remotely.
    let stats = client.stats().expect("stats");
    assert_eq!(stats.generation, 2);
    assert_eq!(stats.mutations_submitted, 2);
    assert_eq!(stats.mutations_applied, 2);
    assert_eq!(stats.mutations_failed, 0);
    assert_eq!(stats.tombstones, 1);
    assert!(
        stats.mutation_staleness_ms.is_some(),
        "staleness percentiles travel once a mutation applied"
    );
    server.shutdown();
}

#[test]
fn pipelined_mutations_resolve_out_of_order_by_correlation() {
    let runtime = live_runtime(10, 0);
    let server = ApServer::bind("127.0.0.1:0", Arc::clone(&runtime)).unwrap();
    let mut client = ApClient::connect(server.local_addr()).expect("connect");
    let options = QueryOptions::top(2);

    let vectors = uniform_queries(4, DIMS, 712);
    let correlations: Vec<u64> = vectors
        .iter()
        .map(|v| client.submit_insert(v.clone(), options).expect("submit"))
        .collect();
    // Collect acks in reverse submission order: wait_ack must stash frames
    // for other correlations while hunting each target.
    let mut ids = Vec::new();
    for correlation in correlations.into_iter().rev() {
        ids.push(client.wait_ack(correlation).expect("ack").id);
    }
    ids.sort_unstable();
    assert_eq!(ids, vec![10, 11, 12, 13]);
    server.shutdown();
}

#[test]
fn frozen_backend_refuses_wire_mutations_with_a_typed_error() {
    let data = uniform_dataset(10, DIMS, 713);
    let runtime = Arc::new(
        ServiceRuntime::try_new(
            RuntimeConfig::default()
                .with_workers(1)
                .with_options(QueryOptions::top(2)),
            move |_| {
                Ok(Box::new(baselines::LinearScan::new(data.clone()))
                    as Box<dyn ap_serve::SimilarityBackend>)
            },
        )
        .unwrap(),
    );
    let server = ApServer::bind("127.0.0.1:0", Arc::clone(&runtime)).unwrap();
    let mut client = ApClient::connect(server.local_addr()).expect("connect");
    let vector = uniform_queries(1, DIMS, 714).pop().unwrap();
    match client.insert(vector, QueryOptions::top(2)) {
        Err(NetError::Query(SearchError::Unsupported { .. })) => {}
        other => panic!("expected a typed Unsupported refusal, got {other:?}"),
    }
    // The connection survives the refusal: a normal query still works.
    let query = uniform_queries(1, DIMS, 715).pop().unwrap();
    assert_eq!(client.search(query, QueryOptions::top(2)).unwrap().len(), 2);
    server.shutdown();
}

#[test]
fn stalled_server_surfaces_as_a_typed_timeout_not_a_hang() {
    // A listener that accepts and then never answers: the old client blocked
    // in read() forever; the timeout-bounded client must fail typed, fast.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let hold = std::thread::spawn(move || {
        let (mut socket, _) = listener.accept().unwrap();
        // Swallow whatever the client writes, answer nothing.
        let mut sink = [0u8; 1024];
        while matches!(socket.read(&mut sink), Ok(n) if n > 0) {}
    });

    let timeout = Duration::from_millis(200);
    let mut client = ApClient::connect_with_timeout(addr, Some(timeout)).expect("connect");
    assert_eq!(client.io_timeout(), Some(timeout));
    let started = Instant::now();
    match client.ping() {
        Err(NetError::Timeout { after }) => assert_eq!(after, timeout),
        other => panic!("expected NetError::Timeout, got {other:?}"),
    }
    let waited = started.elapsed();
    assert!(
        waited < Duration::from_secs(10),
        "timeout must bound the wait, blocked {waited:?}"
    );
    drop(client); // closes the socket; the holder thread sees EOF
    hold.join().unwrap();
}
