//! Kill-at-every-fault-point recovery sweep for the durable live corpus.
//!
//! With `flush_batch = 1` and serial applies, every mutation costs exactly two
//! IO operations — one append, one fsync — so the [`FaultPlan`] op index
//! enumerates every possible crash instant: `crash_at = 2i` dies writing
//! record `i`, `crash_at = 2i + 1` dies syncing it. For each instant the test
//! crashes a durable [`LiveEngine`], restores the directory, and checks the
//! acked-means-durable contract exactly:
//!
//! * **No acked op lost** — every mutation whose `apply` returned `Ok` is
//!   replayed (`acked <= replayed`).
//! * **No unacked op resurrected without accounting** — at most the one
//!   mutation in flight at the crash may additionally survive (a record whose
//!   append hit the platter before its fsync failed), and then only with
//!   `replayed = acked + 1` reported; a torn append is truncated instead.
//! * **Bit-identical serving** — the restored engine answers every query
//!   exactly like a fresh `prepare()` over the surviving corpus, under the
//!   same monotone stable-id bijection `tests/live_engine.rs` states.
//! * **The corpus continues** — the next insert after restore is assigned the
//!   pre-crash `next_id` watermark, so stable ids never collide.

use ap_knn::live::{LiveConfig, LiveEngine};
use ap_knn::wal::{FaultPlan, WalConfig};
use ap_knn::{ApKnnEngine, BoardCapacity, ExecutionMode, KnnDesign};
use binvec::{BinaryDataset, BinaryVector, Neighbor, QueryOptions};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

const DIMS: usize = 16;
const BASE_LEN: usize = 10;
const TORN_BYTES: usize = 5;

/// One scripted mutation, as generated: insert a seed-derived vector or
/// delete the live vector at `pick % live_count` (skipped when empty).
#[derive(Clone, Debug)]
enum Step {
    Insert { seed: u64 },
    Delete { pick: usize },
}

fn step_strategy() -> impl Strategy<Value = Step> {
    // 3:1 insert/delete mix, as in tests/live_engine.rs: the corpus keeps
    // growing, so the log carries a healthy blend of both record kinds.
    prop_oneof![
        (0u64..1_000_000).prop_map(|seed| Step::Insert { seed }),
        (0u64..1_000_000).prop_map(|seed| Step::Insert { seed }),
        (0u64..1_000_000).prop_map(|seed| Step::Insert { seed }),
        (0usize..64).prop_map(|pick| Step::Delete { pick }),
    ]
}

/// A concrete mutation with its target resolved against the model state, so
/// the same op sequence can be replayed against any crash point.
#[derive(Clone, Debug)]
enum Op {
    Insert { vector: BinaryVector },
    Delete { id: usize },
}

/// The model corpus after a prefix of ops: surviving `(stable id, vector)`
/// pairs in stable-id order, plus the insert watermark.
#[derive(Clone, Debug)]
struct ModelState {
    survivors: Vec<(usize, BinaryVector)>,
    next_id: usize,
}

/// Resolves the generated script into concrete ops and the model state after
/// every prefix: `states[i]` is the corpus once the first `i` ops applied.
fn resolve(steps: &[Step], base: &BinaryDataset) -> (Vec<Op>, Vec<ModelState>) {
    let mut state = ModelState {
        survivors: base.iter().enumerate().collect(),
        next_id: base.len(),
    };
    let mut ops = Vec::new();
    let mut states = vec![state.clone()];
    for step in steps {
        match step {
            Step::Insert { seed } => {
                let vector = binvec::generate::uniform_queries(1, DIMS, 7_000 + seed)
                    .pop()
                    .unwrap();
                state.survivors.push((state.next_id, vector.clone()));
                state.next_id += 1;
                ops.push(Op::Insert { vector });
            }
            Step::Delete { pick } => {
                if state.survivors.is_empty() {
                    continue;
                }
                let (id, _) = state.survivors.remove(pick % state.survivors.len());
                ops.push(Op::Delete { id });
            }
        }
        states.push(state.clone());
    }
    (ops, states)
}

fn engine() -> ApKnnEngine {
    ApKnnEngine::new(KnnDesign::new(DIMS))
        .with_mode(ExecutionMode::Behavioral)
        .with_capacity(BoardCapacity {
            vectors_per_board: 7,
            model: ap_knn::capacity::CapacityModel::PaperCalibrated,
        })
}

fn scratch(tag: &str) -> PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "ap-wal-recovery-{}-{}-{}",
        std::process::id(),
        tag,
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn live_config() -> LiveConfig {
    LiveConfig::default()
        .with_background(false)
        .with_delta_chunk(3)
}

/// `flush_batch = 1`, auto-checkpoint off: one append + one fsync per apply,
/// so IO op indices map 1:1 onto crash instants.
fn serial_wal_config() -> WalConfig {
    WalConfig::default()
        .with_flush_batch(1)
        .with_checkpoint_every(None)
}

/// The bit-identity check from `tests/live_engine.rs`: the restored engine
/// must answer like a fresh `prepare()` over `expected.survivors`, fresh
/// dense ids mapped back through the monotone bijection.
fn assert_serves_exactly(restored: &LiveEngine, expected: &ModelState, context: &str) {
    assert_eq!(restored.len(), expected.survivors.len(), "{context}");
    let queries = binvec::generate::uniform_queries(3, DIMS, 401);
    let options = QueryOptions::top(5);
    let (live_results, _) = restored.try_search_batch(&queries, &options).unwrap();
    if expected.survivors.is_empty() {
        assert!(live_results.iter().all(Vec::is_empty), "{context}");
        return;
    }
    let corpus =
        BinaryDataset::from_vectors(DIMS, expected.survivors.iter().map(|(_, v)| v.clone()));
    let fresh = engine().prepare(&corpus).unwrap();
    let (fresh_results, _) = fresh.try_search_batch(&queries, &options).unwrap();
    for (live_neighbors, fresh_neighbors) in live_results.iter().zip(&fresh_results) {
        let mapped: Vec<Neighbor> = fresh_neighbors
            .iter()
            .map(|n| Neighbor::new(expected.survivors[n.id].0, n.distance))
            .collect();
        assert_eq!(live_neighbors, &mapped, "{context}");
    }
}

/// Crashes a durable engine at IO op `crash_at` while it applies `ops`, then
/// restores the directory and checks the durability contract against the
/// model `states`.
fn crash_restore_check(ops: &[Op], states: &[ModelState], crash_at: u64, torn: usize) {
    let base =
        BinaryDataset::from_vectors(DIMS, states[0].survivors.iter().map(|(_, v)| v.clone()));
    let dir = scratch("kill");
    let wal_config =
        serial_wal_config().with_fault_plan(FaultPlan::crash_at(crash_at).with_torn_bytes(torn));
    let live = LiveEngine::durable(engine(), &base, live_config(), wal_config, &dir).unwrap();

    let mut acked = 0usize;
    for op in ops {
        let outcome = match op {
            Op::Insert { vector } => live.insert(vector),
            Op::Delete { id } => live.delete(*id),
        };
        match outcome {
            Ok(ack) => {
                let expected_id = match op {
                    Op::Insert { .. } => states[acked].next_id,
                    Op::Delete { id } => *id,
                };
                assert_eq!(ack.id, expected_id, "acks name the mutated stable id");
                acked += 1;
            }
            // The injected crash: the process stops here, mid-script.
            Err(_) => break,
        }
    }
    drop(live);

    let context = format!(
        "crash_at {crash_at}, torn {torn}, acked {acked}/{}",
        ops.len()
    );
    assert!(LiveEngine::durable_exists(&dir), "{context}");
    let (restored, report) =
        LiveEngine::restore(engine(), live_config(), serial_wal_config(), &dir)
            .unwrap_or_else(|e| panic!("restore failed ({context}): {e}"));

    // The crash instant determines the replay count exactly. Op 2i is the
    // append of record i, op 2i + 1 its fsync:
    //   * crash during append, clean  -> record i never hit the disk;
    //   * crash during append, torn   -> a partial record, truncated away;
    //   * crash during fsync          -> record i is on disk but unacked:
    //     it *may* resurrect, and the report must account for it.
    let total_ops = ops.len() as u64;
    let (expected_replayed, expected_torn) = if crash_at >= 2 * total_ops {
        (total_ops, false) // the plan never fired
    } else if crash_at.is_multiple_of(2) {
        (crash_at / 2, torn > 0)
    } else {
        (crash_at / 2 + 1, false)
    };
    assert_eq!(report.checkpoint_seq, 0, "{context}");
    assert_eq!(report.checkpoint_vectors, BASE_LEN, "{context}");
    assert_eq!(report.replayed, expected_replayed, "{context}");
    assert_eq!(report.torn, expected_torn, "{context}");
    assert_eq!(
        report.truncated_bytes,
        if expected_torn { torn as u64 } else { 0 },
        "{context}"
    );
    assert_eq!(report.skipped, 0, "{context}");

    // No acked op lost; at most the one in-flight record resurrected.
    let replayed = report.replayed as usize;
    assert!(acked <= replayed, "acked op lost ({context})");
    assert!(
        replayed <= acked + 1,
        "unaccounted resurrection ({context})"
    );

    // The restored corpus is exactly the replayed prefix, bit-identically.
    let expected = &states[replayed];
    assert_serves_exactly(&restored, expected, &context);

    // And it keeps going: the next insert continues the id watermark.
    let probe = binvec::generate::uniform_queries(1, DIMS, 999_999)
        .pop()
        .unwrap();
    let ack = restored.insert(&probe).unwrap();
    assert_eq!(ack.id, expected.next_id, "{context}");

    let _ = std::fs::remove_dir_all(&dir);
}

/// Sweeps every crash instant for one script: all `2 * ops + 2` IO op
/// indices (the last one past the end, so the plan never fires), alternating
/// clean and torn appends.
fn sweep_every_crash_point(steps: &[Step]) {
    let base = binvec::generate::uniform_dataset(BASE_LEN, DIMS, 400);
    let (ops, states) = resolve(steps, &base);
    for crash_at in 0..=(2 * ops.len() as u64 + 1) {
        // Even indices are appends: exercise the torn-write path on every
        // other one so both truncation and clean loss are swept.
        let torn = if crash_at.is_multiple_of(4) {
            TORN_BYTES
        } else {
            0
        };
        crash_restore_check(&ops, &states, crash_at, torn);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The acceptance sweep: for every injected crash offset of every
    /// generated script, restore recovers exactly the acked prefix (modulo
    /// the reported at-most-one in-flight record) and serves bit-identically.
    #[test]
    fn every_crash_point_restores_the_acked_prefix(
        steps in prop::collection::vec(step_strategy(), 1..12)
    ) {
        sweep_every_crash_point(&steps);
    }
}

/// A directed script the random sweep may miss: delete down to an empty
/// corpus, grow back, and crash on both sides of the refill boundary.
#[test]
fn crash_around_an_emptied_corpus_restores_exactly() {
    let mut steps: Vec<Step> = (0..BASE_LEN).map(|_| Step::Delete { pick: 0 }).collect();
    steps.extend((0..3).map(|seed| Step::Insert { seed }));
    sweep_every_crash_point(&steps);
}

/// Checkpoints rotate the log; a crash-free shutdown after one must restore
/// from the new checkpoint with only the post-checkpoint tail replayed.
#[test]
fn restore_after_a_checkpoint_replays_only_the_tail() {
    let base = binvec::generate::uniform_dataset(BASE_LEN, DIMS, 500);
    let steps: Vec<Step> = (0..8).map(|seed| Step::Insert { seed }).collect();
    let (ops, states) = resolve(&steps, &base);
    let dir = scratch("ckpt");
    let live =
        LiveEngine::durable(engine(), &base, live_config(), serial_wal_config(), &dir).unwrap();
    for op in &ops[..5] {
        match op {
            Op::Insert { vector } => live.insert(vector).unwrap(),
            Op::Delete { id } => live.delete(*id).unwrap(),
        };
    }
    assert!(
        live.checkpoint_now().unwrap(),
        "an explicit checkpoint runs"
    );
    for op in &ops[5..] {
        match op {
            Op::Insert { vector } => live.insert(vector).unwrap(),
            Op::Delete { id } => live.delete(*id).unwrap(),
        };
    }
    drop(live);

    let (restored, report) =
        LiveEngine::restore(engine(), live_config(), serial_wal_config(), &dir).unwrap();
    assert_eq!(
        report.checkpoint_seq, 1,
        "the log extends the new checkpoint"
    );
    assert_eq!(report.checkpoint_vectors, states[5].survivors.len());
    assert_eq!(report.replayed, (ops.len() - 5) as u64);
    assert!(!report.torn);
    assert_serves_exactly(&restored, states.last().unwrap(), "post-checkpoint restore");
    let _ = std::fs::remove_dir_all(&dir);
}

/// `durable` refuses to clobber an existing corpus — recovery is explicit.
#[test]
fn durable_refuses_to_overwrite_an_existing_corpus() {
    let base = binvec::generate::uniform_dataset(4, DIMS, 600);
    let dir = scratch("exists");
    let first =
        LiveEngine::durable(engine(), &base, live_config(), serial_wal_config(), &dir).unwrap();
    drop(first);
    assert!(LiveEngine::durable_exists(&dir));
    let error = LiveEngine::durable(engine(), &base, live_config(), serial_wal_config(), &dir)
        .expect_err("a second durable() over the same dir must refuse");
    assert!(
        error.to_string().contains("refusing to overwrite"),
        "typed refusal, got: {error}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
