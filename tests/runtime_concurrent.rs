//! Concurrent-load integration tests for the [`ServiceRuntime`]: producer
//! fleets, poison queries in flight, deadline shedding, backpressure, and the
//! scheduling order — plus the stats conservation invariant
//! `submitted == served + failed + deadline_expired`.

use ap_serve::{
    BackendBatch, Deadline, Priority, QueryOptions, RuntimeConfig, SearchError, ServiceRuntime,
    SimilarityBackend, TicketHandle,
};
use baselines::{LinearScan, SearchIndex};
use binvec::generate::{uniform_dataset, uniform_queries};
use binvec::BinaryVector;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Generous bound for any single ticket to resolve; the suite never sleeps
/// this long unless something is genuinely wedged.
const RESOLVE_TIMEOUT: Duration = Duration::from_secs(30);

/// A backend that fails any batch containing the poison query, exercising the
/// dispatch-failure path under concurrent load.
struct PoisonSensitive {
    inner: LinearScan,
    poison: BinaryVector,
}

impl SimilarityBackend for PoisonSensitive {
    fn name(&self) -> String {
        "poison-sensitive".to_string()
    }
    fn len(&self) -> usize {
        SearchIndex::len(&self.inner)
    }
    fn dims(&self) -> usize {
        SearchIndex::dims(&self.inner)
    }
    fn serve_batch(&self, queries: &[BinaryVector], k: usize) -> BackendBatch {
        BackendBatch::host_only(SearchIndex::search_batch(&self.inner, queries, k))
    }
    fn try_serve_batch(
        &self,
        queries: &[BinaryVector],
        options: &QueryOptions,
    ) -> Result<BackendBatch, SearchError> {
        if queries.contains(&self.poison) {
            return Err(SearchError::Backend {
                backend: self.name(),
                reason: "poison query in batch".to_string(),
            });
        }
        options.validate()?;
        let mut batch = self.serve_batch(queries, options.k);
        for neighbors in &mut batch.results {
            options.clip(neighbors);
        }
        Ok(batch)
    }
}

/// A manually opened gate: dispatches block until the test releases them, so
/// queue contents at dispatch time are deterministic.
struct Gate {
    open: Mutex<bool>,
    released: Condvar,
}

impl Gate {
    fn new() -> Arc<Self> {
        Arc::new(Self {
            open: Mutex::new(false),
            released: Condvar::new(),
        })
    }
    fn open(&self) {
        *self.open.lock().unwrap() = true;
        self.released.notify_all();
    }
    fn wait(&self) {
        let mut open = self.open.lock().unwrap();
        while !*open {
            open = self.released.wait(open).unwrap();
        }
    }
}

/// A gated backend that logs every dispatched batch's queries in order.
struct GatedRecording {
    inner: LinearScan,
    gate: Arc<Gate>,
    log: Arc<Mutex<Vec<Vec<BinaryVector>>>>,
}

impl SimilarityBackend for GatedRecording {
    fn name(&self) -> String {
        "gated-recording".to_string()
    }
    fn len(&self) -> usize {
        SearchIndex::len(&self.inner)
    }
    fn dims(&self) -> usize {
        SearchIndex::dims(&self.inner)
    }
    fn serve_batch(&self, queries: &[BinaryVector], k: usize) -> BackendBatch {
        BackendBatch::host_only(SearchIndex::search_batch(&self.inner, queries, k))
    }
    fn try_serve_batch(
        &self,
        queries: &[BinaryVector],
        options: &QueryOptions,
    ) -> Result<BackendBatch, SearchError> {
        self.log.lock().unwrap().push(queries.to_vec());
        self.gate.wait();
        options.validate()?;
        let mut batch = self.serve_batch(queries, options.k);
        for neighbors in &mut batch.results {
            options.clip(neighbors);
        }
        Ok(batch)
    }
}

fn resolve(handle: TicketHandle) -> Result<ap_serve::Completed, ap_serve::FailedQuery> {
    handle
        .wait_timeout(RESOLVE_TIMEOUT)
        .expect("ticket must resolve within the timeout")
}

#[test]
fn producer_fleet_with_poison_queries_in_flight_resolves_every_ticket_exactly_once() {
    let dims = 16;
    let producers = 6usize;
    let per_producer = 40usize;
    let data = uniform_dataset(80, dims, 61);
    let direct = LinearScan::new(data.clone());
    let poison = BinaryVector::ones(dims);

    let backend_data = data.clone();
    let backend_poison = poison.clone();
    let runtime = ServiceRuntime::try_new(
        RuntimeConfig::default()
            .with_workers(3)
            .with_batch_size(5)
            .with_cache_capacity(0)
            .with_options(QueryOptions::top(4)),
        move |_| {
            Ok(Box::new(PoisonSensitive {
                inner: LinearScan::new(backend_data.clone()),
                poison: backend_poison.clone(),
            }) as Box<dyn SimilarityBackend>)
        },
    )
    .unwrap();

    // M producers submit concurrently; producer 0 keeps poison queries in
    // flight the whole time (every 8th submission is poison).
    let outcomes: Vec<(
        BinaryVector,
        Result<ap_serve::Completed, ap_serve::FailedQuery>,
    )> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..producers)
            .map(|p| {
                let runtime = &runtime;
                let poison = &poison;
                scope.spawn(move || {
                    let queries = uniform_queries(per_producer, dims, 62 + p as u64);
                    let mut outcomes = Vec::with_capacity(per_producer);
                    for (i, q) in queries.into_iter().enumerate() {
                        let q = if p == 0 && i % 8 == 0 {
                            poison.clone()
                        } else {
                            q
                        };
                        let handle = runtime.try_submit(q.clone()).expect("well-formed query");
                        outcomes.push((q, resolve(handle)));
                    }
                    outcomes
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("producer thread"))
            .collect()
    });

    // Every ticket resolved exactly once (resolve() enforces the timeout);
    // successes match the oracle, failures are the backend's typed error.
    let total = producers * per_producer;
    assert_eq!(outcomes.len(), total);
    let mut served = 0u64;
    let mut failed = 0u64;
    let mut tickets: Vec<u64> = Vec::with_capacity(total);
    for (query, outcome) in outcomes {
        match outcome {
            Ok(completed) => {
                served += 1;
                tickets.push(completed.ticket.sequence());
                assert_eq!(completed.query, query);
                assert_eq!(completed.neighbors, direct.search(&query, 4));
                assert_ne!(query, poison, "a poison query can never succeed");
            }
            Err(failure) => {
                failed += 1;
                tickets.push(failure.ticket.sequence());
                assert!(
                    matches!(failure.error, SearchError::Backend { .. }),
                    "unexpected failure: {}",
                    failure.error
                );
            }
        }
    }
    assert!(
        failed >= (per_producer / 8) as u64,
        "every poison batch fails"
    );
    tickets.sort_unstable();
    tickets.dedup();
    assert_eq!(tickets.len(), total, "no ticket resolved twice");

    // No livelock, and the counters account for every admitted query.
    let stats = runtime.shutdown();
    assert_eq!(stats.queries_submitted, total as u64);
    assert_eq!(stats.queries_served, served);
    assert_eq!(stats.failed_queries, failed);
    assert_eq!(stats.deadline_expired, 0);
    assert_eq!(
        stats.queries_submitted,
        stats.queries_served + stats.failed_queries + stats.deadline_expired,
        "conservation invariant"
    );
}

#[test]
fn full_queue_refuses_with_queue_full_instead_of_blocking() {
    let dims = 16;
    let data = uniform_dataset(30, dims, 63);
    let gate = Gate::new();
    let log = Arc::new(Mutex::new(Vec::new()));
    let backend_gate = Arc::clone(&gate);
    let backend_log = Arc::clone(&log);
    let runtime = ServiceRuntime::try_new(
        RuntimeConfig::default()
            .with_workers(1)
            .with_batch_size(1)
            .with_queue_capacity(2)
            .with_cache_capacity(0)
            .with_options(QueryOptions::top(3)),
        move |_| {
            Ok(Box::new(GatedRecording {
                inner: LinearScan::new(data.clone()),
                gate: Arc::clone(&backend_gate),
                log: Arc::clone(&backend_log),
            }) as Box<dyn SimilarityBackend>)
        },
    )
    .unwrap();

    let queries = uniform_queries(4, dims, 64);
    // The worker pops the first query and blocks inside the gated dispatch.
    let blocker = runtime.try_submit(queries[0].clone()).unwrap();
    let deadline = Instant::now() + RESOLVE_TIMEOUT;
    while runtime.pending() > 0 {
        assert!(
            Instant::now() < deadline,
            "worker never picked up the blocker"
        );
        std::thread::yield_now();
    }
    // Capacity 2: two more are admitted, the third is refused — and the call
    // returns immediately instead of blocking or growing the queue.
    let q2 = runtime.try_submit(queries[1].clone()).unwrap();
    let q3 = runtime.try_submit(queries[2].clone()).unwrap();
    let before = Instant::now();
    let refused = runtime.try_submit(queries[3].clone()).unwrap_err();
    assert!(
        before.elapsed() < Duration::from_secs(1),
        "refusal must not block"
    );
    assert_eq!(refused, SearchError::QueueFull { capacity: 2 });
    assert_eq!(runtime.pending(), 2, "the refused query was not enqueued");

    gate.open();
    for handle in [blocker, q2, q3] {
        assert!(resolve(handle).is_ok());
    }
    let stats = runtime.shutdown();
    assert_eq!(stats.queue_full_rejections, 1);
    assert_eq!(
        stats.queries_submitted, 3,
        "no ticket for the refused query"
    );
    assert_eq!(
        stats.queries_submitted,
        stats.queries_served + stats.failed_queries + stats.deadline_expired
    );
}

#[test]
fn scheduler_orders_by_priority_then_deadline_then_fifo() {
    let dims = 16;
    let data = uniform_dataset(30, dims, 65);
    let gate = Gate::new();
    let log = Arc::new(Mutex::new(Vec::new()));
    let backend_gate = Arc::clone(&gate);
    let backend_log = Arc::clone(&log);
    let runtime = ServiceRuntime::try_new(
        RuntimeConfig::default()
            .with_workers(1)
            .with_batch_size(1)
            .with_cache_capacity(0)
            .with_options(QueryOptions::top(3)),
        move |_| {
            Ok(Box::new(GatedRecording {
                inner: LinearScan::new(data.clone()),
                gate: Arc::clone(&backend_gate),
                log: Arc::clone(&backend_log),
            }) as Box<dyn SimilarityBackend>)
        },
    )
    .unwrap();

    let queries = uniform_queries(5, dims, 66);
    // Occupy the single worker, then build up a deterministic queue.
    let blocker = runtime.try_submit(queries[0].clone()).unwrap();
    let deadline = Instant::now() + RESOLVE_TIMEOUT;
    while runtime.pending() > 0 {
        assert!(
            Instant::now() < deadline,
            "worker never picked up the blocker"
        );
        std::thread::yield_now();
    }
    let low = runtime
        .try_submit_with(
            queries[1].clone(),
            &QueryOptions::top(3).prioritized(Priority::Low),
        )
        .unwrap();
    let normal = runtime.try_submit(queries[2].clone()).unwrap();
    let high = runtime
        .try_submit_with(
            queries[3].clone(),
            &QueryOptions::top(3).prioritized(Priority::High),
        )
        .unwrap();
    let dated = runtime
        .try_submit_with(
            queries[4].clone(),
            &QueryOptions::top(3).by(Deadline::after(Duration::from_secs(600))),
        )
        .unwrap();

    gate.open();
    for handle in [blocker, low, normal, high, dated] {
        assert!(resolve(handle).is_ok());
    }
    let dispatched: Vec<Vec<BinaryVector>> = log.lock().unwrap().clone();
    let order: Vec<&BinaryVector> = dispatched.iter().map(|batch| &batch[0]).collect();
    // Blocker first; then High, then Normal-with-deadline (a deadline beats no
    // deadline inside a class), then Normal FIFO, then Low.
    assert_eq!(
        order,
        vec![
            &queries[0],
            &queries[3],
            &queries[4],
            &queries[2],
            &queries[1]
        ]
    );
    runtime.shutdown();
}

#[test]
fn queued_queries_whose_deadline_expires_are_shed_without_dispatch() {
    let dims = 16;
    let data = uniform_dataset(30, dims, 67);
    let gate = Gate::new();
    let log = Arc::new(Mutex::new(Vec::new()));
    let backend_gate = Arc::clone(&gate);
    let backend_log = Arc::clone(&log);
    let runtime = ServiceRuntime::try_new(
        RuntimeConfig::default()
            .with_workers(1)
            .with_batch_size(2)
            .with_cache_capacity(0)
            .with_options(QueryOptions::top(3)),
        move |_| {
            Ok(Box::new(GatedRecording {
                inner: LinearScan::new(data.clone()),
                gate: Arc::clone(&backend_gate),
                log: Arc::clone(&backend_log),
            }) as Box<dyn SimilarityBackend>)
        },
    )
    .unwrap();

    let queries = uniform_queries(2, dims, 68);
    let blocker = runtime.try_submit(queries[0].clone()).unwrap();
    let deadline = Instant::now() + RESOLVE_TIMEOUT;
    while runtime.pending() > 0 {
        assert!(
            Instant::now() < deadline,
            "worker never picked up the blocker"
        );
        std::thread::yield_now();
    }
    // Queued with a 50 ms deadline while the only worker is wedged.
    let doomed = runtime
        .try_submit_with(
            queries[1].clone(),
            &QueryOptions::top(3).by(Deadline::after(Duration::from_millis(50))),
        )
        .unwrap();
    std::thread::sleep(Duration::from_millis(120));
    gate.open();

    assert!(resolve(blocker).is_ok());
    let failure = resolve(doomed).unwrap_err();
    assert_eq!(failure.error, SearchError::DeadlineExceeded);
    assert_eq!(failure.query, queries[1]);

    let stats = runtime.shutdown();
    assert_eq!(stats.deadline_expired, 1);
    // The expired query never reached the backend.
    let dispatched = log.lock().unwrap();
    assert_eq!(dispatched.len(), 1);
    assert_eq!(dispatched[0], vec![queries[0].clone()]);
    assert_eq!(
        stats.queries_submitted,
        stats.queries_served + stats.failed_queries + stats.deadline_expired
    );
}

/// A backend that *panics* (not errors) on the poison query — the worst-case
/// misbehaving custom backend.
struct PanicSensitive {
    inner: LinearScan,
    poison: BinaryVector,
}

impl SimilarityBackend for PanicSensitive {
    fn name(&self) -> String {
        "panic-sensitive".to_string()
    }
    fn len(&self) -> usize {
        SearchIndex::len(&self.inner)
    }
    fn dims(&self) -> usize {
        SearchIndex::dims(&self.inner)
    }
    fn serve_batch(&self, queries: &[BinaryVector], k: usize) -> BackendBatch {
        BackendBatch::host_only(SearchIndex::search_batch(&self.inner, queries, k))
    }
    fn try_serve_batch(
        &self,
        queries: &[BinaryVector],
        options: &QueryOptions,
    ) -> Result<BackendBatch, SearchError> {
        assert!(
            !queries.contains(&self.poison),
            "injected backend panic during dispatch"
        );
        options.validate()?;
        Ok(self.serve_batch(queries, options.k))
    }
}

#[test]
fn a_panicking_backend_fails_its_tickets_and_the_worker_survives() {
    let dims = 16;
    let data = uniform_dataset(40, dims, 71);
    let direct = LinearScan::new(data.clone());
    let poison = BinaryVector::ones(dims);
    let backend_data = data.clone();
    let backend_poison = poison.clone();
    let runtime = ServiceRuntime::try_new(
        RuntimeConfig::default()
            .with_workers(1)
            .with_batch_size(1)
            .with_cache_capacity(0)
            .with_options(QueryOptions::top(3)),
        move |_| {
            Ok(Box::new(PanicSensitive {
                inner: LinearScan::new(backend_data.clone()),
                poison: backend_poison.clone(),
            }) as Box<dyn SimilarityBackend>)
        },
    )
    .unwrap();

    // The panic is contained as a typed per-ticket failure...
    let doomed = runtime.try_submit(poison).unwrap();
    let failure = resolve(doomed).unwrap_err();
    match &failure.error {
        SearchError::Backend { reason, .. } => {
            assert!(reason.contains("panicked"), "reason: {reason}")
        }
        other => panic!("expected a Backend error, got {other}"),
    }

    // ...and the single worker is still alive to serve later traffic.
    let queries = uniform_queries(5, dims, 72);
    for q in &queries {
        let completed = resolve(runtime.try_submit(q.clone()).unwrap()).unwrap();
        assert_eq!(completed.neighbors, direct.search(q, 3));
    }
    let stats = runtime.shutdown();
    assert_eq!(stats.failed_queries, 1);
    assert_eq!(
        stats.queries_submitted,
        stats.queries_served + stats.failed_queries + stats.deadline_expired
    );
}

#[test]
fn mixed_per_query_bounds_batch_separately_and_each_respects_its_own() {
    let dims = 16;
    let data = uniform_dataset(60, dims, 69);
    let direct = LinearScan::new(data.clone());
    let backend_data = data.clone();
    let runtime = ServiceRuntime::try_new(
        RuntimeConfig::default()
            .with_workers(2)
            .with_batch_size(4)
            .with_cache_capacity(0)
            .with_options(QueryOptions::top(6)),
        move |_| Ok(Box::new(LinearScan::new(backend_data.clone())) as Box<dyn SimilarityBackend>),
    )
    .unwrap();

    let queries = uniform_queries(24, dims, 70);
    let handles: Vec<(usize, TicketHandle)> = queries
        .iter()
        .enumerate()
        .map(|(i, q)| {
            let options = if i % 2 == 0 {
                QueryOptions::top(6)
            } else {
                QueryOptions::top(6).within(4)
            };
            (i, runtime.try_submit_with(q.clone(), &options).unwrap())
        })
        .collect();
    for (i, handle) in handles {
        let completed = resolve(handle).expect("well-formed query");
        let mut expected = direct.search(&queries[i], 6);
        if i % 2 == 1 {
            expected.retain(|n| n.distance < 4);
        }
        assert_eq!(completed.neighbors, expected, "query {i}");
    }
    runtime.shutdown();
}
