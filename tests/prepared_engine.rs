//! Prepared-engine equivalence: an engine prepared once (board images built
//! and compiled once, reused across batches) must be bit-identical — neighbors
//! *and* `ApRunStats` — to a fresh one-shot engine on every batch, across
//! repeated batches, forced reconfigurations, both execution modes, and the
//! auto planner; plus the empty-dataset / empty-batch edge cases and the
//! serving-layer amortization contract.

use ap_knn::capacity::CapacityModel;
use ap_knn::BoardCapacity;
use ap_similarity::prelude::*;
use proptest::prelude::*;

fn capacity(vectors_per_board: usize) -> BoardCapacity {
    BoardCapacity {
        vectors_per_board,
        model: CapacityModel::PaperCalibrated,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Prepared and fresh engines agree bit-for-bit on neighbors and run
    /// statistics, batch after batch, for every execution mode and board
    /// capacity (small capacities force multi-image reconfiguration).
    #[test]
    fn prepared_matches_fresh_across_batches_modes_and_reconfigurations(
        n in 1usize..48,
        dims in 4usize..20,
        k in 1usize..6,
        vectors_per_board in 1usize..16,
        mode_choice in 0usize..3,
        workers in 1usize..4,
        seed in 0u64..1000,
    ) {
        let data = binvec::generate::uniform_dataset(n, dims, seed);
        let mut engine = ApKnnEngine::new(KnnDesign::new(dims))
            .with_capacity(capacity(vectors_per_board))
            .with_parallelism(workers);
        engine = match mode_choice {
            0 => engine.with_mode(ExecutionMode::CycleAccurate),
            1 => engine.with_mode(ExecutionMode::Behavioral),
            _ => engine.with_auto_execution(),
        };
        let prepared = engine.prepare(&data).unwrap();
        prop_assert_eq!(prepared.len(), n);
        prop_assert_eq!(prepared.board_count(), n.div_ceil(vectors_per_board));

        // Several batches through the same prepared engine: each must equal a
        // fresh one-shot run, and the distance bound must compose.
        for round in 0u64..3 {
            let queries =
                binvec::generate::uniform_queries(2, dims, seed.wrapping_add(round + 1));
            let options = if round == 2 {
                QueryOptions::top(k).within(1 + (seed % 7) as u32)
            } else {
                QueryOptions::top(k)
            };
            let fresh = engine.try_search_batch(&data, &queries, &options).unwrap();
            let reused = prepared.try_search_batch(&queries, &options).unwrap();
            prop_assert_eq!(&reused.0, &fresh.0, "neighbors, round {}", round);
            prop_assert_eq!(reused.1, fresh.1, "stats, round {}", round);
        }
    }

    /// The execution preference carried by `QueryOptions` overrides the
    /// prepared engine's configured mode, and both forced modes agree with
    /// each other on results and statistics.
    #[test]
    fn forced_execution_preferences_agree_on_prepared_engines(
        n in 1usize..32,
        dims in 4usize..16,
        vectors_per_board in 1usize..10,
        seed in 0u64..1000,
    ) {
        let data = binvec::generate::uniform_dataset(n, dims, seed);
        let queries = binvec::generate::uniform_queries(2, dims, seed.wrapping_add(9));
        let prepared = ApKnnEngine::new(KnnDesign::new(dims))
            .with_capacity(capacity(vectors_per_board))
            .prepare(&data)
            .unwrap();
        let cycle = prepared
            .try_search_batch(
                &queries,
                &QueryOptions::top(3).execution(ExecutionPreference::CycleAccurate),
            )
            .unwrap();
        let behavioral = prepared
            .try_search_batch(
                &queries,
                &QueryOptions::top(3).execution(ExecutionPreference::Behavioral),
            )
            .unwrap();
        prop_assert_eq!(&cycle.0, &behavioral.0);
        // A 2-query batch clears the default lane threshold, so the forced
        // cycle-accurate run reports lane gauges; everything else matches
        // the behavioural accounting bit-for-bit.
        prop_assert_eq!(cycle.1.lane_width, ap_sim::MAX_LANES);
        prop_assert_eq!(cycle.1.lane_fill, 2.0 / ap_sim::MAX_LANES as f64);
        let normalized = ap_knn::ApRunStats { lane_width: 0, lane_fill: 0.0, ..cycle.1 };
        prop_assert_eq!(normalized, behavioral.1);
    }
}

/// A batch wider than one 64-lane pass splits into several passes that still
/// agree bit-for-bit with the scalar window-per-query path — including lanes
/// past the first pass (query 65+ demultiplexes through `lane_base`).
#[test]
fn multi_pass_lane_batches_match_the_scalar_path() {
    let dims = 10;
    let data = binvec::generate::uniform_dataset(40, dims, 90);
    let queries = binvec::generate::uniform_queries(70, dims, 91);
    let options = QueryOptions::top(5);
    let design = KnnDesign::new(dims);
    let laned = ApKnnEngine::new(design)
        .with_capacity(capacity(12))
        .prepare(&data)
        .unwrap();
    let scalar = ApKnnEngine::new(design)
        .with_capacity(capacity(12))
        .with_lane_threshold(usize::MAX)
        .prepare(&data)
        .unwrap();
    let (lane_results, lane_stats) = laned.try_search_batch(&queries, &options).unwrap();
    let (scalar_results, scalar_stats) = scalar.try_search_batch(&queries, &options).unwrap();
    assert_eq!(lane_results, scalar_results);
    assert_eq!(lane_stats.lane_width, ap_sim::MAX_LANES);
    assert_eq!(lane_stats.lane_fill, 70.0 / 128.0);
    assert_eq!(scalar_stats.lane_width, 0);
    assert_eq!(lane_stats.reports, scalar_stats.reports);
}

#[test]
fn empty_dataset_and_empty_batch_edge_cases() {
    let dims = 12;
    let engine = ApKnnEngine::new(KnnDesign::new(dims)).with_capacity(capacity(4));

    // Empty dataset: every query answers with no neighbors, accounting charges
    // the single (empty) configuration, and fresh == prepared.
    let empty = BinaryDataset::new(dims);
    let queries = binvec::generate::uniform_queries(3, dims, 81);
    let prepared = engine.prepare(&empty).unwrap();
    let fresh = engine
        .try_search_batch(&empty, &queries, &QueryOptions::top(4))
        .unwrap();
    let reused = prepared
        .try_search_batch(&queries, &QueryOptions::top(4))
        .unwrap();
    assert_eq!(fresh, reused);
    assert!(reused.0.iter().all(Vec::is_empty));
    assert_eq!(reused.1.board_configurations, 1);
    assert_eq!(reused.1.reports, 0);

    // Empty query batch: no results, no streamed symbols, and the prepared
    // engine never compiles a board image for it.
    let data = binvec::generate::uniform_dataset(20, dims, 82);
    let prepared = engine.prepare(&data).unwrap();
    let fresh = engine
        .try_search_batch(&data, &[], &QueryOptions::top(4))
        .unwrap();
    let reused = prepared
        .try_search_batch(&[], &QueryOptions::top(4))
        .unwrap();
    assert_eq!(fresh, reused);
    assert!(reused.0.is_empty());
    assert_eq!(reused.1.symbols_streamed, 0);
    assert!(!prepared.is_compiled());
}

#[test]
fn steady_state_batches_run_entirely_from_the_scratch_pool() {
    // The pooling contract behind the zero-allocation hot path: after the
    // warm-up batches have populated the scratch pool, later batches check
    // scratch out and back in without ever creating a fresh one — and stay
    // bit-identical to the unpooled (fresh-engine) path the whole time.
    let dims = 16;
    let data = binvec::generate::uniform_dataset(48, dims, 91);
    for workers in [1usize, 3] {
        let engine = ApKnnEngine::new(KnnDesign::new(dims))
            .with_capacity(capacity(12))
            .with_mode(ExecutionMode::CycleAccurate)
            .with_parallelism(workers);
        let prepared = engine.prepare(&data).unwrap();
        let options = QueryOptions::top(5);

        // Two warm-up batches: the first compiles the images and fills the
        // pool, the second settles any capacity growth.
        for round in 0..2u64 {
            let queries = binvec::generate::uniform_queries(4, dims, 92 + round);
            prepared.try_search_batch(&queries, &options).unwrap();
        }
        let warm = prepared.pool_stats();
        assert!(warm.fresh > 0, "warm-up must have created scratch");

        let mut results = Vec::new();
        for round in 0..5u64 {
            let queries = binvec::generate::uniform_queries(4, dims, 95 + round);
            let stats = prepared
                .try_search_batch_into(&queries, &options, &mut results)
                .unwrap();
            // Pooled answers must equal the unpooled fresh-engine run.
            let (fresh_results, fresh_stats) =
                engine.try_search_batch(&data, &queries, &options).unwrap();
            assert_eq!(results, fresh_results, "workers {workers}, round {round}");
            assert_eq!(stats, fresh_stats, "workers {workers}, round {round}");
        }
        let steady = prepared.pool_stats();
        assert_eq!(
            steady.fresh, warm.fresh,
            "steady state must create no fresh scratch (workers {workers})"
        );
        assert!(
            steady.checkouts > warm.checkouts,
            "steady-state batches still check scratch out of the pool"
        );
    }
}

#[test]
fn serving_layer_reuses_one_prepared_engine_across_dispatches() {
    // The amortization contract end to end: a service over the cycle-accurate
    // AP backend answers many batches from one board-image set, and the
    // results match the exact scan every time.
    let dims = 16;
    let k = 4;
    let data = binvec::generate::uniform_dataset(60, dims, 83);
    let ground_truth = LinearScan::new(data.clone());
    let backend = ApEngineBackend::try_new(
        ApKnnEngine::new(KnnDesign::new(dims)).with_capacity(capacity(16)),
        data,
    )
    .unwrap();
    assert!(!backend.prepared().is_compiled());
    let config = ServiceConfig::default()
        .with_batch_size(3)
        .with_k(k)
        .with_cache_capacity(0);
    let mut service = SearchService::try_new(Box::new(backend), config).unwrap();
    let queries = binvec::generate::uniform_queries(12, dims, 84);
    for q in &queries {
        service.submit(q.clone());
    }
    let completed = service.drain();
    assert_eq!(completed.len(), queries.len());
    for (c, q) in completed.iter().zip(&queries) {
        assert_eq!(c.neighbors, ground_truth.search(q, k));
    }
    assert_eq!(service.stats().batches_dispatched, 4);
}

#[test]
fn sharded_pipeline_pins_one_prepared_engine_per_shard() {
    // Sharded deployments bind one prepared engine to each shard slice; the
    // merged answers equal the exact scan across repeated batches.
    let dims = 16;
    let data = binvec::generate::uniform_dataset(72, dims, 85);
    let ground_truth = LinearScan::new(data.clone());
    let mut pipeline = SearchPipeline::over(data)
        .backend(BackendSpec::ap())
        .sharded(3)
        .build()
        .unwrap();
    for round in 0..3u64 {
        let queries = binvec::generate::uniform_queries(4, dims, 86 + round);
        let responses = pipeline
            .query_batch(&queries, &QueryOptions::top(5))
            .unwrap();
        for (r, q) in responses.iter().zip(&queries) {
            assert_eq!(r.neighbors, ground_truth.search(q, 5), "round {round}");
        }
    }
}

#[test]
fn auto_backend_serves_identically_to_pinned_modes() {
    let dims = 16;
    let data = binvec::generate::uniform_dataset(48, dims, 87);
    let queries = binvec::generate::uniform_queries(5, dims, 88);
    let mut expected: Option<Vec<Vec<Neighbor>>> = None;
    for spec in [
        BackendSpec::ap(),
        BackendSpec::behavioral(),
        BackendSpec::auto(),
    ] {
        let mut pipeline = SearchPipeline::over(data.clone())
            .backend(spec)
            .build()
            .unwrap();
        let got: Vec<Vec<Neighbor>> = pipeline
            .query_batch(&queries, &QueryOptions::top(4))
            .unwrap()
            .into_iter()
            .map(|r| r.neighbors)
            .collect();
        match &expected {
            None => expected = Some(got),
            Some(want) => assert_eq!(&got, want, "spec {spec:?}"),
        }
    }
}
