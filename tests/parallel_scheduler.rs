//! Integration tests for the multi-board scheduler: result equivalence with the
//! sequential engine, workload-balance invariants, and the pipelined-reconfiguration
//! estimates across device generations.

use ap_knn::capacity::CapacityModel;
use ap_knn::{ParallelApScheduler, PipelineModel};
use ap_similarity::prelude::*;
use proptest::prelude::*;

fn capacity(vectors_per_board: usize) -> BoardCapacity {
    BoardCapacity {
        vectors_per_board,
        model: CapacityModel::PaperCalibrated,
    }
}

#[test]
fn scheduler_is_equivalent_to_engine_for_every_worker_count() {
    let dims = 24;
    let data = binvec::generate::uniform_dataset(90, dims, 51);
    let queries = binvec::generate::uniform_queries(7, dims, 52);
    let design = KnnDesign::new(dims);
    let (expected, engine_stats) = ApKnnEngine::new(design)
        .with_capacity(capacity(12))
        .try_search_batch(&data, &queries, &QueryOptions::top(5))
        .unwrap();

    for workers in 1..=6usize {
        let scheduler = ParallelApScheduler::new(design)
            .with_capacity(capacity(12))
            .with_workers(workers);
        let (got, stats) = scheduler.search_batch(&data, &queries, 5);
        assert_eq!(got, expected, "workers = {workers}");
        assert_eq!(stats.partitions, engine_stats.board_configurations);
        assert_eq!(stats.reports, engine_stats.reports);
        assert_eq!(
            stats.total_symbols(),
            engine_stats.symbols_streamed,
            "total streaming work is conserved"
        );
        assert_eq!(
            stats.partitions_per_worker.iter().sum::<usize>(),
            stats.partitions
        );
        assert!(stats.workers_used <= workers);
        // Load balance: no worker owns more than ceil(partitions / workers_used) + 0.
        let max_owned = *stats.partitions_per_worker.iter().max().unwrap();
        assert!(max_owned <= stats.partitions.div_ceil(stats.workers_used));
    }
}

#[test]
fn scheduler_handles_indexed_style_tiny_buckets() {
    // Bucket-sized partitions (the §III-D indexing regime): one vector per board.
    let dims = 8;
    let data = binvec::generate::uniform_dataset(12, dims, 61);
    let queries = binvec::generate::uniform_queries(3, dims, 62);
    let design = KnnDesign::new(dims);
    let scheduler = ParallelApScheduler::new(design)
        .with_capacity(capacity(1))
        .with_workers(4);
    let (results, stats) = scheduler.search_batch(&data, &queries, 2);
    let (expected, _) = ApKnnEngine::new(design)
        .with_capacity(capacity(1))
        .try_search_batch(&data, &queries, &QueryOptions::top(2))
        .unwrap();
    assert_eq!(results, expected);
    assert_eq!(stats.partitions, 12);
    assert_eq!(stats.workers_used, 4);
}

#[test]
fn pipeline_estimates_are_consistent_across_generations() {
    let design = KnnDesign::new(64);
    let layout = StreamLayout::for_design(&design);
    let symbols = layout.stream_len(4096);
    let partitions = BoardCapacity::paper_calibrated(64).configurations_for(1 << 20);

    let gen1 =
        PipelineModel::new(TimingModel::new(DeviceConfig::gen1())).estimate(symbols, partitions);
    let gen2 =
        PipelineModel::new(TimingModel::new(DeviceConfig::gen2())).estimate(symbols, partitions);

    // Serial Gen-1 time should be in the neighbourhood of the paper's Table IV
    // WordEmbed figure (48.1 s) — same order, dominated by reconfiguration.
    assert!(
        (30.0..80.0).contains(&gen1.serial_s),
        "gen1 {}",
        gen1.serial_s
    );
    assert!(gen1.reconfiguration_s > gen1.stream_per_partition_s);
    // Gen 2 is roughly an order of magnitude faster end to end.
    assert!(gen1.serial_s / gen2.serial_s > 5.0);
    // Overlap never hurts and never exceeds 2x.
    for est in [gen1, gen2] {
        assert!(est.overlapped_s <= est.serial_s);
        assert!(est.speedup() >= 1.0 && est.speedup() <= 2.0 + 1e-9);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Parallel scheduling never changes results, for random shapes.
    #[test]
    fn scheduler_equivalence_holds_for_random_shapes(
        dims in 2usize..12,
        n in 1usize..40,
        queries in 1usize..4,
        chunk in 1usize..10,
        workers in 1usize..5,
        seed in 0u64..500,
    ) {
        let data = binvec::generate::uniform_dataset(n, dims, seed);
        let qs = binvec::generate::uniform_queries(queries, dims, seed.wrapping_add(9));
        let design = KnnDesign::new(dims);
        let (expected, _) = ApKnnEngine::new(design)
            .with_capacity(capacity(chunk))
            .try_search_batch(&data, &qs, &QueryOptions::top(3))
            .unwrap();
        let (got, _) = ParallelApScheduler::new(design)
            .with_capacity(capacity(chunk))
            .with_workers(workers)
            .search_batch(&data, &qs, 3);
        prop_assert_eq!(got, expected);
    }
}
