//! Cross-crate integration tests: the AP engine against every baseline, across
//! reconfigurations, quantization pipelines, and the indexed engines.

use ap_knn::indexed::{DatasetBackedIndex, IndexedApEngine};
use ap_similarity::prelude::*;
use baselines::{BucketIndex, KMeansConfig, KdForestConfig, LshConfig};
use binvec::generate::{
    clustered_dataset, planted_queries, uniform_dataset, uniform_queries, ClusterParams,
};
use binvec::metrics::recall_at_k;
use binvec::quantize::{Quantizer, RandomRotationQuantizer};

#[test]
fn ap_engine_agrees_with_every_exact_baseline() {
    let dims = 32;
    let data = uniform_dataset(96, dims, 1);
    let queries = uniform_queries(6, dims, 2);
    let k = 5;

    let engine = ApKnnEngine::new(KnnDesign::new(dims));
    let (ap, _) = engine
        .try_search_batch(&data, &queries, &QueryOptions::top(k))
        .unwrap();

    let cpu = LinearScan::new(data.clone());
    let parallel = ParallelLinearScan::new(data.clone(), 4);
    let fpga = FpgaAccelerator::new(data.clone(), FpgaConfig::kintex7());

    assert_eq!(ap, cpu.search_batch(&queries, k));
    assert_eq!(ap, parallel.search_batch(&queries, k));
    assert_eq!(ap, fpga.search_batch(&queries, k));
}

#[test]
fn ap_engine_handles_multiple_board_configurations() {
    let dims = 24;
    let data = uniform_dataset(70, dims, 3);
    let queries = uniform_queries(4, dims, 4);
    let k = 6;

    let engine = ApKnnEngine::new(KnnDesign::new(dims)).with_capacity(BoardCapacity {
        vectors_per_board: 16,
        model: ap_knn::capacity::CapacityModel::PaperCalibrated,
    });
    let (ap, stats) = engine
        .try_search_batch(&data, &queries, &QueryOptions::top(k))
        .unwrap();
    assert_eq!(stats.board_configurations, 5);
    assert_eq!(stats.reconfigurations, 4);
    assert_eq!(ap, LinearScan::new(data).search_batch(&queries, k));
}

#[test]
fn quantization_pipeline_preserves_nearest_neighbors() {
    // Real-valued vectors quantized into Hamming space: a perturbed copy of a
    // database vector should be retrieved by the AP engine as its nearest neighbor
    // for the overwhelming majority of queries.
    let input_dims = 32;
    let code_dims = 64;
    let quantizer = RandomRotationQuantizer::new(input_dims, code_dims, 5);

    let mut reals: Vec<Vec<f64>> = Vec::new();
    let mut rng_state = 0.123f64;
    let mut next = move || {
        // A tiny deterministic generator keeps the test free of RNG dependencies.
        rng_state = (rng_state * 997.0 + 0.71).fract();
        rng_state * 2.0 - 1.0
    };
    for _ in 0..128 {
        reals.push((0..input_dims).map(|_| next()).collect());
    }
    let codes = quantizer.quantize_batch(&reals);
    let data = BinaryDataset::from_vectors(code_dims, codes);

    let engine = ApKnnEngine::new(KnnDesign::new(code_dims)).with_mode(ExecutionMode::Behavioral);
    let mut hits = 0;
    for (i, real) in reals.iter().enumerate().take(20) {
        let perturbed: Vec<f64> = real.iter().map(|x| x + 0.01).collect();
        let query = quantizer.quantize(&perturbed);
        let (results, _) = engine
            .try_search_batch(&data, std::slice::from_ref(&query), &QueryOptions::top(1))
            .unwrap();
        if results[0][0].id == i {
            hits += 1;
        }
    }
    assert!(
        hits >= 18,
        "only {hits}/20 planted queries retrieved their source"
    );
}

#[test]
fn indexed_engines_match_their_cpu_indexes_and_have_reasonable_recall() {
    let dims = 64;
    let k = 4;
    let (data, _) = clustered_dataset(
        1500,
        dims,
        ClusterParams {
            clusters: 12,
            flip_probability: 0.03,
        },
        7,
    );
    let queries: Vec<BinaryVector> = planted_queries(&data, 20, 2, 8)
        .into_iter()
        .map(|p| p.query)
        .collect();
    let exact = LinearScan::new(data.clone());
    let truth: Vec<_> = queries.iter().map(|q| exact.search(q, k)).collect();

    // kd-forest
    let kd = DatasetBackedIndex {
        index: KdForest::build(
            data.clone(),
            KdForestConfig {
                trees: 4,
                bucket_size: 128,
                top_variance_candidates: 5,
                seed: 1,
            },
        ),
        data: data.clone(),
    };
    // hierarchical k-means
    let km = DatasetBackedIndex {
        index: HierarchicalKMeans::build(
            data.clone(),
            KMeansConfig {
                branching: 4,
                bucket_size: 256,
                iterations: 4,
                seed: 2,
            },
        ),
        data: data.clone(),
    };
    // LSH
    let lsh = DatasetBackedIndex {
        index: LshIndex::build(
            data.clone(),
            LshConfig {
                tables: 4,
                bits_per_table: 8,
                probes: 1,
                seed: 3,
            },
        ),
        data: data.clone(),
    };

    check_indexed(&kd, &queries, &truth, k, dims, 0.5);
    check_indexed(&km, &queries, &truth, k, dims, 0.5);
    check_indexed(&lsh, &queries, &truth, k, dims, 0.4);
}

fn check_indexed<I: BucketIndex>(
    index: &DatasetBackedIndex<I>,
    queries: &[BinaryVector],
    truth: &[Vec<Neighbor>],
    k: usize,
    dims: usize,
    min_recall: f64,
) {
    let engine = IndexedApEngine::new(index, KnnDesign::new(dims));
    let (ap_results, stats) = engine.search_batch(queries, k);
    // The AP bucket scan returns exactly what the CPU version of the index returns.
    for (q, ap) in queries.iter().zip(ap_results.iter()) {
        assert_eq!(ap, &index.index.search(q, k));
    }
    // And the approximate recall is sane on clustered data.
    let recall: f64 = ap_results
        .iter()
        .zip(truth.iter())
        .map(|(got, want)| recall_at_k(got, want))
        .sum::<f64>()
        / truth.len() as f64;
    assert!(recall >= min_recall, "recall {recall} below {min_recall}");
    assert!(stats.candidates_scanned > 0);
}

#[test]
fn gen2_is_faster_than_gen1_for_multi_board_workloads() {
    let dims = 64;
    let n = 1 << 16;
    let queries = 512;
    let gen1 = ApKnnEngine::new(KnnDesign::new(dims)).with_mode(ExecutionMode::Behavioral);
    let gen2 = ApKnnEngine::new(KnnDesign::new(dims).with_device(DeviceConfig::gen2()))
        .with_mode(ExecutionMode::Behavioral);
    let t1 = gen1.estimate_run(n, queries).total_seconds();
    let t2 = gen2.estimate_run(n, queries).total_seconds();
    assert!(t1 > t2);
    assert!(
        t1 / t2 > 5.0,
        "Gen2 should be far faster when reconfiguration dominates"
    );
}
