//! The strong form of the pooling claim: a warmed steady-state batch on the
//! prepared engine's pooled path — encode → simulate → decode, results
//! delivered into a caller-owned buffer — performs **zero heap allocation**.
//!
//! A counting global allocator wraps the system allocator; the test warms the
//! pool (and every buffer's capacity), snapshots the allocation counter, runs
//! more batches over the same query shapes, and asserts the counter did not
//! move. This file is its own test binary (one test) so the global allocator
//! swap cannot interfere with any other suite, and the measured window runs
//! with one worker — the scoped-thread spawn of the parallel fan-out path
//! allocates by design and is covered by the pool-stats test instead.

use ap_knn::capacity::CapacityModel;
use ap_knn::{ApKnnEngine, BoardCapacity, ExecutionMode, KnnDesign};
use baselines::{LinearScan, SearchIndex};
use binvec::generate::{uniform_dataset, uniform_queries};
use binvec::QueryOptions;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

#[test]
fn warmed_steady_state_batches_allocate_nothing() {
    let dims = 16;
    let batch = 4;
    let k = 5;
    let data = uniform_dataset(48, dims, 101);
    let direct = LinearScan::new(data.clone());
    let engine = ApKnnEngine::new(KnnDesign::new(dims))
        .with_capacity(BoardCapacity {
            vectors_per_board: 12,
            model: CapacityModel::PaperCalibrated,
        })
        .with_mode(ExecutionMode::CycleAccurate)
        .with_parallelism(1);
    let prepared = engine.prepare(&data).unwrap();
    let options = QueryOptions::top(k);

    // Query batches are prebuilt so the measured window contains nothing but
    // the engine's own encode → simulate → decode.
    let batches: Vec<Vec<binvec::BinaryVector>> = (0..8u64)
        .map(|round| uniform_queries(batch, dims, 102 + round))
        .collect();

    // Warm-up: compiles the board images, fills the scratch pool, and grows
    // every pooled buffer (stream, report sink, accumulators, result vectors)
    // to its steady-state capacity.
    let mut results = Vec::new();
    for queries in &batches[..3] {
        prepared
            .try_search_batch_into(queries, &options, &mut results)
            .unwrap();
    }

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for queries in &batches[3..] {
        prepared
            .try_search_batch_into(queries, &options, &mut results)
            .unwrap();
    }
    let allocations = ALLOCATIONS.load(Ordering::Relaxed) - before;
    assert_eq!(
        allocations, 0,
        "a warmed steady-state batch must not touch the allocator"
    );

    // And the allocation-free answers are still the right ones.
    for (query, neighbors) in batches.last().unwrap().iter().zip(&results) {
        assert_eq!(neighbors, &direct.search(query, k));
    }
    let pool = prepared.pool_stats();
    assert_eq!(pool.fresh, 2, "one host + one worker scratch, ever");
}
