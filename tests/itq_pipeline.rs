//! Integration tests for the full offline-quantization → AP-search pipeline:
//! real-valued features are quantized with ITQ (the technique the paper assumes),
//! the binary codes are searched on the cycle-accurate AP engine, and the results
//! are compared against exact CPU search and against the real-space ground truth.

use ap_similarity::prelude::*;
use binvec::itq::{ItqConfig, ItqQuantizer};
use binvec::quantize::{Quantizer, RandomRotationQuantizer};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Clustered real-valued corpus plus queries that are small perturbations of known
/// dataset members (so the real-space nearest neighbor is planted and known).
fn planted_real_corpus(
    n: usize,
    dims: usize,
    queries: usize,
    seed: u64,
) -> (Vec<Vec<f64>>, Vec<Vec<f64>>, Vec<usize>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let centers: Vec<Vec<f64>> = (0..12)
        .map(|_| (0..dims).map(|_| rng.gen::<f64>() * 10.0 - 5.0).collect())
        .collect();
    // Per-point spread comparable to the center spread: points share loose cluster
    // structure but keep distinct codes after quantization (tightly clustered data
    // legitimately collapses onto identical codes, which would make identity-based
    // recall assertions meaningless).
    let data: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            centers[i % centers.len()]
                .iter()
                .map(|&x| x + (rng.gen::<f64>() - 0.5) * 10.0)
                .collect()
        })
        .collect();
    let mut query_vecs = Vec::with_capacity(queries);
    let mut planted = Vec::with_capacity(queries);
    for _ in 0..queries {
        let src = rng.gen_range(0..n);
        planted.push(src);
        query_vecs.push(
            data[src]
                .iter()
                .map(|&x| x + (rng.gen::<f64>() - 0.5) * 0.02)
                .collect(),
        );
    }
    (data, query_vecs, planted)
}

fn to_dataset(codes: &[BinaryVector], dims: usize) -> BinaryDataset {
    let mut ds = BinaryDataset::new(dims);
    for c in codes {
        ds.push(c);
    }
    ds
}

#[test]
fn ap_search_over_itq_codes_matches_cpu_search_exactly() {
    let (data, queries, _) = planted_real_corpus(120, 48, 6, 1);
    let code_dims = 32;
    let itq = ItqQuantizer::fit(&data, &ItqConfig::new(code_dims).with_iterations(20));
    let data_codes: Vec<BinaryVector> = data.iter().map(|v| itq.quantize(v)).collect();
    let query_codes: Vec<BinaryVector> = queries.iter().map(|v| itq.quantize(v)).collect();
    let dataset = to_dataset(&data_codes, code_dims);

    let engine = ApKnnEngine::new(KnnDesign::new(code_dims));
    let (ap, _) = engine
        .try_search_batch(&dataset, &query_codes, &QueryOptions::top(5))
        .unwrap();
    let cpu = LinearScan::new(dataset.clone()).search_batch(&query_codes, 5);
    assert_eq!(
        ap, cpu,
        "Hamming-space search must be exact regardless of quantizer"
    );
}

#[test]
fn itq_pipeline_recovers_planted_real_space_neighbors() {
    // Tightly clustered corpora collapse same-cluster points onto identical codes
    // (which is correct behaviour but makes exact-id recovery ambiguous), so use a
    // spread-out corpus and measure recall@5 rather than exact top-1 identity.
    let (data, queries, planted) = planted_real_corpus(200, 64, 16, 2);
    let code_dims = 48;
    let itq = ItqQuantizer::fit(&data, &ItqConfig::new(code_dims).with_iterations(30));
    let data_codes: Vec<BinaryVector> = data.iter().map(|v| itq.quantize(v)).collect();
    let dataset = to_dataset(&data_codes, code_dims);
    let query_codes: Vec<BinaryVector> = queries.iter().map(|v| itq.quantize(v)).collect();

    let engine = ApKnnEngine::new(KnnDesign::new(code_dims));
    let (results, _) = engine
        .try_search_batch(&dataset, &query_codes, &QueryOptions::top(5))
        .unwrap();

    let mut recovered = 0usize;
    for ((neighbors, &truth), query_code) in results.iter().zip(&planted).zip(&query_codes) {
        let truth_distance = query_code.hamming(&data_codes[truth]);
        // The query is a tiny perturbation of its planted source, so the codes must
        // land very close together…
        assert!(
            truth_distance <= 3,
            "planted pair quantized {truth_distance} bits apart"
        );
        // …and the AP search is exact in code space: whatever it returns at rank 1
        // can never be farther than the planted source.
        assert!(neighbors[0].distance <= truth_distance);
        if neighbors.iter().any(|n| n.id == truth) {
            recovered += 1;
        }
    }
    assert!(
        recovered * 10 >= planted.len() * 7,
        "ITQ + AP recovered only {recovered}/{} planted neighbors in the top 5",
        planted.len()
    );
}

#[test]
fn itq_preserves_neighborhoods_at_least_as_well_as_random_rotation() {
    // Direct neighborhood-preservation metric (robust to ties): the code distance
    // between a query and its planted source should be a small fraction of the code
    // length, and far smaller than the distance to an arbitrary other point.
    let (data, queries, planted) = planted_real_corpus(200, 48, 24, 3);
    let code_dims = 24;

    let separation = |codes: &dyn Quantizer| -> (f64, f64) {
        let data_codes: Vec<BinaryVector> = data.iter().map(|v| codes.quantize(v)).collect();
        let query_codes: Vec<BinaryVector> = queries.iter().map(|v| codes.quantize(v)).collect();
        let mut to_planted = 0.0;
        let mut to_others = 0.0;
        let mut other_pairs = 0usize;
        for ((q, &truth), qi) in query_codes.iter().zip(&planted).zip(0usize..) {
            to_planted += f64::from(q.hamming(&data_codes[truth]));
            for (j, other) in data_codes.iter().enumerate() {
                if j != truth {
                    to_others += f64::from(q.hamming(other));
                    other_pairs += 1;
                }
            }
            let _ = qi;
        }
        (
            to_planted / query_codes.len() as f64,
            to_others / other_pairs as f64,
        )
    };

    let itq = ItqQuantizer::fit(&data, &ItqConfig::new(code_dims).with_iterations(30));
    let rr = RandomRotationQuantizer::new(48, code_dims, 7);
    let (itq_near, itq_far) = separation(&itq);
    let (rr_near, rr_far) = separation(&rr);

    // Planted pairs stay within a small fraction of the code length.
    assert!(
        itq_near <= code_dims as f64 * 0.15,
        "ITQ planted-pair distance {itq_near}"
    );
    // And are clearly separated from arbitrary points.
    assert!(
        itq_near * 2.0 < itq_far,
        "ITQ near {itq_near} vs far {itq_far}"
    );
    // ITQ's neighborhood preservation is competitive with the random rotation's.
    assert!(
        itq_near <= rr_near + 1.0,
        "ITQ planted-pair distance {itq_near} should not trail random rotation {rr_near}"
    );
    assert!(rr_far > 0.0);
}

#[test]
fn quantizer_trait_objects_are_interchangeable_in_the_pipeline() {
    let (data, queries, _) = planted_real_corpus(60, 32, 3, 4);
    let quantizers: Vec<Box<dyn Quantizer>> = vec![
        Box::new(ItqQuantizer::fit(
            &data,
            &ItqConfig::new(16).with_iterations(10),
        )),
        Box::new(RandomRotationQuantizer::new(32, 16, 5)),
    ];
    for q in &quantizers {
        assert_eq!(q.code_dims(), 16);
        let dataset = to_dataset(&data.iter().map(|v| q.quantize(v)).collect::<Vec<_>>(), 16);
        let query_codes: Vec<BinaryVector> = queries.iter().map(|v| q.quantize(v)).collect();
        let engine = ApKnnEngine::new(KnnDesign::new(16));
        let (results, _) = engine
            .try_search_batch(&dataset, &query_codes, &QueryOptions::top(2))
            .unwrap();
        assert_eq!(results.len(), queries.len());
        assert!(results.iter().all(|r| r.len() == 2));
    }
}
