//! Bit-identity sweep for the live-corpus engine: after any sequence of
//! inserts and deletes, a [`LiveEngine`] must answer every query exactly like
//! a fresh `prepare()` over the equivalent corpus — same distances, same
//! stable ids, same order — in both behavioral and cycle-accurate modes.
//!
//! The equivalence is stated under the monotone id bijection between the live
//! engine's stable insertion-order ids and the fresh engine's dense
//! `0..survivors` ids: surviving vectors keep their relative order, so the
//! `j`-th vector of the re-prepared corpus is the survivor with the `j`-th
//! smallest stable id. The bijection is strictly increasing, which also
//! preserves the `(distance, id)` tie-break order the engines sort by.

use ap_knn::live::{LiveConfig, LiveEngine};
use ap_knn::{ApKnnEngine, BoardCapacity, ExecutionMode, KnnDesign};
use binvec::{BinaryDataset, BinaryVector, Neighbor, QueryOptions};
use proptest::prelude::*;

/// One scripted mutation: insert a vector derived from a seed, or delete the
/// live id at `pick % live_count` (skipped when nothing is left to delete).
#[derive(Clone, Debug)]
enum Step {
    Insert { seed: u64 },
    Delete { pick: usize },
}

fn step_strategy() -> impl Strategy<Value = Step> {
    // Inserts listed three times: a 3:1 insert/delete mix keeps the corpus
    // growing so delta partitions and compaction both get exercised.
    prop_oneof![
        (0u64..1_000_000).prop_map(|seed| Step::Insert { seed }),
        (0u64..1_000_000).prop_map(|seed| Step::Insert { seed }),
        (0u64..1_000_000).prop_map(|seed| Step::Insert { seed }),
        (0usize..64).prop_map(|pick| Step::Delete { pick }),
    ]
}

fn engine(dims: usize, mode: ExecutionMode) -> ApKnnEngine {
    ApKnnEngine::new(KnnDesign::new(dims))
        .with_mode(mode)
        .with_capacity(BoardCapacity {
            vectors_per_board: 7,
            model: ap_knn::capacity::CapacityModel::PaperCalibrated,
        })
}

/// Replays `steps` against a live engine and, in parallel, against a plain
/// `Vec<(stable_id, vector)>` model; returns the live engine plus the model's
/// surviving corpus in stable-id order.
fn churn(
    live: &LiveEngine,
    steps: &[Step],
    dims: usize,
    base: &BinaryDataset,
) -> Vec<(usize, BinaryVector)> {
    let mut survivors: Vec<(usize, BinaryVector)> = base.iter().enumerate().collect();
    let mut next_id = base.len();
    for step in steps {
        match step {
            Step::Insert { seed } => {
                let vector = binvec::generate::uniform_queries(1, dims, 7_000 + seed)
                    .pop()
                    .unwrap();
                let ack = live.insert(&vector).unwrap();
                assert_eq!(ack.id, next_id, "stable ids are insertion-ordered");
                survivors.push((next_id, vector));
                next_id += 1;
            }
            Step::Delete { pick } => {
                if survivors.is_empty() {
                    continue;
                }
                let (id, _) = survivors.remove(pick % survivors.len());
                let ack = live.delete(id).unwrap();
                assert_eq!(ack.id, id);
            }
        }
    }
    survivors
}

/// The core check: live results must be bit-identical to a fresh prepare over
/// the surviving corpus, with fresh ids mapped back through the bijection.
fn assert_bit_identity(mode: ExecutionMode, steps: &[Step], compact_threshold: usize) {
    let dims = 16;
    let base = binvec::generate::uniform_dataset(12, dims, 400);
    let config = LiveConfig::default()
        .with_background(false)
        .with_delta_chunk(3)
        .with_compact_threshold(compact_threshold);
    let live = LiveEngine::new(engine(dims, mode), &base, config).unwrap();
    let survivors = churn(&live, steps, dims, &base);
    assert_eq!(live.len(), survivors.len());

    let queries = binvec::generate::uniform_queries(4, dims, 401);
    let options = QueryOptions::top(5);
    let (live_results, _) = live.try_search_batch(&queries, &options).unwrap();

    if survivors.is_empty() {
        assert!(live_results.iter().all(Vec::is_empty));
        return;
    }
    let fresh_corpus = BinaryDataset::from_vectors(dims, survivors.iter().map(|(_, v)| v.clone()));
    let fresh = engine(dims, mode).prepare(&fresh_corpus).unwrap();
    let (fresh_results, _) = fresh.try_search_batch(&queries, &options).unwrap();

    for (live_neighbors, fresh_neighbors) in live_results.iter().zip(&fresh_results) {
        let mapped: Vec<Neighbor> = fresh_neighbors
            .iter()
            .map(|n| Neighbor::new(survivors[n.id].0, n.distance))
            .collect();
        assert_eq!(live_neighbors, &mapped, "mode {mode:?}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Behavioral mode, with a compaction threshold low enough that most
    /// sequences fold mid-churn: results must never depend on whether a
    /// vector lives in the base segment or a delta partition.
    #[test]
    fn behavioral_live_engine_matches_fresh_prepare(
        steps in prop::collection::vec(step_strategy(), 0..24)
    ) {
        assert_bit_identity(ExecutionMode::Behavioral, &steps, 6);
    }

    /// Cycle-accurate mode: the same contract holds when every segment search
    /// runs through the simulator.
    #[test]
    fn cycle_accurate_live_engine_matches_fresh_prepare(
        steps in prop::collection::vec(step_strategy(), 0..10)
    ) {
        assert_bit_identity(ExecutionMode::CycleAccurate, &steps, 4);
    }
}

/// A directed worst case the random sweep may miss: delete everything, then
/// grow back from an empty live set.
#[test]
fn delete_everything_then_reinsert_matches_fresh_prepare() {
    let mut steps: Vec<Step> = (0..12).map(|_| Step::Delete { pick: 0 }).collect();
    steps.extend((0..5).map(|seed| Step::Insert { seed }));
    assert_bit_identity(ExecutionMode::Behavioral, &steps, 6);
}
