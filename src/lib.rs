//! # ap-similarity — similarity search on (simulated) Automata Processors
//!
//! This is the umbrella crate of the reproduction of *"Similarity Search on Automata
//! Processors"* (Lee, Kotalik, del Mundo, Alaghi, Ceze, Oskin — IPDPS 2017). It
//! re-exports the workspace crates and hosts the runnable examples and the
//! cross-crate integration tests.
//!
//! ## Crate map
//!
//! | Crate | Role |
//! |---|---|
//! | [`ap_sim`] | Cycle-accurate Automata Processor simulator, PCRE front end, device resource model |
//! | [`binvec`] | Bit-packed binary vectors, Hamming distance, ITQ quantization, corpus I/O, workloads |
//! | [`baselines`] | CPU linear scan, kd-tree / k-means / LSH indexes, FPGA and GPU simulators |
//! | [`ap_knn`] | The paper's contribution: kNN automata, temporal sort, optimizations, extensions, Jaccard, scheduler |
//! | [`ap_serve`] | Query-serving subsystem: admission batching, dataset sharding, result caching, service stats |
//! | [`perf_model`] | Table I platforms, run-time and energy models for table regeneration |
//!
//! ## Quickstart
//!
//! ```rust
//! use ap_similarity::prelude::*;
//!
//! // A small Hamming-space dataset and a query batch.
//! let dims = 32;
//! let data = binvec::generate::uniform_dataset(64, dims, 1);
//! let queries = binvec::generate::uniform_queries(4, dims, 2);
//!
//! // Exact CPU baseline.
//! let cpu = LinearScan::new(data.clone());
//!
//! // The AP engine: builds one NFA per dataset vector, streams the queries through
//! // the cycle-accurate simulator, and decodes the temporally encoded sort.
//! let engine = ApKnnEngine::new(KnnDesign::new(dims));
//! let (ap_results, stats) = engine.search_batch(&data, &queries, 3);
//!
//! for (q, ap) in queries.iter().zip(&ap_results) {
//!     assert_eq!(ap, &cpu.search(q, 3));
//! }
//! assert_eq!(stats.board_configurations, 1);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use ap_knn;
pub use ap_serve;
pub use ap_sim;
pub use baselines;
pub use binvec;
pub use perf_model;

/// Convenient re-exports of the most frequently used types across the workspace.
pub mod prelude {
    pub use ap_knn::{
        ApKnnEngine, BoardCapacity, ExecutionMode, JaccardSearcher, KnnDesign, ParallelApScheduler,
        StreamLayout,
    };
    pub use ap_serve::{
        ApEngineBackend, ApSchedulerBackend, SearchService, ServiceConfig, ServiceStats,
        ShardedBackend, ShardedDataset, SimilarityBackend,
    };
    pub use ap_sim::{
        ApGeneration, AutomataNetwork, CompiledPcre, DeviceConfig, PcreSet, Simulator, TimingModel,
    };
    pub use baselines::{
        FpgaAccelerator, FpgaConfig, GpuAccelerator, GpuConfig, HierarchicalKMeans, KdForest,
        LinearScan, LshIndex, ParallelLinearScan, SearchIndex,
    };
    pub use binvec::{
        BinaryDataset, BinaryVector, ItqConfig, ItqQuantizer, Neighbor, TopK, Workload,
    };
    pub use perf_model::{EnergyReport, KnnJob, Platform, RuntimeModel};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_exposes_the_core_types() {
        let design = KnnDesign::new(8);
        let engine = ApKnnEngine::new(design);
        assert_eq!(engine.design().dims, 8);
        let _ = Workload::ALL;
        let _ = Platform::ALL;
    }
}
