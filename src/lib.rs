//! # ap-similarity — similarity search on (simulated) Automata Processors
//!
//! This is the umbrella crate of the reproduction of *"Similarity Search on Automata
//! Processors"* (Lee, Kotalik, del Mundo, Alaghi, Ceze, Oskin — IPDPS 2017). It
//! re-exports the workspace crates and hosts the runnable examples and the
//! cross-crate integration tests.
//!
//! ## Crate map
//!
//! | Crate | Role |
//! |---|---|
//! | [`ap_sim`] | Cycle-accurate Automata Processor simulator, PCRE front end, device resource model |
//! | [`binvec`] | Bit-packed binary vectors, Hamming distance, ITQ quantization, corpus I/O, workloads |
//! | [`baselines`] | CPU linear scan, kd-tree / k-means / LSH indexes, FPGA and GPU simulators |
//! | [`ap_knn`] | The paper's contribution: kNN automata, temporal sort, optimizations, extensions, Jaccard, scheduler, live mutable corpora |
//! | [`ap_serve`] | Query-serving subsystem: admission batching, dataset sharding, result caching, live mutations, wire protocol, service stats |
//! | [`ap_analyze`] | Static analysis: reachability/liveness, translation validation of compiled images, resource reconciliation, redundancy profiling |
//! | [`perf_model`] | Table I platforms, run-time and energy models for table regeneration |
//!
//! ## Quickstart
//!
//! Every backend family is constructed and queried through one fluent entry
//! point, [`SearchPipeline`](ap_serve::SearchPipeline): pick a metric, pick a
//! backend, optionally shard and cache, then issue fallible queries whose
//! options carry `k`, an optional distance bound (the paper's §VII range-query
//! scenario), and an execution preference.
//!
//! ```rust
//! use ap_similarity::prelude::*;
//!
//! // A small Hamming-space dataset and a query batch.
//! let dims = 32;
//! let data = binvec::generate::uniform_dataset(64, dims, 1);
//! let queries = binvec::generate::uniform_queries(4, dims, 2);
//!
//! // Exact CPU baseline.
//! let cpu = LinearScan::new(data.clone());
//!
//! // The AP engine behind the uniform pipeline: one NFA per dataset vector,
//! // queries streamed through the cycle-accurate simulator, the temporally
//! // encoded sort decoded back into neighbor lists.
//! let mut pipeline = SearchPipeline::over(data)
//!     .metric(Metric::Hamming)
//!     .backend(BackendSpec::ap())
//!     .build()
//!     .expect("valid pipeline configuration");
//!
//! let responses = pipeline
//!     .query_batch(&queries, &QueryOptions::top(3))
//!     .expect("well-formed queries");
//! for (q, response) in queries.iter().zip(&responses) {
//!     assert_eq!(response.neighbors, cpu.search(q, 3));
//! }
//! let stats = responses[0].ap_run.expect("the AP engine reports run stats");
//! assert_eq!(stats.board_configurations, 1);
//!
//! // Range query (§VII): only neighbors strictly within 10 bit flips.
//! let bounded = pipeline
//!     .query(&queries[0], &QueryOptions::top(16).within(10))
//!     .expect("well-formed query");
//! assert!(bounded.neighbors.iter().all(|n| n.distance < 10));
//! ```
//!
//! ## Migrating from the pre-pipeline entry points
//!
//! | Old entry point | New builder call |
//! |---|---|
//! | `ApKnnEngine::new(design).search_batch(&data, &queries, k)` (removed) | `SearchPipeline::over(data).build()?.query_batch(&queries, &QueryOptions::top(k))?` |
//! | `ApKnnEngine` + `ExecutionMode::Behavioral` | `.backend(BackendSpec::behavioral())` |
//! | `ParallelApScheduler::new(design).with_workers(n).search_batch(..)` | `.backend(BackendSpec::scheduler(n))` |
//! | `JaccardSearcher::new(design).search_batch(..)` | `.metric(Metric::Jaccard)` (AP backend) |
//! | `IndexedApEngine::new(&backed_index, design).search_batch(..)` | `.backend(BackendSpec::Indexed(IndexKind::KdForest \| KMeans \| Lsh))` |
//! | `LinearScan::new(data).search_batch(..)` (any [`baselines::SearchIndex`]) | `.backend(BackendSpec::Baseline(BaselineKind::...))` |
//! | `ShardedBackend::build(&ShardedDataset::split(&data, n), ...)` | `.sharded(n)` |
//! | `ResultCache::new(cap)` wired by hand | `.cached(cap)` |
//! | `SearchService::new(backend, config)` (panicking) | `SearchService::try_new(backend, config.build()?)?` or `pipeline.into_service(config)?` |
//!
//! The deprecated panicking `ApKnnEngine::search_batch` wrapper has been
//! removed; every call site reports typed [`binvec::SearchError`]s instead.
//! For concurrent serving (multiple caller threads, deadline/priority
//! scheduling, backpressure), see [`ap_serve::ServiceRuntime`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use ap_analyze;
pub use ap_knn;
pub use ap_serve;
pub use ap_sim;
pub use baselines;
pub use binvec;
pub use perf_model;

/// Convenient re-exports of the most frequently used types across the workspace.
pub mod prelude {
    pub use ap_analyze::{AnalysisReport, Analyzer, CapacityContext, Finding, Severity};
    pub use ap_knn::{
        ApKnnEngine, AutoPlanner, BoardCapacity, ExecutionMode, ExecutionPlanner, FaultPlan,
        JaccardSearcher, KnnDesign, LiveConfig, LiveEngine, LiveStatus, ParallelApScheduler,
        PreparedEngine, PreparedSchedule, RestoreReport, StreamLayout, WalConfig, WalError,
        WalGauges,
    };
    pub use ap_serve::{
        ApClient, ApEngineBackend, ApSchedulerBackend, ApServer, BackendRegistry, BackendSpec,
        BaselineKind, CompletionSet, FailedQuery, Frame, FrameBuffer, IndexKind, LiveBackend,
        Metric, NetError, Provenance, Response, RetryPolicy, RuntimeConfig, SearchPipeline,
        SearchService, ServiceConfig, ServiceRuntime, ServiceStats, ShardedBackend, ShardedDataset,
        SimilarityBackend, StatsFrame, TicketHandle, TicketResult,
    };
    pub use ap_sim::{
        ApGeneration, AutomataNetwork, CompiledPcre, DeviceConfig, PcreSet, Simulator, TimingModel,
    };
    pub use baselines::{
        FpgaAccelerator, FpgaConfig, GpuAccelerator, GpuConfig, HierarchicalKMeans, KdForest,
        LinearScan, LshIndex, ParallelLinearScan, SearchIndex,
    };
    pub use binvec::{
        BinaryDataset, BinaryVector, ItqConfig, ItqQuantizer, Neighbor, TopK, Workload,
    };
    pub use binvec::{
        Deadline, ExecutionPreference, MutAck, Mutation, MutationOp, Priority, QueryOptions,
        SearchError,
    };
    pub use perf_model::{EnergyReport, KnnJob, Platform, RuntimeModel};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_exposes_the_core_types() {
        let design = KnnDesign::new(8);
        let engine = ApKnnEngine::new(design);
        assert_eq!(engine.design().dims, 8);
        let _ = Workload::ALL;
        let _ = Platform::ALL;
    }
}
