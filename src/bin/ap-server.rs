//! `ap-server` — stand the AP similarity-search service up on a TCP port.
//!
//! Builds a [`ServiceRuntime`] over a generated Hamming-space corpus, binds
//! the [`ApServer`] network front door, prints the listening address, and
//! serves until stdin closes (or a `quit` line arrives) — at which point it
//! drains in-flight queries, shuts down gracefully, and prints the final
//! statistics report.
//!
//! ```text
//! cargo run --release --bin ap-server -- --addr 127.0.0.1:7001 \
//!     --workers 4 --vectors 4096 --dims 64 --backend behavioral
//! ```
//!
//! Talk to it with [`ApClient`] (see `examples/network_serving.rs`) or the
//! `serve_network` bench.

use ap_similarity::prelude::*;

struct Args {
    addr: String,
    workers: usize,
    vectors: usize,
    dims: usize,
    seed: u64,
    queue: usize,
    cache: usize,
    k: usize,
    backend: BackendKind,
    /// Durability directory for the live backend: restore from it when it
    /// already holds a WAL, create a fresh durable corpus there otherwise.
    data_dir: Option<std::path::PathBuf>,
    flush_batch: usize,
    flush_interval_us: u64,
    checkpoint_every: u64,
}

#[derive(Clone, Copy, PartialEq)]
enum BackendKind {
    /// Behavioral AP engine — fast, result-exact.
    Behavioral,
    /// Cycle-accurate prepared AP engine — the paper's timing model.
    CycleAccurate,
    /// Plain CPU linear scan, for comparison.
    Linear,
    /// Live mutable corpus: behavioral AP engine behind a [`LiveBackend`],
    /// accepting `Insert`/`Delete` frames alongside queries.
    Live,
}

impl Default for Args {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7001".to_string(),
            workers: 4,
            vectors: 4096,
            dims: 64,
            seed: 42,
            queue: 4096,
            cache: 1024,
            k: 10,
            backend: BackendKind::Behavioral,
            data_dir: None,
            flush_batch: 64,
            flush_interval_us: 0,
            checkpoint_every: 4096,
        }
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut value = |name: &str| argv.next().ok_or_else(|| format!("{name} expects a value"));
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--data-dir" => args.data_dir = Some(value("--data-dir")?.into()),
            "--flush-batch" => args.flush_batch = parse(&value("--flush-batch")?)?,
            "--flush-interval-us" => {
                args.flush_interval_us = parse(&value("--flush-interval-us")?)?
            }
            "--checkpoint-every" => args.checkpoint_every = parse(&value("--checkpoint-every")?)?,
            "--workers" => args.workers = parse(&value("--workers")?)?,
            "--vectors" => args.vectors = parse(&value("--vectors")?)?,
            "--dims" => args.dims = parse(&value("--dims")?)?,
            "--seed" => args.seed = parse(&value("--seed")?)?,
            "--queue" => args.queue = parse(&value("--queue")?)?,
            "--cache" => args.cache = parse(&value("--cache")?)?,
            "--k" => args.k = parse(&value("--k")?)?,
            "--backend" => {
                args.backend = match value("--backend")?.as_str() {
                    "behavioral" => BackendKind::Behavioral,
                    "cycle" | "cycle-accurate" => BackendKind::CycleAccurate,
                    "linear" => BackendKind::Linear,
                    "live" => BackendKind::Live,
                    other => return Err(format!("unknown backend '{other}'")),
                }
            }
            "--help" | "-h" => {
                println!(
                    "ap-server: TCP front door for the AP similarity-search service\n\n\
                     \t--addr HOST:PORT   listen address (default 127.0.0.1:7001; port 0 = ephemeral)\n\
                     \t--workers N        runtime worker threads (default 4)\n\
                     \t--vectors N        corpus size (default 4096)\n\
                     \t--dims N           vector width in bits (default 64)\n\
                     \t--seed N           corpus RNG seed (default 42)\n\
                     \t--queue N          admission queue capacity (default 4096)\n\
                     \t--cache N          result cache capacity, 0 disables (default 1024)\n\
                     \t--k N              default neighbors per query (default 10)\n\
                     \t--backend KIND     behavioral | cycle | linear | live (default behavioral)\n\
                     \t                   'live' serves a mutable corpus: clients may Insert/Delete\n\
                     \t--data-dir PATH    durability directory (live backend only): restore the\n\
                     \t                   corpus from PATH when a WAL exists there, otherwise\n\
                     \t                   create one; acks then imply the mutation is fsynced\n\
                     \t--flush-batch N    WAL group-commit batch: records one fsync may cover (default 64)\n\
                     \t--flush-interval-us N  WAL group-commit window in microseconds (default 0)\n\
                     \t--checkpoint-every N   checkpoint after N WAL records, 0 disables (default 4096)\n\n\
                     The server runs until stdin closes or a 'quit' line arrives."
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag '{other}' (try --help)")),
        }
    }
    if args.data_dir.is_some() && args.backend != BackendKind::Live {
        return Err("--data-dir requires --backend live".to_string());
    }
    Ok(args)
}

fn parse<T: std::str::FromStr>(s: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("invalid number '{s}'"))
}

fn build_runtime(args: &Args) -> Result<ServiceRuntime, SearchError> {
    let data = binvec::generate::uniform_dataset(args.vectors, args.dims, args.seed);
    let config = RuntimeConfig::default()
        .with_workers(args.workers)
        .with_queue_capacity(args.queue)
        .with_cache_capacity(args.cache)
        .with_options(QueryOptions::top(args.k));
    let dims = args.dims;
    let backend = args.backend;
    if backend == BackendKind::Live {
        // One shared engine for all workers: mutations must be visible to
        // every dispatch, so the workers cannot each own a private corpus.
        let engine = ApKnnEngine::new(KnnDesign::new(dims)).with_mode(ExecutionMode::Behavioral);
        let live = match &args.data_dir {
            None => LiveBackend::try_new(engine, &data, LiveConfig::default())?,
            Some(dir) => {
                let wal_config = WalConfig::default()
                    .with_flush_batch(args.flush_batch)
                    .with_flush_interval(std::time::Duration::from_micros(args.flush_interval_us))
                    .with_checkpoint_every(
                        (args.checkpoint_every > 0).then_some(args.checkpoint_every),
                    );
                let live = if LiveEngine::durable_exists(dir) {
                    let (live, report) =
                        LiveEngine::restore(engine, LiveConfig::default(), wal_config, dir)?;
                    println!(
                        "restored corpus from {}: checkpoint seq {} ({} vectors), \
                         replayed {} WAL records{}",
                        dir.display(),
                        report.checkpoint_seq,
                        report.checkpoint_vectors,
                        report.replayed,
                        if report.torn {
                            format!(" (truncated {} torn bytes)", report.truncated_bytes)
                        } else {
                            String::new()
                        },
                    );
                    live
                } else {
                    println!("creating durable corpus at {}", dir.display());
                    LiveEngine::durable(engine, &data, LiveConfig::default(), wal_config, dir)?
                };
                LiveBackend::from_engine(std::sync::Arc::new(live))
            }
        };
        return ServiceRuntime::try_shared(config, std::sync::Arc::new(live));
    }
    ServiceRuntime::try_new(config, move |_| {
        Ok(match backend {
            BackendKind::Linear => {
                Box::new(LinearScan::new(data.clone())) as Box<dyn SimilarityBackend>
            }
            BackendKind::Behavioral => {
                let engine = ApKnnEngine::new(KnnDesign::new(dims))
                    .with_mode(ExecutionMode::Behavioral)
                    .with_parallelism(1);
                Box::new(ApEngineBackend::try_new(engine, data.clone())?)
            }
            BackendKind::CycleAccurate => {
                let engine = ApKnnEngine::new(KnnDesign::new(dims))
                    .with_mode(ExecutionMode::CycleAccurate)
                    .with_parallelism(1);
                let backend = ApEngineBackend::try_new(engine, data.clone())?;
                backend.prepared().compile()?;
                Box::new(backend)
            }
            BackendKind::Live => unreachable!("handled by the shared-backend path above"),
        })
    })
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("ap-server: {message}");
            std::process::exit(2);
        }
    };

    let runtime = match build_runtime(&args) {
        Ok(runtime) => std::sync::Arc::new(runtime),
        Err(error) => {
            eprintln!("ap-server: failed to build the runtime: {error}");
            std::process::exit(1);
        }
    };
    println!(
        "backend '{}': {} x {}-bit vectors, {} workers, queue {}, cache {}",
        runtime.backend_name(),
        args.vectors,
        args.dims,
        runtime.worker_count(),
        args.queue,
        args.cache,
    );

    let server = match ApServer::bind(args.addr.as_str(), std::sync::Arc::clone(&runtime)) {
        Ok(server) => server,
        Err(error) => {
            eprintln!("ap-server: failed to bind {}: {error}", args.addr);
            std::process::exit(1);
        }
    };
    println!("listening on {}", server.local_addr());
    println!("serving until stdin closes (type 'quit' to stop)");

    // Serve until the operator hangs up: stdin EOF or a 'quit' line. Running
    // under a pipe/daemon manager, closing the pipe is the stop signal.
    let mut line = String::new();
    loop {
        line.clear();
        match std::io::stdin().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) if line.trim() == "quit" => break,
            Ok(_) => continue,
            Err(_) => break,
        }
    }

    println!(
        "shutting down ({} connections served) — draining in-flight queries",
        server.connections_accepted()
    );
    let stats = server.shutdown();
    println!("{}", stats.report());
    // The runtime outlives the front door by design; stop it too on exit.
    if let Ok(runtime) = std::sync::Arc::try_unwrap(runtime) {
        runtime.shutdown();
    }
}
