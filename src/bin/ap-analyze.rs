//! `ap-analyze` — run the static-analysis passes over the workspace's
//! canonical networks and emit a machine-readable report.
//!
//! Analyzes the seed kNN corpus shapes (one board image per shape, plus a
//! multi-board partitioned shape) and the PCRE dictionary network from the
//! integration suite. Every network goes through all four passes —
//! reachability/liveness, translation validation of the compiled image,
//! resource/capacity reconciliation, and redundancy profiling — and the
//! combined reports are written as a JSON array.
//!
//! ```text
//! cargo run --release --bin ap-analyze -- --gate --json ANALYZE_report.json
//! ```
//!
//! With `--gate` the process exits nonzero if any network produced an
//! `Error`-severity finding (the zero-Error CI budget). Warnings and infos —
//! utilization advisories, redundancy headroom — never gate.

use ap_analyze::{AnalysisReport, Analyzer, CapacityContext, Severity};
use ap_knn::PartitionNetwork;
use ap_sim::CompiledNetwork;
use ap_similarity::prelude::*;

struct Args {
    gate: bool,
    json: std::path::PathBuf,
    seed: u64,
}

impl Default for Args {
    fn default() -> Self {
        Self {
            gate: false,
            json: std::path::PathBuf::from("ANALYZE_report.json"),
            seed: 42,
        }
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut value = |name: &str| argv.next().ok_or_else(|| format!("{name} expects a value"));
        match flag.as_str() {
            "--gate" => args.gate = true,
            "--json" => args.json = value("--json")?.into(),
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|_| "invalid number for --seed".to_string())?
            }
            "--help" | "-h" => {
                println!(
                    "ap-analyze: static-analysis gate over the canonical workspace networks\n\n\
                     \t--gate        exit nonzero on any Error-severity finding\n\
                     \t--json PATH   write the JSON report array to PATH (default ANALYZE_report.json)\n\
                     \t--seed N      corpus RNG seed (default 42)\n\n\
                     Networks analyzed: kNN board images at 512x64, 256x128 and 128x256,\n\
                     a 3-board partitioned 192x64 corpus, and the PCRE dictionary network."
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag '{other}' (try --help)")),
        }
    }
    Ok(args)
}

/// Builds, compiles and analyzes one kNN board image, reconciling it against
/// the design's own macro cost and the placement-derived board capacity.
fn analyze_knn_board(
    name: &str,
    data: &BinaryDataset,
    base_index: usize,
    design: &KnnDesign,
) -> Result<AnalysisReport, String> {
    let capacity = BoardCapacity::from_placement(design);
    let ctx = CapacityContext {
        stes_per_macro: design.stes_per_vector(),
        vectors_per_board: capacity.vectors_per_board,
    };
    let pn = PartitionNetwork::build_from_dataset(data, base_index, design);
    let compiled = CompiledNetwork::compile(&pn.network)
        .map_err(|e| format!("{name}: compilation failed: {e}"))?;
    Ok(Analyzer::new()
        .with_device(design.device)
        .with_capacity_context(ctx)
        .analyze_compiled(name, &pn.network, &compiled))
}

/// Compiles and analyzes the PCRE dictionary network the integration suite
/// scans with: the literal dictionary plus the structured log patterns.
fn analyze_pcre_dictionary() -> Result<AnalysisReport, String> {
    let patterns = [
        "status",
        "error",
        "GET",
        "api",
        "retry",
        "zebra",
        "status [45]\\d\\d",
        "timeout after \\d+ms",
        "user=[a-z]+ (?:GET|POST)",
    ];
    let set = PcreSet::compile(&patterns).map_err(|e| format!("pcre-dictionary: {e}"))?;
    let compiled = CompiledNetwork::compile(set.network())
        .map_err(|e| format!("pcre-dictionary: compilation failed: {e}"))?;
    Ok(Analyzer::new().analyze_compiled("pcre-dictionary", set.network(), &compiled))
}

fn build_reports(seed: u64) -> Result<Vec<AnalysisReport>, String> {
    let mut reports = Vec::new();

    // The seed corpus shapes: one board image per (vectors x dims) point.
    for (vectors, dims) in [(512usize, 64usize), (256, 128), (128, 256)] {
        let design = KnnDesign::new(dims);
        let data = binvec::generate::uniform_dataset(vectors, dims, seed);
        let name = format!("knn-{vectors}x{dims}");
        reports.push(analyze_knn_board(&name, &data, 0, &design)?);
    }

    // A multi-board shape: the corpus split across three board images, each
    // partition analyzed as its own network (strict mode sees them the same
    // way — one image at a time).
    let dims = 64;
    let design = KnnDesign::new(dims);
    let data = binvec::generate::uniform_dataset(192, dims, seed.wrapping_add(1));
    for (board, part) in data.partition(64).iter().enumerate() {
        let name = format!("knn-192x{dims}-board{board}");
        reports.push(analyze_knn_board(
            &name,
            &part.data,
            part.base_index,
            &design,
        )?);
    }

    reports.push(analyze_pcre_dictionary()?);
    Ok(reports)
}

fn print_summary(report: &AnalysisReport) {
    let errors = report.count(Severity::Error);
    let warns = report.count(Severity::Warn);
    let infos = report.count(Severity::Info);
    let r = &report.redundancy;
    println!(
        "{:24} {:>6} elements  E/W/I {errors}/{warns}/{infos}  dup-macros {:.1}%  headroom x{:.2}{}",
        report.name,
        report.resource.stes + report.resource.counters + report.resource.booleans,
        r.duplicate_macro_pct,
        r.headroom_factor,
        match (r.vectors_per_board, r.projected_vectors_per_board) {
            (Some(v), Some(p)) => format!("  vectors/board {v} -> {p}"),
            _ => String::new(),
        },
    );
    for finding in report
        .findings
        .iter()
        .filter(|f| f.severity == Severity::Error)
    {
        println!("    {finding}");
    }
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("ap-analyze: {message}");
            std::process::exit(2);
        }
    };

    let reports = match build_reports(args.seed) {
        Ok(reports) => reports,
        Err(message) => {
            eprintln!("ap-analyze: {message}");
            std::process::exit(1);
        }
    };

    for report in &reports {
        print_summary(report);
    }

    let json: Vec<String> = reports.iter().map(AnalysisReport::to_json).collect();
    let body = format!("[{}]\n", json.join(","));
    if let Err(error) = std::fs::write(&args.json, body) {
        eprintln!(
            "ap-analyze: failed to write {}: {error}",
            args.json.display()
        );
        std::process::exit(1);
    }
    println!("report written to {}", args.json.display());

    let total_errors: usize = reports.iter().map(|r| r.count(Severity::Error)).sum();
    if total_errors > 0 {
        eprintln!("ap-analyze: {total_errors} Error-severity finding(s)");
        if args.gate {
            std::process::exit(1);
        }
    } else {
        println!("gate: clean (zero Error-severity findings)");
    }
}
