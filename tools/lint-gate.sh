#!/usr/bin/env bash
# Lint gate, run in CI:
#
#  1. No unwrap()/expect() in non-test ap-serve / ap-knn source outside the
#     fixed-string allowlist (tools/lint-allowlist.txt). Serving and engine
#     code must handle errors or document why a panic is impossible; unit
#     tests (everything from the first `#[cfg(test)]` line down) and comment
#     lines are exempt.
#  2. The analyzer crate is clippy-clean at -D warnings across all targets.
#
# Exit nonzero on any violation, printing file:line for each.
set -euo pipefail
cd "$(dirname "$0")/.."

allowlist=tools/lint-allowlist.txt
if [ ! -s "$allowlist" ]; then
    echo "lint-gate: missing or empty $allowlist" >&2
    exit 2
fi

fail=0
while IFS= read -r file; do
    # Truncate each file at its unit-test module and drop comment-only lines,
    # then flag unwrap()/expect() not matching any allowlist fixed string.
    violations=$(
        awk '!/^[[:space:]]*\/\//{ if ($0 ~ /^#\[cfg\(test\)\]/) exit; print FILENAME":"FNR": "$0 }' "$file" |
            grep -E '\.unwrap\(\)|\.expect\(' |
            grep -v -F -f "$allowlist" || true
    )
    if [ -n "$violations" ]; then
        printf '%s\n' "$violations"
        fail=1
    fi
done < <(find crates/ap-serve/src crates/ap-knn/src -name '*.rs' | sort)

if [ "$fail" -ne 0 ]; then
    echo "lint-gate: unhandled unwrap()/expect() in serving code." >&2
    echo "lint-gate: handle the error, or add a justified entry to $allowlist." >&2
    exit 1
fi

cargo clippy -p ap-analyze --all-targets -- -D warnings

echo "lint-gate: OK"
