//! Byte-level wire serialization for the query vocabulary.
//!
//! The network serving layer (`ap-serve`'s `net` module) speaks a
//! length-prefixed binary protocol; the payload encodings of the types that
//! travel per query — [`QueryOptions`], [`SearchError`], [`Neighbor`],
//! [`BinaryVector`] — live here, next to the types themselves, so the wire
//! format and the in-memory types cannot drift apart.
//!
//! Conventions:
//!
//! * every multi-byte integer is **little-endian**;
//! * optionals are a one-byte presence tag (`0` = absent, `1` = present)
//!   followed by the value;
//! * strings are a `u32` byte length followed by UTF-8 bytes;
//! * encoders append to a caller-owned `Vec<u8>` (so a connection can reuse
//!   one scratch buffer across frames — no allocation per encode once the
//!   buffer has grown to the working size);
//! * decoders read from a [`WireReader`] cursor over a caller-owned byte
//!   slice and return typed [`WireError`]s, never panicking and never
//!   trusting a declared length beyond the slice they were handed.
//!
//! A [`Deadline`] is an in-process [`std::time::Instant`] with no stable
//! epoch, so it travels as the *remaining budget* in microseconds: the decoder
//! re-anchors it against its own clock ([`Deadline::after`]). Queue time on
//! the serving side therefore counts against the client's budget, which is
//! exactly the semantics a remote caller wants from a deadline.

use crate::bits::BinaryVector;
use crate::query::{Deadline, ExecutionPreference, Priority, QueryOptions, SearchError};
use crate::topk::Neighbor;
use std::fmt;
use std::time::Duration;

/// Why a wire decode failed. Every variant is a protocol-level fault of the
/// *bytes*, not of the query they carry — a well-formed frame carrying an
/// invalid query decodes fine and fails later with a [`SearchError`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the value did.
    Truncated {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// A frame did not start with the protocol magic.
    BadMagic {
        /// The four bytes found instead.
        found: [u8; 4],
    },
    /// The frame's protocol version is not supported.
    UnsupportedVersion {
        /// The version byte found.
        found: u8,
    },
    /// The frame type byte names no known frame.
    UnknownFrameType {
        /// The type byte found.
        found: u8,
    },
    /// A declared length exceeds the protocol's hard limit — refused before
    /// any allocation is sized from it.
    Oversized {
        /// The declared length.
        declared: u64,
        /// The protocol limit.
        limit: u64,
    },
    /// A tag or field value is outside its valid range.
    Malformed {
        /// Which value was malformed.
        what: &'static str,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Truncated { needed, available } => {
                write!(f, "truncated: needed {needed} bytes, had {available}")
            }
            Self::BadMagic { found } => write!(f, "bad magic {found:02x?}"),
            Self::UnsupportedVersion { found } => {
                write!(f, "unsupported protocol version {found}")
            }
            Self::UnknownFrameType { found } => write!(f, "unknown frame type {found}"),
            Self::Oversized { declared, limit } => {
                write!(f, "declared length {declared} exceeds limit {limit}")
            }
            Self::Malformed { what } => write!(f, "malformed {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// A bounds-checked forward cursor over a byte slice.
#[derive(Clone, Debug)]
pub struct WireReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// A cursor at the start of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Whether the cursor has consumed the whole slice.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Takes the next `n` bytes.
    ///
    /// # Errors
    /// [`WireError::Truncated`] when fewer than `n` bytes remain.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated {
                needed: n,
                available: self.remaining(),
            });
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a little-endian `f64` (IEEE-754 bits).
    pub fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a length-prefixed UTF-8 string, refusing declared lengths beyond
    /// the remaining buffer (so a hostile length can never size an
    /// allocation).
    pub fn string(&mut self) -> Result<String, WireError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::Malformed {
            what: "utf-8 string",
        })
    }

    /// Reads a presence tag.
    pub fn presence(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::Malformed {
                what: "presence tag",
            }),
        }
    }
}

/// Appends a little-endian `u32`.
pub fn put_u32(out: &mut Vec<u8>, value: u32) {
    out.extend_from_slice(&value.to_le_bytes());
}

/// Appends a little-endian `u64`.
pub fn put_u64(out: &mut Vec<u8>, value: u64) {
    out.extend_from_slice(&value.to_le_bytes());
}

/// Appends a little-endian `f64` (IEEE-754 bits).
pub fn put_f64(out: &mut Vec<u8>, value: f64) {
    put_u64(out, value.to_bits());
}

/// Appends a length-prefixed UTF-8 string.
pub fn put_string(out: &mut Vec<u8>, value: &str) {
    put_u32(out, value.len() as u32);
    out.extend_from_slice(value.as_bytes());
}

impl ExecutionPreference {
    /// Encodes the preference as its wire tag.
    pub fn encode_wire(&self, out: &mut Vec<u8>) {
        out.push(match self {
            Self::Auto => 0,
            Self::CycleAccurate => 1,
            Self::Behavioral => 2,
        });
    }

    /// Decodes a preference from its wire tag.
    ///
    /// # Errors
    /// [`WireError::Malformed`] on an unknown tag.
    pub fn decode_wire(reader: &mut WireReader<'_>) -> Result<Self, WireError> {
        match reader.u8()? {
            0 => Ok(Self::Auto),
            1 => Ok(Self::CycleAccurate),
            2 => Ok(Self::Behavioral),
            _ => Err(WireError::Malformed {
                what: "execution preference",
            }),
        }
    }
}

impl Priority {
    /// Encodes the priority as its wire tag.
    pub fn encode_wire(&self, out: &mut Vec<u8>) {
        out.push(match self {
            Self::Low => 0,
            Self::Normal => 1,
            Self::High => 2,
        });
    }

    /// Decodes a priority from its wire tag.
    ///
    /// # Errors
    /// [`WireError::Malformed`] on an unknown tag.
    pub fn decode_wire(reader: &mut WireReader<'_>) -> Result<Self, WireError> {
        match reader.u8()? {
            0 => Ok(Self::Low),
            1 => Ok(Self::Normal),
            2 => Ok(Self::High),
            _ => Err(WireError::Malformed { what: "priority" }),
        }
    }
}

impl QueryOptions {
    /// Encodes the full options — result-affecting fields *and* scheduling
    /// fields — so priority, deadline, bound, and execution preference all
    /// travel per query. The deadline is encoded as its remaining budget in
    /// microseconds (see the module docs).
    pub fn encode_wire(&self, out: &mut Vec<u8>) {
        put_u64(out, self.k as u64);
        match self.within {
            None => out.push(0),
            Some(bound) => {
                out.push(1);
                put_u32(out, bound);
            }
        }
        self.execution.encode_wire(out);
        self.priority.encode_wire(out);
        match self.deadline {
            None => out.push(0),
            Some(deadline) => {
                out.push(1);
                put_u64(out, deadline.remaining().as_micros() as u64);
            }
        }
    }

    /// Decodes options encoded by [`Self::encode_wire`], re-anchoring any
    /// deadline budget against the local clock.
    ///
    /// # Errors
    /// [`WireError`] on truncated or malformed bytes. Semantic validity (k >
    /// 0, nonzero bound) is *not* checked here — callers run
    /// [`QueryOptions::validate`] so a well-formed frame carrying `k = 0`
    /// fails as a [`SearchError`], not a protocol error.
    pub fn decode_wire(reader: &mut WireReader<'_>) -> Result<Self, WireError> {
        let k = reader.u64()? as usize;
        let within = reader.presence()?.then(|| reader.u32()).transpose()?;
        let execution = ExecutionPreference::decode_wire(reader)?;
        let priority = Priority::decode_wire(reader)?;
        let deadline = reader
            .presence()?
            .then(|| reader.u64())
            .transpose()?
            .map(|micros| Deadline::after(Duration::from_micros(micros)));
        Ok(Self {
            k,
            within,
            execution,
            priority,
            deadline,
        })
    }
}

impl Neighbor {
    /// Encodes the neighbor as `(id: u64, distance: u32)`.
    pub fn encode_wire(&self, out: &mut Vec<u8>) {
        put_u64(out, self.id as u64);
        put_u32(out, self.distance);
    }

    /// Decodes a neighbor encoded by [`Self::encode_wire`].
    ///
    /// # Errors
    /// [`WireError::Truncated`] when the buffer ends early.
    pub fn decode_wire(reader: &mut WireReader<'_>) -> Result<Self, WireError> {
        let id = reader.u64()? as usize;
        let distance = reader.u32()?;
        Ok(Self { id, distance })
    }
}

impl BinaryVector {
    /// Encodes the vector as `dims: u32` followed by its packed little-endian
    /// `u64` words.
    pub fn encode_wire(&self, out: &mut Vec<u8>) {
        put_u32(out, self.dims() as u32);
        for &word in self.words() {
            put_u64(out, word);
        }
    }

    /// Decodes a vector encoded by [`Self::encode_wire`], masking any stray
    /// bits beyond `dims` in the last word (a hostile peer cannot break the
    /// tail-word invariant the Hamming kernels rely on).
    ///
    /// # Errors
    /// [`WireError::Oversized`] when the declared dimensionality exceeds
    /// [`MAX_WIRE_DIMS`]; [`WireError::Truncated`] when the words are short.
    pub fn decode_wire(reader: &mut WireReader<'_>) -> Result<Self, WireError> {
        let dims = reader.u32()? as usize;
        if dims > MAX_WIRE_DIMS {
            return Err(WireError::Oversized {
                declared: dims as u64,
                limit: MAX_WIRE_DIMS as u64,
            });
        }
        let words = dims.div_ceil(64);
        let mut packed = Vec::with_capacity(words);
        for _ in 0..words {
            packed.push(reader.u64()?);
        }
        Ok(Self::from_words(dims, packed))
    }
}

/// Hard cap on the dimensionality a wire-decoded vector may declare. Large
/// enough for any corpus this workspace models (the paper's widest workload is
/// 256-bit), small enough that a hostile declared length cannot size an
/// attacker-controlled allocation.
pub const MAX_WIRE_DIMS: usize = 1 << 20;

/// Wire tags for [`SearchError`] variants.
mod error_tag {
    pub const DIM_MISMATCH: u8 = 0;
    pub const ZERO_K: u8 = 1;
    pub const ZERO_DIMS: u8 = 2;
    pub const ZERO_DISTANCE_BOUND: u8 = 3;
    pub const CAPACITY_EXCEEDED: u8 = 4;
    pub const INVALID_CONFIG: u8 = 5;
    pub const UNSUPPORTED: u8 = 6;
    pub const BACKEND: u8 = 7;
    pub const DEADLINE_EXCEEDED: u8 = 8;
    pub const QUEUE_FULL: u8 = 9;
}

impl SearchError {
    /// Encodes the error as a tag byte plus its fields.
    ///
    /// `InvalidConfig` carries a `&'static str` field name; on the wire it
    /// travels as a string and decodes into the `Backend`-style leaked form —
    /// see [`Self::decode_wire`].
    pub fn encode_wire(&self, out: &mut Vec<u8>) {
        match self {
            Self::DimMismatch { expected, actual } => {
                out.push(error_tag::DIM_MISMATCH);
                put_u64(out, *expected as u64);
                put_u64(out, *actual as u64);
            }
            Self::ZeroK => out.push(error_tag::ZERO_K),
            Self::ZeroDims => out.push(error_tag::ZERO_DIMS),
            Self::ZeroDistanceBound => out.push(error_tag::ZERO_DISTANCE_BOUND),
            Self::CapacityExceeded { needed, limit } => {
                out.push(error_tag::CAPACITY_EXCEEDED);
                put_u64(out, *needed);
                put_u64(out, *limit);
            }
            Self::InvalidConfig { field, reason } => {
                out.push(error_tag::INVALID_CONFIG);
                put_string(out, field);
                put_string(out, reason);
            }
            Self::Unsupported { what } => {
                out.push(error_tag::UNSUPPORTED);
                put_string(out, what);
            }
            Self::Backend { backend, reason } => {
                out.push(error_tag::BACKEND);
                put_string(out, backend);
                put_string(out, reason);
            }
            Self::DeadlineExceeded => out.push(error_tag::DEADLINE_EXCEEDED),
            Self::QueueFull { capacity } => {
                out.push(error_tag::QUEUE_FULL);
                put_u64(out, *capacity as u64);
            }
        }
    }

    /// Decodes an error encoded by [`Self::encode_wire`].
    ///
    /// `InvalidConfig::field` is `&'static str` in memory; a decoded field
    /// name is re-expressed as `Backend { backend: "config", reason }` with
    /// the field folded into the reason, so decoding never leaks memory to
    /// fabricate a `'static` string.
    ///
    /// # Errors
    /// [`WireError`] on an unknown tag or truncated fields.
    pub fn decode_wire(reader: &mut WireReader<'_>) -> Result<Self, WireError> {
        match reader.u8()? {
            error_tag::DIM_MISMATCH => Ok(Self::DimMismatch {
                expected: reader.u64()? as usize,
                actual: reader.u64()? as usize,
            }),
            error_tag::ZERO_K => Ok(Self::ZeroK),
            error_tag::ZERO_DIMS => Ok(Self::ZeroDims),
            error_tag::ZERO_DISTANCE_BOUND => Ok(Self::ZeroDistanceBound),
            error_tag::CAPACITY_EXCEEDED => Ok(Self::CapacityExceeded {
                needed: reader.u64()?,
                limit: reader.u64()?,
            }),
            error_tag::INVALID_CONFIG => {
                let field = reader.string()?;
                let reason = reader.string()?;
                Ok(Self::Backend {
                    backend: "config".to_string(),
                    reason: format!("{field}: {reason}"),
                })
            }
            error_tag::UNSUPPORTED => Ok(Self::Unsupported {
                what: reader.string()?,
            }),
            error_tag::BACKEND => Ok(Self::Backend {
                backend: reader.string()?,
                reason: reader.string()?,
            }),
            error_tag::DEADLINE_EXCEEDED => Ok(Self::DeadlineExceeded),
            error_tag::QUEUE_FULL => Ok(Self::QueueFull {
                capacity: reader.u64()? as usize,
            }),
            _ => Err(WireError::Malformed {
                what: "search error tag",
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_error(error: SearchError) -> SearchError {
        let mut buf = Vec::new();
        error.encode_wire(&mut buf);
        let mut reader = WireReader::new(&buf);
        let decoded = SearchError::decode_wire(&mut reader).expect("decodes");
        assert!(reader.is_empty(), "decode must consume the whole encoding");
        decoded
    }

    #[test]
    fn errors_roundtrip() {
        for error in [
            SearchError::DimMismatch {
                expected: 64,
                actual: 32,
            },
            SearchError::ZeroK,
            SearchError::ZeroDims,
            SearchError::ZeroDistanceBound,
            SearchError::CapacityExceeded {
                needed: u64::MAX,
                limit: 7,
            },
            SearchError::Unsupported {
                what: "jaccard on gpu".to_string(),
            },
            SearchError::Backend {
                backend: "ap-engine".to_string(),
                reason: "invalid network".to_string(),
            },
            SearchError::DeadlineExceeded,
            SearchError::QueueFull { capacity: 1024 },
        ] {
            assert_eq!(roundtrip_error(error.clone()), error);
        }
    }

    #[test]
    fn invalid_config_survives_as_a_typed_error_with_both_fields() {
        let decoded = roundtrip_error(SearchError::InvalidConfig {
            field: "batch_size",
            reason: "must be at least 1".to_string(),
        });
        match decoded {
            SearchError::Backend { backend, reason } => {
                assert_eq!(backend, "config");
                assert!(reason.contains("batch_size"));
                assert!(reason.contains("must be at least 1"));
            }
            other => panic!("expected Backend form, got {other:?}"),
        }
    }

    #[test]
    fn options_roundtrip_with_and_without_optionals() {
        let plain = QueryOptions::top(7);
        let mut buf = Vec::new();
        plain.encode_wire(&mut buf);
        let decoded = QueryOptions::decode_wire(&mut WireReader::new(&buf)).unwrap();
        assert_eq!(decoded.k, 7);
        assert_eq!(decoded.within, None);
        assert_eq!(decoded.deadline, None);
        assert_eq!(decoded.result_key(), plain.result_key());

        let fancy = QueryOptions::top(3)
            .within(9)
            .execution(ExecutionPreference::CycleAccurate)
            .prioritized(Priority::High)
            .by(Deadline::after(Duration::from_secs(60)));
        buf.clear();
        fancy.encode_wire(&mut buf);
        let decoded = QueryOptions::decode_wire(&mut WireReader::new(&buf)).unwrap();
        assert_eq!(decoded.result_key(), fancy.result_key());
        assert_eq!(decoded.priority, Priority::High);
        let deadline = decoded.deadline.expect("deadline travels");
        assert!(!deadline.is_expired());
        assert!(deadline.remaining() <= Duration::from_secs(60));
        assert!(deadline.remaining() > Duration::from_secs(50));
    }

    #[test]
    fn vectors_roundtrip_and_mask_hostile_tail_bits() {
        let mut v = BinaryVector::zeros(70);
        v.set(0, true);
        v.set(69, true);
        let mut buf = Vec::new();
        v.encode_wire(&mut buf);
        let decoded = BinaryVector::decode_wire(&mut WireReader::new(&buf)).unwrap();
        assert_eq!(decoded, v);

        // Corrupt the tail word beyond dims: the decode must mask it.
        let mut hostile = buf.clone();
        let last = hostile.len() - 1;
        hostile[last] = 0xff;
        let decoded = BinaryVector::decode_wire(&mut WireReader::new(&hostile)).unwrap();
        assert_eq!(decoded.count_ones(), v.count_ones());
    }

    #[test]
    fn hostile_declared_dims_refused_before_allocation() {
        let mut buf = Vec::new();
        put_u32(&mut buf, u32::MAX);
        assert_eq!(
            BinaryVector::decode_wire(&mut WireReader::new(&buf)),
            Err(WireError::Oversized {
                declared: u32::MAX as u64,
                limit: MAX_WIRE_DIMS as u64,
            })
        );
    }

    #[test]
    fn truncation_is_typed_not_a_panic() {
        let mut buf = Vec::new();
        QueryOptions::top(5).within(3).encode_wire(&mut buf);
        for cut in 0..buf.len() {
            let result = QueryOptions::decode_wire(&mut WireReader::new(&buf[..cut]));
            assert!(result.is_err(), "prefix of {cut} bytes must not decode");
        }
    }

    #[test]
    fn reader_reports_exact_shortfall() {
        let mut reader = WireReader::new(&[1, 2, 3]);
        assert_eq!(reader.u8(), Ok(1));
        assert_eq!(
            reader.u32(),
            Err(WireError::Truncated {
                needed: 4,
                available: 2
            })
        );
        assert!(WireError::BadMagic { found: *b"HTTP" }
            .to_string()
            .contains("magic"));
    }
}
