//! Collections of binary vectors.
//!
//! A [`BinaryDataset`] stores a set of equal-dimensionality [`BinaryVector`]s
//! contiguously (vector-major, word-packed) so that the linear-scan baselines touch
//! memory sequentially — the access pattern the paper identifies as the von-Neumann
//! bottleneck — and so datasets can be partitioned into per-board-configuration
//! chunks for the AP's partial-reconfiguration engine.

use crate::bits::{words_for, BinaryVector};
use serde::{Deserialize, Serialize};

/// A dense collection of `n` binary vectors, each with the same dimensionality.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BinaryDataset {
    dims: usize,
    words_per_vec: usize,
    /// Flat storage: vector `i` occupies `words[i*words_per_vec .. (i+1)*words_per_vec]`.
    words: Vec<u64>,
    len: usize,
}

impl BinaryDataset {
    /// Creates an empty dataset holding vectors of `dims` dimensions.
    pub fn new(dims: usize) -> Self {
        Self {
            dims,
            words_per_vec: words_for(dims),
            words: Vec::new(),
            len: 0,
        }
    }

    /// Creates an empty dataset with capacity for `n` vectors.
    pub fn with_capacity(dims: usize, n: usize) -> Self {
        Self {
            dims,
            words_per_vec: words_for(dims),
            words: Vec::with_capacity(n * words_for(dims)),
            len: 0,
        }
    }

    /// Builds a dataset from an iterator of vectors.
    ///
    /// # Panics
    /// Panics if any vector's dimensionality differs from `dims`.
    pub fn from_vectors<I>(dims: usize, vectors: I) -> Self
    where
        I: IntoIterator<Item = BinaryVector>,
    {
        let mut ds = Self::new(dims);
        for v in vectors {
            ds.push(&v);
        }
        ds
    }

    /// Dimensionality of every vector in the dataset.
    #[inline]
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Number of vectors stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the dataset is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends a vector to the dataset.
    ///
    /// # Panics
    /// Panics if the vector's dimensionality differs from the dataset's.
    pub fn push(&mut self, v: &BinaryVector) {
        assert_eq!(
            v.dims(),
            self.dims,
            "vector dims {} != dataset dims {}",
            v.dims(),
            self.dims
        );
        self.words.extend_from_slice(v.words());
        // A vector may carry exactly words_for(dims) words by construction.
        debug_assert_eq!(v.words().len(), self.words_per_vec);
        self.len += 1;
    }

    /// Returns the packed words of vector `i`.
    #[inline]
    pub fn vector_words(&self, i: usize) -> &[u64] {
        assert!(
            i < self.len,
            "vector index {i} out of range (len={})",
            self.len
        );
        let start = i * self.words_per_vec;
        &self.words[start..start + self.words_per_vec]
    }

    /// Materializes vector `i` as an owned [`BinaryVector`].
    pub fn vector(&self, i: usize) -> BinaryVector {
        BinaryVector::from_words(self.dims, self.vector_words(i).to_vec())
    }

    /// Hamming distance between the stored vector `i` and an external query.
    ///
    /// Operates directly on the packed words without materializing the vector.
    #[inline]
    pub fn hamming_to(&self, i: usize, query: &BinaryVector) -> u32 {
        assert_eq!(query.dims(), self.dims, "query dims mismatch");
        self.vector_words(i)
            .iter()
            .zip(query.words().iter())
            .map(|(a, b)| (a ^ b).count_ones())
            .sum()
    }

    /// Hamming distances from `query` to every vector in the dataset, written into
    /// a caller-owned buffer (cleared first, then filled in vector order).
    ///
    /// One dimensionality check covers the whole batch and the kernel runs straight
    /// over the packed word storage, so per-pair assert and iterator-zip overhead
    /// disappears from the hot loops of the behavioural AP engine and the
    /// linear-scan baseline.
    ///
    /// # Panics
    /// Panics if the query's dimensionality differs from the dataset's.
    pub fn hamming_batch_into(&self, query: &BinaryVector, out: &mut Vec<u32>) {
        assert_eq!(
            query.dims(),
            self.dims,
            "query dims {} != dataset dims {}",
            query.dims(),
            self.dims
        );
        out.clear();
        out.reserve(self.len);
        if self.words_per_vec == 0 {
            out.extend(std::iter::repeat_n(0u32, self.len));
            return;
        }
        let qw = query.words();
        for chunk in self.words.chunks_exact(self.words_per_vec) {
            let mut dist = 0u32;
            for (a, b) in chunk.iter().zip(qw) {
                dist += (a ^ b).count_ones();
            }
            out.push(dist);
        }
    }

    /// Iterates over all vectors as owned [`BinaryVector`]s.
    pub fn iter(&self) -> impl Iterator<Item = BinaryVector> + '_ {
        (0..self.len).map(move |i| self.vector(i))
    }

    /// Splits the dataset into contiguous partitions of at most `chunk` vectors.
    ///
    /// This mirrors how the AP engine splits a large dataset across board
    /// configurations: each partition keeps the global index of its first vector so
    /// reported IDs can be mapped back to dataset positions.
    pub fn partition(&self, chunk: usize) -> Vec<DatasetPartition> {
        assert!(chunk > 0, "partition chunk size must be positive");
        let mut parts = Vec::new();
        let mut start = 0;
        while start < self.len {
            let end = (start + chunk).min(self.len);
            let mut data = BinaryDataset::with_capacity(self.dims, end - start);
            for i in start..end {
                data.push(&self.vector(i));
            }
            parts.push(DatasetPartition {
                base_index: start,
                data,
            });
            start = end;
        }
        parts
    }

    /// Total bytes of payload (packed) — used for bandwidth accounting.
    pub fn payload_bytes(&self) -> usize {
        self.len * self.dims / 8
            + if !self.dims.is_multiple_of(8) {
                self.len
            } else {
                0
            }
    }
}

/// A contiguous slice of a dataset assigned to one AP board configuration.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DatasetPartition {
    /// Global index (into the parent dataset) of this partition's first vector.
    pub base_index: usize,
    /// The vectors belonging to this partition.
    pub data: BinaryDataset,
}

impl DatasetPartition {
    /// Maps a local vector index within this partition to its global dataset index.
    #[inline]
    pub fn global_index(&self, local: usize) -> usize {
        self.base_index + local
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_dataset() -> BinaryDataset {
        BinaryDataset::from_vectors(
            4,
            vec![
                BinaryVector::from_bits(&[1, 0, 1, 1]),
                BinaryVector::from_bits(&[0, 0, 0, 0]),
                BinaryVector::from_bits(&[1, 1, 1, 1]),
                BinaryVector::from_bits(&[1, 0, 0, 1]),
                BinaryVector::from_bits(&[0, 1, 0, 1]),
            ],
        )
    }

    #[test]
    fn push_and_retrieve() {
        let ds = small_dataset();
        assert_eq!(ds.len(), 5);
        assert_eq!(ds.dims(), 4);
        assert!(!ds.is_empty());
        assert_eq!(ds.vector(0).to_bits(), vec![1, 0, 1, 1]);
        assert_eq!(ds.vector(4).to_bits(), vec![0, 1, 0, 1]);
    }

    #[test]
    fn hamming_to_matches_vector_hamming() {
        let ds = small_dataset();
        let q = BinaryVector::from_bits(&[1, 0, 0, 1]);
        for i in 0..ds.len() {
            assert_eq!(ds.hamming_to(i, &q), ds.vector(i).hamming(&q));
        }
    }

    #[test]
    fn hamming_batch_matches_per_pair_kernel() {
        let ds = small_dataset();
        let q = BinaryVector::from_bits(&[1, 0, 0, 1]);
        let mut batch = vec![99; 2]; // stale contents must be cleared
        ds.hamming_batch_into(&q, &mut batch);
        let expected: Vec<u32> = (0..ds.len()).map(|i| ds.hamming_to(i, &q)).collect();
        assert_eq!(batch, expected);
        // Reuse the same buffer against an empty dataset.
        let empty = BinaryDataset::new(4);
        empty.hamming_batch_into(&q, &mut batch);
        assert!(batch.is_empty());
    }

    #[test]
    #[should_panic(expected = "query dims")]
    fn hamming_batch_rejects_wrong_dims() {
        let ds = small_dataset();
        let mut out = Vec::new();
        ds.hamming_batch_into(&BinaryVector::zeros(5), &mut out);
    }

    #[test]
    fn iter_yields_all_vectors() {
        let ds = small_dataset();
        let collected: Vec<_> = ds.iter().collect();
        assert_eq!(collected.len(), 5);
        assert_eq!(collected[2].to_bits(), vec![1, 1, 1, 1]);
    }

    #[test]
    fn partition_covers_everything_in_order() {
        let ds = small_dataset();
        let parts = ds.partition(2);
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0].base_index, 0);
        assert_eq!(parts[1].base_index, 2);
        assert_eq!(parts[2].base_index, 4);
        assert_eq!(parts[0].data.len(), 2);
        assert_eq!(parts[2].data.len(), 1);
        // Reassemble and compare.
        let mut reassembled = Vec::new();
        for p in &parts {
            for i in 0..p.data.len() {
                reassembled.push((p.global_index(i), p.data.vector(i)));
            }
        }
        for (gi, v) in reassembled {
            assert_eq!(v, ds.vector(gi));
        }
    }

    #[test]
    fn partition_chunk_larger_than_len() {
        let ds = small_dataset();
        let parts = ds.partition(100);
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].data.len(), 5);
    }

    #[test]
    #[should_panic(expected = "chunk size must be positive")]
    fn partition_zero_chunk_panics() {
        let _ = small_dataset().partition(0);
    }

    #[test]
    #[should_panic(expected = "vector dims")]
    fn push_wrong_dims_panics() {
        let mut ds = BinaryDataset::new(4);
        ds.push(&BinaryVector::zeros(5));
    }

    #[test]
    fn empty_dataset() {
        let ds = BinaryDataset::new(64);
        assert!(ds.is_empty());
        assert_eq!(ds.partition(10).len(), 0);
    }

    #[test]
    fn payload_bytes_for_byte_aligned_dims() {
        let mut ds = BinaryDataset::new(128);
        ds.push(&BinaryVector::zeros(128));
        ds.push(&BinaryVector::ones(128));
        assert_eq!(ds.payload_bytes(), 2 * 128 / 8);
    }
}
