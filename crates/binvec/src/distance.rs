//! Free-function distance kernels over binary vectors.
//!
//! These mirror the kernels used by every comparison platform in the paper: the CPU
//! baseline (FLANN-style Hamming popcount), the GPU baseline (32-bit XOR + POPCOUNT),
//! the FPGA accelerator (XOR/POPCOUNT distance unit) and the AP itself (per-dimension
//! match counting — the *inverted* Hamming distance).

use crate::bits::BinaryVector;

/// Hamming distance between two equal-dimensionality binary vectors.
#[inline]
pub fn hamming(a: &BinaryVector, b: &BinaryVector) -> u32 {
    a.hamming(b)
}

/// Inverted Hamming distance: the number of dimensions on which `a` and `b` agree.
///
/// The paper's Hamming macro computes this quantity directly (one counter increment
/// per matching dimension) because the AP has no subtraction; the temporally encoded
/// sort then releases the *highest* inverted-distance (most similar) vectors first.
#[inline]
pub fn inverted_hamming(a: &BinaryVector, b: &BinaryVector) -> u32 {
    a.inverted_hamming(b)
}

/// Jaccard similarity between the set-of-set-bits interpretations of `a` and `b`.
#[inline]
pub fn jaccard_similarity(a: &BinaryVector, b: &BinaryVector) -> f64 {
    a.jaccard(b)
}

/// Hamming distance computed on raw packed words.
///
/// Used by the linear-scan and FPGA baselines which operate on word streams without
/// materializing [`BinaryVector`]s.
#[inline]
pub fn hamming_words(a: &[u64], b: &[u64]) -> u32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| (x ^ y).count_ones())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_functions_match_methods() {
        let a = BinaryVector::from_bits(&[1, 0, 1, 1, 0, 0, 1, 0]);
        let b = BinaryVector::from_bits(&[1, 1, 1, 0, 0, 0, 0, 0]);
        assert_eq!(hamming(&a, &b), a.hamming(&b));
        assert_eq!(inverted_hamming(&a, &b), a.inverted_hamming(&b));
        assert!((jaccard_similarity(&a, &b) - a.jaccard(&b)).abs() < 1e-12);
    }

    #[test]
    fn hamming_plus_inverted_equals_dims() {
        let a = BinaryVector::from_bits(&[1, 0, 1, 1, 0, 1]);
        let b = BinaryVector::from_bits(&[0, 0, 1, 0, 0, 1]);
        assert_eq!(hamming(&a, &b) + inverted_hamming(&a, &b), 6);
    }

    #[test]
    fn hamming_words_matches_vector_hamming() {
        let a = BinaryVector::from_bits(&[1, 0, 1, 1, 0, 1, 1, 1, 0]);
        let b = BinaryVector::from_bits(&[0, 0, 1, 0, 0, 1, 0, 1, 1]);
        assert_eq!(hamming_words(a.words(), b.words()), a.hamming(&b));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_pair(max_dims: usize) -> impl Strategy<Value = (BinaryVector, BinaryVector)> {
        (1..=max_dims).prop_flat_map(|d| {
            (
                prop::collection::vec(any::<bool>(), d),
                prop::collection::vec(any::<bool>(), d),
            )
                .prop_map(|(a, b)| (BinaryVector::from_bools(&a), BinaryVector::from_bools(&b)))
        })
    }

    proptest! {
        #[test]
        fn hamming_is_symmetric((a, b) in arb_pair(300)) {
            prop_assert_eq!(hamming(&a, &b), hamming(&b, &a));
        }

        #[test]
        fn hamming_is_zero_iff_equal((a, b) in arb_pair(300)) {
            prop_assert_eq!(hamming(&a, &b) == 0, a == b);
        }

        #[test]
        fn hamming_bounded_by_dims((a, b) in arb_pair(300)) {
            prop_assert!(hamming(&a, &b) <= a.dims() as u32);
        }

        #[test]
        fn inverted_complements((a, b) in arb_pair(300)) {
            prop_assert_eq!(hamming(&a, &b) + inverted_hamming(&a, &b), a.dims() as u32);
        }

        #[test]
        fn triangle_inequality((a, b) in arb_pair(128), flips in prop::collection::vec(0usize..128, 0..32)) {
            // Construct c by flipping some bits of b (indices clamped to dims).
            let mut c = b.clone();
            for f in flips {
                if f < c.dims() { c.flip(f); }
            }
            prop_assert!(hamming(&a, &c) <= hamming(&a, &b) + hamming(&b, &c));
        }

        #[test]
        fn jaccard_in_unit_interval((a, b) in arb_pair(300)) {
            let j = jaccard_similarity(&a, &b);
            prop_assert!((0.0..=1.0).contains(&j));
        }
    }
}
