//! The workspace-wide query vocabulary: [`QueryOptions`] and [`SearchError`].
//!
//! Every query entry point in the workspace — the AP engine's fallible
//! `try_search_batch`, the serving pipeline's `query`/`query_batch`, the
//! service front door — speaks the same two types defined here, so callers
//! handle one error enum and one options struct no matter which backend
//! answers the query.

use crate::topk::Neighbor;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::time::{Duration, Instant};

/// How the answering engine should execute, when the caller cares.
///
/// The single-board AP engine honours the preference by overriding its
/// configured execution mode (`ap_knn::ExecutionMode`) per call, including
/// behind sharded deployments. Engines that are inherently cycle-accurate
/// (the multi-board scheduler, the Jaccard searcher) and host-only engines
/// (the CPU baselines and approximate indexes) ignore it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ExecutionPreference {
    /// Use whatever mode the engine was configured with (the default).
    #[default]
    Auto,
    /// Force a cycle-accurate simulation of every partition network.
    CycleAccurate,
    /// Force the behavioural (analytical-accounting) path.
    Behavioral,
}

/// Scheduling priority of a query inside a concurrent serving runtime.
///
/// Higher-priority queries are dispatched first; within one priority class the
/// scheduler orders by deadline (earliest first), then by submission order.
/// The priority never changes *what* a query returns — only *when* it runs —
/// so it is excluded from result caching keys ([`QueryOptions::result_key`]).
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub enum Priority {
    /// Scheduled after all `Normal` and `High` traffic.
    Low,
    /// The default class.
    #[default]
    Normal,
    /// Scheduled before all `Normal` and `Low` traffic.
    High,
}

/// A wall-clock deadline for a submitted query.
///
/// A runtime with deadline-aware admission fails queries whose deadline has
/// passed with [`SearchError::DeadlineExceeded`] *without dispatching them*,
/// so a backlogged queue sheds work nobody is waiting for instead of burning
/// fabric time on it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Deadline(Instant);

impl Deadline {
    /// A deadline at an absolute instant.
    pub fn at(instant: Instant) -> Self {
        Self(instant)
    }

    /// A deadline `budget` from now.
    pub fn after(budget: Duration) -> Self {
        Self(Instant::now() + budget)
    }

    /// The absolute instant of the deadline.
    pub fn instant(&self) -> Instant {
        self.0
    }

    /// Whether the deadline has already passed.
    pub fn is_expired(&self) -> bool {
        Instant::now() >= self.0
    }

    /// Time left until the deadline (zero if it has passed).
    pub fn remaining(&self) -> Duration {
        self.0.saturating_duration_since(Instant::now())
    }
}

/// The result-affecting slice of [`QueryOptions`]: everything that changes
/// *what* a query returns, and nothing that merely changes *when* it runs.
///
/// Result caches key their entries by `(query, ResultKey)` — folding in the
/// distance bound and execution preference, not just `k`, so a bounded query
/// can never be answered from an entry computed under a different bound — and
/// batch schedulers group only queries with equal keys into one dispatch.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ResultKey {
    /// Maximum neighbors returned per query.
    pub k: usize,
    /// Optional exclusive distance bound.
    pub within: Option<u32>,
    /// Execution preference (results are bit-identical across preferences,
    /// but the key keeps the cache conservative and auditable).
    pub execution: ExecutionPreference,
}

/// Per-query options carried by every uniform query entry point.
///
/// `k` caps the number of neighbors returned. `within`, when set, additionally
/// restricts results to neighbors whose distance key is *strictly below* the
/// bound — the ε-bounded range queries of the paper's §VII, expressed in the
/// answering backend's distance key (Hamming bits for the exact engines,
/// quantized Jaccard dissimilarity for the Jaccard searcher). A bound of zero
/// would exclude even exact matches and is rejected at validation time.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueryOptions {
    /// Maximum neighbors returned per query.
    pub k: usize,
    /// Optional exclusive distance bound (`distance < within`).
    pub within: Option<u32>,
    /// Execution preference forwarded to fabric-simulating engines.
    pub execution: ExecutionPreference,
    /// Scheduling priority inside a concurrent serving runtime. Ignored by
    /// direct (synchronous) query paths.
    pub priority: Priority,
    /// Optional completion deadline. A deadline-aware runtime fails the query
    /// with [`SearchError::DeadlineExceeded`] instead of dispatching it once
    /// the deadline passes. Ignored by direct (synchronous) query paths.
    /// Skipped by serialization: a deadline is an in-process wall-clock
    /// instant ([`std::time::Instant`] has no stable epoch), so a
    /// deserialized `QueryOptions` carries no deadline.
    #[serde(skip)]
    pub deadline: Option<Deadline>,
}

impl Default for QueryOptions {
    fn default() -> Self {
        Self {
            k: 10,
            within: None,
            execution: ExecutionPreference::Auto,
            priority: Priority::Normal,
            deadline: None,
        }
    }
}

impl QueryOptions {
    /// Options returning the `k` nearest neighbors with no distance bound.
    pub fn top(k: usize) -> Self {
        Self {
            k,
            ..Self::default()
        }
    }

    /// Restricts results to neighbors with `distance < bound`.
    pub fn within(mut self, bound: u32) -> Self {
        self.within = Some(bound);
        self
    }

    /// Sets the execution preference.
    pub fn execution(mut self, execution: ExecutionPreference) -> Self {
        self.execution = execution;
        self
    }

    /// Sets the scheduling priority (runtime submission paths only).
    pub fn prioritized(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Sets the completion deadline (runtime submission paths only).
    pub fn by(mut self, deadline: Deadline) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// The result-affecting fields, as one hashable/compareable key. The
    /// scheduling fields (`priority`, `deadline`) are deliberately excluded:
    /// they steer *when* a query runs, never *what* it returns.
    pub fn result_key(&self) -> ResultKey {
        ResultKey {
            k: self.k,
            within: self.within,
            execution: self.execution,
        }
    }

    /// Checks the options for internal consistency.
    ///
    /// # Errors
    /// [`SearchError::ZeroK`] when `k` is zero and
    /// [`SearchError::ZeroDistanceBound`] when the bound is `Some(0)` (a zero
    /// bound excludes even exact matches, so it is always a caller mistake).
    pub fn validate(&self) -> Result<(), SearchError> {
        if self.k == 0 {
            return Err(SearchError::ZeroK);
        }
        if self.within == Some(0) {
            return Err(SearchError::ZeroDistanceBound);
        }
        Ok(())
    }

    /// A copy of the options with the distance bound removed.
    ///
    /// Caching layers store the unbounded top-`k` answer and re-apply the
    /// bound per lookup, so a bounded and an unbounded query share one entry.
    pub fn unbounded(mut self) -> Self {
        self.within = None;
        self
    }

    /// Applies the distance bound to a `(distance, id)`-sorted neighbor list,
    /// truncating at the first neighbor at or beyond the bound.
    pub fn clip(&self, neighbors: &mut Vec<Neighbor>) {
        if let Some(bound) = self.within {
            let cut = neighbors.partition_point(|n| n.distance < bound);
            neighbors.truncate(cut);
        }
    }
}

/// The one error type every fallible query path in the workspace returns.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SearchError {
    /// A dataset or query vector's dimensionality differs from the engine's.
    DimMismatch {
        /// Dimensionality the engine was built for.
        expected: usize,
        /// Dimensionality actually supplied.
        actual: usize,
    },
    /// `k` was zero.
    ZeroK,
    /// The design (or dataset) has zero dimensions, so no automaton can be built.
    ZeroDims,
    /// The distance bound was zero, which excludes even exact matches.
    ZeroDistanceBound,
    /// The request exceeds a hard capacity of the execution substrate.
    CapacityExceeded {
        /// Units the request needs (e.g. symbol-stream offsets).
        needed: u64,
        /// Units the substrate can address.
        limit: u64,
    },
    /// A configuration field failed validation at build time.
    InvalidConfig {
        /// The offending field.
        field: &'static str,
        /// Why the value was rejected.
        reason: String,
    },
    /// The requested metric/backend/option combination is not servable.
    Unsupported {
        /// Human-readable description of the unsupported combination.
        what: String,
    },
    /// The backend failed while executing (e.g. an invalid automata network).
    Backend {
        /// The backend's label.
        backend: String,
        /// The underlying failure.
        reason: String,
    },
    /// The query's deadline passed before it could be dispatched; the query
    /// was failed without touching the backend.
    DeadlineExceeded,
    /// The bounded admission queue is at capacity; the submission was rejected
    /// instead of blocking the caller or growing the queue without bound.
    QueueFull {
        /// The queue's configured capacity (pending queries).
        capacity: usize,
    },
}

impl fmt::Display for SearchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::DimMismatch { expected, actual } => {
                write!(f, "dims mismatch: expected {expected}, got {actual}")
            }
            Self::ZeroK => write!(f, "k must be positive"),
            Self::ZeroDims => write!(f, "design must have at least one dimension"),
            Self::ZeroDistanceBound => {
                write!(
                    f,
                    "distance bound of 0 selects nothing (bound is exclusive)"
                )
            }
            Self::CapacityExceeded { needed, limit } => {
                write!(
                    f,
                    "capacity exceeded: need {needed}, substrate limit {limit}"
                )
            }
            Self::InvalidConfig { field, reason } => {
                write!(f, "invalid config: {field}: {reason}")
            }
            Self::Unsupported { what } => write!(f, "unsupported: {what}"),
            Self::Backend { backend, reason } => {
                write!(f, "backend '{backend}' failed: {reason}")
            }
            Self::DeadlineExceeded => {
                write!(f, "deadline passed before the query could be dispatched")
            }
            Self::QueueFull { capacity } => {
                write!(f, "admission queue full ({capacity} pending queries)")
            }
        }
    }
}

impl std::error::Error for SearchError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_options_are_valid() {
        let opts = QueryOptions::default();
        assert_eq!(opts.k, 10);
        assert_eq!(opts.within, None);
        assert_eq!(opts.execution, ExecutionPreference::Auto);
        assert!(opts.validate().is_ok());
    }

    #[test]
    fn zero_k_and_zero_bound_are_rejected() {
        assert_eq!(QueryOptions::top(0).validate(), Err(SearchError::ZeroK));
        assert_eq!(
            QueryOptions::top(3).within(0).validate(),
            Err(SearchError::ZeroDistanceBound)
        );
        assert!(QueryOptions::top(3).within(1).validate().is_ok());
    }

    #[test]
    fn clip_truncates_at_the_exclusive_bound() {
        let mut neighbors = vec![
            Neighbor::new(4, 0),
            Neighbor::new(1, 2),
            Neighbor::new(9, 2),
            Neighbor::new(3, 5),
        ];
        QueryOptions::top(10).within(3).clip(&mut neighbors);
        assert_eq!(
            neighbors,
            vec![
                Neighbor::new(4, 0),
                Neighbor::new(1, 2),
                Neighbor::new(9, 2)
            ]
        );
        let mut same = vec![Neighbor::new(0, 7)];
        QueryOptions::top(10).clip(&mut same);
        assert_eq!(same.len(), 1, "no bound leaves the list untouched");
        QueryOptions::top(10).within(7).clip(&mut same);
        assert!(same.is_empty(), "bound is exclusive");
    }

    #[test]
    fn unbounded_strips_only_the_bound() {
        let opts = QueryOptions::top(5)
            .within(9)
            .execution(ExecutionPreference::CycleAccurate);
        let stripped = opts.unbounded();
        assert_eq!(stripped.k, 5);
        assert_eq!(stripped.within, None);
        assert_eq!(stripped.execution, ExecutionPreference::CycleAccurate);
    }

    #[test]
    fn scheduling_fields_default_inert_and_stay_out_of_the_result_key() {
        let opts = QueryOptions::default();
        assert_eq!(opts.priority, Priority::Normal);
        assert_eq!(opts.deadline, None);

        let scheduled = QueryOptions::top(5)
            .within(3)
            .prioritized(Priority::High)
            .by(Deadline::after(std::time::Duration::from_secs(60)));
        assert_eq!(scheduled.priority, Priority::High);
        assert!(scheduled.deadline.is_some());
        assert!(!scheduled.deadline.unwrap().is_expired());
        // The result key folds in k, bound, and execution — and nothing else.
        assert_eq!(
            scheduled.result_key(),
            QueryOptions::top(5).within(3).result_key()
        );
        assert_ne!(
            scheduled.result_key(),
            QueryOptions::top(5).result_key(),
            "a distance bound must change the result key"
        );
        assert_ne!(
            QueryOptions::top(5).result_key(),
            QueryOptions::top(6).result_key()
        );
    }

    #[test]
    fn priorities_order_low_to_high() {
        assert!(Priority::Low < Priority::Normal);
        assert!(Priority::Normal < Priority::High);
    }

    #[test]
    fn deadlines_expire_and_report_remaining_time() {
        let past = Deadline::at(Instant::now() - Duration::from_millis(1));
        assert!(past.is_expired());
        assert_eq!(past.remaining(), Duration::ZERO);
        let future = Deadline::after(Duration::from_secs(3600));
        assert!(!future.is_expired());
        assert!(future.remaining() > Duration::from_secs(3000));
        assert!(past < future);
    }

    #[test]
    fn errors_render_their_context() {
        let e = SearchError::DimMismatch {
            expected: 64,
            actual: 32,
        };
        assert!(e.to_string().contains("expected 64"));
        assert!(SearchError::ZeroK
            .to_string()
            .contains("k must be positive"));
        let e = SearchError::InvalidConfig {
            field: "batch_size",
            reason: "must be at least 1".into(),
        };
        assert!(e.to_string().contains("batch_size"));
        assert!(SearchError::DeadlineExceeded
            .to_string()
            .contains("deadline"));
        assert!(SearchError::QueueFull { capacity: 64 }
            .to_string()
            .contains("64"));
    }
}
