//! The workspace-wide query vocabulary: [`QueryOptions`] and [`SearchError`].
//!
//! Every query entry point in the workspace — the AP engine's fallible
//! `try_search_batch`, the serving pipeline's `query`/`query_batch`, the
//! service front door — speaks the same two types defined here, so callers
//! handle one error enum and one options struct no matter which backend
//! answers the query.

use crate::topk::Neighbor;
use serde::{Deserialize, Serialize};
use std::fmt;

/// How the answering engine should execute, when the caller cares.
///
/// The single-board AP engine honours the preference by overriding its
/// configured execution mode (`ap_knn::ExecutionMode`) per call, including
/// behind sharded deployments. Engines that are inherently cycle-accurate
/// (the multi-board scheduler, the Jaccard searcher) and host-only engines
/// (the CPU baselines and approximate indexes) ignore it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExecutionPreference {
    /// Use whatever mode the engine was configured with (the default).
    #[default]
    Auto,
    /// Force a cycle-accurate simulation of every partition network.
    CycleAccurate,
    /// Force the behavioural (analytical-accounting) path.
    Behavioral,
}

/// Per-query options carried by every uniform query entry point.
///
/// `k` caps the number of neighbors returned. `within`, when set, additionally
/// restricts results to neighbors whose distance key is *strictly below* the
/// bound — the ε-bounded range queries of the paper's §VII, expressed in the
/// answering backend's distance key (Hamming bits for the exact engines,
/// quantized Jaccard dissimilarity for the Jaccard searcher). A bound of zero
/// would exclude even exact matches and is rejected at validation time.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueryOptions {
    /// Maximum neighbors returned per query.
    pub k: usize,
    /// Optional exclusive distance bound (`distance < within`).
    pub within: Option<u32>,
    /// Execution preference forwarded to fabric-simulating engines.
    pub execution: ExecutionPreference,
}

impl Default for QueryOptions {
    fn default() -> Self {
        Self {
            k: 10,
            within: None,
            execution: ExecutionPreference::Auto,
        }
    }
}

impl QueryOptions {
    /// Options returning the `k` nearest neighbors with no distance bound.
    pub fn top(k: usize) -> Self {
        Self {
            k,
            ..Self::default()
        }
    }

    /// Restricts results to neighbors with `distance < bound`.
    pub fn within(mut self, bound: u32) -> Self {
        self.within = Some(bound);
        self
    }

    /// Sets the execution preference.
    pub fn execution(mut self, execution: ExecutionPreference) -> Self {
        self.execution = execution;
        self
    }

    /// Checks the options for internal consistency.
    ///
    /// # Errors
    /// [`SearchError::ZeroK`] when `k` is zero and
    /// [`SearchError::ZeroDistanceBound`] when the bound is `Some(0)` (a zero
    /// bound excludes even exact matches, so it is always a caller mistake).
    pub fn validate(&self) -> Result<(), SearchError> {
        if self.k == 0 {
            return Err(SearchError::ZeroK);
        }
        if self.within == Some(0) {
            return Err(SearchError::ZeroDistanceBound);
        }
        Ok(())
    }

    /// A copy of the options with the distance bound removed.
    ///
    /// Caching layers store the unbounded top-`k` answer and re-apply the
    /// bound per lookup, so a bounded and an unbounded query share one entry.
    pub fn unbounded(mut self) -> Self {
        self.within = None;
        self
    }

    /// Applies the distance bound to a `(distance, id)`-sorted neighbor list,
    /// truncating at the first neighbor at or beyond the bound.
    pub fn clip(&self, neighbors: &mut Vec<Neighbor>) {
        if let Some(bound) = self.within {
            let cut = neighbors.partition_point(|n| n.distance < bound);
            neighbors.truncate(cut);
        }
    }
}

/// The one error type every fallible query path in the workspace returns.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SearchError {
    /// A dataset or query vector's dimensionality differs from the engine's.
    DimMismatch {
        /// Dimensionality the engine was built for.
        expected: usize,
        /// Dimensionality actually supplied.
        actual: usize,
    },
    /// `k` was zero.
    ZeroK,
    /// The design (or dataset) has zero dimensions, so no automaton can be built.
    ZeroDims,
    /// The distance bound was zero, which excludes even exact matches.
    ZeroDistanceBound,
    /// The request exceeds a hard capacity of the execution substrate.
    CapacityExceeded {
        /// Units the request needs (e.g. symbol-stream offsets).
        needed: u64,
        /// Units the substrate can address.
        limit: u64,
    },
    /// A configuration field failed validation at build time.
    InvalidConfig {
        /// The offending field.
        field: &'static str,
        /// Why the value was rejected.
        reason: String,
    },
    /// The requested metric/backend/option combination is not servable.
    Unsupported {
        /// Human-readable description of the unsupported combination.
        what: String,
    },
    /// The backend failed while executing (e.g. an invalid automata network).
    Backend {
        /// The backend's label.
        backend: String,
        /// The underlying failure.
        reason: String,
    },
}

impl fmt::Display for SearchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::DimMismatch { expected, actual } => {
                write!(f, "dims mismatch: expected {expected}, got {actual}")
            }
            Self::ZeroK => write!(f, "k must be positive"),
            Self::ZeroDims => write!(f, "design must have at least one dimension"),
            Self::ZeroDistanceBound => {
                write!(
                    f,
                    "distance bound of 0 selects nothing (bound is exclusive)"
                )
            }
            Self::CapacityExceeded { needed, limit } => {
                write!(
                    f,
                    "capacity exceeded: need {needed}, substrate limit {limit}"
                )
            }
            Self::InvalidConfig { field, reason } => {
                write!(f, "invalid config: {field}: {reason}")
            }
            Self::Unsupported { what } => write!(f, "unsupported: {what}"),
            Self::Backend { backend, reason } => {
                write!(f, "backend '{backend}' failed: {reason}")
            }
        }
    }
}

impl std::error::Error for SearchError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_options_are_valid() {
        let opts = QueryOptions::default();
        assert_eq!(opts.k, 10);
        assert_eq!(opts.within, None);
        assert_eq!(opts.execution, ExecutionPreference::Auto);
        assert!(opts.validate().is_ok());
    }

    #[test]
    fn zero_k_and_zero_bound_are_rejected() {
        assert_eq!(QueryOptions::top(0).validate(), Err(SearchError::ZeroK));
        assert_eq!(
            QueryOptions::top(3).within(0).validate(),
            Err(SearchError::ZeroDistanceBound)
        );
        assert!(QueryOptions::top(3).within(1).validate().is_ok());
    }

    #[test]
    fn clip_truncates_at_the_exclusive_bound() {
        let mut neighbors = vec![
            Neighbor::new(4, 0),
            Neighbor::new(1, 2),
            Neighbor::new(9, 2),
            Neighbor::new(3, 5),
        ];
        QueryOptions::top(10).within(3).clip(&mut neighbors);
        assert_eq!(
            neighbors,
            vec![
                Neighbor::new(4, 0),
                Neighbor::new(1, 2),
                Neighbor::new(9, 2)
            ]
        );
        let mut same = vec![Neighbor::new(0, 7)];
        QueryOptions::top(10).clip(&mut same);
        assert_eq!(same.len(), 1, "no bound leaves the list untouched");
        QueryOptions::top(10).within(7).clip(&mut same);
        assert!(same.is_empty(), "bound is exclusive");
    }

    #[test]
    fn unbounded_strips_only_the_bound() {
        let opts = QueryOptions::top(5)
            .within(9)
            .execution(ExecutionPreference::CycleAccurate);
        let stripped = opts.unbounded();
        assert_eq!(stripped.k, 5);
        assert_eq!(stripped.within, None);
        assert_eq!(stripped.execution, ExecutionPreference::CycleAccurate);
    }

    #[test]
    fn errors_render_their_context() {
        let e = SearchError::DimMismatch {
            expected: 64,
            actual: 32,
        };
        assert!(e.to_string().contains("expected 64"));
        assert!(SearchError::ZeroK
            .to_string()
            .contains("k must be positive"));
        let e = SearchError::InvalidConfig {
            field: "batch_size",
            reason: "must be at least 1".into(),
        };
        assert!(e.to_string().contains("batch_size"));
    }
}
