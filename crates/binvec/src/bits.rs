//! Bit-packed binary vectors.
//!
//! The Automata Processor encodes one vector *dimension* per streamed symbol (one bit
//! of payload per 8-bit symbol), while CPU/GPU/FPGA baselines operate on words of
//! packed bits (the paper's CUDA baseline uses 32-bit XOR + POPCOUNT). A
//! [`BinaryVector`] stores the dimensions packed into `u64` words so both views are
//! cheap: word-level access for the von-Neumann baselines and per-dimension access for
//! symbol-stream construction.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A fixed-dimensionality binary feature vector, bit-packed into `u64` words.
///
/// Bit `i` of the vector is stored in word `i / 64`, bit position `i % 64`
/// (little-endian bit order within the word). Bits beyond `dims` in the last word are
/// always zero; this invariant is maintained by every constructor and mutator and is
/// relied upon by the word-level Hamming kernels.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BinaryVector {
    dims: usize,
    words: Vec<u64>,
}

impl BinaryVector {
    /// Creates an all-zero vector with `dims` dimensions.
    pub fn zeros(dims: usize) -> Self {
        Self {
            dims,
            words: vec![0u64; words_for(dims)],
        }
    }

    /// Creates an all-ones vector with `dims` dimensions.
    pub fn ones(dims: usize) -> Self {
        let mut v = Self {
            dims,
            words: vec![u64::MAX; words_for(dims)],
        };
        v.mask_tail();
        v
    }

    /// Builds a vector from a slice of booleans, one per dimension.
    pub fn from_bools(bits: &[bool]) -> Self {
        let mut v = Self::zeros(bits.len());
        for (i, &b) in bits.iter().enumerate() {
            if b {
                v.set(i, true);
            }
        }
        v
    }

    /// Builds a vector from a slice of `0`/`1` bytes, one per dimension.
    ///
    /// Any nonzero byte is treated as a set bit.
    pub fn from_bits(bits: &[u8]) -> Self {
        let mut v = Self::zeros(bits.len());
        for (i, &b) in bits.iter().enumerate() {
            if b != 0 {
                v.set(i, true);
            }
        }
        v
    }

    /// Builds a vector of `dims` dimensions from pre-packed little-endian words.
    ///
    /// # Panics
    /// Panics if `words` is shorter than required for `dims` dimensions.
    pub fn from_words(dims: usize, words: Vec<u64>) -> Self {
        assert!(
            words.len() >= words_for(dims),
            "need {} words for {} dims, got {}",
            words_for(dims),
            dims,
            words.len()
        );
        let mut v = Self {
            dims,
            words: words[..words_for(dims)].to_vec(),
        };
        v.mask_tail();
        v
    }

    /// Number of dimensions (bits) in the vector.
    #[inline]
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// The packed word representation.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Returns the value of dimension `i`.
    ///
    /// # Panics
    /// Panics if `i >= dims()`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(
            i < self.dims,
            "dimension {i} out of range (dims={})",
            self.dims
        );
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Sets dimension `i` to `value`.
    ///
    /// # Panics
    /// Panics if `i >= dims()`.
    #[inline]
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(
            i < self.dims,
            "dimension {i} out of range (dims={})",
            self.dims
        );
        let w = &mut self.words[i / 64];
        let mask = 1u64 << (i % 64);
        if value {
            *w |= mask;
        } else {
            *w &= !mask;
        }
    }

    /// Flips dimension `i`.
    #[inline]
    pub fn flip(&mut self, i: usize) {
        let cur = self.get(i);
        self.set(i, !cur);
    }

    /// Number of set bits (population count).
    #[inline]
    pub fn count_ones(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// Iterates over the dimensions as booleans, in dimension order.
    pub fn iter_bits(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.dims).map(move |i| self.get(i))
    }

    /// Returns the vector as a `Vec<u8>` of `0`/`1` values, one per dimension.
    ///
    /// This is the representation streamed to the Automata Processor (one dimension
    /// per 8-bit symbol).
    pub fn to_bits(&self) -> Vec<u8> {
        self.iter_bits().map(u8::from).collect()
    }

    /// Hamming distance to `other`.
    ///
    /// # Panics
    /// Panics if the two vectors have different dimensionality.
    #[inline]
    pub fn hamming(&self, other: &Self) -> u32 {
        assert_eq!(
            self.dims, other.dims,
            "hamming distance requires equal dimensionality"
        );
        self.words
            .iter()
            .zip(other.words.iter())
            .map(|(a, b)| (a ^ b).count_ones())
            .sum()
    }

    /// Inverted Hamming distance: `dims - hamming(self, other)`.
    ///
    /// This is the quantity the paper's Hamming macro accumulates: the number of
    /// dimensions on which the two vectors *agree*. Vectors that are more similar
    /// have a **higher** inverted Hamming distance.
    #[inline]
    pub fn inverted_hamming(&self, other: &Self) -> u32 {
        self.dims as u32 - self.hamming(other)
    }

    /// Jaccard similarity (|A ∩ B| / |A ∪ B|) treating the vectors as bit sets.
    ///
    /// Returns 1.0 when both vectors are empty.
    pub fn jaccard(&self, other: &Self) -> f64 {
        assert_eq!(
            self.dims, other.dims,
            "jaccard similarity requires equal dimensionality"
        );
        let mut inter = 0u32;
        let mut union = 0u32;
        for (a, b) in self.words.iter().zip(other.words.iter()) {
            inter += (a & b).count_ones();
            union += (a | b).count_ones();
        }
        if union == 0 {
            1.0
        } else {
            f64::from(inter) / f64::from(union)
        }
    }

    /// Zeroes any bits beyond `dims` in the final word.
    fn mask_tail(&mut self) {
        let rem = self.dims % 64;
        if rem != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }
}

impl fmt::Debug for BinaryVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BinaryVector[{}](", self.dims)?;
        let shown = self.dims.min(64);
        for i in 0..shown {
            write!(f, "{}", u8::from(self.get(i)))?;
        }
        if self.dims > shown {
            write!(f, "…")?;
        }
        write!(f, ")")
    }
}

/// Number of `u64` words needed to hold `dims` bits.
#[inline]
pub fn words_for(dims: usize) -> usize {
    dims.div_ceil(64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_ones_have_expected_popcount() {
        for dims in [1, 7, 63, 64, 65, 128, 200, 256] {
            assert_eq!(BinaryVector::zeros(dims).count_ones(), 0);
            assert_eq!(BinaryVector::ones(dims).count_ones(), dims as u32);
        }
    }

    #[test]
    fn set_get_roundtrip() {
        let mut v = BinaryVector::zeros(130);
        v.set(0, true);
        v.set(64, true);
        v.set(129, true);
        assert!(v.get(0));
        assert!(v.get(64));
        assert!(v.get(129));
        assert!(!v.get(1));
        assert_eq!(v.count_ones(), 3);
        v.set(64, false);
        assert!(!v.get(64));
        assert_eq!(v.count_ones(), 2);
    }

    #[test]
    fn flip_toggles() {
        let mut v = BinaryVector::zeros(10);
        v.flip(3);
        assert!(v.get(3));
        v.flip(3);
        assert!(!v.get(3));
    }

    #[test]
    fn from_bools_and_bits_agree() {
        let bools = [true, false, true, true, false, false, true];
        let bytes: Vec<u8> = bools.iter().map(|&b| u8::from(b)).collect();
        assert_eq!(
            BinaryVector::from_bools(&bools),
            BinaryVector::from_bits(&bytes)
        );
    }

    #[test]
    fn to_bits_roundtrip() {
        let bits = vec![1u8, 0, 0, 1, 1, 0, 1, 0, 1];
        let v = BinaryVector::from_bits(&bits);
        assert_eq!(v.to_bits(), bits);
    }

    #[test]
    fn hamming_basic() {
        let a = BinaryVector::from_bits(&[1, 0, 1, 1]);
        let b = BinaryVector::from_bits(&[1, 0, 0, 1]);
        assert_eq!(a.hamming(&b), 1);
        assert_eq!(a.inverted_hamming(&b), 3);
        assert_eq!(a.hamming(&a), 0);
        assert_eq!(a.inverted_hamming(&a), 4);
    }

    #[test]
    fn hamming_across_word_boundary() {
        let mut a = BinaryVector::zeros(130);
        let mut b = BinaryVector::zeros(130);
        a.set(0, true);
        a.set(65, true);
        a.set(129, true);
        b.set(65, true);
        assert_eq!(a.hamming(&b), 2);
    }

    #[test]
    fn hamming_against_complement_is_dims() {
        let dims = 100;
        let z = BinaryVector::zeros(dims);
        let o = BinaryVector::ones(dims);
        assert_eq!(z.hamming(&o), dims as u32);
    }

    #[test]
    #[should_panic(expected = "equal dimensionality")]
    fn hamming_dim_mismatch_panics() {
        let a = BinaryVector::zeros(8);
        let b = BinaryVector::zeros(9);
        let _ = a.hamming(&b);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        let v = BinaryVector::zeros(8);
        let _ = v.get(8);
    }

    #[test]
    fn from_words_masks_tail() {
        let v = BinaryVector::from_words(4, vec![u64::MAX]);
        assert_eq!(v.count_ones(), 4);
        assert_eq!(v.to_bits(), vec![1, 1, 1, 1]);
    }

    #[test]
    fn jaccard_identical_and_disjoint() {
        let a = BinaryVector::from_bits(&[1, 1, 0, 0]);
        let b = BinaryVector::from_bits(&[0, 0, 1, 1]);
        assert!((a.jaccard(&a) - 1.0).abs() < 1e-12);
        assert!((a.jaccard(&b) - 0.0).abs() < 1e-12);
        let z = BinaryVector::zeros(4);
        assert!((z.jaccard(&z) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn jaccard_partial_overlap() {
        let a = BinaryVector::from_bits(&[1, 1, 1, 0]);
        let b = BinaryVector::from_bits(&[0, 1, 1, 1]);
        // intersection = 2, union = 4
        assert!((a.jaccard(&b) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn words_for_boundaries() {
        assert_eq!(words_for(0), 0);
        assert_eq!(words_for(1), 1);
        assert_eq!(words_for(64), 1);
        assert_eq!(words_for(65), 2);
        assert_eq!(words_for(256), 4);
    }

    #[test]
    fn debug_format_truncates() {
        let v = BinaryVector::zeros(3);
        assert_eq!(format!("{v:?}"), "BinaryVector[3](000)");
    }
}
