//! The paper's evaluation workloads (Table II) and dataset-size presets.
//!
//! | Workload        | Dimensionality | Neighbors k |
//! |-----------------|----------------|-------------|
//! | kNN-WordEmbed   | 64             | 2           |
//! | kNN-SIFT        | 128            | 4           |
//! | kNN-TagSpace    | 256            | 16          |
//!
//! All workloads are evaluated with 4096 queries. "Small" datasets hold 1024 points
//! (512 for TagSpace, which at 256 dimensions only fits 512 vectors per AP board
//! configuration); "large" datasets hold 2^20 points.

use serde::{Deserialize, Serialize};

/// The three kNN workloads evaluated in the paper (Table II).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Workload {
    /// Word-embedding retrieval: d = 64, k = 2.
    WordEmbed,
    /// SIFT image-descriptor matching: d = 128, k = 4.
    Sift,
    /// TagSpace semantic-embedding search: d = 256, k = 16.
    TagSpace,
}

impl Workload {
    /// All workloads, in the order the paper's tables list them.
    pub const ALL: [Workload; 3] = [Workload::WordEmbed, Workload::Sift, Workload::TagSpace];

    /// The workload's parameter set.
    pub fn params(self) -> WorkloadParams {
        match self {
            Workload::WordEmbed => WorkloadParams {
                workload: self,
                dims: 64,
                k: 2,
                queries: 4096,
            },
            Workload::Sift => WorkloadParams {
                workload: self,
                dims: 128,
                k: 4,
                queries: 4096,
            },
            Workload::TagSpace => WorkloadParams {
                workload: self,
                dims: 256,
                k: 16,
                queries: 4096,
            },
        }
    }

    /// Human-readable name as used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Workload::WordEmbed => "kNN-WordEmbed",
            Workload::Sift => "kNN-SIFT",
            Workload::TagSpace => "kNN-TagSpace",
        }
    }

    /// Dataset size used in the small-dataset experiments (Table III).
    ///
    /// This equals the number of vectors that fit in a single AP board configuration:
    /// 1024 vectors at ≤128 dimensions, 512 vectors at 256 dimensions (§V-A reports
    /// "1024×128 dimensions or 512×256 dimensions" ≈ 128 Kb per configuration).
    pub fn small_dataset_size(self) -> usize {
        match self {
            Workload::WordEmbed | Workload::Sift => 1024,
            Workload::TagSpace => 512,
        }
    }

    /// Dataset size used in the large-dataset experiments (Table IV): 2^20 points.
    pub fn large_dataset_size(self) -> usize {
        1 << 20
    }

    /// Vectors per AP board configuration (the natural bucket size for indexing).
    pub fn vectors_per_board(self) -> usize {
        self.small_dataset_size()
    }
}

/// Fully resolved workload parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkloadParams {
    /// Which workload these parameters belong to.
    pub workload: Workload,
    /// Feature-vector dimensionality `d`.
    pub dims: usize,
    /// Number of nearest neighbors `k`.
    pub k: usize,
    /// Number of queries per batch (the paper uses 4096 throughout).
    pub queries: usize,
}

impl WorkloadParams {
    /// A scaled-down copy with `queries` queries — used by tests and quick examples
    /// that cannot afford the full 4096-query batch.
    pub fn with_queries(mut self, queries: usize) -> Self {
        self.queries = queries;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_parameters() {
        let w = Workload::WordEmbed.params();
        assert_eq!((w.dims, w.k, w.queries), (64, 2, 4096));
        let s = Workload::Sift.params();
        assert_eq!((s.dims, s.k, s.queries), (128, 4, 4096));
        let t = Workload::TagSpace.params();
        assert_eq!((t.dims, t.k, t.queries), (256, 16, 4096));
    }

    #[test]
    fn small_dataset_sizes_match_board_capacity() {
        assert_eq!(Workload::WordEmbed.small_dataset_size(), 1024);
        assert_eq!(Workload::Sift.small_dataset_size(), 1024);
        assert_eq!(Workload::TagSpace.small_dataset_size(), 512);
    }

    #[test]
    fn large_dataset_is_one_million() {
        for w in Workload::ALL {
            assert_eq!(w.large_dataset_size(), 1_048_576);
        }
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(Workload::WordEmbed.name(), "kNN-WordEmbed");
        assert_eq!(Workload::Sift.name(), "kNN-SIFT");
        assert_eq!(Workload::TagSpace.name(), "kNN-TagSpace");
    }

    #[test]
    fn with_queries_overrides() {
        let p = Workload::Sift.params().with_queries(16);
        assert_eq!(p.queries, 16);
        assert_eq!(p.dims, 128);
    }
}
