//! Dataset I/O: the `.fvecs` / `.bvecs` / `.ivecs` formats used by the standard
//! similarity-search corpora, plus a compact container for packed binary codes.
//!
//! The paper evaluates on SIFT descriptors, word embeddings and TagSpace semantic
//! embeddings. The public distributions of such corpora (TexMex SIFT1M, GloVe dumps
//! converted for ANN benchmarks, …) ship in the *vecs* family of formats — each
//! vector is a little-endian `i32` dimensionality followed by that many components
//! (`f32` for `.fvecs`, `u8` for `.bvecs`, `i32` for `.ivecs`). Implementing those
//! readers and writers lets a downstream user run this workspace's pipeline on the
//! real corpora instead of the synthetic generators; the synthetic generators remain
//! the default because the corpora themselves cannot be redistributed here.
//!
//! Quantized codes have no standard interchange format, so [`write_dataset`] /
//! [`read_dataset`] define a small, versioned container for [`BinaryDataset`]
//! (magic, dimensionality, count, then the packed 64-bit words of every vector) —
//! this is what an offline ITQ pass would hand to the AP host program.
//!
//! All functions are generic over [`std::io::Read`] / [`std::io::Write`]; the
//! `*_path` helpers wrap them for files.

use crate::bits::{words_for, BinaryVector};
use crate::dataset::BinaryDataset;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Magic bytes identifying the packed binary-dataset container.
pub const DATASET_MAGIC: &[u8; 4] = b"BINV";
/// Current version of the packed binary-dataset container.
pub const DATASET_VERSION: u32 = 1;

fn invalid(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

fn read_exact_or_eof<R: Read>(reader: &mut R, buf: &mut [u8]) -> io::Result<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        let n = reader.read(&mut buf[filled..])?;
        if n == 0 {
            if filled == 0 {
                return Ok(false);
            }
            return Err(invalid("truncated record"));
        }
        filled += n;
    }
    Ok(true)
}

fn read_u32<R: Read>(reader: &mut R) -> io::Result<Option<u32>> {
    let mut buf = [0u8; 4];
    Ok(read_exact_or_eof(reader, &mut buf)?.then(|| u32::from_le_bytes(buf)))
}

fn read_record_dims<R: Read>(reader: &mut R) -> io::Result<Option<usize>> {
    match read_u32(reader)? {
        None => Ok(None),
        Some(raw) => {
            let dims = raw as i32;
            if dims <= 0 {
                return Err(invalid(format!(
                    "non-positive vector dimensionality {dims}"
                )));
            }
            Ok(Some(dims as usize))
        }
    }
}

// ---------------------------------------------------------------------------
// fvecs
// ---------------------------------------------------------------------------

/// Writes real-valued vectors in `.fvecs` format (components stored as `f32`).
///
/// Returns an error if the vectors do not all share one dimensionality.
pub fn write_fvecs<W: Write>(writer: &mut W, vectors: &[Vec<f64>]) -> io::Result<()> {
    let dims = vectors.first().map(Vec::len).unwrap_or(0);
    for v in vectors {
        if v.len() != dims {
            return Err(invalid("all vectors must share one dimensionality"));
        }
        writer.write_all(&(dims as u32).to_le_bytes())?;
        for &x in v {
            writer.write_all(&(x as f32).to_le_bytes())?;
        }
    }
    Ok(())
}

/// Reads an `.fvecs` stream into real-valued vectors.
pub fn read_fvecs<R: Read>(reader: &mut R) -> io::Result<Vec<Vec<f64>>> {
    let mut out = Vec::new();
    while let Some(dims) = read_record_dims(reader)? {
        if let Some(first) = out.first() {
            let expected: &Vec<f64> = first;
            if expected.len() != dims {
                return Err(invalid("inconsistent dimensionality between records"));
            }
        }
        let mut v = Vec::with_capacity(dims);
        let mut buf = [0u8; 4];
        for _ in 0..dims {
            if !read_exact_or_eof(reader, &mut buf)? {
                return Err(invalid("truncated fvecs record"));
            }
            v.push(f64::from(f32::from_le_bytes(buf)));
        }
        out.push(v);
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// bvecs
// ---------------------------------------------------------------------------

/// Writes byte-valued vectors in `.bvecs` format.
pub fn write_bvecs<W: Write>(writer: &mut W, vectors: &[Vec<u8>]) -> io::Result<()> {
    let dims = vectors.first().map(Vec::len).unwrap_or(0);
    for v in vectors {
        if v.len() != dims {
            return Err(invalid("all vectors must share one dimensionality"));
        }
        writer.write_all(&(dims as u32).to_le_bytes())?;
        writer.write_all(v)?;
    }
    Ok(())
}

/// Reads a `.bvecs` stream into byte-valued vectors.
pub fn read_bvecs<R: Read>(reader: &mut R) -> io::Result<Vec<Vec<u8>>> {
    let mut out: Vec<Vec<u8>> = Vec::new();
    while let Some(dims) = read_record_dims(reader)? {
        if let Some(first) = out.first() {
            if first.len() != dims {
                return Err(invalid("inconsistent dimensionality between records"));
            }
        }
        let mut v = vec![0u8; dims];
        if !read_exact_or_eof(reader, &mut v)? {
            return Err(invalid("truncated bvecs record"));
        }
        out.push(v);
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// ivecs
// ---------------------------------------------------------------------------

/// Writes integer vectors in `.ivecs` format (the format ANN ground-truth files use).
pub fn write_ivecs<W: Write>(writer: &mut W, vectors: &[Vec<i32>]) -> io::Result<()> {
    let dims = vectors.first().map(Vec::len).unwrap_or(0);
    for v in vectors {
        if v.len() != dims {
            return Err(invalid("all vectors must share one dimensionality"));
        }
        writer.write_all(&(dims as u32).to_le_bytes())?;
        for &x in v {
            writer.write_all(&x.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Reads an `.ivecs` stream into integer vectors.
pub fn read_ivecs<R: Read>(reader: &mut R) -> io::Result<Vec<Vec<i32>>> {
    let mut out: Vec<Vec<i32>> = Vec::new();
    while let Some(dims) = read_record_dims(reader)? {
        if let Some(first) = out.first() {
            if first.len() != dims {
                return Err(invalid("inconsistent dimensionality between records"));
            }
        }
        let mut v = Vec::with_capacity(dims);
        let mut buf = [0u8; 4];
        for _ in 0..dims {
            if !read_exact_or_eof(reader, &mut buf)? {
                return Err(invalid("truncated ivecs record"));
            }
            v.push(i32::from_le_bytes(buf));
        }
        out.push(v);
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Packed binary dataset container
// ---------------------------------------------------------------------------

/// Writes a [`BinaryDataset`] in the packed container format.
///
/// Layout: `"BINV"`, `u32` version, `u32` dimensionality, `u64` vector count, then
/// `ceil(dims / 64)` little-endian `u64` words per vector.
pub fn write_dataset<W: Write>(writer: &mut W, dataset: &BinaryDataset) -> io::Result<()> {
    writer.write_all(DATASET_MAGIC)?;
    writer.write_all(&DATASET_VERSION.to_le_bytes())?;
    writer.write_all(&(dataset.dims() as u32).to_le_bytes())?;
    writer.write_all(&(dataset.len() as u64).to_le_bytes())?;
    for i in 0..dataset.len() {
        for word in dataset.vector_words(i) {
            writer.write_all(&word.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Reads a [`BinaryDataset`] from the packed container format.
pub fn read_dataset<R: Read>(reader: &mut R) -> io::Result<BinaryDataset> {
    let mut magic = [0u8; 4];
    if !read_exact_or_eof(reader, &mut magic)? || &magic != DATASET_MAGIC {
        return Err(invalid("missing BINV magic"));
    }
    let version = read_u32(reader)?.ok_or_else(|| invalid("truncated header"))?;
    if version != DATASET_VERSION {
        return Err(invalid(format!("unsupported container version {version}")));
    }
    let dims = read_u32(reader)?.ok_or_else(|| invalid("truncated header"))? as usize;
    if dims == 0 {
        return Err(invalid("zero dimensionality"));
    }
    let mut count_buf = [0u8; 8];
    if !read_exact_or_eof(reader, &mut count_buf)? {
        return Err(invalid("truncated header"));
    }
    let count = u64::from_le_bytes(count_buf) as usize;

    let words = words_for(dims);
    let mut dataset = BinaryDataset::with_capacity(dims, count);
    let mut word_buf = [0u8; 8];
    for _ in 0..count {
        let mut vector_words = Vec::with_capacity(words);
        for _ in 0..words {
            if !read_exact_or_eof(reader, &mut word_buf)? {
                return Err(invalid("truncated vector payload"));
            }
            vector_words.push(u64::from_le_bytes(word_buf));
        }
        dataset.push(&BinaryVector::from_words(dims, vector_words));
    }
    Ok(dataset)
}

// ---------------------------------------------------------------------------
// Path conveniences
// ---------------------------------------------------------------------------

/// Reads an `.fvecs` file.
pub fn read_fvecs_path(path: impl AsRef<Path>) -> io::Result<Vec<Vec<f64>>> {
    read_fvecs(&mut BufReader::new(File::open(path)?))
}

/// Writes an `.fvecs` file.
pub fn write_fvecs_path(path: impl AsRef<Path>, vectors: &[Vec<f64>]) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    write_fvecs(&mut w, vectors)?;
    w.flush()
}

/// Reads a packed binary-dataset file.
pub fn read_dataset_path(path: impl AsRef<Path>) -> io::Result<BinaryDataset> {
    read_dataset(&mut BufReader::new(File::open(path)?))
}

/// Writes a packed binary-dataset file.
pub fn write_dataset_path(path: impl AsRef<Path>, dataset: &BinaryDataset) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    write_dataset(&mut w, dataset)?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;
    use std::io::Cursor;

    #[test]
    fn fvecs_round_trip() {
        let vectors = vec![
            vec![1.5, -2.25, 0.0, 3.0],
            vec![0.5, 0.5, 0.5, 0.5],
            vec![-1.0, 2.0, -3.0, 4.0],
        ];
        let mut buf = Vec::new();
        write_fvecs(&mut buf, &vectors).unwrap();
        assert_eq!(buf.len(), 3 * (4 + 4 * 4));
        let back = read_fvecs(&mut Cursor::new(buf)).unwrap();
        assert_eq!(back, vectors);
    }

    #[test]
    fn bvecs_and_ivecs_round_trip() {
        let bytes = vec![vec![0u8, 1, 255, 128], vec![9, 8, 7, 6]];
        let mut buf = Vec::new();
        write_bvecs(&mut buf, &bytes).unwrap();
        assert_eq!(read_bvecs(&mut Cursor::new(buf)).unwrap(), bytes);

        let ints = vec![vec![-1i32, 0, 7], vec![i32::MAX, i32::MIN, 42]];
        let mut buf = Vec::new();
        write_ivecs(&mut buf, &ints).unwrap();
        assert_eq!(read_ivecs(&mut Cursor::new(buf)).unwrap(), ints);
    }

    #[test]
    fn empty_streams_read_as_empty() {
        assert!(read_fvecs(&mut Cursor::new(Vec::new())).unwrap().is_empty());
        assert!(read_bvecs(&mut Cursor::new(Vec::new())).unwrap().is_empty());
        assert!(read_ivecs(&mut Cursor::new(Vec::new())).unwrap().is_empty());
        let mut buf = Vec::new();
        write_fvecs(&mut buf, &[]).unwrap();
        assert!(buf.is_empty());
    }

    #[test]
    fn malformed_vecs_streams_are_rejected() {
        // Truncated payload.
        let mut buf = Vec::new();
        write_fvecs(&mut buf, &[vec![1.0, 2.0, 3.0]]).unwrap();
        buf.truncate(buf.len() - 2);
        assert!(read_fvecs(&mut Cursor::new(buf)).is_err());

        // Negative dimensionality.
        let buf = (-3i32).to_le_bytes().to_vec();
        assert!(read_fvecs(&mut Cursor::new(buf)).is_err());

        // Inconsistent dimensionality between records.
        let mut buf = Vec::new();
        write_fvecs(&mut buf, &[vec![1.0, 2.0]]).unwrap();
        write_fvecs(&mut buf, &[vec![1.0, 2.0, 3.0]]).unwrap();
        assert!(read_fvecs(&mut Cursor::new(buf)).is_err());

        // Ragged input on the write side.
        let mut sink = Vec::new();
        assert!(write_fvecs(&mut sink, &[vec![1.0], vec![1.0, 2.0]]).is_err());
        assert!(write_bvecs(&mut sink, &[vec![1], vec![1, 2]]).is_err());
        assert!(write_ivecs(&mut sink, &[vec![1], vec![1, 2]]).is_err());
    }

    #[test]
    fn dataset_container_round_trip() {
        for dims in [1usize, 8, 63, 64, 65, 200] {
            let dataset = generate::uniform_dataset(17, dims, dims as u64);
            let mut buf = Vec::new();
            write_dataset(&mut buf, &dataset).unwrap();
            let back = read_dataset(&mut Cursor::new(buf)).unwrap();
            assert_eq!(back.len(), dataset.len());
            assert_eq!(back.dims(), dims);
            for i in 0..dataset.len() {
                assert_eq!(back.vector(i), dataset.vector(i), "dims {dims} vector {i}");
            }
        }
    }

    #[test]
    fn dataset_container_rejects_corruption() {
        let dataset = generate::uniform_dataset(4, 32, 1);
        let mut buf = Vec::new();
        write_dataset(&mut buf, &dataset).unwrap();

        // Wrong magic.
        let mut bad = buf.clone();
        bad[0] = b'X';
        assert!(read_dataset(&mut Cursor::new(bad)).is_err());

        // Wrong version.
        let mut bad = buf.clone();
        bad[4] = 99;
        assert!(read_dataset(&mut Cursor::new(bad)).is_err());

        // Truncated payload.
        let mut bad = buf.clone();
        bad.truncate(buf.len() - 3);
        assert!(read_dataset(&mut Cursor::new(bad)).is_err());

        // Zero dimensionality.
        let mut bad = buf;
        bad[8..12].copy_from_slice(&0u32.to_le_bytes());
        assert!(read_dataset(&mut Cursor::new(bad)).is_err());
    }

    #[test]
    fn path_helpers_round_trip_through_the_filesystem() {
        let dir = std::env::temp_dir();
        let unique = format!(
            "binvec-io-test-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        );
        let fvecs_path = dir.join(format!("{unique}.fvecs"));
        let dataset_path = dir.join(format!("{unique}.binv"));

        let vectors = vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]];
        write_fvecs_path(&fvecs_path, &vectors).unwrap();
        assert_eq!(read_fvecs_path(&fvecs_path).unwrap(), vectors);

        let dataset = generate::uniform_dataset(9, 48, 2);
        write_dataset_path(&dataset_path, &dataset).unwrap();
        let back = read_dataset_path(&dataset_path).unwrap();
        assert_eq!(back.len(), 9);
        assert_eq!(back.vector(3), dataset.vector(3));

        let _ = std::fs::remove_file(fvecs_path);
        let _ = std::fs::remove_file(dataset_path);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::io::Cursor;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn fvecs_round_trips_any_rectangular_f32_data(
            rows in prop::collection::vec(prop::collection::vec(-1e6f32..1e6, 1..12), 0..8),
        ) {
            prop_assume!(rows.windows(2).all(|w| w[0].len() == w[1].len()));
            let vectors: Vec<Vec<f64>> = rows
                .iter()
                .map(|r| r.iter().map(|&x| f64::from(x)).collect())
                .collect();
            let mut buf = Vec::new();
            write_fvecs(&mut buf, &vectors).unwrap();
            let back = read_fvecs(&mut Cursor::new(buf)).unwrap();
            prop_assert_eq!(back, vectors);
        }

        #[test]
        fn dataset_container_round_trips_random_datasets(
            dims in 1usize..130,
            n in 0usize..20,
            seed in 0u64..1000,
        ) {
            let dataset = crate::generate::uniform_dataset(n, dims, seed);
            let mut buf = Vec::new();
            write_dataset(&mut buf, &dataset).unwrap();
            let back = read_dataset(&mut Cursor::new(buf)).unwrap();
            prop_assert_eq!(back.len(), dataset.len());
            for i in 0..dataset.len() {
                prop_assert_eq!(back.vector(i), dataset.vector(i));
            }
        }
    }
}
