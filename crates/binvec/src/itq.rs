//! Iterative quantization (ITQ): learned rotation binary codes.
//!
//! The paper assumes dataset vectors are quantized offline into Hamming space with
//! "techniques like iterative quantization (ITQ)" (Gong & Lazebnik, CVPR 2011) so the
//! AP only ever processes binary codes. The simpler sign / random-rotation quantizers
//! in [`crate::quantize`] are the initializations ITQ starts from; this module
//! implements the full training loop:
//!
//! 1. mean-center the training vectors and project them onto their top-`c` PCA
//!    directions (`c` = code length);
//! 2. initialize a random orthogonal rotation `R`;
//! 3. alternate: fix `R` and set the codes `B = sign(V·R)`, then fix `B` and update
//!    `R` as the orthogonal Procrustes solution minimizing `‖B − V·R‖_F`;
//! 4. quantize any vector `x` as `sign((x − mean)·W·R)`.
//!
//! The alternation monotonically decreases the quantization loss, which is what makes
//! ITQ codes preserve neighborhoods better than a raw random rotation — the property
//! the paper's accuracy-neutral "quantize offline, search on the AP" pipeline relies
//! on. Training is a few small dense matrix operations (the code length is 64–256),
//! handled by [`crate::linalg`].

use crate::bits::BinaryVector;
use crate::linalg::{covariance, jacobi_eigen, orthogonal_procrustes, random_orthogonal, Matrix};
use crate::quantize::{Quantizer, RealVector};

/// Configuration for ITQ training.
#[derive(Clone, Copy, Debug)]
pub struct ItqConfig {
    /// Length of the produced binary codes (must not exceed the input
    /// dimensionality: ITQ projects onto the top-`code_dims` PCA directions).
    pub code_dims: usize,
    /// Number of alternating-minimization iterations. The original paper uses 50;
    /// the loss typically plateaus well before that.
    pub iterations: usize,
    /// Seed for the random orthogonal initialization of the rotation.
    pub seed: u64,
}

impl ItqConfig {
    /// A reasonable default configuration for the given code length.
    pub fn new(code_dims: usize) -> Self {
        Self {
            code_dims,
            iterations: 50,
            seed: 1,
        }
    }

    /// Sets the iteration count.
    pub fn with_iterations(mut self, iterations: usize) -> Self {
        self.iterations = iterations;
        self
    }

    /// Sets the initialization seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// A trained ITQ quantizer: mean, PCA projection and learned rotation.
#[derive(Clone, Debug)]
pub struct ItqQuantizer {
    mean: Vec<f64>,
    /// `input_dims × code_dims` PCA projection (top eigenvectors as columns).
    projection: Matrix,
    /// `code_dims × code_dims` learned orthogonal rotation.
    rotation: Matrix,
    /// Quantization loss `‖B − V·R‖²_F / n` after each training iteration.
    loss_history: Vec<f64>,
}

impl ItqQuantizer {
    /// Trains an ITQ quantizer on `training` vectors.
    ///
    /// # Panics
    /// Panics if `training` is empty, the vectors have differing lengths, or
    /// `config.code_dims` is zero or exceeds the input dimensionality.
    pub fn fit(training: &[RealVector], config: &ItqConfig) -> Self {
        assert!(!training.is_empty(), "ITQ needs a non-empty training set");
        let input_dims = training[0].len();
        assert!(
            training.iter().all(|v| v.len() == input_dims),
            "all training vectors must have the same dimensionality"
        );
        assert!(
            config.code_dims > 0 && config.code_dims <= input_dims,
            "code_dims must be in 1..=input_dims (got {} for input dimensionality {})",
            config.code_dims,
            input_dims
        );

        // PCA: top-c eigenvectors of the covariance matrix.
        let (mean, cov) = covariance(training);
        let (_eigenvalues, eigenvectors) = jacobi_eigen(&cov);
        let projection =
            Matrix::from_fn(input_dims, config.code_dims, |r, c| eigenvectors.get(r, c));

        // Projected, centered training data V (n × c).
        let n = training.len();
        let v = Matrix::from_rows(
            &training
                .iter()
                .map(|x| {
                    let centered: Vec<f64> = x.iter().zip(&mean).map(|(a, m)| a - m).collect();
                    projection.transpose().matvec(&centered)
                })
                .collect::<Vec<_>>(),
        );

        // Alternating minimization of ‖B − V·R‖².
        let mut rotation = random_orthogonal(config.code_dims, config.seed);
        let mut loss_history = Vec::with_capacity(config.iterations);
        for _ in 0..config.iterations.max(1) {
            let projected = v.matmul(&rotation);
            let codes = Matrix::from_fn(n, config.code_dims, |r, c| {
                if projected.get(r, c) >= 0.0 {
                    1.0
                } else {
                    -1.0
                }
            });
            // Loss with the *current* rotation, before the Procrustes update.
            let mut loss = 0.0;
            for r in 0..n {
                for c in 0..config.code_dims {
                    let d = codes.get(r, c) - projected.get(r, c);
                    loss += d * d;
                }
            }
            loss_history.push(loss / n as f64);
            rotation = orthogonal_procrustes(&codes, &v);
        }

        Self {
            mean,
            projection,
            rotation,
            loss_history,
        }
    }

    /// The per-iteration quantization loss recorded during training.
    pub fn loss_history(&self) -> &[f64] {
        &self.loss_history
    }

    /// The learned rotation (orthogonal, `code_dims × code_dims`).
    pub fn rotation(&self) -> &Matrix {
        &self.rotation
    }

    /// The input dimensionality the quantizer was trained on.
    pub fn input_dims(&self) -> usize {
        self.mean.len()
    }
}

impl Quantizer for ItqQuantizer {
    fn code_dims(&self) -> usize {
        self.projection.cols()
    }

    fn quantize(&self, v: &[f64]) -> BinaryVector {
        assert_eq!(
            v.len(),
            self.mean.len(),
            "vector dimensionality {} does not match the trained dimensionality {}",
            v.len(),
            self.mean.len()
        );
        let centered: Vec<f64> = v.iter().zip(&self.mean).map(|(a, m)| a - m).collect();
        let projected = self.projection.transpose().matvec(&centered);
        let rotated = self.rotation.transpose().matvec(&projected);
        BinaryVector::from_bools(&rotated.iter().map(|&x| x >= 0.0).collect::<Vec<_>>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quantize::RandomRotationQuantizer;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Clustered synthetic real-valued data: `clusters` Gaussian blobs in
    /// `dims`-dimensional space.
    fn clustered_real_data(
        n: usize,
        dims: usize,
        clusters: usize,
        spread: f64,
        seed: u64,
    ) -> (Vec<RealVector>, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let centers: Vec<RealVector> = (0..clusters)
            .map(|_| (0..dims).map(|_| rng.gen::<f64>() * 10.0 - 5.0).collect())
            .collect();
        let mut data = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let c = i % clusters;
            let point: RealVector = centers[c]
                .iter()
                .map(|&x| {
                    let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
                    let u2: f64 = rng.gen();
                    let gauss = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                    x + gauss * spread
                })
                .collect();
            data.push(point);
            labels.push(c);
        }
        (data, labels)
    }

    #[test]
    fn codes_have_requested_dimensionality() {
        let (data, _) = clustered_real_data(64, 16, 4, 0.5, 1);
        let itq = ItqQuantizer::fit(&data, &ItqConfig::new(8).with_iterations(10));
        assert_eq!(itq.code_dims(), 8);
        assert_eq!(itq.input_dims(), 16);
        let code = itq.quantize(&data[0]);
        assert_eq!(code.dims(), 8);
    }

    #[test]
    fn rotation_stays_orthogonal() {
        let (data, _) = clustered_real_data(80, 12, 3, 0.7, 2);
        let itq = ItqQuantizer::fit(&data, &ItqConfig::new(12).with_iterations(20));
        assert!(itq.rotation().is_orthonormal(1e-7));
    }

    #[test]
    fn quantization_loss_is_monotonically_non_increasing() {
        let (data, _) = clustered_real_data(128, 16, 5, 0.8, 3);
        let itq = ItqQuantizer::fit(&data, &ItqConfig::new(16).with_iterations(25));
        let losses = itq.loss_history();
        assert_eq!(losses.len(), 25);
        for w in losses.windows(2) {
            assert!(
                w[1] <= w[0] + 1e-9,
                "loss increased: {} -> {} (history {:?})",
                w[0],
                w[1],
                losses
            );
        }
        // And it actually improves over the random initialization.
        assert!(losses.last().unwrap() < losses.first().unwrap());
    }

    #[test]
    fn nearby_points_get_nearby_codes() {
        let (data, _) = clustered_real_data(64, 24, 4, 0.3, 4);
        let itq = ItqQuantizer::fit(&data, &ItqConfig::new(24).with_iterations(20));
        let mut rng = StdRng::seed_from_u64(9);
        for base in data.iter().take(16) {
            let perturbed: RealVector = base
                .iter()
                .map(|&x| x + (rng.gen::<f64>() - 0.5) * 0.01)
                .collect();
            let far: RealVector = base.iter().map(|&x| -x + 7.0).collect();
            let code_base = itq.quantize(base);
            let code_near = itq.quantize(&perturbed);
            let code_far = itq.quantize(&far);
            assert!(
                code_base.hamming(&code_near) <= code_base.hamming(&code_far),
                "perturbed code should not be farther than an antipodal point"
            );
            assert!(code_base.hamming(&code_near) <= 2);
        }
    }

    #[test]
    fn itq_separates_clusters_at_least_as_well_as_random_rotation() {
        // Same-cluster pairs should be closer in code space than cross-cluster pairs;
        // measure the separation margin for ITQ and for a plain random rotation.
        let dims = 16;
        let code_dims = 16;
        let (data, labels) = clustered_real_data(200, dims, 4, 0.4, 5);
        let itq = ItqQuantizer::fit(&data, &ItqConfig::new(code_dims).with_iterations(30));
        let rr = RandomRotationQuantizer::new(dims, code_dims, 11);

        let margin = |codes: &[BinaryVector]| -> f64 {
            let mut same = Vec::new();
            let mut cross = Vec::new();
            for i in 0..codes.len() {
                for j in (i + 1)..codes.len() {
                    let d = codes[i].hamming(&codes[j]) as f64;
                    if labels[i] == labels[j] {
                        same.push(d);
                    } else {
                        cross.push(d);
                    }
                }
            }
            let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
            mean(&cross) - mean(&same)
        };

        let itq_codes: Vec<BinaryVector> = data.iter().map(|v| itq.quantize(v)).collect();
        let rr_codes: Vec<BinaryVector> = data.iter().map(|v| rr.quantize(v)).collect();
        let itq_margin = margin(&itq_codes);
        let rr_margin = margin(&rr_codes);
        assert!(
            itq_margin > 0.0,
            "ITQ codes must separate clusters (margin {itq_margin})"
        );
        assert!(
            itq_margin >= rr_margin * 0.8,
            "ITQ margin {itq_margin} should be competitive with random rotation {rr_margin}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let (data, _) = clustered_real_data(50, 10, 2, 0.5, 6);
        let a = ItqQuantizer::fit(&data, &ItqConfig::new(8).with_seed(3).with_iterations(10));
        let b = ItqQuantizer::fit(&data, &ItqConfig::new(8).with_seed(3).with_iterations(10));
        for v in data.iter().take(10) {
            assert_eq!(a.quantize(v), b.quantize(v));
        }
    }

    #[test]
    #[should_panic(expected = "code_dims")]
    fn code_dims_larger_than_input_panics() {
        let (data, _) = clustered_real_data(10, 4, 2, 0.5, 7);
        let _ = ItqQuantizer::fit(&data, &ItqConfig::new(8));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_training_set_panics() {
        let _ = ItqQuantizer::fit(&[], &ItqConfig::new(4));
    }

    #[test]
    #[should_panic(expected = "dimensionality")]
    fn quantize_wrong_dimensionality_panics() {
        let (data, _) = clustered_real_data(20, 6, 2, 0.5, 8);
        let itq = ItqQuantizer::fit(&data, &ItqConfig::new(4).with_iterations(5));
        let _ = itq.quantize(&[1.0, 2.0]);
    }
}
