//! Quantization of real-valued feature vectors into Hamming space.
//!
//! The paper assumes dataset vectors are quantized **offline** with techniques such as
//! iterative quantization (ITQ, Gong & Lazebnik) so that the AP only ever sees binary
//! codes; the quantization step is explicitly excluded from the measured kNN kernel.
//! The original ITQ implementation and the real feature corpora (SIFT, word
//! embeddings, TagSpace) are not available, so this module provides the standard
//! stand-ins used throughout the locality-sensitive-hashing literature:
//!
//! * [`SignQuantizer`] — sign of each coordinate after mean-centering (the trivial
//!   baseline ITQ reduces to when the rotation is identity).
//! * [`RandomRotationQuantizer`] — random orthogonal-ish rotation followed by sign,
//!   i.e. the "random rotation + sign" initialization ITQ starts from. This preserves
//!   the property that matters for every experiment in the paper: nearby real vectors
//!   map to nearby binary codes with high probability.
//! * [`RandomHyperplaneQuantizer`] — classic SimHash-style binary embedding, allowing
//!   an output dimensionality different from the input dimensionality.

use crate::bits::BinaryVector;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A real-valued feature vector (e.g. a SIFT descriptor or word embedding).
pub type RealVector = Vec<f64>;

/// Converts real-valued vectors into binary codes.
pub trait Quantizer {
    /// Output dimensionality of the produced binary codes.
    fn code_dims(&self) -> usize;

    /// Quantizes a single real vector into a binary code.
    fn quantize(&self, v: &[f64]) -> BinaryVector;

    /// Quantizes a batch of vectors.
    fn quantize_batch(&self, vs: &[RealVector]) -> Vec<BinaryVector> {
        vs.iter().map(|v| self.quantize(v)).collect()
    }
}

/// Sign quantizer: bit `i` is set iff `v[i] > threshold[i]`.
///
/// With a zero threshold this is the memoryless sign function; [`SignQuantizer::fit`]
/// centers each coordinate on its mean first, which is what ITQ's preprocessing does.
#[derive(Clone, Debug)]
pub struct SignQuantizer {
    thresholds: Vec<f64>,
}

impl SignQuantizer {
    /// Creates a sign quantizer with all-zero thresholds for `dims` dimensions.
    pub fn zero(dims: usize) -> Self {
        Self {
            thresholds: vec![0.0; dims],
        }
    }

    /// Fits per-coordinate thresholds to the mean of the training set.
    ///
    /// # Panics
    /// Panics if `training` is empty or contains vectors of differing lengths.
    pub fn fit(training: &[RealVector]) -> Self {
        assert!(
            !training.is_empty(),
            "cannot fit quantizer on empty training set"
        );
        let dims = training[0].len();
        let mut sums = vec![0.0f64; dims];
        for v in training {
            assert_eq!(v.len(), dims, "training vectors must share dimensionality");
            for (s, x) in sums.iter_mut().zip(v.iter()) {
                *s += x;
            }
        }
        let n = training.len() as f64;
        Self {
            thresholds: sums.into_iter().map(|s| s / n).collect(),
        }
    }
}

impl Quantizer for SignQuantizer {
    fn code_dims(&self) -> usize {
        self.thresholds.len()
    }

    fn quantize(&self, v: &[f64]) -> BinaryVector {
        assert_eq!(v.len(), self.thresholds.len(), "input dims mismatch");
        let bools: Vec<bool> = v
            .iter()
            .zip(self.thresholds.iter())
            .map(|(x, t)| x > t)
            .collect();
        BinaryVector::from_bools(&bools)
    }
}

/// Random-rotation + sign quantizer (the initialization ITQ iterates from).
///
/// The rotation matrix is a dense random Gaussian matrix; it is not exactly
/// orthogonal, but for the dimensionalities used here (64–256) a Gaussian matrix is
/// near-orthogonal with overwhelming probability, which preserves relative distances
/// well enough for all the accuracy experiments (the paper itself never measures
/// quantization quality — it cites Lin et al. for that).
#[derive(Clone, Debug)]
pub struct RandomRotationQuantizer {
    /// Row-major rotation matrix: `code_dims` rows × `input_dims` columns.
    rotation: Vec<Vec<f64>>,
    input_dims: usize,
}

impl RandomRotationQuantizer {
    /// Creates a quantizer mapping `input_dims`-dimensional real vectors to
    /// `code_dims`-bit codes using the given RNG seed.
    pub fn new(input_dims: usize, code_dims: usize, seed: u64) -> Self {
        assert!(input_dims > 0 && code_dims > 0, "dims must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let rotation = (0..code_dims)
            .map(|_| {
                (0..input_dims)
                    .map(|_| standard_normal(&mut rng))
                    .collect::<Vec<f64>>()
            })
            .collect();
        Self {
            rotation,
            input_dims,
        }
    }
}

impl Quantizer for RandomRotationQuantizer {
    fn code_dims(&self) -> usize {
        self.rotation.len()
    }

    fn quantize(&self, v: &[f64]) -> BinaryVector {
        assert_eq!(v.len(), self.input_dims, "input dims mismatch");
        let bools: Vec<bool> = self
            .rotation
            .iter()
            .map(|row| row.iter().zip(v.iter()).map(|(r, x)| r * x).sum::<f64>() > 0.0)
            .collect();
        BinaryVector::from_bools(&bools)
    }
}

/// Random-hyperplane (SimHash) quantizer — an alias of the random-rotation quantizer
/// kept as a distinct type because the LSH baseline conceptually uses hyperplane
/// hashing rather than an ITQ-style rotation.
#[derive(Clone, Debug)]
pub struct RandomHyperplaneQuantizer(RandomRotationQuantizer);

impl RandomHyperplaneQuantizer {
    /// Creates a SimHash-style quantizer.
    pub fn new(input_dims: usize, code_dims: usize, seed: u64) -> Self {
        Self(RandomRotationQuantizer::new(input_dims, code_dims, seed))
    }
}

impl Quantizer for RandomHyperplaneQuantizer {
    fn code_dims(&self) -> usize {
        self.0.code_dims()
    }

    fn quantize(&self, v: &[f64]) -> BinaryVector {
        self.0.quantize(v)
    }
}

/// Samples from the standard normal distribution via Box–Muller.
fn standard_normal<R: Rng>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        let u2: f64 = rng.gen::<f64>();
        if u1 > f64::EPSILON {
            return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_quantizer_zero_threshold() {
        let q = SignQuantizer::zero(4);
        let code = q.quantize(&[1.0, -2.0, 0.5, -0.1]);
        assert_eq!(code.to_bits(), vec![1, 0, 1, 0]);
        assert_eq!(q.code_dims(), 4);
    }

    #[test]
    fn sign_quantizer_fit_centers_on_mean() {
        let training = vec![vec![0.0, 10.0], vec![2.0, 20.0]];
        let q = SignQuantizer::fit(&training);
        // thresholds = [1.0, 15.0]
        assert_eq!(q.quantize(&[1.5, 14.0]).to_bits(), vec![1, 0]);
        assert_eq!(q.quantize(&[0.5, 16.0]).to_bits(), vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "empty training set")]
    fn sign_quantizer_fit_empty_panics() {
        let _ = SignQuantizer::fit(&[]);
    }

    #[test]
    fn rotation_quantizer_is_deterministic_per_seed() {
        let q1 = RandomRotationQuantizer::new(8, 16, 42);
        let q2 = RandomRotationQuantizer::new(8, 16, 42);
        let v: Vec<f64> = (0..8).map(|i| (i as f64) - 3.5).collect();
        assert_eq!(q1.quantize(&v), q2.quantize(&v));
        assert_eq!(q1.code_dims(), 16);
    }

    #[test]
    fn rotation_quantizer_different_seeds_differ() {
        let q1 = RandomRotationQuantizer::new(16, 64, 1);
        let q2 = RandomRotationQuantizer::new(16, 64, 2);
        let v: Vec<f64> = (0..16).map(|i| (i as f64).sin()).collect();
        assert_ne!(q1.quantize(&v), q2.quantize(&v));
    }

    #[test]
    fn nearby_vectors_get_nearby_codes() {
        // Distance preservation in expectation: a vector and a tiny perturbation of it
        // should land much closer in Hamming space than two independent random vectors.
        let q = RandomRotationQuantizer::new(32, 128, 7);
        let mut rng = StdRng::seed_from_u64(99);
        let mut close_total = 0u32;
        let mut far_total = 0u32;
        for _ in 0..20 {
            let a: Vec<f64> = (0..32).map(|_| standard_normal(&mut rng)).collect();
            let near: Vec<f64> = a
                .iter()
                .map(|x| x + 0.01 * standard_normal(&mut rng))
                .collect();
            let far: Vec<f64> = (0..32).map(|_| standard_normal(&mut rng)).collect();
            close_total += q.quantize(&a).hamming(&q.quantize(&near));
            far_total += q.quantize(&a).hamming(&q.quantize(&far));
        }
        assert!(
            close_total * 4 < far_total,
            "perturbed codes ({close_total}) should be far closer than random codes ({far_total})"
        );
    }

    #[test]
    fn hyperplane_quantizer_matches_rotation_with_same_seed() {
        let h = RandomHyperplaneQuantizer::new(8, 32, 5);
        let r = RandomRotationQuantizer::new(8, 32, 5);
        let v = vec![0.3, -1.0, 2.0, 0.0, -0.5, 1.5, -2.5, 0.25];
        assert_eq!(h.quantize(&v), r.quantize(&v));
    }

    #[test]
    fn quantize_batch_length() {
        let q = SignQuantizer::zero(3);
        let batch = vec![vec![1.0, -1.0, 1.0], vec![-1.0, -1.0, -1.0]];
        let codes = q.quantize_batch(&batch);
        assert_eq!(codes.len(), 2);
        assert_eq!(codes[1].count_ones(), 0);
    }

    #[test]
    #[should_panic(expected = "input dims mismatch")]
    fn wrong_input_dims_panics() {
        let q = SignQuantizer::zero(4);
        let _ = q.quantize(&[1.0, 2.0]);
    }
}
