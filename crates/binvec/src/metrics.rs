//! Accuracy metrics for approximate and statistically-reduced kNN results.
//!
//! The paper reports two kinds of accuracy figures:
//!
//! * Table VI — the *percentage of incorrect result sets* out of 100 randomized runs
//!   of the statistical activation reduction, where "incorrect" means the returned
//!   set is not exactly the global top-k.
//! * Implicitly, the recall of the approximate index structures (kd-tree, k-means,
//!   LSH) that scan only one bucket per query.
//!
//! This module provides the exact-set-match and recall@k computations both of those
//! need, with deterministic tie handling consistent with [`crate::topk`].

use crate::topk::Neighbor;
use std::collections::HashSet;

/// Fraction of ground-truth neighbors that appear in the returned set (recall@k).
///
/// Both lists are treated as sets of ids; duplicates are ignored. Returns 1.0 when the
/// ground truth is empty.
pub fn recall_at_k(returned: &[Neighbor], ground_truth: &[Neighbor]) -> f64 {
    if ground_truth.is_empty() {
        return 1.0;
    }
    let truth: HashSet<usize> = ground_truth.iter().map(|n| n.id).collect();
    let got: HashSet<usize> = returned.iter().map(|n| n.id).collect();
    let hit = truth.intersection(&got).count();
    hit as f64 / truth.len() as f64
}

/// Whether the returned set is *distance-exact*: for every ground-truth result there
/// is a returned result at the same rank with the same distance.
///
/// This is the correctness criterion used for Table VI: a run counts as correct when
/// the approximate scheme returns a set of k neighbors whose distances equal the true
/// top-k distances (ties may legitimately swap equal-distance ids).
pub fn is_distance_exact(returned: &[Neighbor], ground_truth: &[Neighbor]) -> bool {
    if returned.len() != ground_truth.len() {
        return false;
    }
    let mut r: Vec<u32> = returned.iter().map(|n| n.distance).collect();
    let mut g: Vec<u32> = ground_truth.iter().map(|n| n.distance).collect();
    r.sort_unstable();
    g.sort_unstable();
    r == g
}

/// Whether the returned set is exactly the ground-truth set of ids (order-insensitive).
pub fn is_id_exact(returned: &[Neighbor], ground_truth: &[Neighbor]) -> bool {
    if returned.len() != ground_truth.len() {
        return false;
    }
    let r: HashSet<usize> = returned.iter().map(|n| n.id).collect();
    let g: HashSet<usize> = ground_truth.iter().map(|n| n.id).collect();
    r == g
}

/// Aggregates per-run correctness into the "percentage incorrect" figure of Table VI.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct AccuracyTally {
    /// Total runs observed.
    pub runs: usize,
    /// Runs whose result set was not exact.
    pub incorrect: usize,
}

impl AccuracyTally {
    /// Records one run.
    pub fn record(&mut self, correct: bool) {
        self.runs += 1;
        if !correct {
            self.incorrect += 1;
        }
    }

    /// Percentage of incorrect runs (0–100). Returns 0 when no runs were recorded.
    pub fn percent_incorrect(&self) -> f64 {
        if self.runs == 0 {
            0.0
        } else {
            100.0 * self.incorrect as f64 / self.runs as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(id: usize, d: u32) -> Neighbor {
        Neighbor::new(id, d)
    }

    #[test]
    fn recall_full_and_partial() {
        let truth = vec![n(1, 1), n(2, 2), n(3, 3), n(4, 4)];
        let perfect = truth.clone();
        let half = vec![n(1, 1), n(3, 3), n(9, 0), n(8, 0)];
        assert!((recall_at_k(&perfect, &truth) - 1.0).abs() < 1e-12);
        assert!((recall_at_k(&half, &truth) - 0.5).abs() < 1e-12);
        assert!((recall_at_k(&[], &truth) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn recall_empty_truth_is_one() {
        assert!((recall_at_k(&[n(1, 1)], &[]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn distance_exact_allows_tie_swaps() {
        let truth = vec![n(1, 2), n(2, 2)];
        let swapped = vec![n(2, 2), n(5, 2)]; // different ids but same distances
        assert!(is_distance_exact(&swapped, &truth));
        let worse = vec![n(2, 2), n(5, 3)];
        assert!(!is_distance_exact(&worse, &truth));
        let short = vec![n(2, 2)];
        assert!(!is_distance_exact(&short, &truth));
    }

    #[test]
    fn id_exact_requires_same_ids() {
        let truth = vec![n(1, 2), n(2, 2)];
        assert!(is_id_exact(&[n(2, 2), n(1, 2)], &truth));
        assert!(!is_id_exact(&[n(3, 2), n(1, 2)], &truth));
    }

    #[test]
    fn tally_percentages() {
        let mut t = AccuracyTally::default();
        assert_eq!(t.percent_incorrect(), 0.0);
        for i in 0..100 {
            t.record(i % 4 != 0); // 25 incorrect
        }
        assert!((t.percent_incorrect() - 25.0).abs() < 1e-12);
        assert_eq!(t.runs, 100);
        assert_eq!(t.incorrect, 25);
    }
}
