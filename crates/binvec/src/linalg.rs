//! Small dense linear algebra used by the iterative-quantization (ITQ) trainer.
//!
//! The paper quantizes real-valued feature descriptors into Hamming codes with ITQ
//! (Gong & Lazebnik), which needs mean-centering, PCA and repeated orthogonal
//! Procrustes solves. Those are small problems — the code length is 64–256 bits — so
//! rather than pulling in an external linear-algebra crate this module implements the
//! handful of dense operations required: a row-major [`Matrix`], matrix products,
//! covariance, a cyclic Jacobi eigensolver for symmetric matrices, a thin SVD built
//! on top of it, QR-based random orthogonal matrices, and the orthogonal Procrustes
//! solution itself.
//!
//! Everything here is written for clarity and numerical robustness at small sizes
//! (tens to a few hundred rows/columns), not for BLAS-level throughput; quantization
//! is an offline preprocessing step explicitly excluded from the paper's measured
//! kNN kernel.

use std::fmt;

/// A dense row-major matrix of `f64`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            write!(f, "  ")?;
            for c in 0..self.cols.min(8) {
                write!(f, "{:>10.4} ", self.get(r, c))?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

impl Matrix {
    /// Creates an all-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Creates a matrix from a closure over `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Self::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m.set(r, c, f(r, c));
            }
        }
        m
    }

    /// Creates a matrix from row slices.
    ///
    /// # Panics
    /// Panics if the rows have differing lengths or `rows` is empty.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        assert!(!rows.is_empty(), "matrix needs at least one row");
        let cols = rows[0].len();
        assert!(
            rows.iter().all(|r| r.len() == cols),
            "all rows must have the same length"
        );
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            data.extend_from_slice(r);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element at `(row, col)`.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f64 {
        debug_assert!(row < self.rows && col < self.cols);
        self.data[row * self.cols + col]
    }

    /// Sets element `(row, col)`.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        debug_assert!(row < self.rows && col < self.cols);
        self.data[row * self.cols + col] = value;
    }

    /// Borrow of row `row` as a slice.
    pub fn row(&self, row: usize) -> &[f64] {
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Column `col` copied into a `Vec`.
    pub fn column(&self, col: usize) -> Vec<f64> {
        (0..self.rows).map(|r| self.get(r, col)).collect()
    }

    /// The transpose.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |r, c| self.get(c, r))
    }

    /// Matrix product `self * other`.
    ///
    /// # Panics
    /// Panics if the inner dimensions disagree.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul dimension mismatch: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(r, k);
                if a == 0.0 {
                    continue;
                }
                for c in 0..other.cols {
                    out.data[r * other.cols + c] += a * other.get(k, c);
                }
            }
        }
        out
    }

    /// Matrix-vector product `self * v`.
    ///
    /// # Panics
    /// Panics if `v.len() != self.cols()`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "matvec dimension mismatch");
        (0..self.rows)
            .map(|r| self.row(r).iter().zip(v).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Maximum absolute element-wise difference to `other`.
    ///
    /// # Panics
    /// Panics if the shapes differ.
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        assert_eq!(self.rows, other.rows);
        assert_eq!(self.cols, other.cols);
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// Whether `self * selfᵀ` is within `tolerance` of the identity (i.e. the rows
    /// are orthonormal; for square matrices this means the matrix is orthogonal).
    pub fn is_orthonormal(&self, tolerance: f64) -> bool {
        let gram = self.matmul(&self.transpose());
        gram.max_abs_diff(&Matrix::identity(self.rows)) <= tolerance
    }
}

/// Mean vector of a set of equal-length sample vectors.
///
/// # Panics
/// Panics if `samples` is empty or the vectors have differing lengths.
pub fn mean_vector(samples: &[Vec<f64>]) -> Vec<f64> {
    assert!(!samples.is_empty(), "mean of an empty sample set");
    let dims = samples[0].len();
    let mut mean = vec![0.0; dims];
    for s in samples {
        assert_eq!(s.len(), dims, "all samples must have the same length");
        for (m, x) in mean.iter_mut().zip(s) {
            *m += x;
        }
    }
    for m in &mut mean {
        *m /= samples.len() as f64;
    }
    mean
}

/// Sample covariance matrix (dividing by `n`, not `n − 1`) of mean-centered data.
///
/// Returns `(mean, covariance)`.
pub fn covariance(samples: &[Vec<f64>]) -> (Vec<f64>, Matrix) {
    let mean = mean_vector(samples);
    let dims = mean.len();
    let mut cov = Matrix::zeros(dims, dims);
    for s in samples {
        let centered: Vec<f64> = s.iter().zip(&mean).map(|(x, m)| x - m).collect();
        for i in 0..dims {
            if centered[i] == 0.0 {
                continue;
            }
            for j in i..dims {
                let v = centered[i] * centered[j];
                cov.data[i * dims + j] += v;
            }
        }
    }
    let n = samples.len() as f64;
    for i in 0..dims {
        for j in i..dims {
            let v = cov.get(i, j) / n;
            cov.set(i, j, v);
            cov.set(j, i, v);
        }
    }
    (mean, cov)
}

/// Eigendecomposition of a symmetric matrix by the cyclic Jacobi method.
///
/// Returns `(eigenvalues, eigenvectors)` sorted by **descending** eigenvalue; the
/// eigenvectors are the *columns* of the returned matrix and are orthonormal.
///
/// # Panics
/// Panics if the matrix is not square.
pub fn jacobi_eigen(sym: &Matrix) -> (Vec<f64>, Matrix) {
    assert_eq!(
        sym.rows, sym.cols,
        "eigendecomposition needs a square matrix"
    );
    let n = sym.rows;
    let mut a = sym.clone();
    let mut v = Matrix::identity(n);

    let max_sweeps = 64;
    let tolerance = 1e-12;
    for _ in 0..max_sweeps {
        // Sum of squares of the off-diagonal elements.
        let mut off = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                off += a.get(i, j) * a.get(i, j);
            }
        }
        if off.sqrt() <= tolerance {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = a.get(p, q);
                if apq.abs() <= f64::EPSILON {
                    continue;
                }
                let app = a.get(p, p);
                let aqq = a.get(q, q);
                let theta = (aqq - app) / (2.0 * apq);
                // Stable computation of tan of the rotation angle.
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;

                // Apply the rotation to A (both sides) and accumulate into V.
                for k in 0..n {
                    let akp = a.get(k, p);
                    let akq = a.get(k, q);
                    a.set(k, p, c * akp - s * akq);
                    a.set(k, q, s * akp + c * akq);
                }
                for k in 0..n {
                    let apk = a.get(p, k);
                    let aqk = a.get(q, k);
                    a.set(p, k, c * apk - s * aqk);
                    a.set(q, k, s * apk + c * aqk);
                }
                for k in 0..n {
                    let vkp = v.get(k, p);
                    let vkq = v.get(k, q);
                    v.set(k, p, c * vkp - s * vkq);
                    v.set(k, q, s * vkp + c * vkq);
                }
            }
        }
    }

    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| {
        a.get(j, j)
            .partial_cmp(&a.get(i, i))
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let eigenvalues: Vec<f64> = order.iter().map(|&i| a.get(i, i)).collect();
    let eigenvectors = Matrix::from_fn(n, n, |r, c| v.get(r, order[c]));
    (eigenvalues, eigenvectors)
}

/// Thin singular value decomposition `A = U · diag(S) · Vᵀ` of a small matrix,
/// computed from the eigendecomposition of `AᵀA`.
///
/// Returns `(U, S, V)` with singular values sorted descending. Singular vectors
/// belonging to (numerically) zero singular values are completed to an orthonormal
/// basis so `U` and `V` always have orthonormal columns.
pub fn svd(a: &Matrix) -> (Matrix, Vec<f64>, Matrix) {
    let ata = a.transpose().matmul(a);
    let (eigenvalues, v) = jacobi_eigen(&ata);
    let singular: Vec<f64> = eigenvalues.iter().map(|&l| l.max(0.0).sqrt()).collect();

    let m = a.rows;
    let n = a.cols;
    let mut u = Matrix::zeros(m, n);
    for (j, &sj) in singular.iter().enumerate() {
        if sj > 1e-10 {
            let vj = v.column(j);
            let uj = a.matvec(&vj);
            for (i, &uji) in uj.iter().enumerate() {
                u.set(i, j, uji / sj);
            }
        }
    }
    // Complete columns for zero singular values via Gram–Schmidt against the
    // existing columns, starting from coordinate axes.
    for (j, &sj) in singular.iter().enumerate() {
        if sj > 1e-10 {
            continue;
        }
        'candidates: for axis in 0..m {
            let mut candidate = vec![0.0; m];
            candidate[axis] = 1.0;
            for k in 0..n {
                if k == j {
                    continue;
                }
                let uk = u.column(k);
                let dot: f64 = candidate.iter().zip(&uk).map(|(a, b)| a * b).sum();
                for (c, b) in candidate.iter_mut().zip(&uk) {
                    *c -= dot * b;
                }
            }
            let norm: f64 = candidate.iter().map(|x| x * x).sum::<f64>().sqrt();
            if norm > 1e-6 {
                for (i, &ci) in candidate.iter().enumerate() {
                    u.set(i, j, ci / norm);
                }
                break 'candidates;
            }
        }
    }
    (u, singular, v)
}

/// Solution of the orthogonal Procrustes problem: the orthogonal matrix `R`
/// minimizing `‖A − B·R‖_F`, namely `R = U·Vᵀ` where `BᵀA = U·Σ·Vᵀ`.
///
/// This is the rotation update at the heart of each ITQ iteration (with `A` the
/// current binary codes and `B` the PCA-projected data).
pub fn orthogonal_procrustes(a: &Matrix, b: &Matrix) -> Matrix {
    let m = b.transpose().matmul(a);
    let (u, _singular, v) = svd(&m);
    u.matmul(&v.transpose())
}

/// A deterministic random orthogonal matrix of size `n`, produced by filling a
/// matrix with Gaussian samples (Box–Muller over a small xorshift generator) and
/// orthonormalizing its columns with modified Gram–Schmidt.
pub fn random_orthogonal(n: usize, seed: u64) -> Matrix {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).max(1);
    let mut next = move || {
        // xorshift64*
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        let bits = state.wrapping_mul(0x2545F4914F6CDD1D);
        (bits >> 11) as f64 / (1u64 << 53) as f64
    };
    let mut gauss = move || {
        let u1: f64 = next().max(f64::MIN_POSITIVE);
        let u2: f64 = next();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    };
    let mut m = Matrix::from_fn(n, n, |_, _| gauss());

    // Modified Gram–Schmidt over columns.
    for j in 0..n {
        for k in 0..j {
            let dot: f64 = (0..n).map(|i| m.get(i, j) * m.get(i, k)).sum();
            for i in 0..n {
                let v = m.get(i, j) - dot * m.get(i, k);
                m.set(i, j, v);
            }
        }
        let norm: f64 = (0..n)
            .map(|i| m.get(i, j) * m.get(i, j))
            .sum::<f64>()
            .sqrt();
        if norm < 1e-12 {
            // Degenerate column (astronomically unlikely): fall back to a unit axis.
            for i in 0..n {
                m.set(i, j, if i == j { 1.0 } else { 0.0 });
            }
        } else {
            for i in 0..n {
                let v = m.get(i, j) / norm;
                m.set(i, j, v);
            }
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} vs {b} (tol {tol})");
    }

    #[test]
    fn identity_and_matmul() {
        let i3 = Matrix::identity(3);
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(m.matmul(&i3), m);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.column(2), vec![3.0, 6.0]);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[vec![19.0, 22.0], vec![43.0, 50.0]]));
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Matrix::from_fn(3, 5, |r, c| (r * 5 + c) as f64);
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose().get(4, 2), m.get(2, 4));
    }

    #[test]
    fn matvec_matches_matmul() {
        let m = Matrix::from_rows(&[vec![1.0, -1.0, 2.0], vec![0.0, 3.0, 1.0]]);
        let v = vec![2.0, 1.0, -1.0];
        assert_eq!(m.matvec(&v), vec![-1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn mean_and_covariance() {
        let samples = vec![vec![1.0, 2.0], vec![3.0, 6.0]];
        let (mean, cov) = covariance(&samples);
        assert_eq!(mean, vec![2.0, 4.0]);
        // Centered samples are (-1,-2) and (1,2): cov = [[1,2],[2,4]].
        assert_close(cov.get(0, 0), 1.0, 1e-12);
        assert_close(cov.get(0, 1), 2.0, 1e-12);
        assert_close(cov.get(1, 0), 2.0, 1e-12);
        assert_close(cov.get(1, 1), 4.0, 1e-12);
    }

    #[test]
    fn jacobi_diagonalizes_known_matrix() {
        // Eigenvalues of [[2,1],[1,2]] are 3 and 1.
        let m = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]);
        let (values, vectors) = jacobi_eigen(&m);
        assert_close(values[0], 3.0, 1e-9);
        assert_close(values[1], 1.0, 1e-9);
        assert!(vectors.transpose().is_orthonormal(1e-9));
        // Check A·v = λ·v for each eigenpair.
        for (j, &lambda) in values.iter().enumerate() {
            let v = vectors.column(j);
            let av = m.matvec(&v);
            for i in 0..2 {
                assert_close(av[i], lambda * v[i], 1e-9);
            }
        }
    }

    #[test]
    fn jacobi_handles_larger_random_symmetric_matrix() {
        let n = 12;
        let raw = random_orthogonal(n, 7);
        // Build a symmetric positive semi-definite matrix with known eigenvalues.
        let eigenvalues: Vec<f64> = (0..n).map(|i| (n - i) as f64).collect();
        let diag = Matrix::from_fn(n, n, |r, c| if r == c { eigenvalues[r] } else { 0.0 });
        let m = raw.matmul(&diag).matmul(&raw.transpose());
        let (values, vectors) = jacobi_eigen(&m);
        for (got, want) in values.iter().zip(&eigenvalues) {
            assert_close(*got, *want, 1e-6);
        }
        assert!(vectors.transpose().is_orthonormal(1e-8));
        // Reconstruction: V·Λ·Vᵀ ≈ M.
        let lambda = Matrix::from_fn(n, n, |r, c| if r == c { values[r] } else { 0.0 });
        let rebuilt = vectors.matmul(&lambda).matmul(&vectors.transpose());
        assert!(rebuilt.max_abs_diff(&m) < 1e-6);
    }

    #[test]
    fn svd_reconstructs_matrix() {
        let a = Matrix::from_rows(&[
            vec![3.0, 1.0, 0.5],
            vec![-1.0, 2.0, 4.0],
            vec![0.0, -2.0, 1.0],
        ]);
        let (u, s, v) = svd(&a);
        let sigma = Matrix::from_fn(3, 3, |r, c| if r == c { s[r] } else { 0.0 });
        let rebuilt = u.matmul(&sigma).matmul(&v.transpose());
        assert!(rebuilt.max_abs_diff(&a) < 1e-8);
        assert!(u.transpose().is_orthonormal(1e-8));
        assert!(v.transpose().is_orthonormal(1e-8));
        // Singular values are sorted descending and non-negative.
        assert!(s.windows(2).all(|w| w[0] >= w[1] - 1e-12));
        assert!(s.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn svd_of_rank_deficient_matrix_still_orthonormal() {
        // Rank-1 matrix.
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        let (u, s, v) = svd(&a);
        assert!(s[1].abs() < 1e-8);
        assert!(u.transpose().is_orthonormal(1e-6));
        assert!(v.transpose().is_orthonormal(1e-6));
        let sigma = Matrix::from_fn(2, 2, |r, c| if r == c { s[r] } else { 0.0 });
        let rebuilt = u.matmul(&sigma).matmul(&v.transpose());
        assert!(rebuilt.max_abs_diff(&a) < 1e-6);
    }

    #[test]
    fn procrustes_recovers_known_rotation() {
        // B is random data, A = B·R for a known rotation R; the Procrustes solution
        // applied to (A, B) must recover R.
        let n = 6;
        let b = Matrix::from_fn(20, n, |r, c| (((r + 1) * (c + 2)) as f64).sin() * 3.0);
        let r_true = random_orthogonal(n, 42);
        let a = b.matmul(&r_true);
        let r = orthogonal_procrustes(&a, &b);
        assert!(r.max_abs_diff(&r_true) < 1e-6);
        assert!(r.is_orthonormal(1e-8));
    }

    #[test]
    fn random_orthogonal_is_orthonormal_and_deterministic() {
        for &n in &[1usize, 2, 8, 32] {
            let m = random_orthogonal(n, 3);
            assert!(m.is_orthonormal(1e-9), "n = {n}");
            assert!(m.transpose().is_orthonormal(1e-9), "n = {n}");
        }
        assert_eq!(random_orthogonal(8, 5), random_orthogonal(8, 5));
        assert!(random_orthogonal(8, 5).max_abs_diff(&random_orthogonal(8, 6)) > 1e-3);
    }

    #[test]
    fn frobenius_norm_matches_manual() {
        let m = Matrix::from_rows(&[vec![3.0, 4.0]]);
        assert_close(m.frobenius_norm(), 5.0, 1e-12);
    }
}
