//! # binvec — binary vectors for Hamming-space similarity search
//!
//! This crate is the data substrate for the reproduction of *"Similarity Search on
//! Automata Processors"* (Lee et al., IPDPS 2017). The paper performs k-nearest-neighbor
//! search over **binary feature vectors** (real-valued descriptors quantized into
//! Hamming space with techniques such as ITQ), because Hamming distance maps well onto
//! the Automata Processor which has no hardened arithmetic units.
//!
//! The crate provides:
//!
//! * [`BinaryVector`] / [`BinaryDataset`] — bit-packed vectors of arbitrary
//!   dimensionality with cheap Hamming/Jaccard distance kernels.
//! * [`topk`] — exact top-k selection utilities shared by every baseline and by the
//!   AP result decoder.
//! * [`quantize`] — sign and random-rotation quantizers (the initializations ITQ
//!   starts from).
//! * [`itq`] — the full iterative-quantization trainer (PCA + learned rotation),
//!   built on the small dense linear algebra in [`linalg`].
//! * [`generate`] — synthetic dataset generators (uniform, clustered, planted
//!   neighbors) used in place of the paper's proprietary SIFT / word-embedding /
//!   TagSpace corpora.
//! * [`io`] — readers/writers for the `.fvecs`/`.bvecs`/`.ivecs` corpus formats and
//!   a packed container for quantized binary datasets, so the pipeline can also be
//!   run on the real corpora when they are available.
//! * [`workload`] — the paper's Table II workload parameter presets.
//! * [`metrics`] — recall / accuracy metrics used by the approximate-search and
//!   statistical-reduction experiments.
//! * [`query`] — the workspace-wide query vocabulary: [`QueryOptions`] (k, optional
//!   distance bound, execution preference) and the fallible [`SearchError`] every
//!   uniform query entry point returns.
//! * [`mutation`] — the mutation vocabulary for live (mutable) corpora:
//!   [`Mutation`] submissions and the [`MutAck`] acknowledgements carrying the
//!   generation at which a mutation became visible.
//! * [`wire`] — byte-level wire serialization of the query vocabulary
//!   ([`QueryOptions`], [`SearchError`], [`Neighbor`], [`BinaryVector`]) for the
//!   length-prefixed network protocol served by `ap-serve`.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bits;
pub mod dataset;
pub mod distance;
pub mod generate;
pub mod io;
pub mod itq;
pub mod linalg;
pub mod metrics;
pub mod mutation;
pub mod quantize;
pub mod query;
pub mod topk;
pub mod wire;
pub mod workload;

pub use bits::BinaryVector;
pub use dataset::BinaryDataset;
pub use distance::{hamming, inverted_hamming, jaccard_similarity};
pub use itq::{ItqConfig, ItqQuantizer};
pub use mutation::{MutAck, Mutation, MutationOp};
pub use query::{Deadline, ExecutionPreference, Priority, QueryOptions, ResultKey, SearchError};
pub use topk::{Neighbor, TopK};
pub use wire::{WireError, WireReader};
pub use workload::{Workload, WorkloadParams};
