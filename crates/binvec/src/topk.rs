//! Exact top-k selection over (id, distance) pairs.
//!
//! Every platform in the paper ultimately reduces per-vector distances to the k
//! smallest: the CPU baseline uses priority-queue insertion (`O(n log k)`), the FPGA
//! accelerator has a hardware priority queue, and the AP performs the temporally
//! encoded sort whose decoded output is merged with a host-side [`TopK`] across board
//! reconfigurations. This module provides the shared, well-tested selection primitive
//! with deterministic tie-breaking so that all engines can be compared result-for-
//! result.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A candidate neighbor: a dataset vector id and its distance to the query.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Neighbor {
    /// Index of the dataset vector.
    pub id: usize,
    /// Distance (Hamming) from the query to that vector.
    pub distance: u32,
}

impl Neighbor {
    /// Convenience constructor.
    pub fn new(id: usize, distance: u32) -> Self {
        Self { id, distance }
    }
}

impl PartialOrd for Neighbor {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Neighbor {
    /// Orders by distance, then by id. Lower is "better" (closer).
    fn cmp(&self, other: &Self) -> Ordering {
        self.distance
            .cmp(&other.distance)
            .then(self.id.cmp(&other.id))
    }
}

/// A bounded max-heap keeping the `k` smallest-distance neighbors seen so far.
///
/// Ties on distance are broken by preferring smaller ids, which makes every engine in
/// the workspace produce byte-identical result sets for the same input — essential for
/// the equivalence tests between the AP simulation and the brute-force baseline.
#[derive(Clone, Debug)]
pub struct TopK {
    k: usize,
    heap: BinaryHeap<Neighbor>,
}

impl TopK {
    /// Creates an empty selector for the `k` nearest neighbors.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        Self {
            k,
            heap: BinaryHeap::with_capacity(k + 1),
        }
    }

    /// The `k` this selector was created with.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of candidates currently held (≤ k).
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no candidates have been offered yet.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Offers a candidate; keeps it only if it is among the k best seen so far.
    ///
    /// Returns `true` if the candidate was retained.
    pub fn offer(&mut self, candidate: Neighbor) -> bool {
        if self.heap.len() < self.k {
            self.heap.push(candidate);
            true
        } else if let Some(worst) = self.heap.peek() {
            if candidate < *worst {
                self.heap.pop();
                self.heap.push(candidate);
                true
            } else {
                false
            }
        } else {
            false
        }
    }

    /// The current k-th best (i.e. worst retained) candidate, if `k` are held.
    pub fn threshold(&self) -> Option<Neighbor> {
        if self.heap.len() == self.k {
            self.heap.peek().copied()
        } else {
            None
        }
    }

    /// Merges another selector's retained candidates into this one.
    ///
    /// Used by the partial-reconfiguration engine to combine per-board-configuration
    /// partial results, and by multi-threaded baselines to combine per-thread results.
    pub fn merge(&mut self, other: &TopK) {
        for n in other.heap.iter() {
            self.offer(*n);
        }
    }

    /// Clears the selector and re-arms it for `k` neighbors, keeping the heap
    /// allocation — the pooled serving hot path resets accumulators between
    /// batches instead of re-allocating them.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn reset(&mut self, k: usize) {
        assert!(k > 0, "k must be positive");
        self.k = k;
        self.heap.clear();
        // No-op once the heap has ever been sized for this k.
        self.heap.reserve(k + 1);
    }

    /// Drains the retained neighbors, sorted by (distance, id) ascending, into
    /// `out` (cleared first). Both the heap's and `out`'s allocations survive,
    /// so repeated batches reuse them.
    pub fn drain_sorted_into(&mut self, out: &mut Vec<Neighbor>) {
        out.clear();
        out.extend(self.heap.drain());
        out.sort_unstable();
    }

    /// Consumes the selector and returns the retained neighbors sorted by
    /// (distance, id) ascending.
    pub fn into_sorted(self) -> Vec<Neighbor> {
        let mut v: Vec<Neighbor> = self.heap.into_vec();
        v.sort_unstable();
        v
    }

    /// Returns the retained neighbors sorted ascending without consuming.
    pub fn sorted(&self) -> Vec<Neighbor> {
        let mut v: Vec<Neighbor> = self.heap.iter().copied().collect();
        v.sort_unstable();
        v
    }
}

/// Selects the `k` nearest neighbors from an iterator of candidates.
pub fn select_k<I>(k: usize, candidates: I) -> Vec<Neighbor>
where
    I: IntoIterator<Item = Neighbor>,
{
    let mut topk = TopK::new(k);
    for c in candidates {
        topk.offer(c);
    }
    topk.into_sorted()
}

/// Fully sorts candidates by (distance, id); reference implementation for tests and
/// for the "sort everything" von-Neumann baseline the paper contrasts against.
pub fn full_sort(mut candidates: Vec<Neighbor>) -> Vec<Neighbor> {
    candidates.sort_unstable();
    candidates
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neighbor_ordering_breaks_ties_by_id() {
        let a = Neighbor::new(3, 5);
        let b = Neighbor::new(7, 5);
        assert!(a < b);
        assert!(Neighbor::new(7, 4) < a);
    }

    #[test]
    fn select_k_smallest() {
        let candidates = vec![
            Neighbor::new(0, 9),
            Neighbor::new(1, 2),
            Neighbor::new(2, 7),
            Neighbor::new(3, 2),
            Neighbor::new(4, 1),
        ];
        let got = select_k(3, candidates);
        assert_eq!(
            got,
            vec![
                Neighbor::new(4, 1),
                Neighbor::new(1, 2),
                Neighbor::new(3, 2)
            ]
        );
    }

    #[test]
    fn fewer_candidates_than_k() {
        let got = select_k(10, vec![Neighbor::new(5, 3), Neighbor::new(2, 1)]);
        assert_eq!(got, vec![Neighbor::new(2, 1), Neighbor::new(5, 3)]);
    }

    #[test]
    fn offer_reports_retention() {
        let mut t = TopK::new(2);
        assert!(t.offer(Neighbor::new(0, 10)));
        assert!(t.offer(Neighbor::new(1, 5)));
        assert!(t.offer(Neighbor::new(2, 1))); // evicts (0,10)
        assert!(!t.offer(Neighbor::new(3, 20)));
        assert_eq!(t.sorted(), vec![Neighbor::new(2, 1), Neighbor::new(1, 5)]);
    }

    #[test]
    fn threshold_only_when_full() {
        let mut t = TopK::new(2);
        t.offer(Neighbor::new(0, 4));
        assert_eq!(t.threshold(), None);
        t.offer(Neighbor::new(1, 9));
        assert_eq!(t.threshold(), Some(Neighbor::new(1, 9)));
    }

    #[test]
    fn merge_equals_single_pass() {
        let all: Vec<Neighbor> = (0..50)
            .map(|i| Neighbor::new(i, (i * 7 % 23) as u32))
            .collect();
        let expected = select_k(5, all.clone());

        let mut left = TopK::new(5);
        let mut right = TopK::new(5);
        for (i, n) in all.into_iter().enumerate() {
            if i % 2 == 0 {
                left.offer(n);
            } else {
                right.offer(n);
            }
        }
        left.merge(&right);
        assert_eq!(left.into_sorted(), expected);
    }

    #[test]
    fn full_sort_sorts_by_distance_then_id() {
        let sorted = full_sort(vec![
            Neighbor::new(2, 3),
            Neighbor::new(1, 3),
            Neighbor::new(0, 1),
        ]);
        assert_eq!(
            sorted,
            vec![
                Neighbor::new(0, 1),
                Neighbor::new(1, 3),
                Neighbor::new(2, 3)
            ]
        );
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        let _ = TopK::new(0);
    }

    #[test]
    fn reset_and_drain_reuse_matches_fresh_selection() {
        let candidates: Vec<Neighbor> = (0..40)
            .map(|i| Neighbor::new(i, (i * 13 % 17) as u32))
            .collect();
        let mut pooled = TopK::new(3);
        let mut out = Vec::new();
        for k in [3usize, 5, 2, 5] {
            pooled.reset(k);
            assert_eq!(pooled.k(), k);
            assert!(pooled.is_empty(), "reset must clear retained candidates");
            for &c in &candidates {
                pooled.offer(c);
            }
            pooled.drain_sorted_into(&mut out);
            assert_eq!(out, select_k(k, candidates.iter().copied()), "k = {k}");
            assert!(pooled.is_empty(), "drain must empty the selector");
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn select_k_matches_full_sort_prefix(
            dists in prop::collection::vec(0u32..64, 1..200),
            k in 1usize..20,
        ) {
            let candidates: Vec<Neighbor> =
                dists.iter().enumerate().map(|(i, &d)| Neighbor::new(i, d)).collect();
            let selected = select_k(k, candidates.clone());
            let sorted = full_sort(candidates);
            let expect: Vec<Neighbor> = sorted.into_iter().take(k).collect();
            prop_assert_eq!(selected, expect);
        }

        #[test]
        fn merge_is_order_independent(
            dists in prop::collection::vec(0u32..64, 1..100),
            k in 1usize..10,
            split in 0usize..100,
        ) {
            let candidates: Vec<Neighbor> =
                dists.iter().enumerate().map(|(i, &d)| Neighbor::new(i, d)).collect();
            let split = split.min(candidates.len());
            let (a, b) = candidates.split_at(split);

            let mut ta = TopK::new(k);
            for n in a { ta.offer(*n); }
            let mut tb = TopK::new(k);
            for n in b { tb.offer(*n); }

            let mut ab = ta.clone();
            ab.merge(&tb);
            let mut ba = tb.clone();
            ba.merge(&ta);

            prop_assert_eq!(ab.into_sorted(), ba.into_sorted());
        }
    }
}
