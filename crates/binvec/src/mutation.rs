//! The mutation vocabulary for live (mutable) corpora.
//!
//! A frozen corpus is the paper's operating assumption — board images are
//! compiled for a dataset fixed at configuration time. The live-corpus
//! subsystem (`ap_knn::live`) relaxes that with append-only delta partitions
//! and tombstones; this module defines the workspace-wide vocabulary those
//! paths speak: a [`Mutation`] submitted by a caller and the [`MutAck`] the
//! engine answers with once the mutation is visible to queries.
//!
//! Like the query vocabulary in [`crate::query`], the wire encodings live
//! next to the types (see [`crate::wire`] for the conventions) so the network
//! protocol and the in-memory types cannot drift apart.

use crate::bits::BinaryVector;
use crate::wire::{put_u64, WireError, WireReader};

/// Which kind of mutation an acknowledgement answers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MutationOp {
    /// A vector was appended to the corpus.
    Insert,
    /// A vector was tombstoned out of the corpus.
    Delete,
}

/// A corpus mutation submitted to a live engine.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Mutation {
    /// Append `vector` to the corpus; the engine assigns the next stable id.
    Insert {
        /// The vector to insert.
        vector: BinaryVector,
    },
    /// Remove the vector with stable id `id` from the corpus.
    Delete {
        /// The stable id to delete (as returned by a prior insert's ack).
        id: usize,
    },
}

impl Mutation {
    /// The operation kind this mutation performs.
    pub fn op(&self) -> MutationOp {
        match self {
            Self::Insert { .. } => MutationOp::Insert,
            Self::Delete { .. } => MutationOp::Delete,
        }
    }
}

impl Mutation {
    /// Encodes the mutation as `op · (vector | id: u64)`.
    pub fn encode_wire(&self, out: &mut Vec<u8>) {
        self.op().encode_wire(out);
        match self {
            Self::Insert { vector } => vector.encode_wire(out),
            Self::Delete { id } => put_u64(out, *id as u64),
        }
    }

    /// Decodes a mutation encoded by [`Self::encode_wire`].
    ///
    /// # Errors
    /// [`WireError`] on truncated or malformed bytes, including hostile
    /// vector dimension counts (see [`BinaryVector::decode_wire`]).
    pub fn decode_wire(reader: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(match MutationOp::decode_wire(reader)? {
            MutationOp::Insert => Self::Insert {
                vector: BinaryVector::decode_wire(reader)?,
            },
            MutationOp::Delete => Self::Delete {
                id: reader.u64()? as usize,
            },
        })
    }
}

/// Acknowledgement that a mutation has been applied and is visible to queries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MutAck {
    /// The operation that was applied.
    pub op: MutationOp,
    /// The stable id the mutation targeted: assigned by the engine for an
    /// insert, echoed back for a delete.
    pub id: usize,
    /// The corpus generation at which the mutation became visible. Any query
    /// answered at this generation or later observes the mutation.
    pub generation: u64,
}

impl MutationOp {
    /// Encodes the operation as its wire tag.
    pub fn encode_wire(&self, out: &mut Vec<u8>) {
        out.push(match self {
            Self::Insert => 0,
            Self::Delete => 1,
        });
    }

    /// Decodes an operation from its wire tag.
    ///
    /// # Errors
    /// [`WireError::Malformed`] on an unknown tag.
    pub fn decode_wire(reader: &mut WireReader<'_>) -> Result<Self, WireError> {
        match reader.u8()? {
            0 => Ok(Self::Insert),
            1 => Ok(Self::Delete),
            _ => Err(WireError::Malformed {
                what: "mutation op",
            }),
        }
    }
}

impl MutAck {
    /// Encodes the ack as `op · id: u64 · generation: u64`.
    pub fn encode_wire(&self, out: &mut Vec<u8>) {
        self.op.encode_wire(out);
        put_u64(out, self.id as u64);
        put_u64(out, self.generation);
    }

    /// Decodes an ack encoded by [`Self::encode_wire`].
    ///
    /// # Errors
    /// [`WireError`] on truncated or malformed bytes.
    pub fn decode_wire(reader: &mut WireReader<'_>) -> Result<Self, WireError> {
        let op = MutationOp::decode_wire(reader)?;
        let id = reader.u64()? as usize;
        let generation = reader.u64()?;
        Ok(Self { op, id, generation })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acks_roundtrip() {
        for ack in [
            MutAck {
                op: MutationOp::Insert,
                id: 0,
                generation: 1,
            },
            MutAck {
                op: MutationOp::Delete,
                id: usize::MAX,
                generation: u64::MAX,
            },
        ] {
            let mut buf = Vec::new();
            ack.encode_wire(&mut buf);
            let mut reader = WireReader::new(&buf);
            assert_eq!(MutAck::decode_wire(&mut reader), Ok(ack));
            assert!(reader.is_empty(), "decode must consume the whole encoding");
        }
    }

    #[test]
    fn hostile_op_tag_is_typed_not_a_panic() {
        let mut reader = WireReader::new(&[9, 0, 0]);
        assert_eq!(
            MutationOp::decode_wire(&mut reader),
            Err(WireError::Malformed {
                what: "mutation op"
            })
        );
    }

    #[test]
    fn mutations_roundtrip() {
        for mutation in [
            Mutation::Insert {
                vector: BinaryVector::zeros(33),
            },
            Mutation::Delete { id: 1_234_567 },
        ] {
            let mut buf = Vec::new();
            mutation.encode_wire(&mut buf);
            let mut reader = WireReader::new(&buf);
            assert_eq!(Mutation::decode_wire(&mut reader), Ok(mutation));
            assert!(reader.is_empty(), "decode must consume the whole encoding");
        }
    }

    #[test]
    fn truncated_mutation_is_typed_not_a_panic() {
        let mut buf = Vec::new();
        Mutation::Insert {
            vector: BinaryVector::zeros(64),
        }
        .encode_wire(&mut buf);
        for cut in 0..buf.len() {
            let mut reader = WireReader::new(&buf[..cut]);
            assert!(Mutation::decode_wire(&mut reader).is_err());
        }
    }

    #[test]
    fn mutations_report_their_op() {
        assert_eq!(
            Mutation::Insert {
                vector: BinaryVector::zeros(8)
            }
            .op(),
            MutationOp::Insert
        );
        assert_eq!(Mutation::Delete { id: 3 }.op(), MutationOp::Delete);
    }
}
