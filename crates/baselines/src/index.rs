//! Common interface implemented by every kNN engine and index structure.

use binvec::{BinaryVector, Neighbor};

/// A k-nearest-neighbor search engine over a fixed dataset.
pub trait SearchIndex {
    /// Number of vectors indexed.
    fn len(&self) -> usize;

    /// Whether the index is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Dimensionality of the indexed vectors.
    fn dims(&self) -> usize;

    /// Returns the `k` nearest neighbors of `query`, sorted by (distance, id).
    fn search(&self, query: &BinaryVector, k: usize) -> Vec<Neighbor>;

    /// Searches a batch of queries. The default implementation searches serially;
    /// engines with batch-level parallelism override it.
    fn search_batch(&self, queries: &[BinaryVector], k: usize) -> Vec<Vec<Neighbor>> {
        queries.iter().map(|q| self.search(q, k)).collect()
    }
}

/// An *approximate* index that prunes the search space to a candidate bucket.
///
/// The paper factors index traversal out to the host processor and uses the AP only
/// for the linear scan of the selected bucket (§III-D), so approximate indexes must
/// expose which dataset ids a query's traversal would visit. The same candidate list
/// drives the CPU-side approximate baselines, guaranteeing that the CPU and AP
/// variants of an index search exactly the same candidates.
pub trait BucketIndex: SearchIndex {
    /// Returns the dataset indices the index would scan for `query`.
    fn candidates(&self, query: &BinaryVector) -> Vec<usize>;

    /// Number of index-traversal distance computations (or hash evaluations) needed
    /// to locate the candidate bucket for one query. Used by the analytical run-time
    /// models for Table V.
    fn traversal_cost(&self) -> usize;

    /// Stable identifiers of the buckets the query's traversal lands in — one per
    /// tree / hash table. Two queries reaching the same leaf (or hash bucket) must
    /// return the same identifier, because in the AP deployment each bucket is a
    /// precompiled board image and reloading an already-resident image is free.
    ///
    /// The default implementation fingerprints the whole candidate set, which is
    /// correct but pessimistic for forest-style indexes whose candidate unions vary
    /// per query; those override it with per-leaf identifiers.
    fn bucket_ids(&self, query: &BinaryVector) -> Vec<u64> {
        vec![fingerprint_ids(self.candidates(query).iter().copied())]
    }
}

/// FNV-1a fingerprint of a sequence of dataset ids, used to derive stable bucket
/// identifiers from leaf membership lists.
pub fn fingerprint_ids<I: IntoIterator<Item = usize>>(ids: I) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for i in ids {
        h ^= i as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use binvec::BinaryDataset;

    /// A trivial exhaustive index used to exercise the trait defaults.
    struct Exhaustive {
        data: BinaryDataset,
    }

    impl SearchIndex for Exhaustive {
        fn len(&self) -> usize {
            self.data.len()
        }
        fn dims(&self) -> usize {
            self.data.dims()
        }
        fn search(&self, query: &BinaryVector, k: usize) -> Vec<Neighbor> {
            binvec::topk::select_k(
                k,
                (0..self.data.len()).map(|i| Neighbor::new(i, self.data.hamming_to(i, query))),
            )
        }
    }

    #[test]
    fn default_batch_search_matches_single() {
        let data = binvec::generate::uniform_dataset(50, 32, 1);
        let idx = Exhaustive { data };
        assert!(!idx.is_empty());
        let queries = binvec::generate::uniform_queries(5, 32, 2);
        let batch = idx.search_batch(&queries, 3);
        for (q, result) in queries.iter().zip(batch.iter()) {
            assert_eq!(result, &idx.search(q, 3));
        }
    }

    #[test]
    fn empty_index_reports_empty() {
        let idx = Exhaustive {
            data: BinaryDataset::new(16),
        };
        assert!(idx.is_empty());
        assert_eq!(idx.len(), 0);
    }
}
