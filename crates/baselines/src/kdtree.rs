//! Randomized kd-trees over binary codes (the FLANN-style approximate index).
//!
//! Following the paper's description (§II-A): the dataset is indexed across multiple
//! parallel trees, each partitioning on dimensions with the highest variance (a
//! random choice among the top candidates decorrelates the trees). Tree depth is
//! bounded so the index size stays manageable; each leaf holds a bucket of candidate
//! points which is scanned linearly when a traversal reaches it. Searching consults
//! every tree, unions the reached buckets, and linearly scans the union — matching
//! the "each tree traversal checks one bucket of vectors" evaluation setup (§IV-C).

use crate::index::{BucketIndex, SearchIndex};
use binvec::{BinaryDataset, BinaryVector, Neighbor, TopK};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

/// Configuration for a [`KdForest`].
#[derive(Clone, Copy, Debug)]
pub struct KdForestConfig {
    /// Number of parallel randomized trees (the paper uses four).
    pub trees: usize,
    /// Maximum number of points in a leaf bucket. The paper sets this to the AP
    /// board capacity (512–1024) so one bucket maps to one board configuration.
    pub bucket_size: usize,
    /// Among how many of the highest-variance dimensions the split dimension is
    /// randomly chosen (FLANN uses 5).
    pub top_variance_candidates: usize,
    /// RNG seed for reproducible tree construction.
    pub seed: u64,
}

impl Default for KdForestConfig {
    fn default() -> Self {
        Self {
            trees: 4,
            bucket_size: 1024,
            top_variance_candidates: 5,
            seed: 0x5EED,
        }
    }
}

/// One node of a single randomized kd-tree.
#[derive(Clone, Debug)]
enum Node {
    /// Internal node splitting on `dim`: vectors with bit `dim` == 0 go left.
    Split {
        /// Split dimension.
        dim: usize,
        /// Child for bit == 0.
        left: Box<Node>,
        /// Child for bit == 1.
        right: Box<Node>,
    },
    /// Leaf bucket of dataset indices.
    Leaf(Vec<usize>),
}

impl Node {
    /// Follows the query's bits to a leaf bucket.
    fn locate<'a>(&'a self, query: &BinaryVector) -> &'a [usize] {
        match self {
            Node::Leaf(ids) => ids,
            Node::Split { dim, left, right } => {
                if query.get(*dim) {
                    right.locate(query)
                } else {
                    left.locate(query)
                }
            }
        }
    }

    /// Depth of the tree below this node.
    fn depth(&self) -> usize {
        match self {
            Node::Leaf(_) => 0,
            Node::Split { left, right, .. } => 1 + left.depth().max(right.depth()),
        }
    }

    fn leaves<'a>(&'a self, out: &mut Vec<&'a Vec<usize>>) {
        match self {
            Node::Leaf(ids) => out.push(ids),
            Node::Split { left, right, .. } => {
                left.leaves(out);
                right.leaves(out);
            }
        }
    }
}

/// A forest of randomized kd-trees over a binary dataset.
#[derive(Clone, Debug)]
pub struct KdForest {
    data: BinaryDataset,
    roots: Vec<Node>,
    config: KdForestConfig,
}

impl KdForest {
    /// Builds the forest over `data`.
    pub fn build(data: BinaryDataset, config: KdForestConfig) -> Self {
        assert!(config.trees > 0, "need at least one tree");
        assert!(config.bucket_size > 0, "bucket size must be positive");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let all: Vec<usize> = (0..data.len()).collect();
        let roots = (0..config.trees)
            .map(|_| Self::build_node(&data, all.clone(), &config, &mut rng))
            .collect();
        Self {
            data,
            roots,
            config,
        }
    }

    fn build_node(
        data: &BinaryDataset,
        ids: Vec<usize>,
        config: &KdForestConfig,
        rng: &mut StdRng,
    ) -> Node {
        if ids.len() <= config.bucket_size {
            return Node::Leaf(ids);
        }
        // Compute per-dimension set-bit counts for this subset and rank dimensions by
        // variance of the Bernoulli bit (maximized when the split is balanced).
        let dims = data.dims();
        let mut ones = vec![0usize; dims];
        for &i in &ids {
            let v = data.vector(i);
            for (d, count) in ones.iter_mut().enumerate() {
                if v.get(d) {
                    *count += 1;
                }
            }
        }
        let n = ids.len() as f64;
        let mut ranked: Vec<(usize, f64)> = ones
            .iter()
            .enumerate()
            .map(|(d, &c)| {
                let p = c as f64 / n;
                (d, p * (1.0 - p))
            })
            .collect();
        ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));

        // Pick randomly among the top candidates with nonzero variance.
        let usable: Vec<usize> = ranked
            .iter()
            .take(config.top_variance_candidates)
            .filter(|(_, var)| *var > 0.0)
            .map(|(d, _)| *d)
            .collect();
        if usable.is_empty() {
            // All remaining points are identical on every dimension; stop splitting.
            return Node::Leaf(ids);
        }
        let dim = usable[rng.gen_range(0..usable.len())];

        let (left_ids, right_ids): (Vec<usize>, Vec<usize>) =
            ids.into_iter().partition(|&i| !data.vector(i).get(dim));
        if left_ids.is_empty() || right_ids.is_empty() {
            // Degenerate split (can happen when variance ranking used stale info);
            // fall back to a leaf to guarantee termination.
            let mut all = left_ids;
            all.extend(right_ids);
            return Node::Leaf(all);
        }
        Node::Split {
            dim,
            left: Box::new(Self::build_node(data, left_ids, config, rng)),
            right: Box::new(Self::build_node(data, right_ids, config, rng)),
        }
    }

    /// The configuration the forest was built with.
    pub fn config(&self) -> &KdForestConfig {
        &self.config
    }

    /// Maximum tree depth across the forest (index-size diagnostic).
    pub fn max_depth(&self) -> usize {
        self.roots.iter().map(Node::depth).max().unwrap_or(0)
    }

    /// Number of leaf buckets across all trees.
    pub fn leaf_count(&self) -> usize {
        let mut leaves = Vec::new();
        for r in &self.roots {
            r.leaves(&mut leaves);
        }
        leaves.len()
    }
}

impl SearchIndex for KdForest {
    fn len(&self) -> usize {
        self.data.len()
    }

    fn dims(&self) -> usize {
        self.data.dims()
    }

    fn search(&self, query: &BinaryVector, k: usize) -> Vec<Neighbor> {
        let mut topk = TopK::new(k);
        for i in self.candidates(query) {
            topk.offer(Neighbor::new(i, self.data.hamming_to(i, query)));
        }
        topk.into_sorted()
    }
}

impl BucketIndex for KdForest {
    fn candidates(&self, query: &BinaryVector) -> Vec<usize> {
        let mut set = BTreeSet::new();
        for root in &self.roots {
            for &i in root.locate(query) {
                set.insert(i);
            }
        }
        set.into_iter().collect()
    }

    fn traversal_cost(&self) -> usize {
        // One bit test per level per tree.
        self.roots.iter().map(Node::depth).sum()
    }

    fn bucket_ids(&self, query: &BinaryVector) -> Vec<u64> {
        // One bucket per tree: the leaf the query's traversal reaches.
        self.roots
            .iter()
            .map(|root| crate::index::fingerprint_ids(root.locate(query).iter().copied()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::LinearScan;
    use binvec::generate::{clustered_dataset, planted_queries, uniform_dataset, ClusterParams};
    use binvec::metrics::recall_at_k;

    fn small_config(bucket: usize) -> KdForestConfig {
        KdForestConfig {
            trees: 4,
            bucket_size: bucket,
            top_variance_candidates: 5,
            seed: 42,
        }
    }

    #[test]
    fn dataset_smaller_than_bucket_degenerates_to_linear_scan() {
        let data = uniform_dataset(100, 64, 1);
        let forest = KdForest::build(data.clone(), small_config(1024));
        let exact = LinearScan::new(data);
        let q = binvec::generate::uniform_queries(5, 64, 2);
        for query in &q {
            assert_eq!(forest.search(query, 3), exact.search(query, 3));
            assert_eq!(forest.candidates(query).len(), 100);
        }
        assert_eq!(forest.max_depth(), 0);
    }

    #[test]
    fn buckets_respect_size_and_partition_dataset() {
        let data = uniform_dataset(1000, 32, 7);
        let forest = KdForest::build(data, small_config(64));
        assert!(forest.max_depth() > 0);
        // Every tree's leaves partition the dataset.
        for root in &forest.roots {
            let mut leaves = Vec::new();
            root.leaves(&mut leaves);
            let total: usize = leaves.iter().map(|l| l.len()).sum();
            assert_eq!(total, 1000);
            let mut seen = std::collections::HashSet::new();
            for l in &leaves {
                for &i in l.iter() {
                    assert!(seen.insert(i), "vector {i} in two leaves of one tree");
                }
            }
        }
        assert!(forest.leaf_count() >= 4);
        assert!(forest.traversal_cost() >= 4);
    }

    #[test]
    fn planted_neighbors_are_recalled_on_clustered_data() {
        let (data, _) = clustered_dataset(
            2000,
            64,
            ClusterParams {
                clusters: 8,
                flip_probability: 0.02,
            },
            3,
        );
        let forest = KdForest::build(data.clone(), small_config(128));
        let exact = LinearScan::new(data.clone());
        let queries = planted_queries(&data, 50, 1, 5);
        let mut recall = 0.0;
        for pq in &queries {
            let truth = exact.search(&pq.query, 4);
            let got = forest.search(&pq.query, 4);
            recall += recall_at_k(&got, &truth);
        }
        recall /= queries.len() as f64;
        assert!(recall > 0.6, "kd-forest recall too low: {recall}");
    }

    #[test]
    fn candidates_are_sorted_and_unique() {
        let data = uniform_dataset(500, 32, 9);
        let forest = KdForest::build(data, small_config(50));
        let q = binvec::generate::uniform_queries(1, 32, 10).pop().unwrap();
        let cands = forest.candidates(&q);
        for w in cands.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert!(!cands.is_empty());
        assert!(cands.len() <= 500);
    }

    #[test]
    fn more_trees_scan_more_candidates() {
        let data = uniform_dataset(2000, 64, 11);
        let one = KdForest::build(
            data.clone(),
            KdForestConfig {
                trees: 1,
                ..small_config(64)
            },
        );
        let four = KdForest::build(
            data,
            KdForestConfig {
                trees: 4,
                ..small_config(64)
            },
        );
        let q = binvec::generate::uniform_queries(5, 64, 12);
        let avg = |f: &KdForest| -> f64 {
            q.iter()
                .map(|query| f.candidates(query).len())
                .sum::<usize>() as f64
                / q.len() as f64
        };
        assert!(avg(&four) > avg(&one));
    }

    #[test]
    fn constant_dataset_terminates() {
        // All-identical vectors have zero variance everywhere; the builder must not
        // recurse forever.
        let mut data = BinaryDataset::new(16);
        let v = BinaryVector::ones(16);
        for _ in 0..100 {
            data.push(&v);
        }
        let forest = KdForest::build(data, small_config(10));
        assert_eq!(forest.max_depth(), 0);
        assert_eq!(forest.candidates(&BinaryVector::zeros(16)).len(), 100);
    }

    #[test]
    #[should_panic(expected = "at least one tree")]
    fn zero_trees_panics() {
        let _ = KdForest::build(
            uniform_dataset(10, 8, 0),
            KdForestConfig {
                trees: 0,
                ..Default::default()
            },
        );
    }
}
