//! Hierarchical k-means index over binary codes.
//!
//! Following §II-A of the paper: the dataset is hierarchically partitioned into
//! clusters; traversing the index requires a distance calculation at each node to
//! pick the next child; each leaf is a bucket of candidate points scanned linearly
//! after the traversal. In Hamming space the cluster "centroid" is the per-dimension
//! majority bit (the binary vector minimizing the summed Hamming distance to the
//! cluster members), and Lloyd-style iterations alternate assignment and majority
//! recomputation.

use crate::index::{BucketIndex, SearchIndex};
use binvec::{BinaryDataset, BinaryVector, Neighbor, TopK};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for a [`HierarchicalKMeans`] index.
#[derive(Clone, Copy, Debug)]
pub struct KMeansConfig {
    /// Branching factor at every internal node.
    pub branching: usize,
    /// Maximum number of points in a leaf bucket (the paper sets this to one AP
    /// board configuration's capacity).
    pub bucket_size: usize,
    /// Lloyd iterations per node.
    pub iterations: usize,
    /// RNG seed for centroid initialization.
    pub seed: u64,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        Self {
            branching: 8,
            bucket_size: 1024,
            iterations: 5,
            seed: 0xC1u64,
        }
    }
}

#[derive(Clone, Debug)]
enum Node {
    Internal {
        /// One centroid per child, in child order.
        centroids: Vec<BinaryVector>,
        children: Vec<Node>,
    },
    Leaf(Vec<usize>),
}

impl Node {
    fn depth(&self) -> usize {
        match self {
            Node::Leaf(_) => 0,
            Node::Internal { children, .. } => {
                1 + children.iter().map(Node::depth).max().unwrap_or(0)
            }
        }
    }

    /// Traverses to a leaf, accumulating the number of centroid distance
    /// computations performed.
    fn locate<'a>(&'a self, query: &BinaryVector, cost: &mut usize) -> &'a [usize] {
        match self {
            Node::Leaf(ids) => ids,
            Node::Internal {
                centroids,
                children,
            } => {
                *cost += centroids.len();
                let best = centroids
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, c)| query.hamming(c))
                    .map(|(i, _)| i)
                    .unwrap_or(0);
                children[best].locate(query, cost)
            }
        }
    }

    fn leaves<'a>(&'a self, out: &mut Vec<&'a Vec<usize>>) {
        match self {
            Node::Leaf(ids) => out.push(ids),
            Node::Internal { children, .. } => {
                for c in children {
                    c.leaves(out);
                }
            }
        }
    }
}

/// Hierarchical k-means (k-majority) index.
#[derive(Clone, Debug)]
pub struct HierarchicalKMeans {
    data: BinaryDataset,
    root: Node,
    config: KMeansConfig,
}

impl HierarchicalKMeans {
    /// Builds the index over `data`.
    pub fn build(data: BinaryDataset, config: KMeansConfig) -> Self {
        assert!(config.branching >= 2, "branching factor must be at least 2");
        assert!(config.bucket_size > 0, "bucket size must be positive");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let all: Vec<usize> = (0..data.len()).collect();
        let root = Self::build_node(&data, all, &config, &mut rng);
        Self { data, root, config }
    }

    fn build_node(
        data: &BinaryDataset,
        ids: Vec<usize>,
        config: &KMeansConfig,
        rng: &mut StdRng,
    ) -> Node {
        if ids.len() <= config.bucket_size {
            return Node::Leaf(ids);
        }
        let k = config.branching.min(ids.len());

        // Initialize centroids from random distinct members.
        let mut centroid_ids: Vec<usize> = Vec::with_capacity(k);
        while centroid_ids.len() < k {
            let candidate = ids[rng.gen_range(0..ids.len())];
            if !centroid_ids.contains(&candidate) {
                centroid_ids.push(candidate);
            }
        }
        let mut centroids: Vec<BinaryVector> =
            centroid_ids.iter().map(|&i| data.vector(i)).collect();

        let mut assignment = vec![0usize; ids.len()];
        for _ in 0..config.iterations {
            // Assignment step.
            for (slot, &i) in ids.iter().enumerate() {
                let v = data.vector(i);
                assignment[slot] = centroids
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, c)| v.hamming(c))
                    .map(|(ci, _)| ci)
                    .unwrap_or(0);
            }
            // Majority update step.
            let dims = data.dims();
            for (ci, centroid) in centroids.iter_mut().enumerate() {
                let members: Vec<usize> = ids
                    .iter()
                    .zip(assignment.iter())
                    .filter(|(_, &a)| a == ci)
                    .map(|(&i, _)| i)
                    .collect();
                if members.is_empty() {
                    continue;
                }
                let mut ones = vec![0usize; dims];
                for &m in &members {
                    let v = data.vector(m);
                    for (d, count) in ones.iter_mut().enumerate() {
                        if v.get(d) {
                            *count += 1;
                        }
                    }
                }
                let half = members.len();
                let bools: Vec<bool> = ones.iter().map(|&c| 2 * c > half).collect();
                *centroid = BinaryVector::from_bools(&bools);
            }
        }

        // Final assignment into child id lists.
        let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); k];
        for &i in &ids {
            let v = data.vector(i);
            let best = centroids
                .iter()
                .enumerate()
                .min_by_key(|(_, c)| v.hamming(c))
                .map(|(ci, _)| ci)
                .unwrap_or(0);
            buckets[best].push(i);
        }

        // If clustering failed to split the data (all points in one child), stop.
        let nonempty = buckets.iter().filter(|b| !b.is_empty()).count();
        if nonempty <= 1 {
            return Node::Leaf(ids);
        }

        let mut kept_centroids = Vec::new();
        let mut children = Vec::new();
        for (ci, bucket) in buckets.into_iter().enumerate() {
            if bucket.is_empty() {
                continue;
            }
            kept_centroids.push(centroids[ci].clone());
            children.push(Self::build_node(data, bucket, config, rng));
        }
        Node::Internal {
            centroids: kept_centroids,
            children,
        }
    }

    /// The configuration the index was built with.
    pub fn config(&self) -> &KMeansConfig {
        &self.config
    }

    /// Index tree depth.
    pub fn depth(&self) -> usize {
        self.root.depth()
    }

    /// Number of leaf buckets.
    pub fn leaf_count(&self) -> usize {
        let mut leaves = Vec::new();
        self.root.leaves(&mut leaves);
        leaves.len()
    }
}

impl SearchIndex for HierarchicalKMeans {
    fn len(&self) -> usize {
        self.data.len()
    }

    fn dims(&self) -> usize {
        self.data.dims()
    }

    fn search(&self, query: &BinaryVector, k: usize) -> Vec<Neighbor> {
        let mut topk = TopK::new(k);
        for i in self.candidates(query) {
            topk.offer(Neighbor::new(i, self.data.hamming_to(i, query)));
        }
        topk.into_sorted()
    }
}

impl BucketIndex for HierarchicalKMeans {
    fn candidates(&self, query: &BinaryVector) -> Vec<usize> {
        let mut cost = 0;
        self.root.locate(query, &mut cost).to_vec()
    }

    fn traversal_cost(&self) -> usize {
        // Distance computations along one root-to-leaf path (worst case: full
        // branching at every level).
        self.config.branching * self.root.depth()
    }

    fn bucket_ids(&self, query: &BinaryVector) -> Vec<u64> {
        let mut cost = 0;
        vec![crate::index::fingerprint_ids(
            self.root.locate(query, &mut cost).iter().copied(),
        )]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::LinearScan;
    use binvec::generate::{clustered_dataset, planted_queries, uniform_dataset, ClusterParams};
    use binvec::metrics::recall_at_k;

    fn cfg(bucket: usize) -> KMeansConfig {
        KMeansConfig {
            branching: 4,
            bucket_size: bucket,
            iterations: 4,
            seed: 77,
        }
    }

    #[test]
    fn small_dataset_is_single_leaf() {
        let data = uniform_dataset(50, 32, 1);
        let index = HierarchicalKMeans::build(data.clone(), cfg(100));
        assert_eq!(index.depth(), 0);
        assert_eq!(index.leaf_count(), 1);
        let exact = LinearScan::new(data);
        let q = binvec::generate::uniform_queries(3, 32, 2);
        for query in &q {
            assert_eq!(index.search(query, 5), exact.search(query, 5));
        }
    }

    #[test]
    fn large_dataset_gets_partitioned() {
        let data = uniform_dataset(1500, 32, 3);
        let index = HierarchicalKMeans::build(data, cfg(200));
        assert!(index.depth() >= 1);
        assert!(index.leaf_count() >= 2);
        // Leaves partition the dataset.
        let mut leaves = Vec::new();
        index.root.leaves(&mut leaves);
        let total: usize = leaves.iter().map(|l| l.len()).sum();
        assert_eq!(total, 1500);
    }

    #[test]
    fn clustered_data_recalls_planted_neighbors() {
        let (data, _) = clustered_dataset(
            2000,
            64,
            ClusterParams {
                clusters: 6,
                flip_probability: 0.02,
            },
            5,
        );
        let index = HierarchicalKMeans::build(data.clone(), cfg(256));
        let exact = LinearScan::new(data.clone());
        let queries = planted_queries(&data, 40, 1, 6);
        let mut recall = 0.0;
        for pq in &queries {
            let truth = exact.search(&pq.query, 4);
            let got = index.search(&pq.query, 4);
            recall += recall_at_k(&got, &truth);
        }
        recall /= queries.len() as f64;
        assert!(recall > 0.7, "k-means recall too low: {recall}");
    }

    #[test]
    fn candidates_come_from_one_bucket() {
        let data = uniform_dataset(1000, 32, 7);
        let index = HierarchicalKMeans::build(data, cfg(128));
        let q = binvec::generate::uniform_queries(1, 32, 8).pop().unwrap();
        let cands = index.candidates(&q);
        assert!(!cands.is_empty());
        assert!(cands.len() < 1000, "bucket should be a strict subset");
        assert!(index.traversal_cost() > 0);
    }

    #[test]
    fn identical_vectors_terminate() {
        let mut data = BinaryDataset::new(8);
        for _ in 0..200 {
            data.push(&BinaryVector::zeros(8));
        }
        let index = HierarchicalKMeans::build(data, cfg(50));
        // Identical points cannot be split; builder must fall back to a leaf.
        assert_eq!(index.depth(), 0);
        assert_eq!(index.candidates(&BinaryVector::zeros(8)).len(), 200);
    }

    #[test]
    #[should_panic(expected = "branching factor")]
    fn branching_of_one_panics() {
        let _ = HierarchicalKMeans::build(
            uniform_dataset(10, 8, 0),
            KMeansConfig {
                branching: 1,
                ..Default::default()
            },
        );
    }
}
