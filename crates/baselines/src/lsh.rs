//! Locality-sensitive hashing for Hamming space (bit sampling), with multi-probing.
//!
//! The paper's LSH baseline uses an off-the-shelf ITQ-LSH toolbox with four hash
//! tables (§IV-C) and appears as "MPLSH" (multi-probe LSH) in Table V. For binary
//! codes the canonical LSH family is *bit sampling*: each table hashes a vector to
//! the concatenation of `bits_per_table` randomly chosen bit positions. Similar
//! vectors collide with probability `(1 - d/D)^bits`, so querying the query's own
//! bucket (plus, for multi-probe, buckets at Hamming distance 1 in hash space)
//! retrieves near neighbors with tunable recall.

use crate::index::{BucketIndex, SearchIndex};
use binvec::{BinaryDataset, BinaryVector, Neighbor, TopK};
use rand::rngs::StdRng;
use rand::{seq::SliceRandom, SeedableRng};
use std::collections::{BTreeSet, HashMap};

/// Configuration for an [`LshIndex`].
#[derive(Clone, Copy, Debug)]
pub struct LshConfig {
    /// Number of independent hash tables (the paper uses four).
    pub tables: usize,
    /// Number of sampled bit positions per table.
    pub bits_per_table: usize,
    /// Number of additional buckets probed per table (0 = exact-bucket LSH,
    /// > 0 = multi-probe over hash codes at Hamming distance 1).
    pub probes: usize,
    /// RNG seed for reproducible bit sampling.
    pub seed: u64,
}

impl Default for LshConfig {
    fn default() -> Self {
        Self {
            tables: 4,
            bits_per_table: 16,
            probes: 0,
            seed: 0x15A,
        }
    }
}

/// One bit-sampling hash table.
#[derive(Clone, Debug)]
struct Table {
    /// Sampled bit positions, in hash-bit order.
    bit_positions: Vec<usize>,
    /// Map from hash code to dataset ids.
    buckets: HashMap<u64, Vec<usize>>,
}

impl Table {
    fn hash(&self, v: &BinaryVector) -> u64 {
        let mut h = 0u64;
        for (i, &pos) in self.bit_positions.iter().enumerate() {
            if v.get(pos) {
                h |= 1 << i;
            }
        }
        h
    }
}

/// Bit-sampling LSH index with optional multi-probing.
#[derive(Clone, Debug)]
pub struct LshIndex {
    data: BinaryDataset,
    tables: Vec<Table>,
    config: LshConfig,
}

impl LshIndex {
    /// Builds the index over `data`.
    pub fn build(data: BinaryDataset, config: LshConfig) -> Self {
        assert!(config.tables > 0, "need at least one hash table");
        assert!(
            config.bits_per_table > 0 && config.bits_per_table <= 63,
            "bits_per_table must be in 1..=63"
        );
        assert!(
            config.bits_per_table <= data.dims() || data.is_empty(),
            "cannot sample more bits than dimensions"
        );
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut tables = Vec::with_capacity(config.tables);
        for _ in 0..config.tables {
            let mut dims: Vec<usize> = (0..data.dims()).collect();
            dims.shuffle(&mut rng);
            dims.truncate(config.bits_per_table);
            let mut table = Table {
                bit_positions: dims,
                buckets: HashMap::new(),
            };
            for i in 0..data.len() {
                let h = table.hash(&data.vector(i));
                table.buckets.entry(h).or_default().push(i);
            }
            tables.push(table);
        }
        Self {
            data,
            tables,
            config,
        }
    }

    /// The configuration the index was built with.
    pub fn config(&self) -> &LshConfig {
        &self.config
    }

    /// Average number of vectors per non-empty bucket, across all tables.
    pub fn mean_bucket_size(&self) -> f64 {
        let mut total = 0usize;
        let mut buckets = 0usize;
        for t in &self.tables {
            for b in t.buckets.values() {
                total += b.len();
                buckets += 1;
            }
        }
        if buckets == 0 {
            0.0
        } else {
            total as f64 / buckets as f64
        }
    }
}

impl SearchIndex for LshIndex {
    fn len(&self) -> usize {
        self.data.len()
    }

    fn dims(&self) -> usize {
        self.data.dims()
    }

    fn search(&self, query: &BinaryVector, k: usize) -> Vec<Neighbor> {
        let mut topk = TopK::new(k);
        for i in self.candidates(query) {
            topk.offer(Neighbor::new(i, self.data.hamming_to(i, query)));
        }
        topk.into_sorted()
    }
}

impl BucketIndex for LshIndex {
    fn candidates(&self, query: &BinaryVector) -> Vec<usize> {
        let mut set = BTreeSet::new();
        for t in &self.tables {
            let h = t.hash(query);
            if let Some(bucket) = t.buckets.get(&h) {
                set.extend(bucket.iter().copied());
            }
            // Multi-probe: also visit the `probes` hash codes at Hamming distance 1
            // (flipping the lowest-index hash bits first).
            for bit in 0..self.config.probes.min(self.config.bits_per_table) {
                let probe = h ^ (1u64 << bit);
                if let Some(bucket) = t.buckets.get(&probe) {
                    set.extend(bucket.iter().copied());
                }
            }
        }
        set.into_iter().collect()
    }

    fn traversal_cost(&self) -> usize {
        // One hash evaluation (bits_per_table bit reads) per table, plus probe lookups.
        self.config.tables * (self.config.bits_per_table + self.config.probes)
    }

    fn bucket_ids(&self, query: &BinaryVector) -> Vec<u64> {
        // One bucket per (table, hash code) actually probed.
        let mut ids = Vec::new();
        for (t, table) in self.tables.iter().enumerate() {
            let h = table.hash(query);
            ids.push(((t as u64) << 56) ^ h);
            for bit in 0..self.config.probes.min(self.config.bits_per_table) {
                ids.push(((t as u64) << 56) ^ h ^ (1u64 << bit));
            }
        }
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::LinearScan;
    use binvec::generate::{planted_queries, uniform_dataset};
    use binvec::metrics::recall_at_k;

    fn cfg(tables: usize, bits: usize, probes: usize) -> LshConfig {
        LshConfig {
            tables,
            bits_per_table: bits,
            probes,
            seed: 123,
        }
    }

    #[test]
    fn exact_duplicate_is_always_found() {
        let data = uniform_dataset(500, 64, 1);
        let index = LshIndex::build(data.clone(), cfg(4, 12, 0));
        // A query identical to a dataset vector hashes to the same bucket in every
        // table, so it must appear in its own candidate set.
        for i in [0usize, 17, 100, 499] {
            let q = data.vector(i);
            let cands = index.candidates(&q);
            assert!(cands.contains(&i), "vector {i} not in its own bucket");
            let res = index.search(&q, 1);
            assert_eq!(res[0].id, i);
            assert_eq!(res[0].distance, 0);
        }
    }

    #[test]
    fn planted_near_neighbors_have_good_recall() {
        let data = uniform_dataset(2000, 128, 2);
        let index = LshIndex::build(data.clone(), cfg(4, 10, 0));
        let exact = LinearScan::new(data.clone());
        let queries = planted_queries(&data, 50, 2, 3);
        let mut recall = 0.0;
        for pq in &queries {
            let truth = exact.search(&pq.query, 1);
            let got = index.search(&pq.query, 1);
            recall += recall_at_k(&got, &truth);
        }
        recall /= queries.len() as f64;
        // With 4 tables of 10 bits and only 2/128 bits flipped, collision probability
        // per table is (1 - 2/128)^10 ≈ 0.85, so overall recall should be very high.
        assert!(recall > 0.9, "LSH recall too low: {recall}");
    }

    #[test]
    fn multiprobe_never_reduces_candidates() {
        let data = uniform_dataset(1000, 64, 4);
        let plain = LshIndex::build(data.clone(), cfg(2, 14, 0));
        let probed = LshIndex::build(data, cfg(2, 14, 6));
        let queries = binvec::generate::uniform_queries(10, 64, 5);
        for q in &queries {
            let a = plain.candidates(q).len();
            let b = probed.candidates(q).len();
            assert!(b >= a, "multi-probe shrank the candidate set");
        }
        assert!(probed.traversal_cost() > plain.traversal_cost());
    }

    #[test]
    fn more_bits_means_smaller_buckets() {
        let data = uniform_dataset(2000, 64, 6);
        let coarse = LshIndex::build(data.clone(), cfg(2, 4, 0));
        let fine = LshIndex::build(data, cfg(2, 16, 0));
        assert!(fine.mean_bucket_size() < coarse.mean_bucket_size());
    }

    #[test]
    fn search_results_are_sorted() {
        let data = uniform_dataset(300, 32, 7);
        let index = LshIndex::build(data, cfg(4, 8, 1));
        let q = binvec::generate::uniform_queries(1, 32, 8).pop().unwrap();
        let res = index.search(&q, 5);
        for w in res.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn empty_dataset_is_handled() {
        let index = LshIndex::build(BinaryDataset::new(32), cfg(2, 8, 0));
        assert!(index.is_empty());
        let q = BinaryVector::zeros(32);
        assert!(index.candidates(&q).is_empty());
        assert!(index.search(&q, 3).is_empty());
    }

    #[test]
    #[should_panic(expected = "more bits than dimensions")]
    fn too_many_bits_panics() {
        let _ = LshIndex::build(uniform_dataset(10, 8, 0), cfg(1, 16, 0));
    }
}
