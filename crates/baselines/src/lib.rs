//! # baselines — comparison systems for Hamming-space kNN
//!
//! The paper evaluates the Automata Processor design against CPU, GPU and FPGA
//! implementations and against three approximate spatial-indexing schemes. This crate
//! implements every one of those comparison systems (a simpler calibrated projection
//! of the CPU/GPU numbers also lives in `perf-model` for the table harness):
//!
//! * [`linear`] — exact linear-scan kNN, single-threaded (the FLANN-style CPU
//!   baseline) and multi-threaded (scoped threads), both bit-parallel over
//!   packed words like the XOR + POPCOUNT kernels every platform in the paper uses.
//! * [`kdtree`] — randomized kd-trees over binary codes (FLANN's default index),
//!   splitting on high-variance dimensions, one bucket scanned per tree traversal.
//! * [`kmeans`] — hierarchical k-means (k-majority in Hamming space) with
//!   per-level centroid distance computations during traversal.
//! * [`lsh`] — bit-sampling locality-sensitive hashing with multiple tables and
//!   optional multi-probing (the "MPLSH" row of Table V).
//! * [`fpga`] — a cycle-level simulator of the paper's Kintex-7 accelerator
//!   (scratchpad for a query batch, XOR/POPCOUNT distance unit, hardware priority
//!   queue, dataset streamed once per batch).
//! * [`gpu`] — a functional + roofline model of the Garcia-et-al. CUDA kernel
//!   (XOR + POPCOUNT variant) with Jetson TK1 and Titan X presets, calibrated for
//!   the poor blocking of binarized data the paper observes.
//!
//! All index structures implement the common [`SearchIndex`] trait so the evaluation
//! harness can swap them uniformly, and every approximate index exposes the *bucket*
//! of candidates it would scan so the AP engine can implement the paper's
//! host-traverses-index / AP-scans-bucket split (§III-D).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod fpga;
pub mod gpu;
pub mod index;
pub mod kdtree;
pub mod kmeans;
pub mod linear;
pub mod lsh;

pub use fpga::{FpgaAccelerator, FpgaConfig, FpgaRunStats};
pub use gpu::{GpuAccelerator, GpuConfig, GpuRunStats};
pub use index::{BucketIndex, SearchIndex};
pub use kdtree::{KdForest, KdForestConfig};
pub use kmeans::{HierarchicalKMeans, KMeansConfig};
pub use linear::{LinearScan, ParallelLinearScan};
pub use lsh::{LshConfig, LshIndex};
