//! SIMT GPU baseline: a functional + throughput model of the CUDA kNN kernel.
//!
//! The paper's GPU baseline (§IV-C) is the Garcia et al. CUDA implementation with the
//! 32-bit Euclidean distance swapped for a 32-bit XOR + POPCOUNT, run on a Jetson TK1
//! and a Titan X (Table I). Neither device nor CUDA is available here, so this module
//! provides the equivalent substrate at the level that actually determines the
//! paper's numbers: a functional execution of the same kernel (so results can be
//! compared neighbor-for-neighbor) plus a throughput model that charges
//!
//! * **compute**: one fused XOR+POPC+accumulate per 32-bit word per query/vector
//!   pair, spread over the device's CUDA cores at its boost clock, and
//! * **memory**: every dataset word read from DRAM once per *tile* of queries (the
//!   kernel blocks queries so a dataset tile is reused from shared memory), plus the
//!   query and result traffic,
//!
//! and takes the maximum of the two — the roofline the paper implicitly appeals to
//! when it attributes the poor observed GPU performance to "poor blocking of the
//! binarized data": with 1-bit dimensions the arithmetic intensity is so low that
//! the kernel sits firmly on the memory roof.

use crate::index::SearchIndex;
use binvec::{BinaryDataset, BinaryVector, Neighbor, TopK};
use serde::{Deserialize, Serialize};

/// Device and kernel-launch parameters of the GPU model.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct GpuConfig {
    /// Number of CUDA cores (Table I lists 192 for the TK1, 3072 for the Titan X).
    pub cuda_cores: usize,
    /// Core clock in MHz.
    pub clock_mhz: f64,
    /// Sustained DRAM bandwidth in GB/s.
    pub mem_bandwidth_gbps: f64,
    /// Fused XOR+POPC+accumulate operations retired per core per cycle.
    pub ops_per_core_cycle: f64,
    /// Number of queries per kernel tile (dataset words are read from DRAM once per
    /// tile and reused from shared memory within it).
    pub query_tile: usize,
    /// Fraction of peak DRAM bandwidth the kernel actually sustains.
    ///
    /// The paper attributes the poor observed GPU performance to "poor blocking of
    /// the binarized data": with 1-bit dimensions the off-the-shelf kernel issues
    /// fine-grained, poorly coalesced accesses and realizes only a small fraction of
    /// peak bandwidth. The presets calibrate this fraction so the model reproduces
    /// the Table IV measurements; setting it to 1.0 gives the ideal-kernel roofline.
    pub memory_efficiency: f64,
    /// Fixed per-kernel-launch overhead in seconds (driver + launch + top-k copy
    /// back). Dominates small batches, irrelevant for Table IV's 4096-query runs.
    pub launch_overhead_s: f64,
}

impl GpuConfig {
    /// The Jetson TK1 configuration of Table I (192 cores, 852 MHz, ~14.9 GB/s
    /// LPDDR3).
    pub fn jetson_tk1() -> Self {
        Self {
            cuda_cores: 192,
            clock_mhz: 852.0,
            mem_bandwidth_gbps: 14.9,
            ops_per_core_cycle: 0.5,
            query_tile: 64,
            memory_efficiency: 0.08,
            launch_overhead_s: 2.0e-3,
        }
    }

    /// The Titan X (Maxwell) configuration of Table I (3072 cores, 1075 MHz,
    /// ~336 GB/s GDDR5).
    pub fn titan_x() -> Self {
        Self {
            cuda_cores: 3072,
            clock_mhz: 1075.0,
            mem_bandwidth_gbps: 336.0,
            ops_per_core_cycle: 0.5,
            query_tile: 256,
            memory_efficiency: 0.05,
            launch_overhead_s: 1.0e-3,
        }
    }

    /// Peak fused-op throughput in operations per second.
    pub fn peak_ops_per_s(&self) -> f64 {
        self.cuda_cores as f64 * self.clock_mhz * 1e6 * self.ops_per_core_cycle
    }
}

impl Default for GpuConfig {
    fn default() -> Self {
        Self::titan_x()
    }
}

/// Throughput-model output for one batched kNN launch.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct GpuRunStats {
    /// Fused XOR+POPC+accumulate operations executed.
    pub distance_ops: u64,
    /// Bytes moved between DRAM and the SMs.
    pub bytes_moved: u64,
    /// Seconds attributable to arithmetic at peak throughput.
    pub compute_s: f64,
    /// Seconds attributable to DRAM traffic at peak bandwidth.
    pub memory_s: f64,
    /// Estimated kernel wall-clock: `max(compute, memory) + launch overhead`.
    pub seconds: f64,
    /// Whether the memory roof (rather than the compute roof) binds.
    pub memory_bound: bool,
}

/// The simulated GPU kNN engine.
#[derive(Clone, Debug)]
pub struct GpuAccelerator {
    config: GpuConfig,
    data: BinaryDataset,
}

impl GpuAccelerator {
    /// Instantiates the engine with `data` resident in device DRAM.
    ///
    /// # Panics
    /// Panics if the configuration has no cores, zero bandwidth or a zero tile.
    pub fn new(data: BinaryDataset, config: GpuConfig) -> Self {
        assert!(config.cuda_cores > 0, "GPU needs at least one core");
        assert!(
            config.mem_bandwidth_gbps > 0.0,
            "bandwidth must be positive"
        );
        assert!(config.query_tile > 0, "query tile must be positive");
        assert!(
            config.memory_efficiency > 0.0 && config.memory_efficiency <= 1.0,
            "memory efficiency must be in (0, 1]"
        );
        Self { config, data }
    }

    /// The configured device parameters.
    pub fn config(&self) -> &GpuConfig {
        &self.config
    }

    /// Runs the batched kernel functionally (exact results) and returns the
    /// throughput-model statistics for the same launch.
    pub fn run_batch(
        &self,
        queries: &[BinaryVector],
        k: usize,
    ) -> (Vec<Vec<Neighbor>>, GpuRunStats) {
        let results = if k == 0 {
            vec![Vec::new(); queries.len()]
        } else {
            queries
                .iter()
                .map(|q| {
                    let mut topk = TopK::new(k);
                    for i in 0..self.data.len() {
                        topk.offer(Neighbor::new(i, self.data.hamming_to(i, q)));
                    }
                    topk.into_sorted()
                })
                .collect()
        };
        let stats = self.estimate_run(self.data.len(), self.data.dims(), queries.len());
        (results, stats)
    }

    /// Throughput-model estimate only (no functional search) — the large-dataset
    /// tables need the timing for 2^20 × 4096 pairs, not the neighbor lists.
    pub fn estimate_run(&self, n_vectors: usize, dims: usize, queries: usize) -> GpuRunStats {
        if n_vectors == 0 || queries == 0 {
            return GpuRunStats::default();
        }
        let words_per_vector = dims.div_ceil(32) as u64;
        let pairs = n_vectors as u64 * queries as u64;
        let distance_ops = pairs * words_per_vector;

        // Dataset words are fetched from DRAM once per query tile; queries and the
        // per-pair distance outputs move once.
        let tiles = (queries as u64).div_ceil(self.config.query_tile as u64);
        let dataset_bytes = n_vectors as u64 * words_per_vector * 4 * tiles;
        let query_bytes = queries as u64 * words_per_vector * 4;
        let result_bytes = pairs * 4;
        let bytes_moved = dataset_bytes + query_bytes + result_bytes;

        let compute_s = distance_ops as f64 / self.config.peak_ops_per_s();
        let memory_s = bytes_moved as f64
            / (self.config.mem_bandwidth_gbps * 1e9 * self.config.memory_efficiency);
        let seconds = compute_s.max(memory_s) + self.config.launch_overhead_s;
        GpuRunStats {
            distance_ops,
            bytes_moved,
            compute_s,
            memory_s,
            seconds,
            memory_bound: memory_s >= compute_s,
        }
    }
}

impl SearchIndex for GpuAccelerator {
    fn len(&self) -> usize {
        self.data.len()
    }

    fn dims(&self) -> usize {
        self.data.dims()
    }

    fn search(&self, query: &BinaryVector, k: usize) -> Vec<Neighbor> {
        binvec::topk::select_k(
            k,
            (0..self.data.len()).map(|i| Neighbor::new(i, self.data.hamming_to(i, query))),
        )
    }

    fn search_batch(&self, queries: &[BinaryVector], k: usize) -> Vec<Vec<Neighbor>> {
        self.run_batch(queries, k).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::LinearScan;
    use binvec::generate::{uniform_dataset, uniform_queries};

    #[test]
    fn gpu_results_match_linear_scan() {
        let data = uniform_dataset(80, 64, 7);
        let queries = uniform_queries(6, 64, 8);
        let gpu = GpuAccelerator::new(data.clone(), GpuConfig::titan_x());
        let cpu = LinearScan::new(data);
        let (results, stats) = gpu.run_batch(&queries, 5);
        assert_eq!(results, cpu.search_batch(&queries, 5));
        assert!(stats.seconds > 0.0);
        assert_eq!(stats.distance_ops, 80 * 6 * 2);
    }

    #[test]
    fn search_index_trait_is_consistent_with_run_batch() {
        let data = uniform_dataset(40, 32, 9);
        let queries = uniform_queries(3, 32, 10);
        let gpu = GpuAccelerator::new(data, GpuConfig::jetson_tk1());
        assert_eq!(gpu.len(), 40);
        assert_eq!(gpu.dims(), 32);
        let via_trait = gpu.search_batch(&queries, 4);
        let (via_run, _) = gpu.run_batch(&queries, 4);
        assert_eq!(via_trait, via_run);
        assert_eq!(via_trait[0], gpu.search(&queries[0], 4));
    }

    #[test]
    fn binarized_knn_is_memory_bound_on_both_devices() {
        // The paper's explanation for the poor GPU numbers: 1-bit dimensions give an
        // arithmetic intensity of one fused op per 4 bytes streamed, far below the
        // compute/bandwidth ratio of either device.
        for config in [GpuConfig::jetson_tk1(), GpuConfig::titan_x()] {
            let gpu = GpuAccelerator::new(BinaryDataset::new(128), config);
            let stats = gpu.estimate_run(1 << 20, 128, 4096);
            assert!(stats.memory_bound, "{config:?}");
            assert!(stats.memory_s > stats.compute_s);
        }
    }

    #[test]
    fn titan_x_is_roughly_an_order_of_magnitude_faster_than_tk1() {
        let tk1 = GpuAccelerator::new(BinaryDataset::new(64), GpuConfig::jetson_tk1());
        let titan = GpuAccelerator::new(BinaryDataset::new(64), GpuConfig::titan_x());
        let a = tk1.estimate_run(1 << 20, 64, 4096).seconds;
        let b = titan.estimate_run(1 << 20, 64, 4096).seconds;
        let ratio = a / b;
        assert!(
            (5.0..40.0).contains(&ratio),
            "TK1/TitanX ratio {ratio} out of the expected band"
        );
    }

    #[test]
    fn large_dataset_estimates_land_in_the_paper_band() {
        // Table IV: Jetson TK1 ≈ 16.1–16.7 s and Titan X ≈ 0.99–1.03 s for 2^20
        // vectors and 4096 queries, roughly independent of dimensionality (the
        // per-pair result traffic dominates). The calibrated model must land within
        // ~30 % of those measurements for every workload.
        for dims in [64usize, 128, 256] {
            let tk1 = GpuAccelerator::new(BinaryDataset::new(dims), GpuConfig::jetson_tk1())
                .estimate_run(1 << 20, dims, 4096)
                .seconds;
            assert!(
                (11.0..22.0).contains(&tk1),
                "TK1 d={dims}: {tk1} s vs the paper's ~16 s"
            );
            let titan = GpuAccelerator::new(BinaryDataset::new(dims), GpuConfig::titan_x())
                .estimate_run(1 << 20, dims, 4096)
                .seconds;
            assert!(
                (0.7..1.4).contains(&titan),
                "Titan X d={dims}: {titan} s vs the paper's ~1 s"
            );
        }
    }

    #[test]
    fn ideal_blocking_would_close_most_of_the_gap() {
        // With perfect coalescing (memory_efficiency = 1) the same device is an
        // order of magnitude faster — the "poor blocking of the binarized data"
        // explanation in §V-B, quantified.
        let mut ideal = GpuConfig::jetson_tk1();
        ideal.memory_efficiency = 1.0;
        let observed = GpuAccelerator::new(BinaryDataset::new(64), GpuConfig::jetson_tk1())
            .estimate_run(1 << 20, 64, 4096)
            .seconds;
        let idealized = GpuAccelerator::new(BinaryDataset::new(64), ideal)
            .estimate_run(1 << 20, 64, 4096)
            .seconds;
        assert!(observed / idealized > 5.0);
    }

    #[test]
    fn launch_overhead_dominates_tiny_batches() {
        let gpu = GpuAccelerator::new(uniform_dataset(64, 64, 1), GpuConfig::titan_x());
        let (_, stats) = gpu.run_batch(&uniform_queries(1, 64, 2), 1);
        assert!(stats.seconds >= gpu.config().launch_overhead_s);
        assert!(stats.compute_s < 1e-6);
    }

    #[test]
    fn zero_k_and_empty_inputs_are_handled() {
        let gpu = GpuAccelerator::new(uniform_dataset(8, 16, 3), GpuConfig::jetson_tk1());
        let (results, _) = gpu.run_batch(&uniform_queries(2, 16, 4), 0);
        assert!(results.iter().all(Vec::is_empty));
        let stats = gpu.estimate_run(0, 16, 0);
        assert_eq!(stats, GpuRunStats::default());
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_panics() {
        let mut config = GpuConfig::titan_x();
        config.cuda_cores = 0;
        let _ = GpuAccelerator::new(BinaryDataset::new(8), config);
    }
}
