//! Exact linear-scan kNN — the CPU baseline.
//!
//! This mirrors the FLANN Hamming-distance implementation the paper uses on the Xeon
//! and Cortex-A15 platforms: for every query, XOR + POPCOUNT every dataset vector's
//! packed words and keep the k best with a bounded priority queue (`O(n·d/64)` word
//! operations plus `O(n log k)` queue maintenance per query).
//!
//! [`LinearScan`] is the single-threaded kernel; [`ParallelLinearScan`] exploits the
//! *query-level* parallelism the paper describes by distributing the query batch over
//! scoped threads (the dataset is shared read-only, so this mirrors the batch
//! processing a multicore CPU performs).

use crate::index::SearchIndex;
use binvec::{BinaryDataset, BinaryVector, Neighbor, TopK};

/// Single-threaded exact linear scan.
#[derive(Clone, Debug)]
pub struct LinearScan {
    data: BinaryDataset,
}

impl LinearScan {
    /// Builds a linear-scan engine over `data`.
    pub fn new(data: BinaryDataset) -> Self {
        Self { data }
    }

    /// Access to the underlying dataset.
    pub fn dataset(&self) -> &BinaryDataset {
        &self.data
    }

    /// Scans only the given candidate ids (used by the approximate indexes, which
    /// restrict the scan to one bucket).
    pub fn search_subset(
        &self,
        query: &BinaryVector,
        k: usize,
        candidates: &[usize],
    ) -> Vec<Neighbor> {
        let mut topk = TopK::new(k);
        for &i in candidates {
            topk.offer(Neighbor::new(i, self.data.hamming_to(i, query)));
        }
        topk.into_sorted()
    }
}

impl SearchIndex for LinearScan {
    fn len(&self) -> usize {
        self.data.len()
    }

    fn dims(&self) -> usize {
        self.data.dims()
    }

    fn search(&self, query: &BinaryVector, k: usize) -> Vec<Neighbor> {
        // One batched distance kernel over the packed storage (single dims assert,
        // word-level popcount), then bounded selection over the dense result.
        let mut distances = Vec::new();
        self.data.hamming_batch_into(query, &mut distances);
        let mut topk = TopK::new(k);
        for (i, &dist) in distances.iter().enumerate() {
            topk.offer(Neighbor::new(i, dist));
        }
        topk.into_sorted()
    }
}

/// Multi-threaded exact linear scan exploiting query-level parallelism.
#[derive(Clone, Debug)]
pub struct ParallelLinearScan {
    data: BinaryDataset,
    threads: usize,
}

impl ParallelLinearScan {
    /// Builds a parallel scan engine using `threads` worker threads.
    ///
    /// # Panics
    /// Panics if `threads == 0`.
    pub fn new(data: BinaryDataset, threads: usize) -> Self {
        assert!(threads > 0, "need at least one thread");
        Self { data, threads }
    }

    /// Number of worker threads used for batch searches.
    pub fn threads(&self) -> usize {
        self.threads
    }
}

impl SearchIndex for ParallelLinearScan {
    fn len(&self) -> usize {
        self.data.len()
    }

    fn dims(&self) -> usize {
        self.data.dims()
    }

    fn search(&self, query: &BinaryVector, k: usize) -> Vec<Neighbor> {
        // A single query is processed with data-level parallelism: each thread scans
        // a contiguous slice of the dataset and the per-thread top-k sets are merged.
        let n = self.data.len();
        if n == 0 {
            return Vec::new();
        }
        let threads = self.threads.min(n);
        let chunk = n.div_ceil(threads);
        let partials = std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for t in 0..threads {
                let data = &self.data;
                let start = t * chunk;
                let end = ((t + 1) * chunk).min(n);
                handles.push(scope.spawn(move || {
                    let mut topk = TopK::new(k);
                    for i in start..end {
                        topk.offer(Neighbor::new(i, data.hamming_to(i, query)));
                    }
                    topk
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("scan worker panicked"))
                .collect::<Vec<TopK>>()
        });

        let mut merged = TopK::new(k);
        for p in &partials {
            merged.merge(p);
        }
        merged.into_sorted()
    }

    fn search_batch(&self, queries: &[BinaryVector], k: usize) -> Vec<Vec<Neighbor>> {
        // Query-level parallelism: split the query batch across threads; each thread
        // runs the plain sequential kernel.
        if queries.is_empty() {
            return Vec::new();
        }
        let threads = self.threads.min(queries.len());
        let chunk = queries.len().div_ceil(threads);
        let sequential = LinearScan::new(self.data.clone());
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for qchunk in queries.chunks(chunk) {
                let engine = &sequential;
                handles.push(scope.spawn(move || {
                    qchunk
                        .iter()
                        .map(|q| engine.search(q, k))
                        .collect::<Vec<_>>()
                }));
            }
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("batch worker panicked"))
                .collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use binvec::generate::{planted_queries, uniform_dataset, uniform_queries};

    #[test]
    fn linear_scan_finds_planted_neighbor() {
        let data = uniform_dataset(300, 64, 3);
        let engine = LinearScan::new(data.clone());
        for pq in planted_queries(&data, 20, 2, 9) {
            let result = engine.search(&pq.query, 1);
            assert_eq!(result[0].id, pq.source_index);
            assert_eq!(result[0].distance, 2);
        }
    }

    #[test]
    fn results_are_sorted_and_k_long() {
        let data = uniform_dataset(100, 32, 5);
        let engine = LinearScan::new(data);
        let q = uniform_queries(1, 32, 6).pop().unwrap();
        let result = engine.search(&q, 10);
        assert_eq!(result.len(), 10);
        for w in result.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn k_larger_than_dataset_returns_everything() {
        let data = uniform_dataset(7, 16, 2);
        let engine = LinearScan::new(data);
        let q = uniform_queries(1, 16, 3).pop().unwrap();
        assert_eq!(engine.search(&q, 50).len(), 7);
    }

    #[test]
    fn search_subset_restricts_candidates() {
        let data = uniform_dataset(50, 32, 8);
        let engine = LinearScan::new(data);
        let q = uniform_queries(1, 32, 9).pop().unwrap();
        let subset = engine.search_subset(&q, 3, &[1, 2, 3]);
        assert!(subset.iter().all(|n| (1..=3).contains(&n.id)));
        assert_eq!(subset.len(), 3);
        let empty = engine.search_subset(&q, 3, &[]);
        assert!(empty.is_empty());
    }

    #[test]
    fn parallel_single_query_matches_sequential() {
        let data = uniform_dataset(500, 128, 11);
        let seq = LinearScan::new(data.clone());
        let par = ParallelLinearScan::new(data, 4);
        for q in uniform_queries(10, 128, 12) {
            assert_eq!(par.search(&q, 5), seq.search(&q, 5));
        }
    }

    #[test]
    fn parallel_batch_matches_sequential_batch() {
        let data = uniform_dataset(200, 64, 13);
        let seq = LinearScan::new(data.clone());
        let par = ParallelLinearScan::new(data, 3);
        let queries = uniform_queries(17, 64, 14);
        assert_eq!(par.search_batch(&queries, 4), seq.search_batch(&queries, 4));
    }

    #[test]
    fn parallel_handles_tiny_inputs() {
        let data = uniform_dataset(2, 32, 15);
        let par = ParallelLinearScan::new(data, 8);
        assert_eq!(par.threads(), 8);
        let queries = uniform_queries(1, 32, 16);
        let results = par.search_batch(&queries, 5);
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].len(), 2);
        assert!(par.search_batch(&[], 3).is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_panics() {
        let _ = ParallelLinearScan::new(uniform_dataset(1, 8, 0), 0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use binvec::generate::{uniform_dataset, uniform_queries};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn parallel_always_matches_sequential(
            n in 1usize..200,
            dims in 1usize..100,
            k in 1usize..10,
            threads in 1usize..6,
            seed in 0u64..1000,
        ) {
            let data = uniform_dataset(n, dims, seed);
            let seq = LinearScan::new(data.clone());
            let par = ParallelLinearScan::new(data, threads);
            let queries = uniform_queries(3, dims, seed.wrapping_add(1));
            prop_assert_eq!(par.search_batch(&queries, k), seq.search_batch(&queries, k));
            for q in &queries {
                prop_assert_eq!(par.search(q, k), seq.search(q, k));
            }
        }
    }
}
