//! Cycle-level simulator of the paper's fixed-function FPGA kNN accelerator.
//!
//! §IV-C describes an AXI4-Stream accelerator for a Xilinx Kintex-7-325T (185 MHz,
//! Table I) consisting of:
//!
//! * a **scratchpad** holding a batch of query vectors,
//! * an **XOR / POPCOUNT distance unit** computing Hamming distance against the
//!   streamed dataset words, and
//! * a **hardware priority queue** per query maintaining the current top-k,
//!
//! with dataset vectors streamed through the core **once per batch of queries**.
//! The Vivado toolchain used for synthesis and cycle simulation is unavailable, so
//! this module provides a functional + cycle-count model of the same
//! microarchitecture: it produces bit-exact kNN results (verified against the linear
//! scan) and a cycle count from the stream width, query parallelism and pipeline
//! depth, which the `perf-model` crate converts into the Table III/IV run times.

use crate::index::SearchIndex;
use binvec::{BinaryDataset, BinaryVector, Neighbor, TopK};
use serde::{Deserialize, Serialize};

/// Microarchitectural parameters of the accelerator.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct FpgaConfig {
    /// Core clock in MHz (185 MHz for the Kintex-7 design in Table I).
    pub clock_mhz: f64,
    /// Width of the AXI stream delivering dataset vectors, in bits per cycle.
    pub stream_width_bits: usize,
    /// Number of query lanes processed in parallel against the streamed data.
    pub parallel_queries: usize,
    /// Pipeline depth of the distance unit + priority queue (fill/drain overhead per
    /// dataset pass).
    pub pipeline_depth: usize,
}

impl Default for FpgaConfig {
    fn default() -> Self {
        Self::kintex7()
    }
}

impl FpgaConfig {
    /// The Kintex-7-325T configuration evaluated in the paper.
    pub fn kintex7() -> Self {
        Self {
            clock_mhz: 185.0,
            stream_width_bits: 256,
            parallel_queries: 128,
            pipeline_depth: 8,
        }
    }

    /// Cycle period in nanoseconds.
    pub fn cycle_ns(&self) -> f64 {
        1000.0 / self.clock_mhz
    }
}

/// Cycle statistics from one batched kNN run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct FpgaRunStats {
    /// Total simulated cycles.
    pub cycles: u64,
    /// Number of times the dataset was streamed through the core.
    pub dataset_passes: u64,
    /// Words streamed per dataset vector.
    pub words_per_vector: u64,
    /// Estimated wall-clock seconds at the configured clock.
    pub seconds: f64,
}

/// The simulated accelerator.
#[derive(Clone, Debug)]
pub struct FpgaAccelerator {
    config: FpgaConfig,
    data: BinaryDataset,
}

impl FpgaAccelerator {
    /// Instantiates the accelerator with `data` resident in its streaming source
    /// (DRAM behind the AXI interface).
    pub fn new(data: BinaryDataset, config: FpgaConfig) -> Self {
        assert!(
            config.stream_width_bits > 0,
            "stream width must be positive"
        );
        assert!(config.parallel_queries > 0, "need at least one query lane");
        Self { config, data }
    }

    /// The configured microarchitecture.
    pub fn config(&self) -> &FpgaConfig {
        &self.config
    }

    /// Runs a batched kNN query, returning per-query results and cycle statistics.
    ///
    /// Functionally this is an exact search: every query's priority queue sees every
    /// dataset vector exactly once per pass.
    pub fn run_batch(
        &self,
        queries: &[BinaryVector],
        k: usize,
    ) -> (Vec<Vec<Neighbor>>, FpgaRunStats) {
        let dims = self.data.dims();
        let words_per_vector = dims.div_ceil(self.config.stream_width_bits).max(1) as u64;

        // Functional model: per-lane priority queues, dataset streamed once per lane
        // group.
        let mut results = Vec::with_capacity(queries.len());
        for q in queries {
            let mut topk = TopK::new(k.max(1));
            for i in 0..self.data.len() {
                topk.offer(Neighbor::new(i, self.data.hamming_to(i, q)));
            }
            results.push(topk.into_sorted());
        }
        if k == 0 {
            for r in &mut results {
                r.clear();
            }
        }

        // Cycle model: the dataset is streamed once per batch of `parallel_queries`
        // queries; each vector takes `words_per_vector` cycles on the stream; the
        // pipeline fills/drains once per pass.
        let passes = if queries.is_empty() {
            0
        } else {
            queries.len().div_ceil(self.config.parallel_queries) as u64
        };
        let cycles_per_pass =
            self.data.len() as u64 * words_per_vector + self.config.pipeline_depth as u64;
        let cycles = passes * cycles_per_pass;
        let seconds = cycles as f64 * self.config.cycle_ns() * 1e-9;

        (
            results,
            FpgaRunStats {
                cycles,
                dataset_passes: passes,
                words_per_vector,
                seconds,
            },
        )
    }

    /// Cycle estimate only (no functional search) — used by the large-dataset table
    /// regeneration where running the functional model for 2^20 × 4096 pairs is
    /// unnecessary.
    pub fn estimate_cycles(&self, n_vectors: usize, dims: usize, queries: usize) -> FpgaRunStats {
        let words_per_vector = dims.div_ceil(self.config.stream_width_bits).max(1) as u64;
        let passes = if queries == 0 {
            0
        } else {
            queries.div_ceil(self.config.parallel_queries) as u64
        };
        let cycles_per_pass =
            n_vectors as u64 * words_per_vector + self.config.pipeline_depth as u64;
        let cycles = passes * cycles_per_pass;
        FpgaRunStats {
            cycles,
            dataset_passes: passes,
            words_per_vector,
            seconds: cycles as f64 * self.config.cycle_ns() * 1e-9,
        }
    }
}

impl SearchIndex for FpgaAccelerator {
    fn len(&self) -> usize {
        self.data.len()
    }

    fn dims(&self) -> usize {
        self.data.dims()
    }

    fn search(&self, query: &BinaryVector, k: usize) -> Vec<Neighbor> {
        let (mut results, _) = self.run_batch(std::slice::from_ref(query), k);
        results.pop().unwrap_or_default()
    }

    fn search_batch(&self, queries: &[BinaryVector], k: usize) -> Vec<Vec<Neighbor>> {
        self.run_batch(queries, k).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::LinearScan;
    use binvec::generate::{uniform_dataset, uniform_queries};

    #[test]
    fn results_match_exact_linear_scan() {
        let data = uniform_dataset(400, 128, 1);
        let fpga = FpgaAccelerator::new(data.clone(), FpgaConfig::kintex7());
        let exact = LinearScan::new(data);
        let queries = uniform_queries(10, 128, 2);
        let (results, stats) = fpga.run_batch(&queries, 4);
        for (q, r) in queries.iter().zip(results.iter()) {
            assert_eq!(r, &exact.search(q, 4));
        }
        assert!(stats.cycles > 0);
        assert!(stats.seconds > 0.0);
    }

    #[test]
    fn cycle_count_scales_with_batch_passes() {
        let data = uniform_dataset(1000, 128, 3);
        let cfg = FpgaConfig {
            parallel_queries: 16,
            ..FpgaConfig::kintex7()
        };
        let fpga = FpgaAccelerator::new(data, cfg);
        let q16 = uniform_queries(16, 128, 4);
        let q64 = uniform_queries(64, 128, 4);
        let (_, s16) = fpga.run_batch(&q16, 2);
        let (_, s64) = fpga.run_batch(&q64, 2);
        assert_eq!(s16.dataset_passes, 1);
        assert_eq!(s64.dataset_passes, 4);
        assert_eq!(s64.cycles, 4 * s16.cycles);
    }

    #[test]
    fn one_word_per_narrow_vector() {
        let data = uniform_dataset(10, 64, 5);
        let fpga = FpgaAccelerator::new(data, FpgaConfig::kintex7());
        let (_, stats) = fpga.run_batch(&uniform_queries(1, 64, 6), 1);
        assert_eq!(stats.words_per_vector, 1);
        // 256-dimensional vectors need one 256-bit word too; 512 would need two.
        let wide = FpgaAccelerator::new(uniform_dataset(10, 512, 7), FpgaConfig::kintex7());
        let (_, wstats) = wide.run_batch(&uniform_queries(1, 512, 8), 1);
        assert_eq!(wstats.words_per_vector, 2);
    }

    #[test]
    fn estimate_matches_run_batch_cycles() {
        let data = uniform_dataset(200, 128, 9);
        let fpga = FpgaAccelerator::new(data, FpgaConfig::kintex7());
        let queries = uniform_queries(300, 128, 10);
        let (_, run) = fpga.run_batch(&queries, 4);
        let est = fpga.estimate_cycles(200, 128, 300);
        assert_eq!(run.cycles, est.cycles);
        assert_eq!(run.dataset_passes, est.dataset_passes);
    }

    #[test]
    fn empty_inputs_are_graceful() {
        let data = uniform_dataset(50, 32, 11);
        let fpga = FpgaAccelerator::new(data, FpgaConfig::kintex7());
        let (results, stats) = fpga.run_batch(&[], 3);
        assert!(results.is_empty());
        assert_eq!(stats.cycles, 0);
        let q = uniform_queries(1, 32, 12);
        let (r0, _) = fpga.run_batch(&q, 0);
        assert!(r0[0].is_empty());
    }

    #[test]
    fn search_index_trait_consistency() {
        let data = uniform_dataset(100, 64, 13);
        let fpga = FpgaAccelerator::new(data.clone(), FpgaConfig::kintex7());
        let exact = LinearScan::new(data);
        let q = uniform_queries(1, 64, 14).pop().unwrap();
        assert_eq!(fpga.search(&q, 3), exact.search(&q, 3));
        assert_eq!(fpga.len(), 100);
        assert_eq!(fpga.dims(), 64);
    }

    #[test]
    fn faster_clock_reduces_seconds_not_cycles() {
        let data = uniform_dataset(500, 128, 15);
        let slow = FpgaAccelerator::new(
            data.clone(),
            FpgaConfig {
                clock_mhz: 100.0,
                ..FpgaConfig::kintex7()
            },
        );
        let fast = FpgaAccelerator::new(
            data,
            FpgaConfig {
                clock_mhz: 200.0,
                ..FpgaConfig::kintex7()
            },
        );
        let s = slow.estimate_cycles(500, 128, 64);
        let f = fast.estimate_cycles(500, 128, 64);
        assert_eq!(s.cycles, f.cycles);
        assert!(s.seconds > f.seconds);
    }
}
