//! Lane-plane encoding: one 64-query pass instead of 64 windows.
//!
//! The scalar encoder ([`StreamLayout::encode_batch_into`]) concatenates one
//! window per query, so a batch of `B` queries streams `B × window_len`
//! symbols and the fabric replays its whole sort phase `B` times. The lane
//! encoder instead stacks up to [`MAX_LANES`] queries as *bit-planes* of a
//! single window: every query shares the SOF/filler/EOF control skeleton
//! (uniform cycles), and each data cycle `i` splits the lanes into at most
//! two groups — the queries whose bit `i` is 1 and those whose bit `i` is 0.
//! The lane core ([`ap_sim::lanes`]) then advances all queries through one
//! window-length pass, and each report event carries the lane mask of the
//! queries it belongs to.
//!
//! This is the module the §VI-B multiplexing chapter composes with: multiplex
//! widens the *fabric* (more vectors per pass), lanes widen the *stream*
//! (more queries per pass).

use crate::stream::StreamLayout;
use ap_sim::lanes::{LaneStream, MAX_LANES};
use binvec::BinaryVector;

/// Encodes up to [`MAX_LANES`] queries as bit-planes of one window into a
/// caller-owned [`LaneStream`] (cleared first, allocations kept — the lane
/// analogue of [`StreamLayout::encode_batch_into`]).
///
/// Lane `l` of the stream carries `queries[l]`; run the result with
/// [`ap_sim::CompiledNetwork::run_lanes_into`] and demultiplex reports by
/// lane bit. Offsets of lane report events are *window* offsets — feed them
/// to [`StreamLayout::distance_for_report_offset`] directly, no
/// [`StreamLayout::split_offset`] division.
///
/// # Panics
/// Panics if `queries` is empty, holds more than [`MAX_LANES`] vectors, or
/// any query's dimensionality differs from the layout's.
pub fn encode_lane_planes_into(
    layout: &StreamLayout,
    queries: &[BinaryVector],
    out: &mut LaneStream,
) {
    assert!(
        (1..=MAX_LANES).contains(&queries.len()),
        "lane pass holds 1..={MAX_LANES} queries, got {}",
        queries.len()
    );
    for q in queries {
        assert_eq!(
            q.dims(),
            layout.dims,
            "query dims {} != layout dims {}",
            q.dims(),
            layout.dims
        );
    }
    out.begin(queries.len());
    let full = out.width_mask();
    out.push_uniform_cycle(layout.sof);
    for i in 0..layout.dims {
        let mut ones = 0u64;
        for (l, q) in queries.iter().enumerate() {
            if q.get(i) {
                ones |= 1u64 << l;
            }
        }
        out.push_group(1, ones);
        out.push_group(0, !ones & full);
        out.end_cycle();
    }
    for _ in 0..layout.filler_count() {
        out.push_uniform_cycle(layout.filler);
    }
    out.push_uniform_cycle(layout.eof);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::PartitionNetwork;
    use crate::decode::{decode_reports, merge_lane_reports_into};
    use crate::design::KnnDesign;
    use binvec::{BinaryVector, TopK};

    fn random_vectors(n: usize, dims: usize, seed: u64) -> Vec<BinaryVector> {
        let mut state = seed | 1;
        (0..n)
            .map(|_| {
                let bits: Vec<u8> = (0..dims)
                    .map(|_| {
                        state = state
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        ((state >> 33) & 1) as u8
                    })
                    .collect();
                BinaryVector::from_bits(&bits)
            })
            .collect()
    }

    #[test]
    fn lane_stream_covers_one_window() {
        let design = KnnDesign::new(8);
        let layout = StreamLayout::for_design(&design);
        let queries = random_vectors(5, 8, 7);
        let mut stream = LaneStream::new();
        encode_lane_planes_into(&layout, &queries, &mut stream);
        assert_eq!(stream.cycles(), layout.window_len());
        assert_eq!(stream.width(), 5);
        // Re-encoding reuses the buffer.
        encode_lane_planes_into(&layout, &queries[..3], &mut stream);
        assert_eq!(stream.width(), 3);
        assert_eq!(stream.cycles(), layout.window_len());
    }

    #[test]
    fn lane_pass_matches_scalar_windows_per_query() {
        // One lane pass over the partition fabric must produce exactly the
        // per-query neighbors of the scalar window-per-query run.
        let dims = 16;
        let design = KnnDesign::new(dims);
        let layout = StreamLayout::for_design(&design);
        let dataset = binvec::BinaryDataset::from_vectors(dims, random_vectors(24, dims, 11));
        let queries = random_vectors(6, dims, 23);
        let partition = PartitionNetwork::build_from_dataset(&dataset, 0, &design);
        let compiled = ap_sim::CompiledNetwork::compile(&partition.network).unwrap();

        // Scalar: one window per query, decoded by absolute offset.
        let scalar_stream = layout.encode_batch(&queries);
        let mut st = compiled.new_state();
        let mut scalar_reports = Vec::new();
        compiled.run_into(&mut st, &scalar_stream, &mut scalar_reports);
        let scalar = decode_reports(&layout, &scalar_reports, 0, queries.len(), 4);

        // Lanes: one pass, demuxed by lane mask.
        let mut lane_stream = LaneStream::new();
        encode_lane_planes_into(&layout, &queries, &mut lane_stream);
        let mut lst = compiled.new_lane_state();
        let mut lane_reports = Vec::new();
        compiled.run_lanes_into(&mut lst, &lane_stream, &mut lane_reports);
        let mut acc: Vec<TopK> = (0..queries.len()).map(|_| TopK::new(4)).collect();
        merge_lane_reports_into(&layout, &lane_reports, 0, 0, &mut acc);
        let lanes: Vec<_> = acc.into_iter().map(TopK::into_sorted).collect();

        assert_eq!(lanes, scalar);
        // The lane pass is one window long; the scalar run is one per query.
        assert_eq!(lst.cycle() as usize * queries.len(), st.cycle() as usize);
    }

    #[test]
    #[should_panic(expected = "lane pass holds")]
    fn empty_lane_batch_panics() {
        let layout = StreamLayout::for_design(&KnnDesign::new(8));
        encode_lane_planes_into(&layout, &[], &mut LaneStream::new());
    }
}
