//! Symbol-stream multiplexing (§VI-B): processing up to seven queries per stream.
//!
//! Each symbol of the stream is 8 bits wide, but the basic kNN design only uses one
//! bit of it (the query bit for the current dimension). Multiplexing packs the same
//! dimension of up to seven *different* queries into bits 0..6 of each data symbol;
//! for every dataset vector, seven bit-slice variants of its NFA are instantiated,
//! each programmed with ternary symbol classes (`0b*******1`-style matches) that
//! discriminate a single bit position. Bit 7 is reserved so data symbols can never
//! collide with the SOF / EOF / filler control symbols — which is why the paper caps
//! the gain at 7× rather than 8×.
//!
//! On Gen-1 hardware there is neither the spatial capacity (the base design already
//! uses 41–91% of the board) nor the PCIe report bandwidth to exploit this; the
//! module therefore provides the functional design (validated in the tests), the
//! multiplexed stream encoder/decoder, and the throughput/resource model used by the
//! Table VIII projections.

use crate::design::KnnDesign;
use crate::macros::{append_vector_macro_with_symbols, VectorMacroHandles};
use crate::stream::StreamLayout;
use ap_sim::{AutomataNetwork, SymbolClass};
use binvec::BinaryVector;
use serde::{Deserialize, Serialize};

/// Maximum number of queries that share one symbol stream.
pub const MAX_SLICES: usize = 7;

/// Encodes up to [`MAX_SLICES`] queries into one multiplexed window,
/// *appending* to a caller-owned buffer — the serving hot path encodes every
/// window of a batch into one pooled allocation.
///
/// Bit `s` of data symbol `i` carries dimension `i` of query `s`; unused slices are
/// zero-filled. Control symbols are unchanged.
///
/// # Panics
/// Panics if more than [`MAX_SLICES`] queries are supplied, the slice is empty, or
/// any query has the wrong dimensionality.
pub fn encode_multiplexed_window_into(
    layout: &StreamLayout,
    queries: &[&BinaryVector],
    out: &mut Vec<u8>,
) {
    assert!(!queries.is_empty(), "need at least one query");
    assert!(
        queries.len() <= MAX_SLICES,
        "at most {MAX_SLICES} queries per multiplexed stream"
    );
    for q in queries {
        assert_eq!(q.dims(), layout.dims, "query dims mismatch");
    }
    out.reserve(layout.window_len());
    out.push(layout.sof);
    for i in 0..layout.dims {
        let mut symbol = 0u8;
        for (s, q) in queries.iter().enumerate() {
            if q.get(i) {
                symbol |= 1 << s;
            }
        }
        out.push(symbol);
    }
    out.extend(std::iter::repeat_n(layout.filler, layout.filler_count()));
    out.push(layout.eof);
}

/// Encodes up to [`MAX_SLICES`] queries into one multiplexed window. See
/// [`encode_multiplexed_window_into`] for the buffer-reusing form.
///
/// # Panics
/// Panics if more than [`MAX_SLICES`] queries are supplied, the slice is empty, or
/// any query has the wrong dimensionality.
pub fn encode_multiplexed_window(layout: &StreamLayout, queries: &[&BinaryVector]) -> Vec<u8> {
    let mut out = Vec::with_capacity(layout.window_len());
    encode_multiplexed_window_into(layout, queries, &mut out);
    out
}

/// Encodes a batch of queries into consecutive multiplexed windows of up to
/// [`MAX_SLICES`] queries each, into caller-owned buffers (both cleared
/// first): `stream` receives the symbols, `occupancy` the number of queries
/// each window carries.
pub fn encode_multiplexed_batch_into(
    layout: &StreamLayout,
    queries: &[BinaryVector],
    stream: &mut Vec<u8>,
    occupancy: &mut Vec<usize>,
) {
    stream.clear();
    occupancy.clear();
    stream.reserve(layout.window_len() * queries.len().div_ceil(MAX_SLICES));
    // One reference scratch reused across every window of the batch.
    let mut window: Vec<&BinaryVector> = Vec::with_capacity(MAX_SLICES);
    for chunk in queries.chunks(MAX_SLICES) {
        window.clear();
        window.extend(chunk.iter());
        encode_multiplexed_window_into(layout, &window, stream);
        occupancy.push(chunk.len());
    }
}

/// Encodes a batch of queries into consecutive multiplexed windows of up to
/// [`MAX_SLICES`] queries each. Returns the stream and, per window, the number of
/// queries it carries. See [`encode_multiplexed_batch_into`] for the
/// buffer-reusing form.
pub fn encode_multiplexed_batch(
    layout: &StreamLayout,
    queries: &[BinaryVector],
) -> (Vec<u8>, Vec<usize>) {
    let mut stream = Vec::new();
    let mut occupancy = Vec::new();
    encode_multiplexed_batch_into(layout, queries, &mut stream, &mut occupancy);
    (stream, occupancy)
}

/// Appends the bit-slice variant of a vector macro for query slice `slice`.
///
/// The macro's match states use ternary symbol classes that inspect only bit `slice`
/// of the data symbol (and exclude control symbols via the reserved top bit).
pub fn append_sliced_vector_macro(
    net: &mut AutomataNetwork,
    vector: &BinaryVector,
    report_code: u32,
    design: &KnnDesign,
    slice: usize,
) -> VectorMacroHandles {
    assert!(slice < MAX_SLICES, "slice must be in 0..{MAX_SLICES}");
    let symbols_for_bit = move |_design: &KnnDesign, bit: bool| -> SymbolClass {
        // Match bit `slice` == bit, and require bit 7 == 0 so control symbols
        // (SOF/EOF/filler, all >= 0x80) can never satisfy a match state.
        let mut constraints = [None; 8];
        constraints[slice] = Some(bit);
        constraints[7] = Some(false);
        SymbolClass::ternary(constraints)
    };
    append_vector_macro_with_symbols(net, vector, report_code, design, &symbols_for_bit)
}

/// Report-code layout for a multiplexed network: vector `v` in slice `s` gets code
/// `v * MAX_SLICES + s`.
pub fn multiplexed_report_code(vector_index: usize, slice: usize) -> u32 {
    (vector_index * MAX_SLICES + slice) as u32
}

/// Inverse of [`multiplexed_report_code`].
pub fn decode_multiplexed_code(code: u32) -> (usize, usize) {
    ((code as usize) / MAX_SLICES, (code as usize) % MAX_SLICES)
}

/// Resource and throughput model for multiplexing, used by the projections.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct MultiplexModel {
    /// Number of query slices used (1..=7).
    pub slices: usize,
    /// STE multiplier relative to the base design (one NFA copy per slice).
    pub ste_multiplier: usize,
    /// Query throughput multiplier (queries per streamed window).
    pub throughput_multiplier: usize,
    /// Report-bandwidth multiplier (reports per window grow with the slices).
    pub report_bandwidth_multiplier: usize,
}

impl MultiplexModel {
    /// Builds the model for `slices` parallel query slices.
    pub fn new(slices: usize) -> Self {
        assert!((1..=MAX_SLICES).contains(&slices), "slices must be 1..=7");
        Self {
            slices,
            ste_multiplier: slices,
            throughput_multiplier: slices,
            report_bandwidth_multiplier: slices,
        }
    }

    /// Whether the multiplexed design fits on a device whose base design already
    /// uses `base_utilization` (fraction of the board).
    pub fn fits(&self, base_utilization: f64) -> bool {
        base_utilization * self.ste_multiplier as f64 <= 1.0
    }

    /// Whether the multiplexed report traffic stays within a PCIe budget, given the
    /// base design's report bandwidth in Gbit/s.
    pub fn within_bandwidth(&self, base_gbps: f64, budget_gbps: f64) -> bool {
        base_gbps * self.report_bandwidth_multiplier as f64 <= budget_gbps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ap_sim::Simulator;
    use binvec::generate::{uniform_dataset, uniform_queries};

    #[test]
    fn multiplexed_stream_reports_correct_distances_for_every_slice() {
        let dims = 12;
        let design = KnnDesign::new(dims);
        let layout = StreamLayout::for_design(&design);
        let data = uniform_dataset(5, dims, 50);
        let queries = uniform_queries(7, dims, 51);

        // Build the multiplexed network: one macro per (vector, slice).
        let mut net = AutomataNetwork::new();
        for v in 0..data.len() {
            for s in 0..queries.len() {
                append_sliced_vector_macro(
                    &mut net,
                    &data.vector(v),
                    multiplexed_report_code(v, s),
                    &design,
                    s,
                );
            }
        }
        net.validate().unwrap();

        let refs: Vec<&BinaryVector> = queries.iter().collect();
        let stream = encode_multiplexed_window(&layout, &refs);
        let mut sim = Simulator::new(&net).unwrap();
        let reports = sim.run(&stream);

        // Every (vector, slice) pair reports exactly once with the true distance.
        assert_eq!(reports.len(), data.len() * queries.len());
        for r in reports {
            let (v, s) = decode_multiplexed_code(r.code);
            let expected = data.vector(v).hamming(&queries[s]);
            let got = layout
                .distance_for_report_offset(r.offset as usize)
                .expect("report inside sort phase");
            assert_eq!(got, expected, "vector {v} slice {s}");
        }
    }

    #[test]
    fn partially_filled_window_zero_fills_unused_slices() {
        let dims = 8;
        let design = KnnDesign::new(dims);
        let layout = StreamLayout::for_design(&design);
        let q = BinaryVector::ones(dims);
        let stream = encode_multiplexed_window(&layout, &[&q]);
        // Data symbols carry only bit 0.
        for &s in &stream[1..=dims] {
            assert_eq!(s, 0b0000_0001);
        }
    }

    #[test]
    fn batch_encoder_splits_into_windows_of_seven() {
        let design = KnnDesign::new(8);
        let layout = StreamLayout::for_design(&design);
        let queries = uniform_queries(16, 8, 52);
        let (stream, occupancy) = encode_multiplexed_batch(&layout, &queries);
        assert_eq!(occupancy, vec![7, 7, 2]);
        assert_eq!(stream.len(), 3 * layout.window_len());
    }

    #[test]
    fn into_variants_match_the_allocating_forms_and_reuse_buffers() {
        let design = KnnDesign::new(8);
        let layout = StreamLayout::for_design(&design);
        let queries = uniform_queries(16, 8, 53);
        let (expected_stream, expected_occupancy) = encode_multiplexed_batch(&layout, &queries);
        let mut stream = Vec::new();
        let mut occupancy = Vec::new();
        encode_multiplexed_batch_into(&layout, &queries, &mut stream, &mut occupancy);
        assert_eq!(stream, expected_stream);
        assert_eq!(occupancy, expected_occupancy);
        let capacity = stream.capacity();
        encode_multiplexed_batch_into(&layout, &queries, &mut stream, &mut occupancy);
        assert_eq!(stream.capacity(), capacity, "warm buffer must not grow");
        assert_eq!(stream, expected_stream);
    }

    #[test]
    fn report_code_roundtrip() {
        for v in [0usize, 1, 100, 1023] {
            for s in 0..MAX_SLICES {
                assert_eq!(
                    decode_multiplexed_code(multiplexed_report_code(v, s)),
                    (v, s)
                );
            }
        }
    }

    #[test]
    fn model_reflects_gen1_infeasibility() {
        // §VI-B: the base design already uses 41-91% of the board and ~36 Gbps of
        // report bandwidth, so 7x multiplexing fits neither resources nor PCIe.
        let m = MultiplexModel::new(7);
        assert!(!m.fits(0.417));
        assert!(!m.fits(0.909));
        assert!(!m.within_bandwidth(36.2, 63.0));
        // Two slices of the WordEmbed design would fit spatially.
        assert!(MultiplexModel::new(2).fits(0.417));
        assert_eq!(m.throughput_multiplier, 7);
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn too_many_queries_panics() {
        let design = KnnDesign::new(4);
        let layout = StreamLayout::for_design(&design);
        let qs: Vec<BinaryVector> = (0..8).map(|_| BinaryVector::zeros(4)).collect();
        let refs: Vec<&BinaryVector> = qs.iter().collect();
        let _ = encode_multiplexed_window(&layout, &refs);
    }

    #[test]
    #[should_panic(expected = "slices must be 1..=7")]
    fn zero_slices_panics() {
        let _ = MultiplexModel::new(0);
    }
}
