//! Architectural extensions (§VII) and their gain models.
//!
//! The paper proposes three microarchitectural extensions for future AP generations
//! and estimates their compounded benefit (Table VIII):
//!
//! * **Counter increment extension** (§VII-A) — let counters accept up to 8 enable
//!   pulses per cycle. Up to seven vector dimensions can then be packed into each
//!   data symbol, cutting the Hamming-phase latency by 7× (query latency drops from
//!   `2d` to `d + d/7`, a 1.75× improvement, because the sort phase is unchanged).
//!   [`append_multi_increment_macro`] builds a functional macro exploiting the
//!   extension on the simulator (which supports configurable increment caps).
//! * **Counter dynamic threshold extension** (§VII-B) — expose one counter's count
//!   as another's threshold, enabling `if (A > B)` constructs.
//!   [`DynamicComparisonModel`] captures the construct's behaviour.
//! * **STE decomposition extension** (§VII-C) — split the 8-input STE lookup table
//!   into several narrower LUTs so states that examine only a few symbol bits (the
//!   kNN match states examine exactly one) can share an STE.
//!   [`decomposition_savings`] reproduces the Table VII analytical model.
//!
//! [`CompoundedGains`] multiplies the orthogonal factors into the Table VIII totals.

use crate::design::KnnDesign;
use ap_sim::{AutomataNetwork, ConnectPort, CounterMode, ElementId, StartKind, SymbolClass};
use binvec::BinaryVector;
use serde::{Deserialize, Serialize};

// ---------------------------------------------------------------------------
// Counter increment extension
// ---------------------------------------------------------------------------

/// Number of vector dimensions packed per symbol when the counter-increment
/// extension is used (bit 7 stays reserved for control symbols).
pub const DIMS_PER_SYMBOL: usize = 7;

/// Latency model for the counter increment extension: the Hamming phase shrinks to
/// `ceil(d / 7)` cycles while the sort phase still takes `d` cycles.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CounterIncrementModel {
    /// Vector dimensionality.
    pub dims: usize,
}

impl CounterIncrementModel {
    /// Baseline query latency in cycles (`2d`, Hamming + sort).
    pub fn baseline_latency(&self) -> usize {
        2 * self.dims
    }

    /// Extended query latency in cycles (`ceil(d/7) + d`).
    pub fn extended_latency(&self) -> usize {
        self.dims.div_ceil(DIMS_PER_SYMBOL) + self.dims
    }

    /// Latency improvement factor (≈ 1.75× for large `d`, as quoted in §VII-A).
    pub fn speedup(&self) -> f64 {
        self.baseline_latency() as f64 / self.extended_latency() as f64
    }
}

/// Handles of a multi-increment macro built with [`append_multi_increment_macro`].
#[derive(Clone, Debug)]
pub struct MultiIncrementHandles {
    /// The guard state.
    pub guard: ElementId,
    /// One group of bit-slice match states per packed symbol.
    pub match_groups: Vec<Vec<ElementId>>,
    /// The counter (with the extended increment cap).
    pub counter: ElementId,
    /// The reporting state.
    pub reporter: ElementId,
}

/// Builds a Hamming macro that exploits the counter-increment extension: each data
/// symbol carries up to seven dimensions (bits 0..6), each dimension's match state is
/// a ternary bit-slice STE, and all seven feed the counter, which may increment by up
/// to 8 per cycle.
///
/// The returned macro performs only the distance phase (it latches once the count
/// reaches the number of *matching* dimensions threshold supplied); it is used by the
/// extension tests and the ablation benchmark rather than the full engine.
pub fn append_multi_increment_macro(
    net: &mut AutomataNetwork,
    vector: &BinaryVector,
    threshold: u32,
    report_code: u32,
    design: &KnnDesign,
) -> MultiIncrementHandles {
    let d = vector.dims();
    assert!(d >= 1, "dimensionality must be at least 1");
    let alpha = design.alphabet;
    let tag = format!("x{report_code}");
    let symbols_per_vector = d.div_ceil(DIMS_PER_SYMBOL);

    let guard = net.add_ste(
        format!("{tag}:guard"),
        SymbolClass::single(alpha.sof),
        StartKind::AllInput,
        None,
    );

    let counter = net.add_counter_with_increment(
        format!("{tag}:ihd"),
        threshold,
        CounterMode::Pulse,
        None,
        8,
    );

    let mut match_groups = Vec::with_capacity(symbols_per_vector);
    let mut prev = guard;
    for s in 0..symbols_per_vector {
        // A star state advances the position chain one packed symbol at a time.
        let star = net.add_ste(
            format!("{tag}:star{s}"),
            SymbolClass::any(),
            StartKind::None,
            None,
        );
        net.connect(prev, star).expect("ladder");

        let mut group = Vec::new();
        for bit in 0..DIMS_PER_SYMBOL {
            let dim = s * DIMS_PER_SYMBOL + bit;
            if dim >= d {
                break;
            }
            let mut constraints = [None; 8];
            constraints[bit] = Some(vector.get(dim));
            constraints[7] = Some(false);
            let matcher = net.add_ste(
                format!("{tag}:match{dim}"),
                SymbolClass::ternary(constraints),
                StartKind::None,
                None,
            );
            net.connect(prev, matcher).expect("ladder");
            net.connect_port(matcher, counter, ConnectPort::CountEnable)
                .expect("enable");
            group.push(matcher);
        }
        match_groups.push(group);
        prev = star;
    }

    let reporter = net.add_ste(
        format!("{tag}:report"),
        SymbolClass::any(),
        StartKind::None,
        Some(report_code),
    );
    net.connect(counter, reporter).expect("report");

    MultiIncrementHandles {
        guard,
        match_groups,
        counter,
        reporter,
    }
}

/// Encodes a query for the multi-increment macro: one SOF, then `ceil(d/7)` data
/// symbols each carrying seven dimensions, then `trailer` filler symbols so pending
/// counter updates and the report can drain.
pub fn encode_packed_query(query: &BinaryVector, design: &KnnDesign, trailer: usize) -> Vec<u8> {
    let alpha = design.alphabet;
    let d = query.dims();
    let mut out = vec![alpha.sof];
    for s in 0..d.div_ceil(DIMS_PER_SYMBOL) {
        let mut symbol = 0u8;
        for bit in 0..DIMS_PER_SYMBOL {
            let dim = s * DIMS_PER_SYMBOL + bit;
            if dim < d && query.get(dim) {
                symbol |= 1 << bit;
            }
        }
        out.push(symbol);
    }
    out.extend(std::iter::repeat_n(alpha.filler, trailer));
    out
}

// ---------------------------------------------------------------------------
// Dynamic threshold extension
// ---------------------------------------------------------------------------

/// Behavioural model of the dynamic-threshold comparison macro (Fig. 8): two
/// counters A and B where A's activation condition becomes `count(A) > count(B)`
/// instead of a static threshold.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DynamicComparisonModel {
    /// Current count of counter A.
    pub count_a: u32,
    /// Current count of counter B (used as A's dynamic threshold).
    pub count_b: u32,
}

impl DynamicComparisonModel {
    /// Applies one cycle of enable signals.
    pub fn step(&mut self, enable_a: bool, enable_b: bool) {
        if enable_a {
            self.count_a += 1;
        }
        if enable_b {
            self.count_b += 1;
        }
    }

    /// Resets both counters.
    pub fn reset(&mut self) {
        *self = Self::default();
    }

    /// The comparison output: `A > B`. On Gen-1 hardware this construct is
    /// impossible because thresholds are static; the extension exposes B's count as
    /// A's threshold port.
    pub fn activates(&self) -> bool {
        self.count_a > self.count_b
    }

    /// Extra hardware cost: none beyond routing (the paper: "requires no extra
    /// hardware resources and only a few wires in the routing fabric").
    pub fn extra_gate_cost(&self) -> usize {
        0
    }
}

// ---------------------------------------------------------------------------
// STE decomposition extension
// ---------------------------------------------------------------------------

/// Decomposition factors evaluated in Table VII.
pub const DECOMPOSITION_FACTORS: [usize; 6] = [1, 2, 4, 8, 16, 32];

/// Resource savings from decomposing 8-input STEs into `factor` narrower LUTs, for a
/// design whose states are described by how many symbol bits they actually examine.
///
/// Following the paper's analytical model: every state costs one 8-input STE today.
/// With decomposition factor `x`, an 8-input STE can host `x` sub-STEs of
/// `8 − log2(x)` inputs; a state fits in a sub-STE iff it examines at most that many
/// bits, otherwise it still needs a full STE. The savings factor is
/// `original STEs / decomposed STEs`.
pub fn decomposition_savings(effective_bits_per_state: &[u8], factor: usize) -> f64 {
    assert!(
        factor.is_power_of_two() && factor <= 256,
        "factor must be a power of two"
    );
    let original = effective_bits_per_state.len() as f64;
    if effective_bits_per_state.is_empty() {
        return 1.0;
    }
    let sub_inputs = 8 - (factor as f64).log2() as u8;
    let mut packable = 0usize;
    let mut full = 0usize;
    for &bits in effective_bits_per_state {
        if bits <= sub_inputs {
            packable += 1;
        } else {
            full += 1;
        }
    }
    let decomposed = full + packable.div_ceil(factor);
    original / decomposed as f64
}

/// Per-state effective input bits for one kNN vector macro of the given design.
///
/// * match states examine 1 bit (the query bit of their dimension);
/// * star states, collector states, sort-delay states and the reporting state examine
///   0 bits (`*` symbol classes);
/// * the guard, sort-start and EOF states examine the full 8 bits (they must
///   distinguish exact control symbols).
pub fn knn_effective_bits(design: &KnnDesign) -> Vec<u8> {
    let mut bits = Vec::with_capacity(design.stes_per_vector());
    bits.push(8); // guard
    for _ in 0..design.dims {
        bits.push(0); // star
        bits.push(1); // match
    }
    bits.extend(std::iter::repeat_n(0, design.collector_nodes()));
    bits.push(8); // sort start
                  // Sort delays match the filler symbol exactly.
    bits.extend(std::iter::repeat_n(8, design.collector_depth()));
    bits.push(8); // EOF state
    bits.push(0); // reporter
    bits
}

// ---------------------------------------------------------------------------
// Compounded gains (Table VIII)
// ---------------------------------------------------------------------------

/// The individual multiplicative factors the paper compounds in Table VIII.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CompoundedGains {
    /// Technology scaling from 50 nm to 28 nm (the paper uses 3.19×).
    pub technology_scaling: f64,
    /// Vector packing resource savings (groups of 4 in Table VIII).
    pub vector_packing: f64,
    /// STE decomposition savings at factor 4.
    pub ste_decomposition: f64,
    /// Counter increment extension latency improvement.
    pub counter_increment: f64,
}

impl CompoundedGains {
    /// The paper's technology-scaling factor (50 nm → 28 nm, linear dimension ratio
    /// squared ≈ 3.19).
    pub const PAPER_TECHNOLOGY_SCALING: f64 = 3.19;

    /// Builds the Table VIII factors for a workload dimensionality, using this
    /// workspace's packing and decomposition models and the §VII-A latency model.
    pub fn for_design(design: &KnnDesign) -> Self {
        let packing = crate::packing::PackingModel::new(design, 4).savings_factor();
        let decomposition = decomposition_savings(&knn_effective_bits(design), 4);
        let increment = CounterIncrementModel { dims: design.dims }.speedup();
        Self {
            technology_scaling: Self::PAPER_TECHNOLOGY_SCALING,
            vector_packing: packing,
            ste_decomposition: decomposition,
            counter_increment: increment,
        }
    }

    /// Total compounded performance gain (the Table VIII bottom row).
    pub fn total(&self) -> f64 {
        self.technology_scaling
            * self.vector_packing
            * self.ste_decomposition
            * self.counter_increment
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ap_sim::Simulator;
    use binvec::generate::{uniform_dataset, uniform_queries};

    #[test]
    fn counter_increment_latency_model_matches_section7a() {
        for dims in [64usize, 128, 256] {
            let m = CounterIncrementModel { dims };
            assert_eq!(m.baseline_latency(), 2 * dims);
            let s = m.speedup();
            assert!((1.70..=1.76).contains(&s), "dims {dims}: speedup {s}");
        }
    }

    #[test]
    fn multi_increment_macro_counts_all_dimensions_per_symbol() {
        // Encode a 21-dimensional vector (3 packed symbols); with the extension the
        // counter reaches the full inverted Hamming distance even though several
        // matches land in the same cycle.
        let dims = 21;
        let design = KnnDesign::new(dims);
        let data = uniform_dataset(1, dims, 60);
        let vector = data.vector(0);
        let queries = uniform_queries(8, dims, 61);
        for q in &queries {
            let matches = vector.inverted_hamming(q);
            if matches == 0 {
                continue;
            }
            let mut net = AutomataNetwork::new();
            append_multi_increment_macro(&mut net, &vector, matches, 0, &design);
            let mut sim = Simulator::new(&net).unwrap();
            let stream = encode_packed_query(q, &design, 4);
            let reports = sim.run(&stream);
            assert_eq!(reports.len(), 1, "expected exactly one report");
        }
    }

    #[test]
    fn multi_increment_macro_does_not_fire_below_threshold() {
        let dims = 14;
        let design = KnnDesign::new(dims);
        let vector = BinaryVector::ones(dims);
        let query = BinaryVector::zeros(dims); // zero matches
        let mut net = AutomataNetwork::new();
        append_multi_increment_macro(&mut net, &vector, 1, 0, &design);
        let mut sim = Simulator::new(&net).unwrap();
        let reports = sim.run(&encode_packed_query(&query, &design, 4));
        assert!(reports.is_empty());
    }

    #[test]
    fn dynamic_comparison_behaves_like_a_greater_than() {
        let mut m = DynamicComparisonModel::default();
        assert!(!m.activates());
        m.step(true, false);
        assert!(m.activates());
        m.step(false, true);
        assert!(!m.activates()); // 1 > 1 is false
        m.step(true, true);
        assert!(!m.activates());
        m.step(true, false);
        assert!(m.activates());
        assert_eq!(m.extra_gate_cost(), 0);
        m.reset();
        assert_eq!(m.count_a + m.count_b, 0);
    }

    #[test]
    fn decomposition_savings_match_table7_shape() {
        // Table VII: savings approach the theoretical factor and increase with
        // dimensionality (WordEmbed 1.98/3.86/7.38…, SIFT 1.99/3.93/7.67…,
        // TagSpace 1.99/3.96/7.83… for x = 2/4/8). Our macro carries a few more
        // full-8-bit control states than the paper's model, so the allowed slack
        // grows with the decomposition factor.
        for dims in [64usize, 128, 256] {
            let bits = knn_effective_bits(&KnnDesign::new(dims));
            for (x, tolerance) in [(2usize, 0.06), (4, 0.15), (8, 0.25)] {
                let s = decomposition_savings(&bits, x);
                assert!(s <= x as f64 + 1e-9, "savings cannot beat the factor");
                assert!(
                    s > x as f64 * (1.0 - tolerance),
                    "dims {dims}, x {x}: savings {s} too far below theoretical {x}"
                );
            }
            // Larger factors keep helping but saturate below the theoretical bound.
            let s16 = decomposition_savings(&bits, 16);
            let s32 = decomposition_savings(&bits, 32);
            assert!(s32 > s16);
            assert!(s32 < 32.0);
        }
        // Higher dimensionality gets closer to the theoretical factor (Table VII rows).
        let w = decomposition_savings(&knn_effective_bits(&KnnDesign::new(64)), 4);
        let t = decomposition_savings(&knn_effective_bits(&KnnDesign::new(256)), 4);
        assert!(t > w);
    }

    #[test]
    fn decomposition_factor_one_is_identity() {
        let bits = knn_effective_bits(&KnnDesign::new(128));
        assert!((decomposition_savings(&bits, 1) - 1.0).abs() < 1e-12);
        assert!((decomposition_savings(&[], 4) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn compounded_gains_match_table8_magnitudes() {
        // Table VIII totals: 63.14x (WordEmbed), 71.96x (SIFT), 73.17x (TagSpace).
        // Our packing/decomposition constants differ slightly, so check the same
        // ballpark (45x – 90x) and the increasing trend with dimensionality.
        let totals: Vec<f64> = [64usize, 128, 256]
            .iter()
            .map(|&d| CompoundedGains::for_design(&KnnDesign::new(d)).total())
            .collect();
        for t in &totals {
            assert!((45.0..90.0).contains(t), "total {t}");
        }
        assert!(totals[1] > totals[0]);
        assert!(totals[2] > totals[1]);
        // Individual factors stay in the paper's reported ranges.
        let g = CompoundedGains::for_design(&KnnDesign::new(128));
        assert!((2.5..3.7).contains(&g.vector_packing));
        assert!((3.5..4.01).contains(&g.ste_decomposition));
        assert!((1.70..1.76).contains(&g.counter_increment));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_factor_panics() {
        let _ = decomposition_savings(&[1, 2, 3], 3);
    }
}
