//! The Hamming macro and sorting macro for a single encoded dataset vector.
//!
//! One dataset vector is encoded as one NFA (Fig. 2a/2b of the paper):
//!
//! ```text
//!            SOF                q0        q1            q_{d-1}
//!  guard ───────► star₀ ───► star₁ ───► … ───► star_{d−1}
//!    │              │           │                   │
//!    └──► match₀    └─► match₁  └─► …               └─► match_{d−1}
//!              \        |                            /
//!               ───── collector reduction tree ─────
//!                              │ (enable)
//!   sort_start ─ delay×D ──────┤
//!      (filler)                ▼
//!              ┌──────── IHD counter (threshold = d, pulse) ────────┐
//!   eof_state ─┘ (reset)                                            ▼
//!      (EOF)                                                  reporting state
//! ```
//!
//! * The **guard state** fires on the SOF symbol and protects the rest of the NFA
//!   from spurious activations.
//! * The **star/match ladder** advances one position per query symbol; the match
//!   state of dimension *i* activates only when the streamed query bit equals the
//!   encoded vector bit, contributing one increment toward the inverted Hamming
//!   distance.
//! * The **collector tree** ORs all match activations into the counter's enable
//!   port. All leaves sit at the same depth so match pulses (which occur on distinct
//!   cycles) stay on distinct cycles and none is lost to the counter's
//!   increment-by-one limit.
//! * The **sorting macro** (sort start + delay chain, EOF state, counter, reporting
//!   state) implements the temporally encoded sort: during the filler phase the
//!   counter is incremented once per cycle, so it crosses the threshold `d` — and the
//!   reporting state fires — `dist` cycles after the most similar possible vector
//!   would.

use crate::design::KnnDesign;
use ap_sim::{AutomataNetwork, ConnectPort, CounterMode, ElementId, StartKind, SymbolClass};
use binvec::BinaryVector;

/// Element handles of one vector macro, returned for inspection and testing.
#[derive(Clone, Debug)]
pub struct VectorMacroHandles {
    /// The guard (SOF) state.
    pub guard: ElementId,
    /// Star states, one per dimension.
    pub star_states: Vec<ElementId>,
    /// Match states, one per dimension.
    pub match_states: Vec<ElementId>,
    /// Collector-tree internal nodes, level by level (leaf-most level first).
    pub collector_nodes: Vec<ElementId>,
    /// The inverted-Hamming-distance counter.
    pub counter: ElementId,
    /// The sort-start state (fires on filler symbols).
    pub sort_start: ElementId,
    /// The delay states between the sort-start state and the counter enable.
    pub sort_delays: Vec<ElementId>,
    /// The EOF state that resets the counter.
    pub eof_state: ElementId,
    /// The reporting state.
    pub reporter: ElementId,
}

/// Builds the symbol class a match state uses for an expected bit value in the
/// single-query encoding (exact data symbol).
fn match_symbols(design: &KnnDesign, bit: bool) -> SymbolClass {
    SymbolClass::single(design.alphabet.data_symbol(bit))
}

/// Appends one vector macro (Hamming + sorting) to `net`.
///
/// `report_code` must be unique across the network; the engine uses it to map the
/// report back to the dataset vector.
///
/// # Panics
/// Panics if the vector's dimensionality differs from the design's or is zero.
pub fn append_vector_macro(
    net: &mut AutomataNetwork,
    vector: &BinaryVector,
    report_code: u32,
    design: &KnnDesign,
) -> VectorMacroHandles {
    append_vector_macro_with_symbols(net, vector, report_code, design, &match_symbols)
}

/// Like [`append_vector_macro`] but with a custom mapping from expected bit value to
/// the match state's symbol class. Symbol-stream multiplexing (§VI-B) uses this to
/// build bit-slice variants of the same macro.
pub fn append_vector_macro_with_symbols(
    net: &mut AutomataNetwork,
    vector: &BinaryVector,
    report_code: u32,
    design: &KnnDesign,
    symbols_for_bit: &dyn Fn(&KnnDesign, bool) -> SymbolClass,
) -> VectorMacroHandles {
    let d = design.dims;
    assert!(d >= 1, "dimensionality must be at least 1");
    assert_eq!(
        vector.dims(),
        d,
        "vector dims {} != design dims {}",
        vector.dims(),
        d
    );
    let alpha = design.alphabet;
    let tag = format!("v{report_code}");

    // Guard state.
    let guard = net.add_ste(
        format!("{tag}:guard"),
        SymbolClass::single(alpha.sof),
        StartKind::AllInput,
        None,
    );

    // Star / match ladder.
    let mut star_states = Vec::with_capacity(d);
    let mut match_states = Vec::with_capacity(d);
    let mut prev = guard;
    for i in 0..d {
        let star = net.add_ste(
            format!("{tag}:star{i}"),
            SymbolClass::any(),
            StartKind::None,
            None,
        );
        let matcher = net.add_ste(
            format!("{tag}:match{i}"),
            symbols_for_bit(design, vector.get(i)),
            StartKind::None,
            None,
        );
        net.connect(prev, star).expect("ladder connection");
        net.connect(prev, matcher).expect("ladder connection");
        star_states.push(star);
        match_states.push(matcher);
        prev = star;
    }

    // Collector reduction tree: level by level, uniform depth for every leaf.
    let mut collector_nodes = Vec::new();
    let mut frontier: Vec<ElementId> = match_states.clone();
    let mut level = 0usize;
    while frontier.len() > 1 || level == 0 {
        let mut next = Vec::new();
        for (c, chunk) in frontier.chunks(design.collector_fan_in).enumerate() {
            let node = net.add_ste(
                format!("{tag}:collect{level}_{c}"),
                SymbolClass::any(),
                StartKind::None,
                None,
            );
            for &child in chunk {
                net.connect(child, node).expect("collector connection");
            }
            collector_nodes.push(node);
            next.push(node);
        }
        frontier = next;
        level += 1;
    }
    let collector_root = *frontier.last().expect("collector root");
    debug_assert_eq!(level, design.collector_depth());

    // Inverted-Hamming-distance counter.
    let counter = net.add_counter(format!("{tag}:ihd"), d as u32, CounterMode::Pulse, None);
    net.connect_port(collector_root, counter, ConnectPort::CountEnable)
        .expect("collector to counter");

    // Sorting macro: sort start + D delay states driving the counter enable.
    let sort_start = net.add_ste(
        format!("{tag}:sort"),
        SymbolClass::single(alpha.filler),
        StartKind::AllInput,
        None,
    );
    let mut sort_delays = Vec::new();
    let mut sort_prev = sort_start;
    for j in 0..design.collector_depth() {
        let delay = net.add_ste(
            format!("{tag}:sortdelay{j}"),
            SymbolClass::single(alpha.filler),
            StartKind::None,
            None,
        );
        net.connect(sort_prev, delay)
            .expect("sort delay connection");
        sort_delays.push(delay);
        sort_prev = delay;
    }
    net.connect_port(sort_prev, counter, ConnectPort::CountEnable)
        .expect("sort to counter");

    // EOF state resets the counter for the next query window.
    let eof_state = net.add_ste(
        format!("{tag}:eof"),
        SymbolClass::single(alpha.eof),
        StartKind::None,
        None,
    );
    net.connect(sort_start, eof_state).expect("eof connection");
    net.connect_port(eof_state, counter, ConnectPort::CountReset)
        .expect("eof reset connection");

    // Reporting state fires one cycle after the counter pulse.
    let reporter = net.add_ste(
        format!("{tag}:report"),
        SymbolClass::any(),
        StartKind::None,
        Some(report_code),
    );
    net.connect(counter, reporter).expect("report connection");

    VectorMacroHandles {
        guard,
        star_states,
        match_states,
        collector_nodes,
        counter,
        sort_start,
        sort_delays,
        eof_state,
        reporter,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::StreamLayout;
    use ap_sim::Simulator;
    use binvec::BinaryVector;

    fn build_single(vector: &[u8], design: &KnnDesign) -> (AutomataNetwork, VectorMacroHandles) {
        let mut net = AutomataNetwork::new();
        let handles = append_vector_macro(&mut net, &BinaryVector::from_bits(vector), 0, design);
        (net, handles)
    }

    #[test]
    fn macro_element_count_matches_analytical_model() {
        for dims in [4usize, 16, 64, 128, 256] {
            let design = KnnDesign::new(dims);
            let vector = BinaryVector::zeros(dims);
            let mut net = AutomataNetwork::new();
            append_vector_macro(&mut net, &vector, 0, &design);
            let stats = net.stats();
            assert_eq!(stats.stes, design.stes_per_vector(), "dims {dims}");
            assert_eq!(stats.counters, design.counters_per_vector());
            assert_eq!(stats.reporting, 1);
            assert_eq!(stats.components, 1);
            net.validate().unwrap();
        }
    }

    #[test]
    fn collector_fan_in_limit_is_respected() {
        let design = KnnDesign::new(256).with_collector_fan_in(4);
        let mut net = AutomataNetwork::new();
        append_vector_macro(&mut net, &BinaryVector::zeros(256), 0, &design);
        // No element other than counters may exceed the fan-in limit + ladder fan-in.
        let stats = net.stats();
        assert!(stats.max_fan_in <= 4, "max fan-in {}", stats.max_fan_in);
    }

    /// Reproduces the paper's Figure 3 example: vector {1,0,1,1}, query {1,0,0,1}.
    #[test]
    fn figure3_example_reports_at_expected_offset() {
        let design = KnnDesign::new(4);
        let (net, handles) = build_single(&[1, 0, 1, 1], &design);
        let layout = StreamLayout::for_design(&design);
        let query = BinaryVector::from_bits(&[1, 0, 0, 1]);
        let mut sim = Simulator::new(&net).unwrap();
        let reports = sim.run(&layout.encode_query(&query));
        assert_eq!(reports.len(), 1);
        let report = reports[0];
        assert_eq!(report.element, handles.reporter);
        // Hamming distance between {1,0,1,1} and {1,0,0,1} is 1.
        assert_eq!(
            layout.distance_for_report_offset(report.offset as usize),
            Some(1)
        );
        assert_eq!(report.offset as usize, layout.report_offset_for_distance(1));
    }

    #[test]
    fn every_distance_decodes_correctly() {
        // Exhaustively check all 16 queries against one 4-dimensional vector.
        let design = KnnDesign::new(4);
        let encoded = [1u8, 0, 1, 1];
        let (net, _) = build_single(&encoded, &design);
        let layout = StreamLayout::for_design(&design);
        let enc_vec = BinaryVector::from_bits(&encoded);
        for q in 0..16u8 {
            let bits: Vec<u8> = (0..4).map(|i| (q >> i) & 1).collect();
            let query = BinaryVector::from_bits(&bits);
            let expected = enc_vec.hamming(&query);
            let mut sim = Simulator::new(&net).unwrap();
            let reports = sim.run(&layout.encode_query(&query));
            assert_eq!(reports.len(), 1, "query {q:#06b}");
            assert_eq!(
                layout.distance_for_report_offset(reports[0].offset as usize),
                Some(expected),
                "query {q:#06b}"
            );
        }
    }

    #[test]
    fn multi_query_stream_resets_between_windows() {
        let design = KnnDesign::new(8);
        let encoded: Vec<u8> = vec![1, 1, 0, 0, 1, 0, 1, 0];
        let (net, _) = build_single(&encoded, &design);
        let layout = StreamLayout::for_design(&design);
        let enc_vec = BinaryVector::from_bits(&encoded);
        let queries = vec![
            BinaryVector::from_bits(&[1, 1, 0, 0, 1, 0, 1, 0]), // distance 0
            BinaryVector::from_bits(&[0, 0, 1, 1, 0, 1, 0, 1]), // distance 8
            BinaryVector::from_bits(&[1, 1, 1, 1, 0, 0, 0, 0]), // distance 4
        ];
        let mut sim = Simulator::new(&net).unwrap();
        let reports = sim.run(&layout.encode_batch(&queries));
        assert_eq!(reports.len(), 3);
        for (i, r) in reports.iter().enumerate() {
            let (qi, off) = layout.split_offset(r.offset);
            assert_eq!(qi, i);
            assert_eq!(
                layout.distance_for_report_offset(off),
                Some(enc_vec.hamming(&queries[i]))
            );
        }
    }

    #[test]
    fn deep_collector_tree_still_counts_exactly() {
        // Fan-in 2 forces a deep tree; the uniform-depth construction must still
        // deliver every match to the counter.
        let design = KnnDesign::new(16).with_collector_fan_in(2);
        assert!(design.collector_depth() >= 4);
        let encoded: Vec<u8> = (0..16).map(|i| (i % 3 == 0) as u8).collect();
        let (net, _) = build_single(&encoded, &design);
        let layout = StreamLayout::for_design(&design);
        let enc_vec = BinaryVector::from_bits(&encoded);
        for seed in 0..5u64 {
            let query = binvec::generate::uniform_queries(1, 16, seed)
                .pop()
                .unwrap();
            let mut sim = Simulator::new(&net).unwrap();
            let reports = sim.run(&layout.encode_query(&query));
            assert_eq!(reports.len(), 1);
            assert_eq!(
                layout.distance_for_report_offset(reports[0].offset as usize),
                Some(enc_vec.hamming(&query))
            );
        }
    }

    #[test]
    fn handles_expose_expected_structure() {
        let design = KnnDesign::new(64);
        let (net, handles) = build_single(&[0u8; 64], &design);
        assert_eq!(handles.star_states.len(), 64);
        assert_eq!(handles.match_states.len(), 64);
        assert_eq!(handles.collector_nodes.len(), design.collector_nodes());
        assert_eq!(handles.sort_delays.len(), design.collector_depth());
        let reporter = net.element(handles.reporter).unwrap();
        assert!(reporter.is_reporting());
        let counter = net.element(handles.counter).unwrap();
        assert!(counter.is_counter());
    }

    #[test]
    #[should_panic(expected = "vector dims")]
    fn mismatched_vector_dims_panics() {
        let design = KnnDesign::new(8);
        let mut net = AutomataNetwork::new();
        append_vector_macro(&mut net, &BinaryVector::zeros(4), 0, &design);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::stream::StreamLayout;
    use ap_sim::Simulator;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        /// The core correctness property of the whole paper: the simulated AP macro
        /// reports exactly once per query, at the offset encoding the true Hamming
        /// distance.
        #[test]
        fn macro_reports_true_hamming_distance(
            dims in 1usize..40,
            vec_bits in prop::collection::vec(any::<bool>(), 1..40),
            query_bits in prop::collection::vec(any::<bool>(), 1..40),
        ) {
            let dims = dims.min(vec_bits.len()).min(query_bits.len());
            let encoded = binvec::BinaryVector::from_bools(&vec_bits[..dims]);
            let query = binvec::BinaryVector::from_bools(&query_bits[..dims]);
            let design = KnnDesign::new(dims);
            let mut net = AutomataNetwork::new();
            append_vector_macro(&mut net, &encoded, 0, &design);
            let layout = StreamLayout::for_design(&design);
            let mut sim = Simulator::new(&net).unwrap();
            let reports = sim.run(&layout.encode_query(&query));
            prop_assert_eq!(reports.len(), 1);
            let dist = layout.distance_for_report_offset(reports[0].offset as usize);
            prop_assert_eq!(dist, Some(encoded.hamming(&query)));
        }
    }
}
