//! Shared design parameters: the symbol alphabet and the automata layout knobs.

use ap_sim::DeviceConfig;
use serde::{Deserialize, Serialize};

/// The special symbols used by the kNN symbol stream.
///
/// Query bit values are carried in the low bit of a data symbol (`0x00` / `0x01` in
/// the single-query encoding; up to seven query bit-slices in the multiplexed
/// encoding of §VI-B). The control symbols all have the top bit set so they can never
/// collide with multiplexed data symbols.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SymbolAlphabet {
    /// Start-of-file symbol marking the beginning of a query window.
    pub sof: u8,
    /// End-of-file symbol terminating a query window (triggers the counter reset).
    pub eof: u8,
    /// Filler ("^EOF") symbol padding the sort phase.
    pub filler: u8,
}

impl Default for SymbolAlphabet {
    fn default() -> Self {
        Self {
            sof: 0xFF,
            eof: 0xFD,
            filler: 0xFE,
        }
    }
}

impl SymbolAlphabet {
    /// Data symbol for a single-query (non-multiplexed) stream bit.
    pub fn data_symbol(&self, bit: bool) -> u8 {
        u8::from(bit)
    }

    /// A symbol that never appears in any encoded stream: it has the top bit
    /// set (so it is outside the single-query and multiplexed data-symbol
    /// spaces) and differs from every control symbol. Match states that must
    /// *never* fire (the Jaccard design's 0-bit dimensions) carry this symbol
    /// instead of an empty class, which `AutomataNetwork::validate` rejects.
    pub fn never_symbol(&self) -> u8 {
        (0x80u8..=0xFF)
            .find(|&s| s != self.sof && s != self.eof && s != self.filler)
            .expect("three control symbols cannot cover the 128-value top-bit space")
    }

    /// Checks that the three control symbols are distinct and cannot collide with
    /// multiplexed data symbols (which use only the low seven bits).
    pub fn validate(&self) -> Result<(), String> {
        if self.sof == self.eof || self.sof == self.filler || self.eof == self.filler {
            return Err("control symbols must be distinct".to_string());
        }
        for (name, s) in [
            ("SOF", self.sof),
            ("EOF", self.eof),
            ("filler", self.filler),
        ] {
            if s & 0x80 == 0 {
                return Err(format!(
                    "{name} symbol {s:#04x} collides with the multiplexed data symbol space"
                ));
            }
        }
        Ok(())
    }
}

/// Layout parameters of the kNN automata design.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct KnnDesign {
    /// Feature-vector dimensionality `d`.
    pub dims: usize,
    /// Maximum activation fan-in of a collector-tree node. The paper implements the
    /// collector "as a reduction tree of `*` states to limit the maximum state fan
    /// in and improve routability".
    pub collector_fan_in: usize,
    /// The symbol alphabet.
    pub alphabet: SymbolAlphabet,
    /// The AP device the design targets (capacities + clock + reconfiguration).
    pub device: DeviceConfig,
}

impl KnnDesign {
    /// A design for `dims`-dimensional vectors on a Gen-1 device with the default
    /// collector fan-in of 8.
    pub fn new(dims: usize) -> Self {
        Self {
            dims,
            collector_fan_in: 8,
            alphabet: SymbolAlphabet::default(),
            device: DeviceConfig::gen1(),
        }
    }

    /// Overrides the target device.
    pub fn with_device(mut self, device: DeviceConfig) -> Self {
        self.device = device;
        self
    }

    /// Overrides the collector fan-in.
    ///
    /// # Panics
    /// Panics if `fan_in < 2`.
    pub fn with_collector_fan_in(mut self, fan_in: usize) -> Self {
        assert!(fan_in >= 2, "collector fan-in must be at least 2");
        self.collector_fan_in = fan_in;
        self
    }

    /// Depth of the collector reduction tree: the number of STE hops between a match
    /// state and the counter enable port. Every leaf sits at the same depth so that
    /// per-dimension match pulses never collide at the counter (each dimension's
    /// match occurs on a distinct cycle and stays on a distinct cycle through a
    /// uniform-depth tree).
    pub fn collector_depth(&self) -> usize {
        if self.dims <= 1 {
            return 1;
        }
        let mut depth = 0usize;
        let mut width = self.dims;
        while width > 1 {
            width = width.div_ceil(self.collector_fan_in);
            depth += 1;
        }
        depth.max(1)
    }

    /// Number of STEs in the collector reduction tree.
    pub fn collector_nodes(&self) -> usize {
        let mut nodes = 0usize;
        let mut width = self.dims;
        if width <= 1 {
            return 1;
        }
        while width > 1 {
            width = width.div_ceil(self.collector_fan_in);
            nodes += width;
        }
        nodes
    }

    /// STE cost of one vector NFA (Hamming macro + sorting macro), excluding the
    /// counter. Used by the analytical resource models:
    /// guard + d star states + d match states + collector tree + sort chain
    /// (1 + depth states) + EOF state + reporting state.
    pub fn stes_per_vector(&self) -> usize {
        1 + 2 * self.dims + self.collector_nodes() + (1 + self.collector_depth()) + 1 + 1
    }

    /// Counters per vector NFA (one inverted-Hamming-distance counter).
    pub fn counters_per_vector(&self) -> usize {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_alphabet_is_valid_and_distinct() {
        let a = SymbolAlphabet::default();
        a.validate().unwrap();
        assert_eq!(a.data_symbol(false), 0);
        assert_eq!(a.data_symbol(true), 1);
    }

    #[test]
    fn alphabet_validation_catches_collisions() {
        let dup = SymbolAlphabet {
            sof: 0xFF,
            eof: 0xFF,
            filler: 0xFE,
        };
        assert!(dup.validate().is_err());
        let low = SymbolAlphabet {
            sof: 0x01,
            eof: 0xFD,
            filler: 0xFE,
        };
        assert!(low.validate().is_err());
    }

    #[test]
    fn collector_depth_grows_logarithmically() {
        let d8 = KnnDesign::new(8);
        assert_eq!(d8.collector_depth(), 1);
        let d64 = KnnDesign::new(64);
        assert_eq!(d64.collector_depth(), 2);
        let d256 = KnnDesign::new(256);
        assert_eq!(d256.collector_depth(), 3);
        let d1 = KnnDesign::new(1);
        assert_eq!(d1.collector_depth(), 1);
    }

    #[test]
    fn collector_depth_with_wider_fan_in() {
        let d = KnnDesign::new(256).with_collector_fan_in(16);
        assert_eq!(d.collector_depth(), 2);
        let flat = KnnDesign::new(64).with_collector_fan_in(64);
        assert_eq!(flat.collector_depth(), 1);
    }

    #[test]
    fn collector_nodes_counts_every_level() {
        // 64 dims, fan-in 8: level 1 = 8 nodes, level 2 = 1 node.
        let d = KnnDesign::new(64);
        assert_eq!(d.collector_nodes(), 9);
        // 256 dims, fan-in 8: 32 + 4 + 1.
        assert_eq!(KnnDesign::new(256).collector_nodes(), 37);
        assert_eq!(KnnDesign::new(1).collector_nodes(), 1);
    }

    #[test]
    fn ste_cost_is_dominated_by_the_ladder() {
        let d = KnnDesign::new(128);
        let cost = d.stes_per_vector();
        assert!(cost > 2 * 128);
        assert!(cost < 3 * 128);
        assert_eq!(d.counters_per_vector(), 1);
    }

    #[test]
    #[should_panic(expected = "fan-in must be at least 2")]
    fn tiny_fan_in_panics() {
        let _ = KnnDesign::new(8).with_collector_fan_in(1);
    }
}
