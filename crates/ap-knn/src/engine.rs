//! The end-to-end AP kNN engine: partitioning, (re)configuration, execution, and
//! host-side merging of partial results.
//!
//! For datasets larger than one board configuration, the engine follows §III-C of
//! the paper: the dataset is split into per-board partitions (precompiled board
//! images); queries are streamed through the currently loaded partition; a partial
//! reconfiguration loads the next partition; and the host keeps per-query top-k
//! accumulators across reconfigurations.
//!
//! Two execution modes are provided:
//!
//! * [`ExecutionMode::CycleAccurate`] — every partition network is built and driven
//!   through the cycle-accurate simulator in `ap-sim`. This is the mode used by the
//!   correctness tests and the small-dataset experiments.
//! * [`ExecutionMode::Behavioral`] — results are produced by the same temporal-sort
//!   arithmetic without instantiating the (very large) networks, and the timing /
//!   report accounting is identical. This is the mode used for the 2^20-vector
//!   experiments, mirroring how the paper itself estimates large-dataset run time
//!   from per-board simulations.
//!
//! Run-time accounting supports both the paper's throughput model (`d` cycles per
//! query per configuration — the figure that reproduces Tables III/IV) and the
//! unpipelined model (the full `2d + D + 3` window per query).

use crate::capacity::BoardCapacity;
use crate::design::KnnDesign;
use crate::plan::{AutoPlanner, ExecutionPlanner};
use crate::prepared::PreparedEngine;
use crate::stream::StreamLayout;
use ap_sim::reconfig::ExecutionEstimate;
use ap_sim::TimingModel;
use binvec::{BinaryDataset, BinaryVector, Neighbor, QueryOptions, SearchError};
use serde::{Deserialize, Serialize};

/// How the engine produces results.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExecutionMode {
    /// Build and simulate every partition's automata network cycle by cycle.
    CycleAccurate,
    /// Compute the same results behaviourally (identical accounting, no network).
    Behavioral,
}

/// How per-query run time is charged.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ThroughputModel {
    /// The paper's model: `d` symbol cycles per query per configuration (the sort
    /// phase of one query is overlapped with the compute phase of the next).
    PaperPipelined,
    /// Full window length (`2d + D + 3` cycles) per query per configuration.
    Unpipelined,
}

/// Accounting from one engine run.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ApRunStats {
    /// Board configurations used (dataset partitions).
    pub board_configurations: usize,
    /// Partial reconfigurations performed (configurations − 1; the first image is
    /// loaded before the batch starts).
    pub reconfigurations: u64,
    /// Symbols streamed through the fabric (full windows, regardless of the
    /// throughput model used for run-time estimation).
    pub symbols_streamed: u64,
    /// Symbol cycles charged by the selected throughput model.
    pub charged_cycles: u64,
    /// Report events generated.
    pub reports: u64,
    /// Report traffic in bits (32 bits of id + offset bookkeeping per report, per
    /// the paper's §VI-C accounting).
    pub report_bits: u64,
    /// Lane word width when the bit-parallel lane core executed this run
    /// ([`ap_sim::lanes::MAX_LANES`]), or 0 for the scalar and behavioural
    /// paths.
    pub lane_width: usize,
    /// Fraction of lane slots that carried a live query:
    /// `queries / (passes × lane_width)`. 0.0 when the lane core did not run.
    pub lane_fill: f64,
    /// Wall-clock estimate (streaming + reconfiguration).
    pub estimate: ExecutionEstimate,
}

impl ApRunStats {
    /// Total estimated seconds.
    pub fn total_seconds(&self) -> f64 {
        self.estimate.total_s()
    }
}

/// Smallest cycle-accurate batch routed through the bit-parallel lane core.
/// Even two queries already halve the streamed cycles (one shared window
/// instead of two), so the default threshold is the smallest batch where
/// lanes can win; single queries stay on the scalar core, which has no
/// per-cycle group/class bookkeeping.
pub const DEFAULT_LANE_THRESHOLD: usize = 2;

/// The AP kNN engine.
#[derive(Clone, Debug)]
pub struct ApKnnEngine {
    design: KnnDesign,
    capacity: BoardCapacity,
    planner: ExecutionPlanner,
    throughput: ThroughputModel,
    parallelism: usize,
    strict_analysis: bool,
    lane_threshold: usize,
}

impl ApKnnEngine {
    /// Creates an engine with paper-calibrated board capacity, cycle-accurate
    /// execution, the paper's throughput model, and one simulation worker per
    /// available hardware thread.
    pub fn new(design: KnnDesign) -> Self {
        let capacity = BoardCapacity::paper_calibrated(design.dims);
        Self {
            design,
            capacity,
            planner: ExecutionPlanner::Fixed(ExecutionMode::CycleAccurate),
            throughput: ThroughputModel::PaperPipelined,
            parallelism: std::thread::available_parallelism().map_or(1, |p| p.get()),
            strict_analysis: false,
            lane_threshold: DEFAULT_LANE_THRESHOLD,
        }
    }

    /// Overrides the smallest cycle-accurate batch that runs on the
    /// bit-parallel lane core (64 queries per pass) instead of the scalar
    /// window-per-query core. Results and all non-lane statistics are
    /// bit-identical either way; `usize::MAX` disables the lane path.
    ///
    /// # Panics
    /// Panics if `threshold` is zero (a zero-query batch streams nothing).
    pub fn with_lane_threshold(mut self, threshold: usize) -> Self {
        assert!(threshold > 0, "lane threshold must be at least 1");
        self.lane_threshold = threshold;
        self
    }

    /// The smallest cycle-accurate batch routed through the lane core.
    pub fn lane_threshold(&self) -> usize {
        self.lane_threshold
    }

    /// Enables (or disables) strict static analysis: every compiled board
    /// image — including the delta segments a live engine compiles
    /// incrementally — is cross-checked against its source network by the
    /// `ap-analyze` translation validator before it is used. A mis-translated
    /// image surfaces as [`SearchError::Backend`] at compile time instead of
    /// silently corrupted neighbors. Costs one extra structural pass per
    /// compile; streaming cost is unchanged.
    pub fn with_strict_analysis(mut self, strict: bool) -> Self {
        self.strict_analysis = strict;
        self
    }

    /// Whether strict static analysis of compiled board images is enabled.
    pub fn strict_analysis(&self) -> bool {
        self.strict_analysis
    }

    /// Overrides the board capacity model.
    pub fn with_capacity(mut self, capacity: BoardCapacity) -> Self {
        self.capacity = capacity;
        self
    }

    /// Pins the execution mode: every run with
    /// [`binvec::ExecutionPreference::Auto`] uses `mode`.
    pub fn with_mode(mut self, mode: ExecutionMode) -> Self {
        self.planner = ExecutionPlanner::Fixed(mode);
        self
    }

    /// Lets the engine pick behavioural vs cycle-accurate per run from fabric
    /// size × stream length, using the measured-crossover [`AutoPlanner`].
    /// Results and statistics are bit-identical either way; only the wall
    /// clock changes.
    pub fn with_auto_execution(self) -> Self {
        self.with_planner(ExecutionPlanner::Auto(AutoPlanner::measured()))
    }

    /// Overrides how [`binvec::ExecutionPreference::Auto`] resolves.
    pub fn with_planner(mut self, planner: ExecutionPlanner) -> Self {
        self.planner = planner;
        self
    }

    /// How this engine resolves [`binvec::ExecutionPreference::Auto`].
    pub fn planner(&self) -> &ExecutionPlanner {
        &self.planner
    }

    /// Overrides the throughput model.
    pub fn with_throughput(mut self, throughput: ThroughputModel) -> Self {
        self.throughput = throughput;
        self
    }

    /// Overrides the number of worker threads used to simulate cycle-accurate
    /// partitions in parallel. Partitions are independent board images, so the
    /// results (and all run statistics) are identical to a serial run; only the
    /// wall-clock time changes.
    ///
    /// # Panics
    /// Panics if `workers` is zero.
    pub fn with_parallelism(mut self, workers: usize) -> Self {
        assert!(workers > 0, "engine needs at least one worker");
        self.parallelism = workers;
        self
    }

    /// The configured number of cycle-accurate simulation workers.
    pub fn parallelism(&self) -> usize {
        self.parallelism
    }

    /// The design this engine drives.
    pub fn design(&self) -> &KnnDesign {
        &self.design
    }

    /// The board capacity in use.
    pub fn capacity(&self) -> &BoardCapacity {
        &self.capacity
    }

    /// Binds this engine configuration to `data`, partitioning it into board
    /// images exactly once. The returned [`PreparedEngine`] caches the
    /// partitioning and (lazily, on the first cycle-accurate batch) the built
    /// and compiled partition networks, so repeated batches pay only for
    /// encoding and streaming — the reuse-across-streams regime a serving
    /// pipeline needs.
    ///
    /// # Errors
    /// [`SearchError::ZeroDims`] for a zero-dimension design and
    /// [`SearchError::DimMismatch`] when the dataset disagrees with it.
    pub fn prepare(&self, data: &BinaryDataset) -> Result<PreparedEngine, SearchError> {
        PreparedEngine::new(self.clone(), data)
    }

    /// Searches `queries` against `data`, returning per-query sorted neighbors and
    /// run statistics.
    ///
    /// This is the fallible uniform entry point: validation failures come back as
    /// typed [`SearchError`]s instead of panics, `options.within` restricts results
    /// to neighbors strictly inside the distance bound (the §VII range-query
    /// scenario), and `options.execution` can override the engine's configured
    /// [`ExecutionMode`] per call ([`binvec::ExecutionPreference::Auto`] resolves
    /// through the engine's [`ExecutionPlanner`]).
    ///
    /// Each call is a *transient preparation*: the dataset is re-partitioned and
    /// every board image rebuilt. Callers issuing repeated batches against the
    /// same dataset should [`Self::prepare`] once and search the
    /// [`PreparedEngine`] instead.
    ///
    /// # Errors
    /// * [`SearchError::ZeroDims`] — the design has no dimensions;
    /// * [`SearchError::DimMismatch`] — dataset or query dims differ from the design;
    /// * [`SearchError::ZeroK`] / [`SearchError::ZeroDistanceBound`] — invalid options;
    /// * [`SearchError::CapacityExceeded`] — the encoded batch would overflow the
    ///   32-bit report-offset space of one streamed window sequence;
    /// * [`SearchError::Backend`] — a partition network failed simulator validation.
    pub fn try_search_batch(
        &self,
        data: &BinaryDataset,
        queries: &[BinaryVector],
        options: &QueryOptions,
    ) -> Result<(Vec<Vec<Neighbor>>, ApRunStats), SearchError> {
        self.prepare(data)?.try_search_batch(queries, options)
    }

    /// Produces run statistics without executing a search (used by the large-dataset
    /// table regeneration, where only the accounting is needed).
    pub fn estimate_run(&self, n_vectors: usize, queries: usize) -> ApRunStats {
        let layout = StreamLayout::for_design(&self.design);
        let configs = self.capacity.configurations_for(n_vectors);
        // Every encoded vector reports once per query.
        let reports = n_vectors as u64 * queries as u64;
        self.accounting(n_vectors, queries, configs, reports, &layout)
    }

    pub(crate) fn accounting(
        &self,
        n_vectors: usize,
        queries: usize,
        configs: usize,
        reports: u64,
        layout: &StreamLayout,
    ) -> ApRunStats {
        let symbols_streamed = layout.stream_len(queries) * configs as u64;
        let charged_cycles = match self.throughput {
            ThroughputModel::PaperPipelined => {
                self.design.dims as u64 * queries as u64 * configs as u64
            }
            ThroughputModel::Unpipelined => symbols_streamed,
        };
        let reconfigurations = configs.saturating_sub(1) as u64;
        let timing = TimingModel::new(self.design.device);
        let estimate = timing.estimate(charged_cycles, reconfigurations);
        // §VI-C: 32 bits per encoded vector plus 32 bits per dimension of offset
        // bookkeeping, per query, per configuration.
        let vectors_per_config = self.capacity.vectors_per_board.min(n_vectors.max(1)) as u64;
        let report_bits =
            32 * (vectors_per_config + self.design.dims as u64) * queries as u64 * configs as u64;
        ApRunStats {
            board_configurations: configs,
            reconfigurations,
            symbols_streamed,
            charged_cycles,
            reports,
            report_bits,
            // The accounting model is execution-core-agnostic; the prepared
            // engine overwrites the lane gauges when the lane core ran.
            lane_width: 0,
            lane_fill: 0.0,
            estimate,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ap_sim::DeviceConfig;
    use baselines::{LinearScan, SearchIndex};
    use binvec::generate::{uniform_dataset, uniform_queries};
    use binvec::ExecutionPreference;

    fn exact_results(
        data: &BinaryDataset,
        queries: &[BinaryVector],
        k: usize,
    ) -> Vec<Vec<Neighbor>> {
        LinearScan::new(data.clone()).search_batch(queries, k)
    }

    #[test]
    fn cycle_accurate_engine_matches_linear_scan_single_partition() {
        let dims = 16;
        let data = uniform_dataset(40, dims, 1);
        let queries = uniform_queries(5, dims, 2);
        let engine = ApKnnEngine::new(KnnDesign::new(dims));
        let (results, stats) = engine
            .try_search_batch(&data, &queries, &QueryOptions::top(3))
            .unwrap();
        assert_eq!(results, exact_results(&data, &queries, 3));
        assert_eq!(stats.board_configurations, 1);
        assert_eq!(stats.reconfigurations, 0);
        // Every vector reports once per query.
        assert_eq!(stats.reports, 40 * 5);
    }

    #[test]
    fn cycle_accurate_engine_matches_linear_scan_across_reconfigurations() {
        let dims = 12;
        let data = uniform_dataset(50, dims, 3);
        let queries = uniform_queries(4, dims, 4);
        // Force tiny boards so the engine must reconfigure.
        let engine = ApKnnEngine::new(KnnDesign::new(dims)).with_capacity(BoardCapacity {
            vectors_per_board: 8,
            model: crate::capacity::CapacityModel::PaperCalibrated,
        });
        let (results, stats) = engine
            .try_search_batch(&data, &queries, &QueryOptions::top(5))
            .unwrap();
        assert_eq!(results, exact_results(&data, &queries, 5));
        assert_eq!(stats.board_configurations, 7);
        assert_eq!(stats.reconfigurations, 6);
        assert!(stats.estimate.reconfiguration_s > 0.0);
    }

    #[test]
    fn behavioral_mode_matches_cycle_accurate() {
        let dims = 24;
        let data = uniform_dataset(60, dims, 5);
        let queries = uniform_queries(6, dims, 6);
        let design = KnnDesign::new(dims);
        let cap = BoardCapacity {
            vectors_per_board: 25,
            model: crate::capacity::CapacityModel::PaperCalibrated,
        };
        let cycle = ApKnnEngine::new(design)
            .with_capacity(cap)
            .with_mode(ExecutionMode::CycleAccurate);
        let behav = ApKnnEngine::new(design)
            .with_capacity(cap)
            .with_mode(ExecutionMode::Behavioral);
        let (r1, s1) = cycle
            .try_search_batch(&data, &queries, &QueryOptions::top(4))
            .unwrap();
        let (r2, s2) = behav
            .try_search_batch(&data, &queries, &QueryOptions::top(4))
            .unwrap();
        assert_eq!(r1, r2);
        assert_eq!(s1.symbols_streamed, s2.symbols_streamed);
        assert_eq!(s1.reports, s2.reports);
        assert_eq!(s1.board_configurations, s2.board_configurations);
    }

    #[test]
    fn parallel_partition_execution_matches_serial() {
        // Cycle-accurate partitions are independent board images; any worker count
        // must produce identical neighbors and identical run statistics.
        let dims = 12;
        let data = uniform_dataset(45, dims, 31);
        let queries = uniform_queries(4, dims, 32);
        let cap = BoardCapacity {
            vectors_per_board: 6,
            model: crate::capacity::CapacityModel::PaperCalibrated,
        };
        let serial = ApKnnEngine::new(KnnDesign::new(dims))
            .with_capacity(cap)
            .with_parallelism(1);
        let (expected, expected_stats) = serial
            .try_search_batch(&data, &queries, &QueryOptions::top(5))
            .unwrap();
        assert_eq!(expected_stats.board_configurations, 8);
        for workers in [2usize, 3, 16] {
            let parallel = ApKnnEngine::new(KnnDesign::new(dims))
                .with_capacity(cap)
                .with_parallelism(workers);
            assert_eq!(parallel.parallelism(), workers);
            let (results, stats) = parallel
                .try_search_batch(&data, &queries, &QueryOptions::top(5))
                .unwrap();
            assert_eq!(results, expected, "workers = {workers}");
            assert_eq!(stats, expected_stats, "workers = {workers}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_parallelism_panics() {
        let _ = ApKnnEngine::new(KnnDesign::new(8)).with_parallelism(0);
    }

    #[test]
    fn paper_throughput_model_reproduces_table3_small_dataset_times() {
        // Table III: AP Gen 1, 4096 queries — WordEmbed (d=64, n=1024): 1.97 ms;
        // SIFT (d=128, n=1024): 3.94 ms; TagSpace (d=256, n=512): 7.88 ms.
        for (dims, n, expected_ms) in [
            (64usize, 1024usize, 1.97f64),
            (128, 1024, 3.94),
            (256, 512, 7.88),
        ] {
            let engine =
                ApKnnEngine::new(KnnDesign::new(dims)).with_mode(ExecutionMode::Behavioral);
            let stats = engine.estimate_run(n, 4096);
            let ms = stats.total_seconds() * 1e3;
            let err = (ms - expected_ms).abs() / expected_ms;
            assert!(
                err < 0.02,
                "dims {dims}: estimated {ms:.3} ms, paper {expected_ms} ms"
            );
            assert_eq!(stats.reconfigurations, 0);
        }
    }

    #[test]
    fn gen1_large_dataset_is_reconfiguration_bound() {
        let design = KnnDesign::new(64);
        let engine = ApKnnEngine::new(design).with_mode(ExecutionMode::Behavioral);
        let stats = engine.estimate_run(1 << 20, 4096);
        assert_eq!(stats.board_configurations, 1024);
        // Table IV: AP Gen 1 WordEmbed ≈ 48.1 s, dominated by reconfiguration.
        let total = stats.total_seconds();
        assert!((40.0..60.0).contains(&total), "total {total}");
        assert!(stats.estimate.reconfiguration_fraction() > 0.85);

        // Gen 2 cuts the total by roughly the 19.4x the paper reports.
        let gen2 = ApKnnEngine::new(design.with_device(DeviceConfig::gen2()))
            .with_mode(ExecutionMode::Behavioral);
        let stats2 = gen2.estimate_run(1 << 20, 4096);
        let speedup = total / stats2.total_seconds();
        assert!(
            (10.0..30.0).contains(&speedup),
            "Gen1/Gen2 speedup {speedup}"
        );
    }

    #[test]
    fn unpipelined_model_charges_more_cycles() {
        let design = KnnDesign::new(64);
        let pipelined = ApKnnEngine::new(design).with_mode(ExecutionMode::Behavioral);
        let unpipelined = ApKnnEngine::new(design)
            .with_mode(ExecutionMode::Behavioral)
            .with_throughput(ThroughputModel::Unpipelined);
        let a = pipelined.estimate_run(1024, 100);
        let b = unpipelined.estimate_run(1024, 100);
        assert!(b.charged_cycles > a.charged_cycles);
        assert_eq!(a.symbols_streamed, b.symbols_streamed);
        assert!(b.total_seconds() > a.total_seconds());
    }

    #[test]
    fn report_bits_match_bandwidth_model() {
        let engine = ApKnnEngine::new(KnnDesign::new(64)).with_mode(ExecutionMode::Behavioral);
        let stats = engine.estimate_run(1024, 1);
        assert_eq!(stats.report_bits, 32 * (1024 + 64));
    }

    #[test]
    fn distance_bound_returns_exactly_the_in_range_neighbors() {
        // Cycle-accurate run: the bound must select exactly the vectors whose
        // Hamming distance is strictly below it, in sorted order.
        let dims = 12;
        let data = uniform_dataset(36, dims, 21);
        let queries = uniform_queries(4, dims, 22);
        let engine = ApKnnEngine::new(KnnDesign::new(dims));
        let bound = 5u32;
        // k chosen larger than any within-bound set so the bound is the only cap.
        let options = QueryOptions::top(data.len()).within(bound);
        let (results, _) = engine.try_search_batch(&data, &queries, &options).unwrap();
        for (q, got) in queries.iter().zip(&results) {
            let mut expected: Vec<Neighbor> = (0..data.len())
                .map(|i| Neighbor::new(i, data.hamming_to(i, q)))
                .filter(|n| n.distance < bound)
                .collect();
            expected.sort_unstable();
            assert_eq!(got, &expected);
        }
    }

    #[test]
    fn execution_preference_overrides_the_configured_mode() {
        let dims = 16;
        let data = uniform_dataset(30, dims, 23);
        let queries = uniform_queries(3, dims, 24);
        let behavioral =
            ApKnnEngine::new(KnnDesign::new(dims)).with_mode(ExecutionMode::Behavioral);
        let forced = QueryOptions::top(3).execution(ExecutionPreference::CycleAccurate);
        let (r1, _) = behavioral
            .try_search_batch(&data, &queries, &forced)
            .unwrap();
        assert_eq!(r1, exact_results(&data, &queries, 3));
        let auto = QueryOptions::top(3);
        let (r2, _) = behavioral.try_search_batch(&data, &queries, &auto).unwrap();
        assert_eq!(r1, r2);
    }

    #[test]
    fn typed_errors_replace_the_assert_paths() {
        let data = uniform_dataset(4, 8, 0);
        let queries = uniform_queries(1, 8, 1);
        let engine = ApKnnEngine::new(KnnDesign::new(8));
        assert_eq!(
            engine
                .try_search_batch(&data, &queries, &QueryOptions::top(0))
                .unwrap_err(),
            SearchError::ZeroK
        );
        assert_eq!(
            engine
                .try_search_batch(&data, &queries, &QueryOptions::top(1).within(0))
                .unwrap_err(),
            SearchError::ZeroDistanceBound
        );
        let wide = uniform_dataset(4, 16, 0);
        assert_eq!(
            engine
                .try_search_batch(&wide, &queries, &QueryOptions::top(1))
                .unwrap_err(),
            SearchError::DimMismatch {
                expected: 8,
                actual: 16
            }
        );
        let narrow_queries = uniform_queries(1, 4, 1);
        assert_eq!(
            engine
                .try_search_batch(&data, &narrow_queries, &QueryOptions::top(1))
                .unwrap_err(),
            SearchError::DimMismatch {
                expected: 8,
                actual: 4
            }
        );
    }

    #[test]
    fn auto_planned_engine_matches_fixed_modes() {
        // Whatever core the planner picks, neighbors and statistics must be
        // bit-identical to both pinned modes.
        let dims = 16;
        let data = uniform_dataset(50, dims, 27);
        let queries = uniform_queries(4, dims, 28);
        let design = KnnDesign::new(dims);
        let options = QueryOptions::top(4);
        let fixed = ApKnnEngine::new(design)
            .try_search_batch(&data, &queries, &options)
            .unwrap();
        let auto = ApKnnEngine::new(design).with_auto_execution();
        assert!(matches!(auto.planner(), ExecutionPlanner::Auto(_)));
        assert_eq!(
            auto.try_search_batch(&data, &queries, &options).unwrap(),
            fixed
        );
        // A strict budget forces the behavioural fallback; neighbors still
        // match, and the stats are exactly the pinned-behavioural stats (the
        // lane gauges legitimately differ from the cycle-accurate run's).
        let strict = ApKnnEngine::new(design).with_planner(ExecutionPlanner::Auto(
            AutoPlanner::measured().with_budget_s(1e-9),
        ));
        let behavioral = ApKnnEngine::new(design)
            .with_mode(ExecutionMode::Behavioral)
            .try_search_batch(&data, &queries, &options)
            .unwrap();
        assert_eq!(
            strict.try_search_batch(&data, &queries, &options).unwrap(),
            behavioral
        );
        assert_eq!(behavioral.0, fixed.0);
    }

    #[test]
    fn lane_threshold_routes_batches_and_surfaces_in_stats() {
        let dims = 12;
        let data = uniform_dataset(30, dims, 41);
        let queries = uniform_queries(5, dims, 42);
        let options = QueryOptions::top(4);
        let design = KnnDesign::new(dims);
        // Default threshold: a 5-query batch runs on the lane core.
        let laned = ApKnnEngine::new(design);
        assert_eq!(laned.lane_threshold(), DEFAULT_LANE_THRESHOLD);
        let (lane_results, lane_stats) = laned.try_search_batch(&data, &queries, &options).unwrap();
        assert_eq!(lane_stats.lane_width, ap_sim::MAX_LANES);
        assert!((lane_stats.lane_fill - 5.0 / 64.0).abs() < 1e-12);
        // Threshold usize::MAX: the same batch runs scalar; neighbors and all
        // non-lane statistics are bit-identical.
        let scalar = ApKnnEngine::new(design).with_lane_threshold(usize::MAX);
        let (scalar_results, scalar_stats) =
            scalar.try_search_batch(&data, &queries, &options).unwrap();
        assert_eq!(scalar_stats.lane_width, 0);
        assert_eq!(scalar_stats.lane_fill, 0.0);
        assert_eq!(lane_results, scalar_results);
        let normalized = ApRunStats {
            lane_width: 0,
            lane_fill: 0.0,
            ..lane_stats
        };
        assert_eq!(normalized, scalar_stats);
        // Single queries stay scalar even at the default threshold.
        let (_, single) = laned
            .try_search_batch(&data, &queries[..1], &options)
            .unwrap();
        assert_eq!(single.lane_width, 0);
    }

    #[test]
    fn zero_k_is_a_typed_error_not_a_panic() {
        // Formerly a #[should_panic] test against the deprecated panicking
        // `search_batch` wrapper (removed in this revision): the same bad
        // input now comes back as a typed error from the one entry point.
        let data = uniform_dataset(4, 8, 0);
        let queries = uniform_queries(1, 8, 1);
        assert_eq!(
            ApKnnEngine::new(KnnDesign::new(8))
                .try_search_batch(&data, &queries, &QueryOptions::top(0))
                .unwrap_err(),
            SearchError::ZeroK
        );
    }

    #[test]
    fn dims_mismatch_is_a_typed_error_not_a_panic() {
        // Formerly a #[should_panic] test against the deprecated panicking
        // `search_batch` wrapper (removed in this revision).
        let data = uniform_dataset(4, 16, 0);
        let queries = uniform_queries(1, 8, 1);
        assert_eq!(
            ApKnnEngine::new(KnnDesign::new(8))
                .try_search_batch(&data, &queries, &QueryOptions::top(1))
                .unwrap_err(),
            SearchError::DimMismatch {
                expected: 8,
                actual: 16
            }
        );
    }
}
