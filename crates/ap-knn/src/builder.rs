//! Composition of per-vector macros into a board-level automata network.
//!
//! One AP board configuration holds one [`PartitionNetwork`]: every vector of a
//! dataset partition gets its own Hamming + sorting macro, all driven by the same
//! symbol stream. Report codes are the vector's *local* index within the partition;
//! the engine adds the partition's base index to recover global dataset ids.

use crate::design::KnnDesign;
use crate::macros::{append_vector_macro, VectorMacroHandles};
use crate::stream::StreamLayout;
use ap_sim::{ApResult, AutomataNetwork, PlacementReport, Placer, Simulator};
use binvec::dataset::DatasetPartition;
use binvec::BinaryDataset;

/// A compiled board configuration: the automata network encoding one dataset
/// partition plus everything needed to interpret its reports.
#[derive(Clone, Debug)]
pub struct PartitionNetwork {
    /// The automata network for this board configuration.
    pub network: AutomataNetwork,
    /// The symbol-stream layout shared by every macro in the network.
    pub layout: StreamLayout,
    /// Global dataset index of local vector 0.
    pub base_index: usize,
    /// Number of vectors encoded.
    pub vectors: usize,
    /// Per-vector element handles (index = local vector index = report code).
    pub handles: Vec<VectorMacroHandles>,
}

impl PartitionNetwork {
    /// Builds the network for a dataset partition.
    pub fn build(partition: &DatasetPartition, design: &KnnDesign) -> Self {
        Self::build_from_dataset(&partition.data, partition.base_index, design)
    }

    /// Builds the network for a whole (small) dataset with base index 0.
    pub fn build_from_dataset(data: &BinaryDataset, base_index: usize, design: &KnnDesign) -> Self {
        assert_eq!(
            data.dims(),
            design.dims,
            "dataset dims must match design dims"
        );
        let mut network = AutomataNetwork::new();
        let mut handles = Vec::with_capacity(data.len());
        for local in 0..data.len() {
            let v = data.vector(local);
            handles.push(append_vector_macro(&mut network, &v, local as u32, design));
        }
        Self {
            network,
            layout: StreamLayout::for_design(design),
            base_index,
            vectors: data.len(),
            handles,
        }
    }

    /// Maps a report code (local vector index) to the global dataset index.
    #[inline]
    pub fn global_index(&self, report_code: u32) -> usize {
        self.base_index + report_code as usize
    }

    /// Compiles the network into a ready-to-run cycle-accurate simulator (the
    /// sparse-frontier compiled core). The compilation cost is paid once per board
    /// configuration; the returned simulator is then streamed one or more query
    /// batches via [`Simulator::run_into`].
    pub fn simulator(&self) -> ApResult<Simulator<'_>> {
        Simulator::new(&self.network)
    }

    /// Places the network on the design's device and returns the utilization report.
    pub fn placement(&self, design: &KnnDesign) -> ApResult<PlacementReport> {
        Placer::new(design.device).place(&self.network)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use binvec::generate::uniform_dataset;

    #[test]
    fn network_scales_linearly_with_vectors() {
        let design = KnnDesign::new(16);
        let data = uniform_dataset(10, 16, 1);
        let pn = PartitionNetwork::build_from_dataset(&data, 0, &design);
        assert_eq!(pn.vectors, 10);
        assert_eq!(pn.handles.len(), 10);
        let stats = pn.network.stats();
        assert_eq!(stats.stes, 10 * design.stes_per_vector());
        assert_eq!(stats.counters, 10);
        assert_eq!(stats.reporting, 10);
        assert_eq!(stats.components, 10);
        pn.network.validate().unwrap();
    }

    #[test]
    fn report_codes_are_local_indices() {
        let design = KnnDesign::new(8);
        let data = uniform_dataset(5, 8, 2);
        let parts = data.partition(2);
        let pn = PartitionNetwork::build(&parts[1], &design);
        assert_eq!(pn.base_index, 2);
        assert_eq!(pn.global_index(0), 2);
        assert_eq!(pn.global_index(1), 3);
        let codes = pn.network.report_codes();
        assert!(codes.contains(&0) && codes.contains(&1));
        assert!(!codes.contains(&2));
    }

    #[test]
    fn placement_of_small_partition_fits_easily() {
        let design = KnnDesign::new(32);
        let data = uniform_dataset(20, 32, 3);
        let pn = PartitionNetwork::build_from_dataset(&data, 0, &design);
        let report = pn.placement(&design).unwrap();
        assert!(report.fits());
        assert_eq!(report.components, 20);
        assert!(report.block_utilization < 0.05);
    }

    #[test]
    #[should_panic(expected = "dims must match")]
    fn mismatched_dims_panics() {
        let design = KnnDesign::new(16);
        let data = uniform_dataset(4, 8, 4);
        let _ = PartitionNetwork::build_from_dataset(&data, 0, &design);
    }

    #[test]
    fn partition_network_round_trips_through_anml() {
        // A complete board network (several macros) survives ANML export/import with
        // identical structure and identical simulated reports.
        use crate::stream::StreamLayout;
        use ap_sim::{anml, Simulator};

        let design = KnnDesign::new(12);
        let data = uniform_dataset(6, 12, 9);
        let pn = PartitionNetwork::build_from_dataset(&data, 0, &design);
        let xml = anml::to_anml(&pn.network, "knn-partition");
        let parsed = anml::from_anml(&xml).unwrap();
        assert_eq!(parsed.stats(), pn.network.stats());

        let layout = StreamLayout::for_design(&design);
        let queries = binvec::generate::uniform_queries(3, 12, 10);
        let stream = layout.encode_batch(&queries);
        let mut original = Simulator::new(&pn.network).unwrap();
        let mut reparsed = Simulator::new(&parsed).unwrap();
        assert_eq!(original.run(&stream), reparsed.run(&stream));
    }

    #[test]
    fn paper_scale_partition_fits_on_one_board() {
        // The paper-calibrated SIFT configuration (1024 vectors x 128 dims) must fit
        // a single board according to the analytical placement path.
        use crate::capacity::BoardCapacity;
        use ap_sim::{ComponentDemand, Placer};

        let design = KnnDesign::new(128);
        let capacity = BoardCapacity::paper_calibrated(128);
        let demand = ComponentDemand {
            stes: design.stes_per_vector(),
            counters: design.counters_per_vector(),
            booleans: 0,
            reporting: 1,
        };
        let placer = Placer::new(design.device);
        let report = placer
            .estimate_from_demands(&vec![demand; capacity.vectors_per_board])
            .unwrap();
        assert!(report.fits());
        assert_eq!(report.components, 1024);
    }
}
