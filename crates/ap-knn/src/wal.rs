//! Durability for live corpora: an append-only write-ahead log, checkpoint
//! images, and crash recovery.
//!
//! The live-corpus subsystem ([`crate::live`]) keeps every mutation in
//! memory; this module gives it an **acked-means-durable** contract. Each
//! mutation is encoded as a length-prefixed, CRC-checksummed [`WalRecord`]
//! and appended to `wal.log` *before* its ack is released; fsyncs are
//! batched by a group-commit protocol ([`Wal::sync_through`]) so concurrent
//! writers share one `fsync` instead of paying one each. A checkpoint
//! ([`Wal::checkpoint`]) serializes the folded corpus — the same stable-id
//! watermark discipline compaction uses — into `checkpoint-<seq>.ckpt` and
//! rotates the log, bounding replay work. Recovery ([`recover`]) loads the
//! checkpoint the log header names, replays the tail, and truncates a torn
//! final record, keeping the longest valid prefix.
//!
//! On-disk layout (all integers little-endian, mirroring `binvec::wire`):
//!
//! ```text
//! wal.log              "APWL" · version: u32 · checkpoint seq: u64
//!                      then records: len: u32 · crc32(payload): u32 · payload
//! checkpoint-<s>.ckpt  "APCK" · version: u32 · crc32(payload): u32 · payload
//!                      payload: seq · generation · next_id · dims · count
//!                               then count × (id: u64 · vector)
//! ```
//!
//! Crash-safety of the checkpoint rotation: the new checkpoint is written to
//! a temp file, fsynced, renamed into place, and the directory fsynced —
//! only then is the rotated log (whose header names the new checkpoint)
//! renamed over `wal.log` the same way. A crash between the two steps leaves
//! an orphan checkpoint and a log that still names the old one; recovery
//! follows the log header, so the orphan is simply ignored.
//!
//! Testing is first-class: every byte travels through the [`WalIo`] trait,
//! and a [`FaultPlan`] wraps the real file in a shim that short-writes or
//! fails at the Nth IO operation and poisons everything after — a
//! deterministic stand-in for `kill -9` that lets tests crash the log at
//! every reachable point (see `tests/wal_recovery.rs`).

use binvec::wire::{put_u32, put_u64, WireReader};
use binvec::{BinaryVector, Mutation, SearchError};
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Magic bytes opening `wal.log`.
pub const WAL_MAGIC: [u8; 4] = *b"APWL";
/// Magic bytes opening a checkpoint image.
pub const CHECKPOINT_MAGIC: [u8; 4] = *b"APCK";
/// On-disk format version of both the log and the checkpoint image.
pub const WAL_VERSION: u32 = 1;
/// Bytes of the `wal.log` header (magic · version · checkpoint seq).
pub const WAL_HEADER_LEN: usize = 16;
/// Hard cap on one record's payload length. Large enough for any vector the
/// wire layer admits, small enough that a corrupt length prefix cannot size
/// an attacker-controlled allocation.
pub const MAX_RECORD_LEN: usize = 16 << 20;

const LOG_NAME: &str = "wal.log";

/// A table-driven CRC-32 (IEEE 802.3 polynomial, reflected), checksumming
/// every record payload and checkpoint image. Hand-rolled because the
/// workspace is offline by design — no external crates.
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = build_crc_table();
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Typed failure of a WAL operation. Corruption is always a typed error —
/// never a panic — so hostile or torn on-disk bytes cannot take a server down
/// (mirrors the `binvec::wire` contract for network bytes).
#[derive(Debug)]
pub enum WalError {
    /// An underlying filesystem operation failed.
    Io(io::Error),
    /// On-disk bytes failed validation at `offset` within the named file.
    Corrupt {
        /// Byte offset of the first invalid data.
        offset: u64,
        /// What failed to validate.
        what: &'static str,
    },
    /// The log was poisoned by an earlier IO failure (real or injected by a
    /// [`FaultPlan`]); no further appends or syncs are possible.
    Crashed,
    /// A required file was absent (no corpus to restore).
    Missing {
        /// Path of the missing file.
        path: PathBuf,
    },
    /// Refused to create a fresh durable corpus over an existing one.
    Exists {
        /// Path of the pre-existing log.
        path: PathBuf,
    },
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "wal io error: {e}"),
            Self::Corrupt { offset, what } => {
                write!(f, "corrupt wal data at byte {offset}: {what}")
            }
            Self::Crashed => write!(f, "wal poisoned by an earlier io failure"),
            Self::Missing { path } => write!(f, "missing wal file: {}", path.display()),
            Self::Exists { path } => {
                write!(
                    f,
                    "refusing to overwrite existing wal at {} (use restore)",
                    path.display()
                )
            }
        }
    }
}

impl std::error::Error for WalError {}

impl From<io::Error> for WalError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<WalError> for SearchError {
    fn from(e: WalError) -> Self {
        SearchError::Backend {
            backend: "wal".to_string(),
            reason: e.to_string(),
        }
    }
}

/// One durable log record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WalRecord {
    /// A vector inserted with stable id `id`.
    Insert {
        /// The stable id the engine assigned.
        id: u64,
        /// The inserted vector.
        vector: BinaryVector,
    },
    /// The vector with stable id `id` was deleted.
    Delete {
        /// The tombstoned stable id.
        id: u64,
    },
    /// The first record of every rotated log: names the checkpoint the log
    /// continues from, so a log and a checkpoint can never silently mismatch.
    CheckpointMark {
        /// Sequence number of the checkpoint image this log extends.
        seq: u64,
        /// Corpus generation captured by that checkpoint.
        generation: u64,
        /// `next_id` watermark captured by that checkpoint.
        next_id: u64,
    },
}

mod record_tag {
    pub const INSERT: u8 = 0;
    pub const DELETE: u8 = 1;
    pub const CHECKPOINT_MARK: u8 = 2;
}

impl WalRecord {
    /// Encodes the record payload (tag byte plus fields, `binvec::wire`
    /// conventions; the length/CRC framing is added by the log writer).
    pub fn encode_payload(&self, out: &mut Vec<u8>) {
        match self {
            Self::Insert { id, vector } => {
                out.push(record_tag::INSERT);
                put_u64(out, *id);
                vector.encode_wire(out);
            }
            Self::Delete { id } => {
                out.push(record_tag::DELETE);
                put_u64(out, *id);
            }
            Self::CheckpointMark {
                seq,
                generation,
                next_id,
            } => {
                out.push(record_tag::CHECKPOINT_MARK);
                put_u64(out, *seq);
                put_u64(out, *generation);
                put_u64(out, *next_id);
            }
        }
    }

    /// Decodes a payload produced by [`Self::encode_payload`], requiring the
    /// reader to be fully consumed (a valid CRC over a payload with trailing
    /// junk is still refused).
    ///
    /// # Errors
    /// `None`-equivalent typed failure: any truncation, unknown tag, hostile
    /// vector header, or trailing bytes.
    pub fn decode_payload(bytes: &[u8]) -> Option<Self> {
        let mut reader = WireReader::new(bytes);
        let record = match reader.u8().ok()? {
            record_tag::INSERT => Self::Insert {
                id: reader.u64().ok()?,
                vector: BinaryVector::decode_wire(&mut reader).ok()?,
            },
            record_tag::DELETE => Self::Delete {
                id: reader.u64().ok()?,
            },
            record_tag::CHECKPOINT_MARK => Self::CheckpointMark {
                seq: reader.u64().ok()?,
                generation: reader.u64().ok()?,
                next_id: reader.u64().ok()?,
            },
            _ => return None,
        };
        reader.is_empty().then_some(record)
    }

    /// Converts a corpus mutation plus its assigned stable id into the record
    /// the log persists.
    pub fn from_mutation(mutation: &Mutation, id: u64) -> Self {
        match mutation {
            Mutation::Insert { vector } => Self::Insert {
                id,
                vector: vector.clone(),
            },
            Mutation::Delete { id } => Self::Delete { id: *id as u64 },
        }
    }
}

fn encode_record(out: &mut Vec<u8>, record: &WalRecord) {
    let mut payload = Vec::new();
    record.encode_payload(&mut payload);
    put_u32(out, payload.len() as u32);
    put_u32(out, crc32(&payload));
    out.extend_from_slice(&payload);
}

/// Deterministic crash injection: the IO operation index (appends and syncs
/// both count, starting at 0) at which the log's file handle fails, plus how
/// many bytes of a faulting append still reach the disk (a torn write).
/// After the fault fires every subsequent operation fails too — the moral
/// equivalent of `kill -9` at that instant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    /// Zero-based IO operation index at which the fault fires.
    pub crash_at_op: u64,
    /// Bytes of the faulting append that are still written (and synced) before
    /// the failure — models a record torn mid-write. Ignored for sync faults.
    pub torn_bytes: usize,
}

impl FaultPlan {
    /// A clean crash (nothing of the faulting operation survives) at `op`.
    pub fn crash_at(op: u64) -> Self {
        Self {
            crash_at_op: op,
            torn_bytes: 0,
        }
    }

    /// Lets `bytes` of the faulting append reach the disk before failing.
    pub fn with_torn_bytes(mut self, bytes: usize) -> Self {
        self.torn_bytes = bytes;
        self
    }
}

/// Shared fault-injection state, surviving log rotations so the operation
/// count keeps advancing across a checkpoint.
#[derive(Debug, Default)]
struct FaultState {
    ops: AtomicU64,
    crashed: AtomicBool,
}

/// The byte sink a [`Wal`] appends through. Production uses [`FileWalIo`];
/// tests interpose a fault-injecting wrapper via [`WalConfig::fault_plan`].
pub trait WalIo: Send {
    /// Appends `bytes`, returning how many were actually written — a short
    /// count models a torn write and permanently poisons the log.
    ///
    /// # Errors
    /// Any underlying IO failure.
    fn append(&mut self, bytes: &[u8]) -> io::Result<usize>;

    /// Forces everything appended so far to stable storage.
    ///
    /// # Errors
    /// Any underlying IO failure.
    fn sync(&mut self) -> io::Result<()>;
}

/// The real thing: an append-only [`File`] handle.
pub struct FileWalIo {
    file: File,
}

impl FileWalIo {
    /// Opens `path` for appending.
    ///
    /// # Errors
    /// Any [`OpenOptions`] failure.
    pub fn open(path: &Path) -> io::Result<Self> {
        let file = OpenOptions::new().append(true).open(path)?;
        Ok(Self { file })
    }
}

impl WalIo for FileWalIo {
    fn append(&mut self, bytes: &[u8]) -> io::Result<usize> {
        self.file.write_all(bytes)?;
        Ok(bytes.len())
    }

    fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()
    }
}

fn injected_crash() -> io::Error {
    io::Error::other("injected crash (FaultPlan)")
}

struct FaultIo {
    inner: Box<dyn WalIo>,
    plan: FaultPlan,
    state: Arc<FaultState>,
}

impl WalIo for FaultIo {
    fn append(&mut self, bytes: &[u8]) -> io::Result<usize> {
        if self.state.crashed.load(Ordering::Relaxed) {
            return Err(injected_crash());
        }
        let op = self.state.ops.fetch_add(1, Ordering::Relaxed);
        if op == self.plan.crash_at_op {
            self.state.crashed.store(true, Ordering::Relaxed);
            let torn = self.plan.torn_bytes.min(bytes.len());
            if torn > 0 {
                // The torn prefix is written *and synced*: the worst case
                // recovery must cope with is a partial record that made it
                // to the platter.
                let _ = self.inner.append(&bytes[..torn]);
                let _ = self.inner.sync();
            }
            return Err(injected_crash());
        }
        self.inner.append(bytes)
    }

    fn sync(&mut self) -> io::Result<()> {
        if self.state.crashed.load(Ordering::Relaxed) {
            return Err(injected_crash());
        }
        let op = self.state.ops.fetch_add(1, Ordering::Relaxed);
        if op == self.plan.crash_at_op {
            self.state.crashed.store(true, Ordering::Relaxed);
            return Err(injected_crash());
        }
        self.inner.sync()
    }
}

/// Durability knobs of a [`Wal`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WalConfig {
    /// Group-commit batch target: a syncer stops waiting for companions once
    /// this many records are pending. Must be at least 1.
    pub flush_batch: usize,
    /// Maximum extra time a pending record waits for companions before the
    /// group is synced anyway. `Duration::ZERO` (the default) syncs as soon
    /// as the syncer slot is free — groups then form only from the backlog
    /// that piles up behind an in-flight fsync, which keeps single-writer
    /// latency minimal while still batching under load.
    pub flush_interval: Duration,
    /// Auto-checkpoint after this many records since the last checkpoint
    /// (`None` disables; explicit [`Wal::checkpoint`] calls still work).
    pub checkpoint_every: Option<u64>,
    /// Test hook: wrap the log's file handle in a deterministic
    /// crash-injection shim. `None` in production.
    pub fault_plan: Option<FaultPlan>,
}

impl Default for WalConfig {
    fn default() -> Self {
        Self {
            flush_batch: 64,
            flush_interval: Duration::ZERO,
            checkpoint_every: Some(4096),
            fault_plan: None,
        }
    }
}

impl WalConfig {
    /// Sets the group-commit batch target.
    pub fn with_flush_batch(mut self, records: usize) -> Self {
        self.flush_batch = records;
        self
    }

    /// Sets the group-commit wait interval.
    pub fn with_flush_interval(mut self, interval: Duration) -> Self {
        self.flush_interval = interval;
        self
    }

    /// Sets (or disables, with `None`) the auto-checkpoint record threshold.
    pub fn with_checkpoint_every(mut self, records: Option<u64>) -> Self {
        self.checkpoint_every = records;
        self
    }

    /// Installs a deterministic crash-injection plan (tests only).
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Validates the knobs.
    ///
    /// # Errors
    /// [`SearchError::InvalidConfig`] when `flush_batch` is zero.
    pub fn validate(&self) -> Result<(), SearchError> {
        if self.flush_batch == 0 {
            return Err(SearchError::InvalidConfig {
                field: "flush_batch",
                reason: "must be at least 1".to_string(),
            });
        }
        Ok(())
    }
}

/// Monotonic counters and gauges of one [`Wal`]'s lifetime, surfaced through
/// `LiveStatus` and the serving stats frame.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WalGauges {
    /// Records appended (mutations; checkpoint marks are not counted).
    pub records: u64,
    /// Bytes appended (record framing included).
    pub bytes: u64,
    /// `fsync` calls issued by group commit.
    pub fsyncs: u64,
    /// Records covered by those fsyncs (`group_records / fsyncs` = mean
    /// group-commit size).
    pub group_records: u64,
    /// Largest single group commit.
    pub group_max: u64,
    /// Checkpoints written over the log's lifetime (the one it was born from
    /// is not counted).
    pub checkpoints: u64,
    /// Sequence number of the checkpoint the current log extends.
    pub checkpoint_seq: u64,
    /// Mutation records in the current log (replay debt of a crash now).
    pub records_since_checkpoint: u64,
    /// Records replayed by the recovery that produced this log, if any.
    pub replayed: u64,
    /// Bytes of torn tail truncated by that recovery.
    pub truncated_bytes: u64,
}

impl WalGauges {
    /// Mean group-commit size (records per fsync); 0.0 before any fsync.
    pub fn group_mean(&self) -> f64 {
        if self.fsyncs == 0 {
            0.0
        } else {
            self.group_records as f64 / self.fsyncs as f64
        }
    }
}

/// A folded, self-contained image of a live corpus: every live vector with
/// its stable id, in stable-id order, plus the watermarks needed to continue
/// mutating from it. Both what a checkpoint serializes and what [`recover`]
/// returns after replaying the log tail.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CheckpointImage {
    /// Corpus generation at capture (recovery adds one per replayed record).
    pub generation: u64,
    /// The next stable id an insert would be assigned.
    pub next_id: u64,
    /// Dimensionality of every vector.
    pub dims: usize,
    /// `(stable id, vector)` pairs, stable ids strictly ascending.
    pub vectors: Vec<(u64, BinaryVector)>,
}

impl CheckpointImage {
    fn encode_payload(&self, seq: u64, out: &mut Vec<u8>) {
        put_u64(out, seq);
        put_u64(out, self.generation);
        put_u64(out, self.next_id);
        put_u64(out, self.dims as u64);
        put_u64(out, self.vectors.len() as u64);
        for (id, vector) in &self.vectors {
            put_u64(out, *id);
            vector.encode_wire(out);
        }
    }
}

fn checkpoint_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("checkpoint-{seq}.ckpt"))
}

fn sync_dir(dir: &Path) -> io::Result<()> {
    File::open(dir)?.sync_all()
}

/// Writes `bytes` to `path` crash-atomically: temp file, fsync, rename,
/// directory fsync. A crash leaves either the old file or the new one —
/// never a torn mix.
fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = path.with_extension("tmp");
    {
        let mut file = File::create(&tmp)?;
        file.write_all(bytes)?;
        file.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    if let Some(parent) = path.parent() {
        sync_dir(parent)?;
    }
    Ok(())
}

fn write_checkpoint_file(dir: &Path, seq: u64, image: &CheckpointImage) -> io::Result<()> {
    let mut payload = Vec::new();
    image.encode_payload(seq, &mut payload);
    let mut bytes = Vec::with_capacity(12 + payload.len());
    bytes.extend_from_slice(&CHECKPOINT_MAGIC);
    put_u32(&mut bytes, WAL_VERSION);
    put_u32(&mut bytes, crc32(&payload));
    bytes.extend_from_slice(&payload);
    write_atomic(&checkpoint_path(dir, seq), &bytes)
}

/// Reads and fully validates the checkpoint image `seq` in `dir`.
///
/// # Errors
/// [`WalError::Missing`] when absent; [`WalError::Corrupt`] on any magic,
/// version, CRC, structural, or watermark violation — never a panic.
pub fn read_checkpoint(dir: &Path, seq: u64) -> Result<CheckpointImage, WalError> {
    let path = checkpoint_path(dir, seq);
    let bytes = match fs::read(&path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == io::ErrorKind::NotFound => {
            return Err(WalError::Missing { path });
        }
        Err(e) => return Err(e.into()),
    };
    let corrupt = |offset: usize, what: &'static str| WalError::Corrupt {
        offset: offset as u64,
        what,
    };
    if bytes.len() < 12 {
        return Err(corrupt(0, "checkpoint shorter than its header"));
    }
    if bytes[0..4] != CHECKPOINT_MAGIC {
        return Err(corrupt(0, "bad checkpoint magic"));
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
    if version != WAL_VERSION {
        return Err(corrupt(4, "unsupported checkpoint version"));
    }
    let declared_crc = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    let payload = &bytes[12..];
    if crc32(payload) != declared_crc {
        return Err(corrupt(8, "checkpoint checksum mismatch"));
    }
    let mut reader = WireReader::new(payload);
    let field = |what| move |_| corrupt(12, what);
    let file_seq = reader.u64().map_err(field("checkpoint seq"))?;
    if file_seq != seq {
        return Err(corrupt(12, "checkpoint seq does not match its filename"));
    }
    let generation = reader.u64().map_err(field("checkpoint generation"))?;
    let next_id = reader.u64().map_err(field("checkpoint next_id"))?;
    let dims = reader.u64().map_err(field("checkpoint dims"))? as usize;
    let count = reader.u64().map_err(field("checkpoint count"))? as usize;
    // Each entry is at least id (8) + vector dims header (4): a hostile
    // count cannot size an allocation bigger than the file itself.
    if count > reader.remaining() / 12 {
        return Err(corrupt(12, "checkpoint count exceeds file size"));
    }
    let mut vectors = Vec::with_capacity(count);
    let mut previous: Option<u64> = None;
    for _ in 0..count {
        let id = reader.u64().map_err(field("checkpoint entry id"))?;
        let vector =
            BinaryVector::decode_wire(&mut reader).map_err(field("checkpoint entry vector"))?;
        if vector.dims() != dims {
            return Err(corrupt(12, "checkpoint entry dims mismatch"));
        }
        if previous.is_some_and(|p| p >= id) {
            return Err(corrupt(12, "checkpoint ids not strictly ascending"));
        }
        if id >= next_id {
            return Err(corrupt(12, "checkpoint id at or past next_id watermark"));
        }
        previous = Some(id);
        vectors.push((id, vector));
    }
    if !reader.is_empty() {
        return Err(corrupt(12, "trailing bytes after checkpoint payload"));
    }
    Ok(CheckpointImage {
        generation,
        next_id,
        dims,
        vectors,
    })
}

fn encode_wal_header(seq: u64) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(WAL_HEADER_LEN);
    bytes.extend_from_slice(&WAL_MAGIC);
    put_u32(&mut bytes, WAL_VERSION);
    put_u64(&mut bytes, seq);
    bytes
}

fn fresh_log_bytes(seq: u64, image: &CheckpointImage) -> Vec<u8> {
    let mut bytes = encode_wal_header(seq);
    encode_record(
        &mut bytes,
        &WalRecord::CheckpointMark {
            seq,
            generation: image.generation,
            next_id: image.next_id,
        },
    );
    bytes
}

struct WalState {
    /// Encoded records not yet handed to the file.
    buf: Vec<u8>,
    /// Records appended (encoded) over the log's lifetime.
    appended_seq: u64,
    /// Records durably on disk.
    synced_seq: u64,
    /// Whether some thread is currently inside the write+fsync critical
    /// section (its followers wait and share the result).
    sync_running: bool,
    /// When the oldest pending record was appended (group-commit clock).
    group_opened: Option<Instant>,
    poisoned: bool,
    gauges: WalGauges,
}

/// The group-commit write-ahead log of one durable live corpus.
///
/// Threading: `append` is called under the live engine's writer lock (so
/// record order equals snapshot order); `sync_through` is called *outside*
/// it, concurrently from any number of acking threads. The first waiter
/// becomes the syncer for everything pending; the rest block until the fsync
/// covering their record lands — that is the group commit.
pub struct Wal {
    dir: PathBuf,
    config: WalConfig,
    fault: Option<Arc<FaultState>>,
    state: Mutex<WalState>,
    synced: Condvar,
    io: Mutex<Box<dyn WalIo>>,
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal")
            .field("dir", &self.dir)
            .field("gauges", &self.gauges())
            .finish_non_exhaustive()
    }
}

impl Wal {
    fn wrap_io(
        path: &Path,
        plan: Option<FaultPlan>,
        fault: &Option<Arc<FaultState>>,
    ) -> Result<Box<dyn WalIo>, WalError> {
        let file = Box::new(FileWalIo::open(path)?);
        Ok(match (plan, fault) {
            (Some(plan), Some(state)) => Box::new(FaultIo {
                inner: file,
                plan,
                state: Arc::clone(state),
            }),
            _ => file,
        })
    }

    fn open(dir: PathBuf, config: WalConfig, seeded: WalGauges) -> Result<Self, WalError> {
        let fault = config.fault_plan.map(|_| Arc::new(FaultState::default()));
        let io = Self::wrap_io(&dir.join(LOG_NAME), config.fault_plan, &fault)?;
        Ok(Self {
            dir,
            config,
            fault,
            state: Mutex::new(WalState {
                buf: Vec::new(),
                appended_seq: 0,
                synced_seq: 0,
                sync_running: false,
                group_opened: None,
                poisoned: false,
                gauges: seeded,
            }),
            synced: Condvar::new(),
            io: Mutex::new(io),
        })
    }

    /// Creates a fresh durable corpus in `dir`: checkpoint 0 holding `image`,
    /// plus a log that extends it. Refuses to clobber an existing log.
    ///
    /// # Errors
    /// [`WalError::Exists`] when `dir` already holds a `wal.log`; otherwise
    /// filesystem errors.
    pub fn create(
        dir: &Path,
        config: WalConfig,
        image: &CheckpointImage,
    ) -> Result<Self, WalError> {
        fs::create_dir_all(dir)?;
        let log_path = dir.join(LOG_NAME);
        if log_path.exists() {
            return Err(WalError::Exists { path: log_path });
        }
        write_checkpoint_file(dir, 0, image)?;
        write_atomic(&log_path, &fresh_log_bytes(0, image))?;
        Self::open(dir.to_path_buf(), config, WalGauges::default())
    }

    /// The directory holding the log and checkpoints.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The durability knobs this log runs with.
    pub fn config(&self) -> &WalConfig {
        &self.config
    }

    /// A copy of the lifetime gauges.
    pub fn gauges(&self) -> WalGauges {
        self.state.lock().expect("wal state poisoned").gauges
    }

    /// Appends `record`, returning its commit sequence number for a later
    /// [`Self::sync_through`]. Nothing is durable until that sync returns.
    ///
    /// # Errors
    /// [`WalError::Crashed`] once the log is poisoned.
    pub fn append(&self, record: &WalRecord) -> Result<u64, WalError> {
        let mut state = self.state.lock().expect("wal state poisoned");
        if state.poisoned {
            return Err(WalError::Crashed);
        }
        let before = state.buf.len();
        encode_record(&mut state.buf, record);
        let encoded = (state.buf.len() - before) as u64;
        state.appended_seq += 1;
        state.gauges.records += 1;
        state.gauges.bytes += encoded;
        state.gauges.records_since_checkpoint += 1;
        if state.group_opened.is_none() {
            state.group_opened = Some(Instant::now());
        }
        Ok(state.appended_seq)
    }

    /// Blocks until every record up to and including `seq` is durable
    /// (group commit): if a sync is already in flight, wait for it; if the
    /// pending group is small and young, wait up to `flush_interval` for
    /// companions; otherwise become the syncer — one buffered write plus one
    /// fsync covers every pending record at once.
    ///
    /// # Errors
    /// [`WalError::Crashed`] when the covering sync failed (the record is
    /// *not* durable; the log is poisoned); [`WalError::Io`] for the thread
    /// that performed the failing sync itself.
    pub fn sync_through(&self, seq: u64) -> Result<(), WalError> {
        let mut state = self.state.lock().expect("wal state poisoned");
        loop {
            if state.synced_seq >= seq {
                return Ok(());
            }
            if state.poisoned {
                return Err(WalError::Crashed);
            }
            if state.sync_running {
                state = self.synced.wait(state).expect("wal state poisoned");
                continue;
            }
            let pending = state.appended_seq - state.synced_seq;
            if pending == 0 {
                // seq was never appended; nothing to wait for.
                return Ok(());
            }
            if (pending as usize) < self.config.flush_batch && !self.config.flush_interval.is_zero()
            {
                let opened = state.group_opened.unwrap_or_else(Instant::now);
                let elapsed = opened.elapsed();
                if elapsed < self.config.flush_interval {
                    let wait = self.config.flush_interval - elapsed;
                    let (next, _) = self
                        .synced
                        .wait_timeout(state, wait)
                        .expect("wal state poisoned");
                    state = next;
                    continue;
                }
            }
            // Become the syncer for everything pending.
            let target = state.appended_seq;
            let batch = std::mem::take(&mut state.buf);
            state.sync_running = true;
            state.group_opened = None;
            drop(state);
            let result = {
                let mut io = self.io.lock().expect("wal io poisoned");
                Self::write_and_sync(io.as_mut(), &batch)
            };
            state = self.state.lock().expect("wal state poisoned");
            state.sync_running = false;
            match result {
                Ok(()) => {
                    let group = target - state.synced_seq;
                    state.synced_seq = target;
                    state.gauges.fsyncs += 1;
                    state.gauges.group_records += group;
                    state.gauges.group_max = state.gauges.group_max.max(group);
                    self.synced.notify_all();
                }
                Err(e) => {
                    state.poisoned = true;
                    self.synced.notify_all();
                    return Err(e.into());
                }
            }
        }
    }

    fn write_and_sync(io: &mut dyn WalIo, batch: &[u8]) -> io::Result<()> {
        if !batch.is_empty() {
            let written = io.append(batch)?;
            if written < batch.len() {
                return Err(io::Error::new(io::ErrorKind::WriteZero, "torn wal append"));
            }
        }
        io.sync()
    }

    /// Syncs every appended record. Used before checkpointing and by tests.
    ///
    /// # Errors
    /// As [`Self::sync_through`].
    pub fn commit_all(&self) -> Result<(), WalError> {
        let target = self.state.lock().expect("wal state poisoned").appended_seq;
        self.sync_through(target)
    }

    /// Mutation records in the current log (the replay debt of a crash now).
    pub fn records_since_checkpoint(&self) -> u64 {
        self.state
            .lock()
            .expect("wal state poisoned")
            .gauges
            .records_since_checkpoint
    }

    /// Writes checkpoint `current + 1` holding `image`, rotates the log to
    /// extend it, and removes the previous checkpoint. The caller must hold
    /// the corpus writer lock (no concurrent appends); acks already in
    /// flight are drained by the initial [`Self::commit_all`].
    ///
    /// # Errors
    /// [`WalError::Crashed`] on a poisoned log; filesystem errors from the
    /// rotation itself (the log is poisoned if the rotation fails midway,
    /// since the in-memory writer no longer matches any consistent on-disk
    /// state — recovery from the files themselves remains correct).
    pub fn checkpoint(&self, image: &CheckpointImage) -> Result<(), WalError> {
        self.commit_all()?;
        let (seq, previous) = {
            let state = self.state.lock().expect("wal state poisoned");
            (state.gauges.checkpoint_seq + 1, state.gauges.checkpoint_seq)
        };
        let rotated = write_checkpoint_file(&self.dir, seq, image)
            .and_then(|()| write_atomic(&self.dir.join(LOG_NAME), &fresh_log_bytes(seq, image)))
            .map_err(WalError::from)
            .and_then(|()| {
                Self::wrap_io(
                    &self.dir.join(LOG_NAME),
                    self.config.fault_plan,
                    &self.fault,
                )
            });
        let mut state = self.state.lock().expect("wal state poisoned");
        match rotated {
            Ok(io) => {
                *self.io.lock().expect("wal io poisoned") = io;
                state.gauges.checkpoint_seq = seq;
                state.gauges.checkpoints += 1;
                state.gauges.records_since_checkpoint = 0;
                drop(state);
                let _ = fs::remove_file(checkpoint_path(&self.dir, previous));
                Ok(())
            }
            Err(e) => {
                state.poisoned = true;
                self.synced.notify_all();
                Err(e)
            }
        }
    }
}

/// What [`recover`] did to bring the corpus back.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RestoreReport {
    /// Sequence number of the checkpoint the log extended.
    pub checkpoint_seq: u64,
    /// Vectors loaded from the checkpoint image.
    pub checkpoint_vectors: usize,
    /// Mutation records replayed from the log tail.
    pub replayed: u64,
    /// Records skipped as already covered by the checkpoint (defensive; a
    /// healthy log never produces any).
    pub skipped: u64,
    /// Bytes of invalid tail truncated from the log.
    pub truncated_bytes: u64,
    /// Whether a torn or corrupt tail was found (and truncated).
    pub torn: bool,
}

/// Recovers the durable corpus in `dir`: loads the checkpoint named by the
/// log header, replays the log's mutation records against it, truncates any
/// torn or corrupt tail (keeping the longest valid prefix), and reopens the
/// log for appending.
///
/// Returns the post-replay corpus image, the reopened log (gauges seeded
/// with the replay stats), and a report of what recovery did.
///
/// # Errors
/// [`WalError::Missing`] when `dir` holds no log; [`WalError::Corrupt`] when
/// the log header or the referenced checkpoint image fails validation.
/// Corruption *after* the header is not an error — it truncates.
pub fn recover(
    dir: &Path,
    config: WalConfig,
) -> Result<(CheckpointImage, Wal, RestoreReport), WalError> {
    let log_path = dir.join(LOG_NAME);
    let bytes = match fs::read(&log_path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == io::ErrorKind::NotFound => {
            return Err(WalError::Missing { path: log_path });
        }
        Err(e) => return Err(e.into()),
    };
    if bytes.len() < WAL_HEADER_LEN {
        return Err(WalError::Corrupt {
            offset: 0,
            what: "log shorter than its header",
        });
    }
    if bytes[0..4] != WAL_MAGIC {
        return Err(WalError::Corrupt {
            offset: 0,
            what: "bad log magic",
        });
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
    if version != WAL_VERSION {
        return Err(WalError::Corrupt {
            offset: 4,
            what: "unsupported log version",
        });
    }
    let seq = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
    let mut image = read_checkpoint(dir, seq)?;

    let mut report = RestoreReport {
        checkpoint_seq: seq,
        checkpoint_vectors: image.vectors.len(),
        ..RestoreReport::default()
    };
    let mut offset = WAL_HEADER_LEN;
    let mut valid_through = offset;
    let mut live_bytes = 0u64;
    while offset < bytes.len() {
        let Some(record) = decode_record_at(&bytes, offset) else {
            break;
        };
        let (record, next_offset) = record;
        // Semantic replay: a record that decodes but contradicts the corpus
        // watermarks is treated exactly like a torn tail — recovery keeps
        // the longest prefix that is both structurally and logically valid.
        match record {
            WalRecord::CheckpointMark {
                seq: mark_seq,
                generation,
                next_id,
            } => {
                // The mark is only ever the first record (nothing has been
                // replayed yet) and must agree with the checkpoint the
                // header names.
                if offset != WAL_HEADER_LEN
                    || mark_seq != seq
                    || generation != image.generation
                    || next_id != image.next_id
                {
                    break;
                }
            }
            WalRecord::Insert { id, vector } => {
                if vector.dims() != image.dims {
                    break;
                }
                match id.cmp(&image.next_id) {
                    std::cmp::Ordering::Less => report.skipped += 1,
                    std::cmp::Ordering::Equal => {
                        image.vectors.push((id, vector));
                        image.next_id += 1;
                        image.generation += 1;
                        report.replayed += 1;
                        live_bytes += (next_offset - offset) as u64;
                    }
                    std::cmp::Ordering::Greater => break,
                }
            }
            WalRecord::Delete { id } => {
                if id >= image.next_id {
                    break;
                }
                match image.vectors.binary_search_by_key(&id, |(id, _)| *id) {
                    Ok(at) => {
                        image.vectors.remove(at);
                        image.generation += 1;
                        report.replayed += 1;
                        live_bytes += (next_offset - offset) as u64;
                    }
                    Err(_) => report.skipped += 1,
                }
            }
        }
        offset = next_offset;
        valid_through = offset;
    }
    if valid_through < bytes.len() {
        report.torn = true;
        report.truncated_bytes = (bytes.len() - valid_through) as u64;
        let file = OpenOptions::new().write(true).open(&log_path)?;
        file.set_len(valid_through as u64)?;
        file.sync_all()?;
    }

    let seeded = WalGauges {
        records: report.replayed + report.skipped,
        bytes: live_bytes,
        checkpoint_seq: seq,
        records_since_checkpoint: report.replayed + report.skipped,
        replayed: report.replayed,
        truncated_bytes: report.truncated_bytes,
        ..WalGauges::default()
    };
    let wal = Wal::open(dir.to_path_buf(), config, seeded)?;
    Ok((image, wal, report))
}

/// Decodes the record framed at `offset`, returning it and the offset of the
/// next record — or `None` for anything short, oversized, checksum-invalid,
/// or undecodable (the caller truncates there).
fn decode_record_at(bytes: &[u8], offset: usize) -> Option<(WalRecord, usize)> {
    let remaining = bytes.len().checked_sub(offset)?;
    if remaining < 8 {
        return None;
    }
    let len = u32::from_le_bytes(bytes[offset..offset + 4].try_into().ok()?) as usize;
    let declared_crc = u32::from_le_bytes(bytes[offset + 4..offset + 8].try_into().ok()?);
    if len > MAX_RECORD_LEN || len > remaining - 8 {
        return None;
    }
    let payload = &bytes[offset + 8..offset + 8 + len];
    if crc32(payload) != declared_crc {
        return None;
    }
    let record = WalRecord::decode_payload(payload)?;
    Some((record, offset + 8 + len))
}

/// Whether `dir` holds a durable corpus (a `wal.log`) to [`recover`].
pub fn exists(dir: &Path) -> bool {
    dir.join(LOG_NAME).is_file()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn scratch(tag: &str) -> PathBuf {
        static NEXT: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "ap-wal-unit-{}-{}-{}",
            std::process::id(),
            tag,
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn vector(dims: usize, seed: u64) -> BinaryVector {
        binvec::generate::uniform_queries(1, dims, seed)
            .pop()
            .unwrap()
    }

    fn empty_image(dims: usize) -> CheckpointImage {
        CheckpointImage {
            generation: 0,
            next_id: 0,
            dims,
            vectors: Vec::new(),
        }
    }

    #[test]
    fn crc32_matches_the_ieee_check_value() {
        // The canonical CRC-32 check: crc32("123456789") == 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn records_roundtrip_and_refuse_every_truncation() {
        let records = [
            WalRecord::Insert {
                id: 7,
                vector: vector(48, 1),
            },
            WalRecord::Delete { id: u64::MAX },
            WalRecord::CheckpointMark {
                seq: 3,
                generation: 9,
                next_id: 12,
            },
        ];
        for record in &records {
            let mut payload = Vec::new();
            record.encode_payload(&mut payload);
            assert_eq!(WalRecord::decode_payload(&payload).as_ref(), Some(record));
            for cut in 0..payload.len() {
                assert!(WalRecord::decode_payload(&payload[..cut]).is_none());
            }
            // Trailing junk behind a valid payload is refused too.
            let mut padded = payload.clone();
            padded.push(0);
            assert!(WalRecord::decode_payload(&padded).is_none());
        }
    }

    #[test]
    fn create_append_sync_recover_roundtrips() {
        let dir = scratch("roundtrip");
        let dims = 32;
        let wal = Wal::create(&dir, WalConfig::default(), &empty_image(dims)).unwrap();
        let mut expected = Vec::new();
        for id in 0..5u64 {
            let v = vector(dims, 100 + id);
            let seq = wal
                .append(&WalRecord::Insert {
                    id,
                    vector: v.clone(),
                })
                .unwrap();
            wal.sync_through(seq).unwrap();
            expected.push((id, v));
        }
        let seq = wal.append(&WalRecord::Delete { id: 2 }).unwrap();
        wal.sync_through(seq).unwrap();
        expected.retain(|(id, _)| *id != 2);
        let gauges = wal.gauges();
        assert_eq!(gauges.records, 6);
        assert_eq!(gauges.fsyncs, 6);
        assert_eq!(gauges.group_records, 6);
        drop(wal);

        let (image, wal, report) = recover(&dir, WalConfig::default()).unwrap();
        assert_eq!(image.vectors, expected);
        assert_eq!(image.next_id, 5);
        assert_eq!(image.generation, 6);
        assert_eq!(report.replayed, 6);
        assert_eq!(report.checkpoint_seq, 0);
        assert!(!report.torn);
        assert_eq!(wal.gauges().replayed, 6);
        drop(wal);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn create_refuses_to_clobber_an_existing_log() {
        let dir = scratch("clobber");
        let _wal = Wal::create(&dir, WalConfig::default(), &empty_image(8)).unwrap();
        assert!(matches!(
            Wal::create(&dir, WalConfig::default(), &empty_image(8)),
            Err(WalError::Exists { .. })
        ));
        assert!(exists(&dir));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_crash_poisons_and_recovery_truncates_the_torn_record() {
        let dir = scratch("fault");
        let dims = 16;
        // Op 0 = first group write, op 1 = its fsync; crash the second write
        // (op 2) with 3 stray bytes reaching disk.
        let config =
            WalConfig::default().with_fault_plan(FaultPlan::crash_at(2).with_torn_bytes(3));
        let wal = Wal::create(&dir, config, &empty_image(dims)).unwrap();
        let seq = wal
            .append(&WalRecord::Insert {
                id: 0,
                vector: vector(dims, 1),
            })
            .unwrap();
        wal.sync_through(seq).unwrap();
        let seq = wal
            .append(&WalRecord::Insert {
                id: 1,
                vector: vector(dims, 2),
            })
            .unwrap();
        assert!(matches!(wal.sync_through(seq), Err(WalError::Io(_))));
        // Poisoned: everything after the crash fails fast.
        assert!(matches!(
            wal.append(&WalRecord::Delete { id: 0 }),
            Err(WalError::Crashed)
        ));
        drop(wal);

        let (image, _wal, report) = recover(&dir, WalConfig::default()).unwrap();
        assert_eq!(image.vectors.len(), 1, "only the synced record survives");
        assert_eq!(report.replayed, 1);
        assert!(report.torn);
        assert_eq!(report.truncated_bytes, 3);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_rotates_the_log_and_bounds_replay() {
        let dir = scratch("ckpt");
        let dims = 16;
        let wal = Wal::create(&dir, WalConfig::default(), &empty_image(dims)).unwrap();
        let mut vectors = Vec::new();
        for id in 0..4u64 {
            let v = vector(dims, 30 + id);
            let seq = wal
                .append(&WalRecord::Insert {
                    id,
                    vector: v.clone(),
                })
                .unwrap();
            wal.sync_through(seq).unwrap();
            vectors.push((id, v));
        }
        let image = CheckpointImage {
            generation: 4,
            next_id: 4,
            dims,
            vectors: vectors.clone(),
        };
        wal.checkpoint(&image).unwrap();
        assert_eq!(wal.records_since_checkpoint(), 0);
        assert_eq!(wal.gauges().checkpoint_seq, 1);
        assert!(!checkpoint_path(&dir, 0).exists(), "old checkpoint removed");

        // Mutations continue after the rotation and land in the new log.
        let seq = wal.append(&WalRecord::Delete { id: 1 }).unwrap();
        wal.sync_through(seq).unwrap();
        drop(wal);

        let (restored, _wal, report) = recover(&dir, WalConfig::default()).unwrap();
        assert_eq!(report.checkpoint_seq, 1);
        assert_eq!(report.checkpoint_vectors, 4);
        assert_eq!(report.replayed, 1);
        vectors.retain(|(id, _)| *id != 1);
        assert_eq!(restored.vectors, vectors);
        assert_eq!(restored.generation, 5);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn recover_without_a_log_is_a_typed_miss() {
        let dir = scratch("missing");
        fs::create_dir_all(&dir).unwrap();
        assert!(matches!(
            recover(&dir, WalConfig::default()),
            Err(WalError::Missing { .. })
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn group_commit_shares_one_fsync_across_concurrent_ackers() {
        let dir = scratch("group");
        let dims = 16;
        let config = WalConfig::default().with_flush_interval(Duration::from_millis(20));
        let wal = Arc::new(Wal::create(&dir, config, &empty_image(dims)).unwrap());
        let threads: Vec<_> = (0..8u64)
            .map(|id| {
                let wal = Arc::clone(&wal);
                std::thread::spawn(move || {
                    let seq = wal
                        .append(&WalRecord::Insert {
                            id,
                            vector: vector(dims, 60 + id),
                        })
                        .unwrap();
                    wal.sync_through(seq).unwrap();
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let gauges = wal.gauges();
        assert_eq!(gauges.records, 8);
        assert_eq!(gauges.group_records, 8);
        assert!(
            gauges.fsyncs < 8,
            "8 concurrent ackers with a 20ms window must share fsyncs, got {}",
            gauges.fsyncs
        );
        assert!(gauges.group_max >= 2);
        let _ = fs::remove_dir_all(&dir);
    }
}
