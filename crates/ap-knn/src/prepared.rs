//! Prepared (amortized) execution: partition once, build and compile every
//! board image once, then stream any number of query batches.
//!
//! The one-shot engine path re-partitions the dataset and rebuilds + recompiles
//! every [`PartitionNetwork`] on every `try_search_batch` call — exactly the
//! reconfiguration-dominated regime Table IV warns about, paid in host time. A
//! [`PreparedEngine`] is the board-image set of §III-C made explicit: the
//! dataset partitioning, the per-partition automata networks, and the compiled
//! sparse-frontier cores are all constructed once and cached, so a steady
//! stream of batches pays only for encoding the new symbol stream and running
//! it. Board images are compiled lazily on the first cycle-accurate batch
//! (behavioural-only traffic never builds a network at all).
//!
//! [`crate::scheduler::PreparedSchedule`] reuses the same cached image set for
//! the multi-board parallel schedule.

use crate::builder::PartitionNetwork;
use crate::decode::{merge_lane_reports_into, merge_reports_into};
use crate::design::KnnDesign;
use crate::engine::{ApKnnEngine, ApRunStats, ExecutionMode};
use crate::lanes::encode_lane_planes_into;
use crate::plan::{BASE_NS_PER_SYMBOL, LANE_CYCLE_COST_FACTOR, NS_PER_ELEMENT_SYMBOL};
use crate::stream::StreamLayout;
use ap_sim::lanes::{LaneReportEvent, LaneState, LaneStream, MAX_LANES};
use ap_sim::{CompiledNetwork, CompiledState, ReportEvent};
use binvec::dataset::DatasetPartition;
use binvec::{
    BinaryDataset, BinaryVector, ExecutionPreference, Neighbor, QueryOptions, SearchError, TopK,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// One cached board configuration: the compiled sparse-frontier core plus the
/// base index that rebases its report codes into global dataset ids.
#[derive(Clone, Debug)]
pub(crate) struct BoardImage {
    pub(crate) base_index: usize,
    pub(crate) compiled: CompiledNetwork,
}

/// Reusable execution scratch for one batch role (the host merge side of a
/// batch, or one fan-out worker): compiled-core run state, report sink,
/// per-query top-k accumulators, the behavioural distance buffer, the encoded
/// symbol stream, and the per-worker chunk sizes. Everything is recycled
/// through the [`ScratchPool`], so a steady-state batch touches no allocator.
#[derive(Debug, Default)]
pub(crate) struct BatchScratch {
    /// Compiled-core run state, adapted per board image via
    /// [`CompiledNetwork::recycle_state`]. Created on the first cycle-accurate
    /// run this scratch serves.
    pub(crate) state: Option<CompiledState>,
    /// Report sink reused across the images a worker drives.
    pub(crate) reports: Vec<ReportEvent>,
    /// Per-query top-k accumulators, re-armed per batch.
    pub(crate) accumulators: Vec<TopK>,
    /// Behavioural-mode per-partition distance buffer.
    pub(crate) distances: Vec<u32>,
    /// Encoded symbol stream for the batch.
    pub(crate) stream: Vec<u8>,
    /// Images run per fan-out worker for the most recent batch.
    pub(crate) chunks: Vec<usize>,
    /// Lane-core run state, adapted per board image via
    /// [`CompiledNetwork::recycle_lane_state`].
    pub(crate) lane_state: Option<LaneState>,
    /// Lane-core report sink reused across images and passes.
    pub(crate) lane_reports: Vec<LaneReportEvent>,
    /// Encoded lane passes for the batch (one per 64-query chunk); streams are
    /// re-encoded in place, so the vector only grows to the widest batch seen.
    pub(crate) lane_streams: Vec<LaneStream>,
}

/// Occupancy statistics of a prepared engine's execution-scratch pool.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Scratch checkouts served (one host checkout per batch plus one per
    /// cycle-accurate fan-out worker).
    pub checkouts: u64,
    /// Checkouts that created a fresh scratch because the pool was empty.
    /// In steady state this stops growing: every batch runs entirely on
    /// recycled scratch — the zero-allocation hot path.
    pub fresh: u64,
}

impl PoolStats {
    /// Checkouts served from recycled scratch.
    pub fn hits(&self) -> u64 {
        self.checkouts - self.fresh
    }
}

/// A lock-guarded free list of [`BatchScratch`] shared by every batch (and
/// every fan-out worker) of one prepared engine or schedule. Clones of a
/// prepared engine share the pool through its `Arc`.
#[derive(Debug, Default)]
pub(crate) struct ScratchPool {
    idle: Mutex<Vec<BatchScratch>>,
    checkouts: AtomicU64,
    fresh: AtomicU64,
}

impl ScratchPool {
    /// Takes a scratch from the pool, creating one only when it is empty.
    pub(crate) fn checkout(&self) -> BatchScratch {
        self.checkouts.fetch_add(1, Ordering::Relaxed);
        match self.idle.lock().expect("scratch pool poisoned").pop() {
            Some(scratch) => scratch,
            None => {
                self.fresh.fetch_add(1, Ordering::Relaxed);
                BatchScratch::default()
            }
        }
    }

    /// Returns a scratch (with all its warmed allocations) to the pool.
    pub(crate) fn give_back(&self, scratch: BatchScratch) {
        self.idle
            .lock()
            .expect("scratch pool poisoned")
            .push(scratch);
    }

    /// Checkout/fresh counters.
    pub(crate) fn stats(&self) -> PoolStats {
        PoolStats {
            checkouts: self.checkouts.load(Ordering::Relaxed),
            fresh: self.fresh.load(Ordering::Relaxed),
        }
    }
}

/// Minimum estimated simulation work (nanoseconds) a fan-out worker must have
/// before spawning it pays: below this, thread spawn + scratch checkout + host
/// merge overhead eats the parallel win (the committed `wide` shape recorded a
/// 0.99× "speedup" for exactly this reason). The estimate reuses the planner's
/// calibrated cost model, so the gate and the planner can never disagree about
/// what a symbol costs.
pub(crate) const MIN_WORKER_FANOUT_NS: f64 = 2_000_000.0;

/// Chunk length of the contiguous worker assignment for `count` items over up
/// to `workers` workers: worker `w` owns items `[w·span, (w+1)·span)`. This is
/// the *one* definition of the fan-out shape — the execution path chunks by it
/// and the empty-batch stats path reports it (via [`contiguous_assignment`]),
/// so the two can never drift. Allocation-free for the pooled hot path.
pub(crate) fn assignment_span(count: usize, workers: usize) -> usize {
    let workers = workers.min(count).max(1);
    count.div_ceil(workers).max(1)
}

/// The per-worker item counts of the contiguous assignment (see
/// [`assignment_span`]).
pub(crate) fn contiguous_assignment(count: usize, workers: usize) -> Vec<usize> {
    let span = assignment_span(count, workers);
    (0..count.div_ceil(span))
        .map(|w| span.min(count - w * span))
        .collect()
}

/// Re-arms `acc` as `queries` fresh top-`k` accumulators, reusing both the
/// outer vector and every selector's heap allocation.
pub(crate) fn arm_accumulators(acc: &mut Vec<TopK>, queries: usize, k: usize) {
    acc.truncate(queries);
    for a in acc.iter_mut() {
        a.reset(k);
    }
    while acc.len() < queries {
        acc.push(TopK::new(k));
    }
}

/// The shared partition + board-image cache behind [`PreparedEngine`] and
/// [`crate::scheduler::PreparedSchedule`].
#[derive(Clone, Debug)]
pub(crate) struct PreparedBoards {
    design: KnnDesign,
    layout: StreamLayout,
    partitions: Vec<DatasetPartition>,
    dataset_len: usize,
    /// Run the `ap-analyze` translation validator over every compiled image.
    strict_analysis: bool,
    /// Compiled board images, built on the first cycle-accurate run.
    images: OnceLock<Result<Vec<BoardImage>, SearchError>>,
    /// Shared execution-scratch pool; clones of a preparation share it.
    pool: Arc<ScratchPool>,
}

impl PreparedBoards {
    /// Partitions `data` for `design` at `vectors_per_board` vectors per image.
    ///
    /// # Errors
    /// [`SearchError::ZeroDims`] for a zero-dimension design and
    /// [`SearchError::DimMismatch`] when the dataset disagrees with it.
    pub(crate) fn new(
        design: KnnDesign,
        data: &BinaryDataset,
        vectors_per_board: usize,
        strict_analysis: bool,
    ) -> Result<Self, SearchError> {
        if design.dims == 0 {
            return Err(SearchError::ZeroDims);
        }
        if data.dims() != design.dims {
            return Err(SearchError::DimMismatch {
                expected: design.dims,
                actual: data.dims(),
            });
        }
        Ok(Self {
            design,
            layout: StreamLayout::for_design(&design),
            partitions: data.partition(vectors_per_board.max(1)),
            dataset_len: data.len(),
            strict_analysis,
            images: OnceLock::new(),
            pool: Arc::new(ScratchPool::default()),
        })
    }

    /// The shared execution-scratch pool.
    pub(crate) fn pool(&self) -> &ScratchPool {
        &self.pool
    }

    pub(crate) fn design(&self) -> &KnnDesign {
        &self.design
    }

    pub(crate) fn layout(&self) -> &StreamLayout {
        &self.layout
    }

    pub(crate) fn partitions(&self) -> &[DatasetPartition] {
        &self.partitions
    }

    pub(crate) fn dataset_len(&self) -> usize {
        self.dataset_len
    }

    /// Fabric elements of the largest board image (partition 0 by
    /// construction) — the planner's fabric-size input.
    pub(crate) fn board_elements(&self) -> usize {
        let vectors = self.partitions.first().map_or(0, |p| p.data.len());
        vectors * (self.design.stes_per_vector() + self.design.counters_per_vector())
    }

    /// Whether the board images have been built and compiled successfully
    /// (a cached compile *failure* does not count as compiled).
    pub(crate) fn is_compiled(&self) -> bool {
        self.images.get().is_some_and(|r| r.is_ok())
    }

    /// Clamps a requested fan-out width to the number of workers that each get
    /// at least [`MIN_WORKER_FANOUT_NS`] of estimated simulation work.
    /// `cost_weighted_symbols` is the per-image symbol count, pre-scaled for
    /// the lane path (lane cycles × [`LANE_CYCLE_COST_FACTOR`]). Only the
    /// engine batch paths use this; [`crate::scheduler::PreparedSchedule`]
    /// models explicit boards and keeps its requested worker count.
    pub(crate) fn gated_workers(&self, cost_weighted_symbols: u64, workers: usize) -> usize {
        if workers <= 1 {
            return workers.max(1);
        }
        let ns_per_symbol =
            BASE_NS_PER_SYMBOL + NS_PER_ELEMENT_SYMBOL * self.board_elements() as f64;
        let total_ns = cost_weighted_symbols as f64 * self.partitions.len() as f64 * ns_per_symbol;
        let useful = (total_ns / MIN_WORKER_FANOUT_NS) as usize;
        workers.min(useful.max(1))
    }

    /// Streams the (shared) encoded query batch through every cached board
    /// image, fanning the images out over up to `workers` scoped threads —
    /// each standing in for one board — and merging each worker's per-query
    /// accumulators into `global` (which must hold `queries_len` armed
    /// selectors). This is the one partition-execution recipe behind both the
    /// engine's serial/parallel schedules and
    /// [`crate::scheduler::PreparedSchedule`], so the two stay bit-identical
    /// by construction.
    ///
    /// Every worker checks its scratch (run state, report sink, accumulators)
    /// out of the shared [`ScratchPool`] and returns it afterwards, so a
    /// steady-state batch performs no execution-side allocation. `chunks_out`
    /// receives the number of images each worker ran, in assignment order.
    /// Returns the total report count.
    pub(crate) fn fan_out_into(
        &self,
        stream: &[u8],
        k: usize,
        queries_len: usize,
        workers: usize,
        global: &mut [TopK],
        chunks_out: &mut Vec<usize>,
    ) -> Result<u64, SearchError> {
        let images = self.images()?;
        let layout = &self.layout;
        chunks_out.clear();
        if images.is_empty() {
            return Ok(0);
        }
        let span = assignment_span(images.len(), workers);
        let workers = workers.min(images.len()).max(1);
        let pool: &ScratchPool = &self.pool;

        let run_chunk = |owned: &[BoardImage], scratch: &mut BatchScratch| -> u64 {
            arm_accumulators(&mut scratch.accumulators, queries_len, k);
            let mut reports_total = 0u64;
            for image in owned {
                // One pooled run state serves every image this worker drives
                // (images differ in geometry; recycling adapts in place).
                if let Some(state) = scratch.state.as_mut() {
                    image.compiled.recycle_state(state);
                } else {
                    scratch.state = Some(image.compiled.new_state());
                }
                let state = scratch.state.as_mut().expect("state just ensured");
                scratch.reports.clear();
                image.compiled.run_into(state, stream, &mut scratch.reports);
                merge_reports_into(
                    layout,
                    &scratch.reports,
                    image.base_index,
                    &mut scratch.accumulators,
                );
                reports_total += scratch.reports.len() as u64;
            }
            reports_total
        };

        if workers <= 1 {
            let mut scratch = pool.checkout();
            let reports = run_chunk(images, &mut scratch);
            for (g, partial) in global.iter_mut().zip(&scratch.accumulators) {
                g.merge(partial);
            }
            chunks_out.push(images.len());
            pool.give_back(scratch);
            return Ok(reports);
        }

        let run_chunk = &run_chunk;
        let outputs: Vec<(BatchScratch, u64, usize)> = std::thread::scope(|scope| {
            let handles: Vec<_> = images
                .chunks(span)
                .map(|owned| {
                    scope.spawn(move || {
                        let mut scratch = pool.checkout();
                        let reports = run_chunk(owned, &mut scratch);
                        (scratch, reports, owned.len())
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("board-image worker panicked"))
                .collect()
        });
        // The host merge across workers is exactly the merge across sequential
        // reconfigurations, in assignment order.
        let mut reports_total = 0u64;
        for (scratch, reports, images_run) in outputs {
            for (g, partial) in global.iter_mut().zip(&scratch.accumulators) {
                g.merge(partial);
            }
            chunks_out.push(images_run);
            pool.give_back(scratch);
            reports_total += reports;
        }
        Ok(reports_total)
    }

    /// The lane-core twin of [`Self::fan_out_into`]: streams the encoded lane
    /// passes (one per 64-query chunk of the batch, see
    /// [`crate::lanes::encode_lane_planes_into`]) through every cached board
    /// image over up to `workers` scoped threads. Pass `p` demultiplexes into
    /// queries `p·64 ..`, so the merged accumulators are per-query exactly as
    /// in the scalar fan-out; the returned report count unrolls every event's
    /// lane mask (one report per set lane), keeping
    /// [`crate::engine::ApRunStats::reports`] identical to the scalar path.
    pub(crate) fn fan_out_lanes_into(
        &self,
        streams: &[LaneStream],
        k: usize,
        queries_len: usize,
        workers: usize,
        global: &mut [TopK],
        chunks_out: &mut Vec<usize>,
    ) -> Result<u64, SearchError> {
        let images = self.images()?;
        let layout = &self.layout;
        chunks_out.clear();
        if images.is_empty() {
            return Ok(0);
        }
        let span = assignment_span(images.len(), workers);
        let workers = workers.min(images.len()).max(1);
        let pool: &ScratchPool = &self.pool;

        let run_chunk = |owned: &[BoardImage], scratch: &mut BatchScratch| -> u64 {
            arm_accumulators(&mut scratch.accumulators, queries_len, k);
            let mut reports_total = 0u64;
            for image in owned {
                for (pass, stream) in streams.iter().enumerate() {
                    // Recycling adapts the pooled state to this image's
                    // geometry *and* clears it between passes.
                    if let Some(state) = scratch.lane_state.as_mut() {
                        image.compiled.recycle_lane_state(state);
                    } else {
                        scratch.lane_state = Some(image.compiled.new_lane_state());
                    }
                    let state = scratch.lane_state.as_mut().expect("state just ensured");
                    scratch.lane_reports.clear();
                    image
                        .compiled
                        .run_lanes_into(state, stream, &mut scratch.lane_reports);
                    merge_lane_reports_into(
                        layout,
                        &scratch.lane_reports,
                        image.base_index,
                        pass * MAX_LANES,
                        &mut scratch.accumulators,
                    );
                    reports_total += scratch
                        .lane_reports
                        .iter()
                        .map(|r| u64::from(r.lanes.count_ones()))
                        .sum::<u64>();
                }
            }
            reports_total
        };

        if workers <= 1 {
            let mut scratch = pool.checkout();
            let reports = run_chunk(images, &mut scratch);
            for (g, partial) in global.iter_mut().zip(&scratch.accumulators) {
                g.merge(partial);
            }
            chunks_out.push(images.len());
            pool.give_back(scratch);
            return Ok(reports);
        }

        let run_chunk = &run_chunk;
        let outputs: Vec<(BatchScratch, u64, usize)> = std::thread::scope(|scope| {
            let handles: Vec<_> = images
                .chunks(span)
                .map(|owned| {
                    scope.spawn(move || {
                        let mut scratch = pool.checkout();
                        let reports = run_chunk(owned, &mut scratch);
                        (scratch, reports, owned.len())
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("board-image worker panicked"))
                .collect()
        });
        let mut reports_total = 0u64;
        for (scratch, reports, images_run) in outputs {
            for (g, partial) in global.iter_mut().zip(&scratch.accumulators) {
                g.merge(partial);
            }
            chunks_out.push(images_run);
            pool.give_back(scratch);
            reports_total += reports;
        }
        Ok(reports_total)
    }

    /// The compiled board images, building every [`PartitionNetwork`] and
    /// compiling its sparse-frontier core on first use. With strict analysis
    /// enabled, every compiled image is cross-checked against its source
    /// network by the `ap-analyze` translation validator before it is cached
    /// — a mis-translation becomes a hard [`SearchError::Backend`] instead of
    /// silently corrupted search results.
    pub(crate) fn images(&self) -> Result<&[BoardImage], SearchError> {
        self.images
            .get_or_init(|| {
                self.partitions
                    .iter()
                    .map(|partition| {
                        let pn = PartitionNetwork::build(partition, &self.design);
                        let compiled = CompiledNetwork::compile(&pn.network).map_err(|e| {
                            SearchError::Backend {
                                backend: "ap-knn".to_string(),
                                reason: e.to_string(),
                            }
                        })?;
                        if self.strict_analysis {
                            ap_analyze::verify_compilation(&pn.network, &compiled).map_err(
                                |reason| SearchError::Backend {
                                    backend: "ap-knn".to_string(),
                                    reason: format!(
                                        "strict analysis rejected the board image at base \
                                         index {}: {reason}",
                                        partition.base_index
                                    ),
                                },
                            )?;
                        }
                        Ok(BoardImage {
                            base_index: partition.base_index,
                            compiled,
                        })
                    })
                    .collect()
            })
            .as_deref()
            .map_err(|e| e.clone())
    }
}

/// An [`ApKnnEngine`] bound to a dataset with its board images cached.
///
/// Created by [`ApKnnEngine::prepare`]. Repeated [`Self::try_search_batch`]
/// calls reuse the partitioning and the compiled cores, so steady-state batch
/// cost is encoding + streaming only; results and [`ApRunStats`] are
/// bit-identical to the one-shot engine path (proptest-enforced in
/// `tests/prepared_engine.rs`).
#[derive(Clone, Debug)]
pub struct PreparedEngine {
    engine: ApKnnEngine,
    boards: PreparedBoards,
}

impl PreparedEngine {
    pub(crate) fn new(engine: ApKnnEngine, data: &BinaryDataset) -> Result<Self, SearchError> {
        let boards = PreparedBoards::new(
            *engine.design(),
            data,
            engine.capacity().vectors_per_board,
            engine.strict_analysis(),
        )?;
        Ok(Self { engine, boards })
    }

    /// The engine configuration this preparation was made with.
    pub fn engine(&self) -> &ApKnnEngine {
        &self.engine
    }

    /// Vectors served.
    pub fn len(&self) -> usize {
        self.boards.dataset_len()
    }

    /// Whether the prepared dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.boards.dataset_len() == 0
    }

    /// Dimensionality of the served vectors.
    pub fn dims(&self) -> usize {
        self.boards.design().dims
    }

    /// Board configurations (dataset partitions) in the prepared image set.
    pub fn board_count(&self) -> usize {
        self.boards.partitions().len()
    }

    /// Whether the board images have been built and compiled yet (they are
    /// compiled lazily by the first cycle-accurate batch).
    pub fn is_compiled(&self) -> bool {
        self.boards.is_compiled()
    }

    /// Builds and compiles the board images now instead of on the first
    /// cycle-accurate batch, so serving traffic never pays the compile.
    ///
    /// # Errors
    /// [`SearchError::Backend`] if a partition network fails validation.
    pub fn compile(&self) -> Result<(), SearchError> {
        self.boards.images().map(|_| ())
    }

    /// Statistics of the shared execution-scratch pool. Once traffic reaches a
    /// steady state [`PoolStats::fresh`] stops growing: every batch (encode →
    /// simulate → decode) runs entirely on recycled scratch.
    pub fn pool_stats(&self) -> PoolStats {
        self.boards.pool().stats()
    }

    /// Searches `queries` against the prepared dataset, writing the per-query
    /// sorted neighbors into the caller-owned `results` (resized to the batch;
    /// inner vectors are reused). Passing the same `results` every batch keeps
    /// even the result delivery off the allocator — combined with the scratch
    /// pool, a warmed steady-state batch performs zero heap allocation.
    ///
    /// Semantics are identical to [`ApKnnEngine::try_search_batch`]; only the
    /// per-call board-image construction cost is gone.
    ///
    /// # Errors
    /// Exactly the errors of [`ApKnnEngine::try_search_batch`], minus the
    /// dataset-shape errors already reported by [`ApKnnEngine::prepare`].
    pub fn try_search_batch_into(
        &self,
        queries: &[BinaryVector],
        options: &QueryOptions,
        results: &mut Vec<Vec<Neighbor>>,
    ) -> Result<ApRunStats, SearchError> {
        options.validate()?;
        let dims = self.boards.design().dims;
        for q in queries {
            if q.dims() != dims {
                return Err(SearchError::DimMismatch {
                    expected: dims,
                    actual: q.dims(),
                });
            }
        }

        let layout = self.boards.layout();
        // Reports address their window by a 32-bit stream offset; a batch whose
        // stream is longer than that cannot be decoded unambiguously.
        let stream_len = layout.stream_len(queries.len());
        if stream_len > u64::from(u32::MAX) {
            return Err(SearchError::CapacityExceeded {
                needed: stream_len,
                limit: u64::from(u32::MAX),
            });
        }

        let partitions = self.boards.partitions();
        let configs = partitions.len().max(1);
        // A batch wide enough to amortize lane setup runs on the lane core:
        // each 64-query chunk becomes one window-length pass instead of 64
        // concatenated windows.
        let use_lanes = queries.len() >= self.engine.lane_threshold();
        let lane_passes = queries.len().div_ceil(MAX_LANES);
        let lane_cycles_per_image = layout.window_len() as u64 * lane_passes as u64;
        let mode = match options.execution {
            ExecutionPreference::Auto => {
                // The planner sees the critical-path symbol count: board
                // images fan out over the engine's workers, so wall-clock is
                // set by the most loaded worker, not the serial sum.
                let workers = self.engine.parallelism().min(configs).max(1);
                let critical_configs = configs.div_ceil(workers) as u64;
                self.engine.planner().pick_with_lanes(
                    self.boards.board_elements(),
                    stream_len * critical_configs,
                    use_lanes.then_some(lane_cycles_per_image * critical_configs),
                )
            }
            ExecutionPreference::CycleAccurate => ExecutionMode::CycleAccurate,
            ExecutionPreference::Behavioral => ExecutionMode::Behavioral,
        };

        let k = options.k;
        // The host-side scratch: global accumulators, encoded stream, and the
        // behavioural distance buffer all come from (and return to) the pool.
        let mut host = self.boards.pool().checkout();
        arm_accumulators(&mut host.accumulators, queries.len(), k);
        let mut reports_total = 0u64;
        let mut lane_ran = false;
        // An empty batch streams nothing and an empty dataset has no boards:
        // skip execution entirely (and never compile images for it).
        if !queries.is_empty() && !partitions.is_empty() {
            match mode {
                ExecutionMode::CycleAccurate if use_lanes => {
                    // Lane path: encode each 64-query chunk as bit-planes of
                    // one window (into pooled streams — only a batch wider
                    // than any before allocates a new pass buffer), then fan
                    // the board images out exactly as the scalar path does.
                    while host.lane_streams.len() < lane_passes {
                        host.lane_streams.push(LaneStream::new());
                    }
                    for (chunk, stream) in
                        queries.chunks(MAX_LANES).zip(host.lane_streams.iter_mut())
                    {
                        encode_lane_planes_into(layout, chunk, stream);
                    }
                    let workers = self.boards.gated_workers(
                        (lane_cycles_per_image as f64 * LANE_CYCLE_COST_FACTOR) as u64,
                        self.engine.parallelism(),
                    );
                    match self.boards.fan_out_lanes_into(
                        &host.lane_streams[..lane_passes],
                        k,
                        queries.len(),
                        workers,
                        &mut host.accumulators,
                        &mut host.chunks,
                    ) {
                        Ok(reports) => {
                            reports_total = reports;
                            lane_ran = true;
                        }
                        Err(e) => {
                            self.boards.pool().give_back(host);
                            return Err(e);
                        }
                    }
                }
                ExecutionMode::CycleAccurate => {
                    // The symbol stream is identical for every board image;
                    // encode it once (into the pooled buffer), then fan the
                    // independent images out over the engine's workers. The
                    // host merge across workers is exactly the merge across
                    // sequential reconfigurations, so results and statistics
                    // are identical at any worker count.
                    layout.encode_batch_into(queries, &mut host.stream);
                    let workers = self
                        .boards
                        .gated_workers(stream_len, self.engine.parallelism());
                    match self.boards.fan_out_into(
                        &host.stream,
                        k,
                        queries.len(),
                        workers,
                        &mut host.accumulators,
                        &mut host.chunks,
                    ) {
                        Ok(reports) => reports_total = reports,
                        Err(e) => {
                            self.boards.pool().give_back(host);
                            return Err(e);
                        }
                    }
                }
                ExecutionMode::Behavioral => {
                    // Behavioural equivalent: every encoded vector reports once
                    // per query, at the offset encoding its Hamming distance.
                    // One batched word-level distance kernel per
                    // (partition, query) pair.
                    for partition in partitions {
                        for (qi, q) in queries.iter().enumerate() {
                            partition.data.hamming_batch_into(q, &mut host.distances);
                            reports_total += host.distances.len() as u64;
                            let acc = &mut host.accumulators[qi];
                            for (local, &dist) in host.distances.iter().enumerate() {
                                acc.offer(Neighbor::new(partition.global_index(local), dist));
                            }
                        }
                    }
                }
            }
        }

        let mut stats = self.engine.accounting(
            self.boards.dataset_len(),
            queries.len(),
            configs,
            reports_total,
            layout,
        );
        if lane_ran {
            stats.lane_width = MAX_LANES;
            stats.lane_fill = queries.len() as f64 / (lane_passes * MAX_LANES) as f64;
        }
        // Decode into the caller-owned results, reusing inner allocations.
        results.truncate(queries.len());
        while results.len() < queries.len() {
            results.push(Vec::new());
        }
        for (acc, neighbors) in host.accumulators.iter_mut().zip(results.iter_mut()) {
            acc.drain_sorted_into(neighbors);
            options.clip(neighbors);
        }
        self.boards.pool().give_back(host);
        Ok(stats)
    }

    /// Searches `queries` against the prepared dataset. Semantics are identical
    /// to [`ApKnnEngine::try_search_batch`]; only the per-call board-image
    /// construction cost is gone. See [`Self::try_search_batch_into`] for the
    /// allocation-free steady-state form.
    ///
    /// # Errors
    /// Exactly the errors of [`ApKnnEngine::try_search_batch`], minus the
    /// dataset-shape errors already reported by [`ApKnnEngine::prepare`].
    pub fn try_search_batch(
        &self,
        queries: &[BinaryVector],
        options: &QueryOptions,
    ) -> Result<(Vec<Vec<Neighbor>>, ApRunStats), SearchError> {
        let mut results = Vec::new();
        let stats = self.try_search_batch_into(queries, options, &mut results)?;
        Ok((results, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capacity::{BoardCapacity, CapacityModel};
    use binvec::generate::{uniform_dataset, uniform_queries};

    fn tiny_capacity(vectors_per_board: usize) -> BoardCapacity {
        BoardCapacity {
            vectors_per_board,
            model: CapacityModel::PaperCalibrated,
        }
    }

    #[test]
    fn worker_fanout_gate_scales_with_estimated_work() {
        let dims = 16;
        let data = uniform_dataset(24, dims, 70);
        let boards = PreparedBoards::new(KnnDesign::new(dims), &data, 8, false).unwrap();
        assert_eq!(boards.partitions().len(), 3);

        // Tiny batches do not amortize a thread spawn: the gate collapses the
        // requested fan-out to a single in-place worker.
        assert_eq!(boards.gated_workers(0, 8), 1);
        assert_eq!(boards.gated_workers(10, 8), 1);

        // Huge batches pass the requested width straight through.
        assert_eq!(boards.gated_workers(1_000_000, 8), 8);

        // In between, the width grows with the work estimate but never
        // exceeds the request.
        let mid = boards.gated_workers(2_000, 8);
        assert!((1..=8).contains(&mid));
        assert!(boards.gated_workers(4_000, 8) >= mid);

        // A serial request is always honored as-is (and zero is clamped up).
        assert_eq!(boards.gated_workers(1_000_000, 1), 1);
        assert_eq!(boards.gated_workers(1_000_000, 0), 1);
    }

    #[test]
    fn prepared_engine_matches_fresh_across_repeated_batches() {
        let dims = 12;
        let data = uniform_dataset(42, dims, 71);
        let engine = ApKnnEngine::new(KnnDesign::new(dims)).with_capacity(tiny_capacity(9));
        let prepared = engine.prepare(&data).unwrap();
        assert_eq!(prepared.board_count(), 5);
        assert!(!prepared.is_compiled(), "images compile on first use");
        for round in 0..3 {
            let queries = uniform_queries(4, dims, 72 + round);
            let options = QueryOptions::top(5);
            let fresh = engine.try_search_batch(&data, &queries, &options).unwrap();
            let reused = prepared.try_search_batch(&queries, &options).unwrap();
            assert_eq!(fresh, reused, "round {round}");
        }
        assert!(prepared.is_compiled());
    }

    #[test]
    fn behavioral_batches_never_compile_images() {
        let dims = 16;
        let data = uniform_dataset(30, dims, 73);
        let engine = ApKnnEngine::new(KnnDesign::new(dims))
            .with_mode(ExecutionMode::Behavioral)
            .with_capacity(tiny_capacity(10));
        let prepared = engine.prepare(&data).unwrap();
        let queries = uniform_queries(3, dims, 74);
        let (results, _) = prepared
            .try_search_batch(&queries, &QueryOptions::top(3))
            .unwrap();
        assert_eq!(results.len(), 3);
        assert!(
            !prepared.is_compiled(),
            "behavioural path builds no network"
        );
    }

    #[test]
    fn explicit_compile_prebuilds_the_images() {
        let dims = 8;
        let data = uniform_dataset(12, dims, 75);
        let prepared = ApKnnEngine::new(KnnDesign::new(dims))
            .with_capacity(tiny_capacity(5))
            .prepare(&data)
            .unwrap();
        prepared.compile().unwrap();
        assert!(prepared.is_compiled());
    }

    #[test]
    fn strict_analysis_accepts_healthy_images_and_matches_plain_results() {
        let dims = 10;
        let data = uniform_dataset(25, dims, 79);
        let plain = ApKnnEngine::new(KnnDesign::new(dims)).with_capacity(tiny_capacity(7));
        let strict = plain.clone().with_strict_analysis(true);
        assert!(strict.strict_analysis());
        let prepared = strict.prepare(&data).unwrap();
        prepared
            .compile()
            .expect("validator accepts healthy images");
        let queries = uniform_queries(3, dims, 80);
        let options = QueryOptions::top(4);
        let a = plain
            .prepare(&data)
            .unwrap()
            .try_search_batch(&queries, &options)
            .unwrap();
        let b = prepared.try_search_batch(&queries, &options).unwrap();
        assert_eq!(a, b, "strict analysis must not change results");
    }

    #[test]
    fn prepare_reports_dataset_shape_errors() {
        let engine = ApKnnEngine::new(KnnDesign::new(8));
        let wide = uniform_dataset(4, 16, 76);
        assert_eq!(
            engine.prepare(&wide).unwrap_err(),
            SearchError::DimMismatch {
                expected: 8,
                actual: 16
            }
        );
    }

    #[test]
    fn empty_dataset_and_empty_batch_are_served() {
        let dims = 8;
        let engine = ApKnnEngine::new(KnnDesign::new(dims)).with_capacity(tiny_capacity(4));
        let empty = BinaryDataset::new(dims);
        let prepared = engine.prepare(&empty).unwrap();
        assert!(prepared.is_empty());
        let queries = uniform_queries(2, dims, 77);
        let (results, stats) = prepared
            .try_search_batch(&queries, &QueryOptions::top(3))
            .unwrap();
        assert_eq!(results, vec![Vec::new(), Vec::new()]);
        assert_eq!(stats.reports, 0);
        assert_eq!(stats.board_configurations, 1);

        let data = uniform_dataset(10, dims, 78);
        let prepared = engine.prepare(&data).unwrap();
        let (results, stats) = prepared
            .try_search_batch(&[], &QueryOptions::top(3))
            .unwrap();
        assert!(results.is_empty());
        assert_eq!(stats.symbols_streamed, 0);
        assert!(!prepared.is_compiled(), "an empty batch builds nothing");
    }
}
