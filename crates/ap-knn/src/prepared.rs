//! Prepared (amortized) execution: partition once, build and compile every
//! board image once, then stream any number of query batches.
//!
//! The one-shot engine path re-partitions the dataset and rebuilds + recompiles
//! every [`PartitionNetwork`] on every `try_search_batch` call — exactly the
//! reconfiguration-dominated regime Table IV warns about, paid in host time. A
//! [`PreparedEngine`] is the board-image set of §III-C made explicit: the
//! dataset partitioning, the per-partition automata networks, and the compiled
//! sparse-frontier cores are all constructed once and cached, so a steady
//! stream of batches pays only for encoding the new symbol stream and running
//! it. Board images are compiled lazily on the first cycle-accurate batch
//! (behavioural-only traffic never builds a network at all).
//!
//! [`crate::scheduler::PreparedSchedule`] reuses the same cached image set for
//! the multi-board parallel schedule.

use crate::builder::PartitionNetwork;
use crate::decode::merge_reports_into;
use crate::design::KnnDesign;
use crate::engine::{ApKnnEngine, ApRunStats, ExecutionMode};
use crate::stream::StreamLayout;
use ap_sim::{CompiledNetwork, ReportEvent};
use binvec::dataset::DatasetPartition;
use binvec::{
    BinaryDataset, BinaryVector, ExecutionPreference, Neighbor, QueryOptions, SearchError, TopK,
};
use std::sync::OnceLock;

/// One cached board configuration: the compiled sparse-frontier core plus the
/// base index that rebases its report codes into global dataset ids.
#[derive(Clone, Debug)]
pub(crate) struct BoardImage {
    pub(crate) base_index: usize,
    pub(crate) compiled: CompiledNetwork,
}

impl BoardImage {
    /// Streams `stream` through this board image and merges its reports into
    /// the per-query accumulators. The report sink is caller-owned so one
    /// allocation serves every image a worker drives. Returns the report count.
    pub(crate) fn run(
        &self,
        layout: &StreamLayout,
        stream: &[u8],
        accumulators: &mut [TopK],
        reports: &mut Vec<ReportEvent>,
    ) -> u64 {
        // Run state is tiny (bitset words + counter slots) next to the compiled
        // structure; a fresh one per run keeps `&self` execution thread-safe.
        let mut state = self.compiled.new_state();
        reports.clear();
        self.compiled.run_into(&mut state, stream, reports);
        merge_reports_into(layout, reports, self.base_index, accumulators);
        reports.len() as u64
    }
}

/// One worker's share of a fanned-out batch: its merged top-k accumulators,
/// report count, and how many board images it ran.
pub(crate) struct WorkerOutput {
    pub(crate) accumulators: Vec<TopK>,
    pub(crate) reports: u64,
    pub(crate) images_run: usize,
}

/// The shared partition + board-image cache behind [`PreparedEngine`] and
/// [`crate::scheduler::PreparedSchedule`].
#[derive(Clone, Debug)]
pub(crate) struct PreparedBoards {
    design: KnnDesign,
    layout: StreamLayout,
    partitions: Vec<DatasetPartition>,
    dataset_len: usize,
    /// Compiled board images, built on the first cycle-accurate run.
    images: OnceLock<Result<Vec<BoardImage>, SearchError>>,
}

impl PreparedBoards {
    /// Partitions `data` for `design` at `vectors_per_board` vectors per image.
    ///
    /// # Errors
    /// [`SearchError::ZeroDims`] for a zero-dimension design and
    /// [`SearchError::DimMismatch`] when the dataset disagrees with it.
    pub(crate) fn new(
        design: KnnDesign,
        data: &BinaryDataset,
        vectors_per_board: usize,
    ) -> Result<Self, SearchError> {
        if design.dims == 0 {
            return Err(SearchError::ZeroDims);
        }
        if data.dims() != design.dims {
            return Err(SearchError::DimMismatch {
                expected: design.dims,
                actual: data.dims(),
            });
        }
        Ok(Self {
            design,
            layout: StreamLayout::for_design(&design),
            partitions: data.partition(vectors_per_board.max(1)),
            dataset_len: data.len(),
            images: OnceLock::new(),
        })
    }

    pub(crate) fn design(&self) -> &KnnDesign {
        &self.design
    }

    pub(crate) fn layout(&self) -> &StreamLayout {
        &self.layout
    }

    pub(crate) fn partitions(&self) -> &[DatasetPartition] {
        &self.partitions
    }

    pub(crate) fn dataset_len(&self) -> usize {
        self.dataset_len
    }

    /// Fabric elements of the largest board image (partition 0 by
    /// construction) — the planner's fabric-size input.
    pub(crate) fn board_elements(&self) -> usize {
        let vectors = self.partitions.first().map_or(0, |p| p.data.len());
        vectors * (self.design.stes_per_vector() + self.design.counters_per_vector())
    }

    /// Whether the board images have been built and compiled successfully
    /// (a cached compile *failure* does not count as compiled).
    pub(crate) fn is_compiled(&self) -> bool {
        self.images.get().is_some_and(|r| r.is_ok())
    }

    /// Streams the (shared) encoded query batch through every cached board
    /// image, fanning the images out over up to `workers` scoped threads —
    /// each standing in for one board — with per-worker top-k accumulators.
    /// This is the one partition-execution recipe behind both the engine's
    /// serial/parallel schedules and [`crate::scheduler::PreparedSchedule`],
    /// so the two stay bit-identical by construction. Returns one
    /// [`WorkerOutput`] per contiguous image chunk, in assignment order.
    pub(crate) fn fan_out(
        &self,
        stream: &[u8],
        k: usize,
        queries_len: usize,
        workers: usize,
    ) -> Result<Vec<WorkerOutput>, SearchError> {
        let images = self.images()?;
        let layout = &self.layout;
        // Contiguous assignment: worker w owns images [w·span, (w+1)·span).
        let workers = workers.min(images.len()).max(1);
        let span = images.len().div_ceil(workers).max(1);

        let run_chunk = |owned: &[BoardImage]| {
            let mut accumulators: Vec<TopK> = (0..queries_len).map(|_| TopK::new(k)).collect();
            let mut reports_total = 0u64;
            // One cached compiled core per image, one report allocation
            // reused across the worker's images.
            let mut reports = Vec::new();
            for image in owned {
                reports_total += image.run(layout, stream, &mut accumulators, &mut reports);
            }
            WorkerOutput {
                accumulators,
                reports: reports_total,
                images_run: owned.len(),
            }
        };

        if workers <= 1 {
            return Ok(images.chunks(span).map(run_chunk).collect());
        }
        Ok(std::thread::scope(|scope| {
            let handles: Vec<_> = images
                .chunks(span)
                .map(|owned| scope.spawn(move || run_chunk(owned)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("board-image worker panicked"))
                .collect()
        }))
    }

    /// The compiled board images, building every [`PartitionNetwork`] and
    /// compiling its sparse-frontier core on first use.
    pub(crate) fn images(&self) -> Result<&[BoardImage], SearchError> {
        self.images
            .get_or_init(|| {
                self.partitions
                    .iter()
                    .map(|partition| {
                        let pn = PartitionNetwork::build(partition, &self.design);
                        let compiled = CompiledNetwork::compile(&pn.network).map_err(|e| {
                            SearchError::Backend {
                                backend: "ap-knn".to_string(),
                                reason: e.to_string(),
                            }
                        })?;
                        Ok(BoardImage {
                            base_index: partition.base_index,
                            compiled,
                        })
                    })
                    .collect()
            })
            .as_deref()
            .map_err(|e| e.clone())
    }
}

/// An [`ApKnnEngine`] bound to a dataset with its board images cached.
///
/// Created by [`ApKnnEngine::prepare`]. Repeated [`Self::try_search_batch`]
/// calls reuse the partitioning and the compiled cores, so steady-state batch
/// cost is encoding + streaming only; results and [`ApRunStats`] are
/// bit-identical to the one-shot engine path (proptest-enforced in
/// `tests/prepared_engine.rs`).
#[derive(Clone, Debug)]
pub struct PreparedEngine {
    engine: ApKnnEngine,
    boards: PreparedBoards,
}

impl PreparedEngine {
    pub(crate) fn new(engine: ApKnnEngine, data: &BinaryDataset) -> Result<Self, SearchError> {
        let boards =
            PreparedBoards::new(*engine.design(), data, engine.capacity().vectors_per_board)?;
        Ok(Self { engine, boards })
    }

    /// The engine configuration this preparation was made with.
    pub fn engine(&self) -> &ApKnnEngine {
        &self.engine
    }

    /// Vectors served.
    pub fn len(&self) -> usize {
        self.boards.dataset_len()
    }

    /// Whether the prepared dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.boards.dataset_len() == 0
    }

    /// Dimensionality of the served vectors.
    pub fn dims(&self) -> usize {
        self.boards.design().dims
    }

    /// Board configurations (dataset partitions) in the prepared image set.
    pub fn board_count(&self) -> usize {
        self.boards.partitions().len()
    }

    /// Whether the board images have been built and compiled yet (they are
    /// compiled lazily by the first cycle-accurate batch).
    pub fn is_compiled(&self) -> bool {
        self.boards.is_compiled()
    }

    /// Builds and compiles the board images now instead of on the first
    /// cycle-accurate batch, so serving traffic never pays the compile.
    ///
    /// # Errors
    /// [`SearchError::Backend`] if a partition network fails validation.
    pub fn compile(&self) -> Result<(), SearchError> {
        self.boards.images().map(|_| ())
    }

    /// Searches `queries` against the prepared dataset. Semantics are identical
    /// to [`ApKnnEngine::try_search_batch`]; only the per-call board-image
    /// construction cost is gone.
    ///
    /// # Errors
    /// Exactly the errors of [`ApKnnEngine::try_search_batch`], minus the
    /// dataset-shape errors already reported by [`ApKnnEngine::prepare`].
    pub fn try_search_batch(
        &self,
        queries: &[BinaryVector],
        options: &QueryOptions,
    ) -> Result<(Vec<Vec<Neighbor>>, ApRunStats), SearchError> {
        options.validate()?;
        let dims = self.boards.design().dims;
        for q in queries {
            if q.dims() != dims {
                return Err(SearchError::DimMismatch {
                    expected: dims,
                    actual: q.dims(),
                });
            }
        }

        let layout = self.boards.layout();
        // Reports address their window by a 32-bit stream offset; a batch whose
        // stream is longer than that cannot be decoded unambiguously.
        let stream_len = layout.stream_len(queries.len());
        if stream_len > u64::from(u32::MAX) {
            return Err(SearchError::CapacityExceeded {
                needed: stream_len,
                limit: u64::from(u32::MAX),
            });
        }

        let partitions = self.boards.partitions();
        let configs = partitions.len().max(1);
        let mode = match options.execution {
            ExecutionPreference::Auto => {
                // The planner sees the critical-path symbol count: board
                // images fan out over the engine's workers, so wall-clock is
                // set by the most loaded worker, not the serial sum.
                let workers = self.engine.parallelism().min(configs).max(1);
                let critical_configs = configs.div_ceil(workers) as u64;
                self.engine
                    .planner()
                    .pick(self.boards.board_elements(), stream_len * critical_configs)
            }
            ExecutionPreference::CycleAccurate => ExecutionMode::CycleAccurate,
            ExecutionPreference::Behavioral => ExecutionMode::Behavioral,
        };

        let k = options.k;
        let mut accumulators: Vec<TopK> = (0..queries.len()).map(|_| TopK::new(k)).collect();
        let mut reports_total = 0u64;
        // An empty batch streams nothing and an empty dataset has no boards:
        // skip execution entirely (and never compile images for it).
        if !queries.is_empty() && !partitions.is_empty() {
            match mode {
                ExecutionMode::CycleAccurate => {
                    // The symbol stream is identical for every board image;
                    // encode it once, then fan the independent images out over
                    // the engine's workers. The host merge across workers is
                    // exactly the merge across sequential reconfigurations, so
                    // results and statistics are identical at any worker count.
                    let stream = layout.encode_batch(queries);
                    let outputs = self.boards.fan_out(
                        &stream,
                        k,
                        queries.len(),
                        self.engine.parallelism(),
                    )?;
                    for output in outputs {
                        for (global, partial) in accumulators.iter_mut().zip(&output.accumulators) {
                            global.merge(partial);
                        }
                        reports_total += output.reports;
                    }
                }
                ExecutionMode::Behavioral => {
                    // Behavioural equivalent: every encoded vector reports once
                    // per query, at the offset encoding its Hamming distance.
                    // One batched word-level distance kernel per
                    // (partition, query) pair.
                    let mut distances = Vec::new();
                    for partition in partitions {
                        for (qi, q) in queries.iter().enumerate() {
                            partition.data.hamming_batch_into(q, &mut distances);
                            reports_total += distances.len() as u64;
                            let acc = &mut accumulators[qi];
                            for (local, &dist) in distances.iter().enumerate() {
                                acc.offer(Neighbor::new(partition.global_index(local), dist));
                            }
                        }
                    }
                }
            }
        }

        let stats = self.engine.accounting(
            self.boards.dataset_len(),
            queries.len(),
            configs,
            reports_total,
            layout,
        );
        let mut results: Vec<Vec<Neighbor>> =
            accumulators.into_iter().map(TopK::into_sorted).collect();
        for neighbors in &mut results {
            options.clip(neighbors);
        }
        Ok((results, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capacity::{BoardCapacity, CapacityModel};
    use binvec::generate::{uniform_dataset, uniform_queries};

    fn tiny_capacity(vectors_per_board: usize) -> BoardCapacity {
        BoardCapacity {
            vectors_per_board,
            model: CapacityModel::PaperCalibrated,
        }
    }

    #[test]
    fn prepared_engine_matches_fresh_across_repeated_batches() {
        let dims = 12;
        let data = uniform_dataset(42, dims, 71);
        let engine = ApKnnEngine::new(KnnDesign::new(dims)).with_capacity(tiny_capacity(9));
        let prepared = engine.prepare(&data).unwrap();
        assert_eq!(prepared.board_count(), 5);
        assert!(!prepared.is_compiled(), "images compile on first use");
        for round in 0..3 {
            let queries = uniform_queries(4, dims, 72 + round);
            let options = QueryOptions::top(5);
            let fresh = engine.try_search_batch(&data, &queries, &options).unwrap();
            let reused = prepared.try_search_batch(&queries, &options).unwrap();
            assert_eq!(fresh, reused, "round {round}");
        }
        assert!(prepared.is_compiled());
    }

    #[test]
    fn behavioral_batches_never_compile_images() {
        let dims = 16;
        let data = uniform_dataset(30, dims, 73);
        let engine = ApKnnEngine::new(KnnDesign::new(dims))
            .with_mode(ExecutionMode::Behavioral)
            .with_capacity(tiny_capacity(10));
        let prepared = engine.prepare(&data).unwrap();
        let queries = uniform_queries(3, dims, 74);
        let (results, _) = prepared
            .try_search_batch(&queries, &QueryOptions::top(3))
            .unwrap();
        assert_eq!(results.len(), 3);
        assert!(
            !prepared.is_compiled(),
            "behavioural path builds no network"
        );
    }

    #[test]
    fn explicit_compile_prebuilds_the_images() {
        let dims = 8;
        let data = uniform_dataset(12, dims, 75);
        let prepared = ApKnnEngine::new(KnnDesign::new(dims))
            .with_capacity(tiny_capacity(5))
            .prepare(&data)
            .unwrap();
        prepared.compile().unwrap();
        assert!(prepared.is_compiled());
    }

    #[test]
    fn prepare_reports_dataset_shape_errors() {
        let engine = ApKnnEngine::new(KnnDesign::new(8));
        let wide = uniform_dataset(4, 16, 76);
        assert_eq!(
            engine.prepare(&wide).unwrap_err(),
            SearchError::DimMismatch {
                expected: 8,
                actual: 16
            }
        );
    }

    #[test]
    fn empty_dataset_and_empty_batch_are_served() {
        let dims = 8;
        let engine = ApKnnEngine::new(KnnDesign::new(dims)).with_capacity(tiny_capacity(4));
        let empty = BinaryDataset::new(dims);
        let prepared = engine.prepare(&empty).unwrap();
        assert!(prepared.is_empty());
        let queries = uniform_queries(2, dims, 77);
        let (results, stats) = prepared
            .try_search_batch(&queries, &QueryOptions::top(3))
            .unwrap();
        assert_eq!(results, vec![Vec::new(), Vec::new()]);
        assert_eq!(stats.reports, 0);
        assert_eq!(stats.board_configurations, 1);

        let data = uniform_dataset(10, dims, 78);
        let prepared = engine.prepare(&data).unwrap();
        let (results, stats) = prepared
            .try_search_batch(&[], &QueryOptions::top(3))
            .unwrap();
        assert!(results.is_empty());
        assert_eq!(stats.symbols_streamed, 0);
        assert!(!prepared.is_compiled(), "an empty batch builds nothing");
    }
}
