//! Jaccard-similarity search automata.
//!
//! Besides Hamming distance, the paper notes (§II-C) that "Hamming distance and
//! Jaccard similarity on the AP is well-documented and can be efficiently
//! implemented" — Jaccard is the other metric the Micron application notes cover,
//! and it is the natural choice when binary vectors are sparse set indicators
//! (tags, shingles, n-gram sets) rather than dense quantized descriptors.
//!
//! The automata design reuses the Hamming/sorting macro of [`crate::macros`]
//! unchanged except for the match-state symbol classes: the match state of
//! dimension *i* activates only when the *encoded* bit is 1 **and** the streamed
//! query bit is 1 (0-bit dimensions match a reserved symbol the encoder never
//! emits), so the counter accumulates the **intersection size**
//! `|x ∩ q|` instead of the inverted Hamming distance. The temporal sort then
//! reports vectors in order of decreasing intersection, and the report offset
//! decodes to `d − |x ∩ q|` through the same [`StreamLayout`] arithmetic.
//!
//! Because the Jaccard similarity `|x ∩ q| / |x ∪ q|` also depends on the two set
//! sizes, the host finishes the job with information it already has: the dataset
//! popcounts are known offline (they are a property of the encoded vectors) and the
//! query popcount is known when the query is encoded. The AP still does all the
//! per-candidate work — the host performs a constant-time fix-up per report, not a
//! rescan of the dataset.

use crate::design::KnnDesign;
use crate::macros::{append_vector_macro_with_symbols, VectorMacroHandles};
use crate::stream::StreamLayout;
use ap_sim::{ApResult, AutomataNetwork, Simulator, SymbolClass};
use binvec::{BinaryDataset, BinaryVector};

/// One Jaccard search result.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct JaccardNeighbor {
    /// Global dataset index of the neighbor.
    pub id: usize,
    /// Intersection size `|x ∩ q|` recovered from the temporal sort.
    pub intersection: u32,
    /// Union size `|x ∪ q| = |x| + |q| − |x ∩ q|`.
    pub union: u32,
    /// Jaccard similarity `|x ∩ q| / |x ∪ q|` (1.0 when both sets are empty).
    pub similarity: f64,
}

impl JaccardNeighbor {
    /// Builds a neighbor record from the decoded intersection and the two popcounts.
    pub fn from_counts(id: usize, intersection: u32, data_ones: u32, query_ones: u32) -> Self {
        let union = data_ones + query_ones - intersection;
        let similarity = if union == 0 {
            1.0
        } else {
            f64::from(intersection) / f64::from(union)
        };
        Self {
            id,
            intersection,
            union,
            similarity,
        }
    }
}

/// Symbol class for a Jaccard match state: dimensions encoded as 1 match the query
/// symbol `1`; dimensions encoded as 0 never match — their STE carries the
/// alphabet's reserved never-streamed symbol (an empty class would be rejected by
/// `AutomataNetwork::validate` as a can-never-match construction bug), so they
/// contribute nothing to the intersection counter.
fn jaccard_symbols(design: &KnnDesign, bit: bool) -> SymbolClass {
    if bit {
        SymbolClass::single(design.alphabet.data_symbol(true))
    } else {
        SymbolClass::single(design.alphabet.never_symbol())
    }
}

/// Appends one Jaccard macro (intersection counter + sorting macro) for `vector`.
///
/// Structure, handles and report semantics are identical to
/// [`crate::macros::append_vector_macro`]; only the match-state symbol classes
/// differ, so every capacity and timing model that applies to the Hamming design
/// applies to the Jaccard design unchanged.
pub fn append_jaccard_macro(
    net: &mut AutomataNetwork,
    vector: &BinaryVector,
    report_code: u32,
    design: &KnnDesign,
) -> VectorMacroHandles {
    append_vector_macro_with_symbols(net, vector, report_code, design, &jaccard_symbols)
}

/// Decodes a report offset (window-relative) into the intersection size.
///
/// Returns `None` for offsets outside the sort phase.
pub fn intersection_for_report_offset(layout: &StreamLayout, window_offset: usize) -> Option<u32> {
    layout
        .distance_for_report_offset(window_offset)
        .map(|missing| layout.dims as u32 - missing)
}

/// End-to-end Jaccard top-k search over a (possibly multi-partition) dataset on the
/// cycle-accurate AP simulator.
#[derive(Clone, Debug)]
pub struct JaccardSearcher {
    design: KnnDesign,
    chunk: usize,
}

impl JaccardSearcher {
    /// Creates a searcher for the given design, using the paper-calibrated board
    /// capacity as the partition size.
    pub fn new(design: KnnDesign) -> Self {
        let chunk = crate::capacity::BoardCapacity::paper_calibrated(design.dims).vectors_per_board;
        Self { design, chunk }
    }

    /// Overrides the number of vectors per board partition.
    ///
    /// # Panics
    /// Panics if `chunk` is zero.
    pub fn with_chunk(mut self, chunk: usize) -> Self {
        assert!(chunk > 0, "partition size must be positive");
        self.chunk = chunk;
        self
    }

    /// The design this searcher was built for.
    pub fn design(&self) -> &KnnDesign {
        &self.design
    }

    /// The partition size in vectors per board configuration.
    pub fn chunk(&self) -> usize {
        self.chunk
    }

    /// Searches `queries` against `dataset`, returning for each query the top `k`
    /// neighbors by decreasing Jaccard similarity (ties broken by dataset id).
    ///
    /// # Panics
    /// Panics if the dataset dimensionality differs from the design's.
    pub fn search_batch(
        &self,
        dataset: &BinaryDataset,
        queries: &[BinaryVector],
        k: usize,
    ) -> ApResult<Vec<Vec<JaccardNeighbor>>> {
        assert_eq!(
            dataset.dims(),
            self.design.dims,
            "dataset dims {} != design dims {}",
            dataset.dims(),
            self.design.dims
        );
        let layout = StreamLayout::for_design(&self.design);
        let stream = layout.encode_batch(queries);
        let query_ones: Vec<u32> = queries.iter().map(BinaryVector::count_ones).collect();
        let mut results: Vec<Vec<JaccardNeighbor>> = vec![Vec::new(); queries.len()];

        let mut base = 0usize;
        while base < dataset.len() {
            let end = (base + self.chunk).min(dataset.len());

            // Build one board image for this partition.
            let mut net = AutomataNetwork::new();
            let mut data_ones = Vec::with_capacity(end - base);
            for local in 0..(end - base) {
                let vector = dataset.vector(base + local);
                data_ones.push(vector.count_ones());
                append_jaccard_macro(&mut net, &vector, local as u32, &self.design);
            }

            // Stream every query through it.
            let mut sim = Simulator::new(&net)?;
            let reports = sim.run(&stream);
            for r in &reports {
                let (query_idx, window_offset) = layout.split_offset(r.offset);
                if query_idx >= queries.len() {
                    continue;
                }
                let Some(intersection) = intersection_for_report_offset(&layout, window_offset)
                else {
                    continue;
                };
                let local = r.code as usize;
                results[query_idx].push(JaccardNeighbor::from_counts(
                    base + local,
                    intersection,
                    data_ones[local],
                    query_ones[query_idx],
                ));
            }

            // Bound the per-query accumulator between partitions.
            for acc in &mut results {
                sort_by_similarity(acc);
                acc.truncate(k.max(1) * 4);
            }
            base = end;
        }

        for acc in &mut results {
            sort_by_similarity(acc);
            acc.truncate(k);
        }
        Ok(results)
    }
}

/// Sorts neighbors by decreasing similarity, breaking ties by increasing id.
fn sort_by_similarity(neighbors: &mut [JaccardNeighbor]) {
    neighbors.sort_by(|a, b| {
        b.similarity
            .partial_cmp(&a.similarity)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.id.cmp(&b.id))
    });
}

/// Brute-force reference: top-k by Jaccard similarity computed directly from the
/// vectors (used by the tests, the benches and the accuracy experiments).
pub fn brute_force_jaccard(
    dataset: &BinaryDataset,
    query: &BinaryVector,
    k: usize,
) -> Vec<JaccardNeighbor> {
    let mut all: Vec<JaccardNeighbor> = (0..dataset.len())
        .map(|i| {
            let v = dataset.vector(i);
            let mut inter = 0u32;
            for d in 0..v.dims() {
                if v.get(d) && query.get(d) {
                    inter += 1;
                }
            }
            JaccardNeighbor::from_counts(i, inter, v.count_ones(), query.count_ones())
        })
        .collect();
    sort_by_similarity(&mut all);
    all.truncate(k);
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use binvec::generate;

    fn intersection_of(a: &BinaryVector, b: &BinaryVector) -> u32 {
        (0..a.dims()).filter(|&i| a.get(i) && b.get(i)).count() as u32
    }

    #[test]
    fn macro_counts_intersection_exhaustively() {
        let design = KnnDesign::new(3);
        let layout = StreamLayout::for_design(&design);
        for data_bits in 0..8u8 {
            let data: Vec<u8> = (0..3).map(|i| (data_bits >> i) & 1).collect();
            let data_vec = BinaryVector::from_bits(&data);
            let mut net = AutomataNetwork::new();
            append_jaccard_macro(&mut net, &data_vec, 0, &design);
            for query_bits in 0..8u8 {
                let query: Vec<u8> = (0..3).map(|i| (query_bits >> i) & 1).collect();
                let query_vec = BinaryVector::from_bits(&query);
                let mut sim = Simulator::new(&net).unwrap();
                let reports = sim.run(&layout.encode_query(&query_vec));
                assert_eq!(
                    reports.len(),
                    1,
                    "data {data_bits:#05b} query {query_bits:#05b}"
                );
                let inter =
                    intersection_for_report_offset(&layout, reports[0].offset as usize).unwrap();
                assert_eq!(
                    inter,
                    intersection_of(&data_vec, &query_vec),
                    "data {data_bits:#05b} query {query_bits:#05b}"
                );
            }
        }
    }

    #[test]
    fn neighbor_from_counts_handles_empty_union() {
        let n = JaccardNeighbor::from_counts(3, 0, 0, 0);
        assert_eq!(n.union, 0);
        assert_eq!(n.similarity, 1.0);
        // Consistent with the binvec convention.
        let a = BinaryVector::zeros(8);
        assert_eq!(a.jaccard(&a), 1.0);
    }

    #[test]
    fn neighbor_from_counts_matches_direct_similarity() {
        let a = BinaryVector::from_bits(&[1, 1, 0, 1, 0, 0, 1, 0]);
        let b = BinaryVector::from_bits(&[1, 0, 0, 1, 1, 0, 1, 1]);
        let inter = intersection_of(&a, &b);
        let n = JaccardNeighbor::from_counts(0, inter, a.count_ones(), b.count_ones());
        assert!((n.similarity - a.jaccard(&b)).abs() < 1e-12);
        assert_eq!(n.union, a.count_ones() + b.count_ones() - inter);
    }

    #[test]
    fn searcher_matches_brute_force_ranking() {
        let dims = 16;
        let dataset = generate::uniform_dataset(48, dims, 11);
        let queries = generate::uniform_queries(6, dims, 12);
        let searcher = JaccardSearcher::new(KnnDesign::new(dims)).with_chunk(16);
        let got = searcher.search_batch(&dataset, &queries, 5).unwrap();
        assert_eq!(got.len(), queries.len());
        for (query, result) in queries.iter().zip(&got) {
            let expected = brute_force_jaccard(&dataset, query, 5);
            assert_eq!(result.len(), expected.len());
            for (g, e) in result.iter().zip(&expected) {
                assert!(
                    (g.similarity - e.similarity).abs() < 1e-12,
                    "similarity mismatch: {g:?} vs {e:?}"
                );
            }
            // The top result must be an exact id match unless tied.
            if expected.len() > 1 && expected[0].similarity > expected[1].similarity {
                assert_eq!(result[0].id, expected[0].id);
            }
        }
    }

    #[test]
    fn partitioning_does_not_change_results() {
        let dims = 12;
        let dataset = generate::uniform_dataset(30, dims, 3);
        let queries = generate::uniform_queries(3, dims, 4);
        let design = KnnDesign::new(dims);
        let one = JaccardSearcher::new(design)
            .with_chunk(1024)
            .search_batch(&dataset, &queries, 4)
            .unwrap();
        let many = JaccardSearcher::new(design)
            .with_chunk(7)
            .search_batch(&dataset, &queries, 4)
            .unwrap();
        for (a, b) in one.iter().zip(&many) {
            let sims_a: Vec<f64> = a.iter().map(|n| n.similarity).collect();
            let sims_b: Vec<f64> = b.iter().map(|n| n.similarity).collect();
            assert_eq!(sims_a, sims_b);
        }
    }

    #[test]
    fn searcher_exposes_configuration() {
        let design = KnnDesign::new(64);
        let searcher = JaccardSearcher::new(design);
        assert_eq!(searcher.design().dims, 64);
        assert!(searcher.chunk() >= 1);
        let searcher = searcher.with_chunk(17);
        assert_eq!(searcher.chunk(), 17);
    }

    #[test]
    #[should_panic(expected = "partition size")]
    fn zero_chunk_panics() {
        let _ = JaccardSearcher::new(KnnDesign::new(8)).with_chunk(0);
    }

    #[test]
    #[should_panic(expected = "dataset dims")]
    fn mismatched_dataset_dims_panics() {
        let dataset = generate::uniform_dataset(4, 8, 1);
        let queries = generate::uniform_queries(1, 8, 2);
        let _ = JaccardSearcher::new(KnnDesign::new(16)).search_batch(&dataset, &queries, 1);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// The Jaccard macro's decoded intersection equals `popcount(x & q)` for any
        /// vector/query pair.
        #[test]
        fn macro_reports_true_intersection(
            dims in 1usize..24,
            data_bits in prop::collection::vec(any::<bool>(), 1..24),
            query_bits in prop::collection::vec(any::<bool>(), 1..24),
        ) {
            let dims = dims.min(data_bits.len()).min(query_bits.len());
            let data = BinaryVector::from_bools(&data_bits[..dims]);
            let query = BinaryVector::from_bools(&query_bits[..dims]);
            let design = KnnDesign::new(dims);
            let layout = StreamLayout::for_design(&design);
            let mut net = AutomataNetwork::new();
            append_jaccard_macro(&mut net, &data, 0, &design);
            let mut sim = Simulator::new(&net).unwrap();
            let reports = sim.run(&layout.encode_query(&query));
            prop_assert_eq!(reports.len(), 1);
            let inter = intersection_for_report_offset(&layout, reports[0].offset as usize);
            let expected = (0..dims).filter(|&i| data.get(i) && query.get(i)).count() as u32;
            prop_assert_eq!(inter, Some(expected));
        }
    }
}
