//! Board capacity: how many dataset vectors fit in one AP board configuration.
//!
//! Two models are provided:
//!
//! * [`BoardCapacity::from_placement`] — a first-principles estimate from this
//!   workspace's macro cost model and the device resource model (bounded by STEs,
//!   counters, reporting states and — for low-dimensional workloads — the PCIe
//!   report bandwidth, which is what limited kNN-WordEmbed in the paper);
//! * [`BoardCapacity::paper_calibrated`] — the figures the paper reports from the
//!   vendor toolchain: 1024 vectors per configuration at ≤128 dimensions, 512 at 256
//!   dimensions ("up to 128 Kb of encoded data per board configuration"). The
//!   end-to-end engine defaults to these so reconfiguration counts and indexing
//!   bucket sizes match the evaluation exactly.

use crate::design::KnnDesign;
use ap_sim::{ComponentDemand, Placer, TimingModel};
use serde::{Deserialize, Serialize};

/// How the per-board vector capacity was determined.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CapacityModel {
    /// Derived from the placement/resource model in this workspace.
    Placement,
    /// The numbers reported by the paper's toolchain runs.
    PaperCalibrated,
}

/// Vectors per board configuration, with provenance.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BoardCapacity {
    /// Number of dataset vectors encodable per board configuration.
    pub vectors_per_board: usize,
    /// Which model produced the figure.
    pub model: CapacityModel,
}

impl BoardCapacity {
    /// The paper-calibrated capacity for a given dimensionality: 128 Kb of encoded
    /// data per configuration, additionally capped at 1024 vectors by the PCIe
    /// report-bandwidth limit the paper hits on kNN-WordEmbed.
    pub fn paper_calibrated(dims: usize) -> Self {
        assert!(dims > 0, "dimensionality must be positive");
        let payload_limited = (128 * 1024) / dims;
        Self {
            vectors_per_board: payload_limited.clamp(1, 1024),
            model: CapacityModel::PaperCalibrated,
        }
    }

    /// Capacity derived from the macro cost model and the device resource model.
    ///
    /// The binding constraints are, in practice:
    /// * STEs: `stes_per_vector(d)` per vector against the board total;
    /// * counters: one per vector against the board total;
    /// * reporting states: one per vector against the board total;
    /// * PCIe report bandwidth: the sustained report traffic `32·(n+d)` bits per
    ///   `2d` cycles must stay below the PCIe Gen3 ×8 budget.
    pub fn from_placement(design: &KnnDesign) -> Self {
        let device = &design.device;
        let per_vec = ComponentDemand {
            stes: design.stes_per_vector(),
            counters: design.counters_per_vector(),
            booleans: 0,
            reporting: 1,
        };

        // Resource bound via binary search over the analytic placement model.
        let placer = Placer::new(*device);
        let mut lo = 1usize;
        let mut hi = device.stes_per_board() / per_vec.stes + 1;
        while lo < hi {
            let mid = lo + (hi - lo).div_ceil(2);
            let fits = placer
                .estimate_from_demands(&vec![per_vec; mid])
                .map(|r| r.fits())
                .unwrap_or(false);
            if fits {
                lo = mid;
            } else {
                hi = mid - 1;
            }
        }
        let resource_bound = lo;

        // PCIe report-bandwidth bound.
        let timing = TimingModel::new(*device);
        let mut bandwidth_bound = resource_bound;
        while bandwidth_bound > 1
            && timing.report_bandwidth_gbps(bandwidth_bound as u64, design.dims as u64)
                > TimingModel::PCIE_GEN3_X8_GBPS
        {
            bandwidth_bound -= 1;
        }

        Self {
            vectors_per_board: resource_bound.min(bandwidth_bound).max(1),
            model: CapacityModel::Placement,
        }
    }

    /// Number of board configurations (partial reconfigurations) needed for a
    /// dataset of `n` vectors.
    pub fn configurations_for(&self, n: usize) -> usize {
        n.div_ceil(self.vectors_per_board).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_calibrated_matches_section_5a() {
        assert_eq!(BoardCapacity::paper_calibrated(64).vectors_per_board, 1024);
        assert_eq!(BoardCapacity::paper_calibrated(128).vectors_per_board, 1024);
        assert_eq!(BoardCapacity::paper_calibrated(256).vectors_per_board, 512);
    }

    #[test]
    fn paper_calibrated_scales_down_for_very_wide_vectors() {
        let c = BoardCapacity::paper_calibrated(1024);
        assert_eq!(c.vectors_per_board, 128);
        assert_eq!(
            BoardCapacity::paper_calibrated(1 << 20).vectors_per_board,
            1
        );
    }

    #[test]
    fn placement_capacity_reflects_resource_and_pcie_bounds() {
        let c64 = BoardCapacity::from_placement(&KnnDesign::new(64));
        let c128 = BoardCapacity::from_placement(&KnnDesign::new(128));
        let c256 = BoardCapacity::from_placement(&KnnDesign::new(256));
        assert!(c64.vectors_per_board > 0);
        // Above 64 dimensions the STE cost per vector dominates, so capacity shrinks
        // with dimensionality.
        assert!(c128.vectors_per_board >= c256.vectors_per_board);
        // At 64 dimensions the PCIe report bandwidth is the binding constraint (the
        // paper's kNN-WordEmbed footnote): the capacity is *lower* than the pure
        // resource bound would allow, and lower than the 128-dimension capacity.
        assert!(c64.vectors_per_board < c128.vectors_per_board);
        let device = KnnDesign::new(64).device;
        let resource_only = device.stes_per_board() / KnnDesign::new(64).stes_per_vector();
        assert!(c64.vectors_per_board < resource_only);
        assert_eq!(c64.model, CapacityModel::Placement);
    }

    #[test]
    fn placement_capacity_exceeds_paper_figures() {
        // Our placement model is more optimistic than the vendor compiler (it does
        // not model routing congestion), so it should admit at least the paper's
        // calibrated vector counts.
        for dims in [64usize, 128, 256] {
            let placement = BoardCapacity::from_placement(&KnnDesign::new(dims));
            let paper = BoardCapacity::paper_calibrated(dims);
            assert!(
                placement.vectors_per_board >= paper.vectors_per_board,
                "dims {dims}: placement {} < paper {}",
                placement.vectors_per_board,
                paper.vectors_per_board
            );
        }
    }

    #[test]
    fn configuration_counts() {
        let c = BoardCapacity::paper_calibrated(256);
        assert_eq!(c.configurations_for(512), 1);
        assert_eq!(c.configurations_for(513), 2);
        assert_eq!(c.configurations_for(1 << 20), 2048);
        assert_eq!(c.configurations_for(0), 1);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_dims_panics() {
        let _ = BoardCapacity::paper_calibrated(0);
    }
}
