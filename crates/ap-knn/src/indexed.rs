//! Spatial indexing in front of the AP: host-side traversal, AP-side bucket scan.
//!
//! §III-D of the paper argues that index traversal should be factored out to the host
//! processor: only a few traversals per query are relevant, so encoding the index as
//! automata would waste nearly every NFA's work. Instead, the host traverses a
//! kd-tree / hierarchical-k-means / LSH index, selects the bucket (≈ one AP board
//! configuration worth of vectors), and the AP linearly scans that bucket.
//!
//! [`IndexedApEngine`] wraps any [`BucketIndex`] from the `baselines` crate: the
//! functional results come from scanning exactly the candidates the index selects
//! (so CPU-indexed and AP-indexed searches return identical answers), while the run
//! statistics account for host traversal work, AP streaming and any board
//! reconfigurations needed to load the buckets — the model behind Table V.

use crate::capacity::BoardCapacity;
use crate::design::KnnDesign;
use crate::stream::StreamLayout;
use ap_sim::TimingModel;
use baselines::BucketIndex;
use binvec::{BinaryVector, Neighbor, TopK};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Accounting for an indexed (bucket-scan) AP search.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct IndexedRunStats {
    /// Queries executed.
    pub queries: usize,
    /// Total candidates scanned on the AP across all queries.
    pub candidates_scanned: u64,
    /// Host-side index traversal operations (distance computations / hash probes).
    pub traversal_ops: u64,
    /// Board configurations loaded (≥ 1; buckets resident in the current image are
    /// free, others require a partial reconfiguration).
    pub reconfigurations: u64,
    /// Symbols streamed on the AP.
    pub symbols_streamed: u64,
    /// Estimated AP seconds (streaming + reconfiguration).
    pub ap_seconds: f64,
    /// Estimated host seconds for index traversal.
    pub host_seconds: f64,
}

impl IndexedRunStats {
    /// Total estimated seconds (host + AP; the two are serialized per query batch).
    pub fn total_seconds(&self) -> f64 {
        self.ap_seconds + self.host_seconds
    }
}

/// An AP engine fronted by a host-resident spatial index.
///
/// The index must expose both the candidate buckets ([`BucketIndex`]) and the raw
/// vectors ([`IndexedDataAccess`]); [`DatasetBackedIndex`] bundles any baseline index
/// with its dataset to satisfy both.
pub struct IndexedApEngine<'a, I: BucketIndex + IndexedDataAccess> {
    index: &'a I,
    design: KnnDesign,
    capacity: BoardCapacity,
    /// Seconds per host-side traversal operation (distance computation or hash probe).
    host_op_seconds: f64,
}

impl<'a, I: BucketIndex + IndexedDataAccess> IndexedApEngine<'a, I> {
    /// Wraps `index` with the given AP design. Board capacity defaults to the
    /// paper-calibrated figure for the design's dimensionality, which is also the
    /// natural bucket size the paper uses.
    pub fn new(index: &'a I, design: KnnDesign) -> Self {
        Self {
            index,
            design,
            capacity: BoardCapacity::paper_calibrated(design.dims),
            host_op_seconds: 50e-9,
        }
    }

    /// Overrides the per-operation host traversal cost (seconds). The default of
    /// 50 ns per operation approximates a cache-resident Hamming distance or hash
    /// probe on the ARM host the paper pairs with the AP.
    pub fn with_host_op_seconds(mut self, seconds: f64) -> Self {
        assert!(seconds >= 0.0, "host op cost must be non-negative");
        self.host_op_seconds = seconds;
        self
    }

    /// Overrides the board capacity (bucket-per-configuration size).
    pub fn with_capacity(mut self, capacity: BoardCapacity) -> Self {
        self.capacity = capacity;
        self
    }

    /// Searches a query batch, returning per-query neighbors and run statistics.
    ///
    /// Queries whose buckets live in the same board configuration are batched so the
    /// configuration is loaded once (the paper: "we batch searches to the same bucket
    /// where possible").
    pub fn search_batch(
        &self,
        queries: &[BinaryVector],
        k: usize,
    ) -> (Vec<Vec<Neighbor>>, IndexedRunStats) {
        assert!(k > 0, "k must be positive");
        let layout = StreamLayout::for_design(&self.design);
        let timing = TimingModel::new(self.design.device);
        let bucket_capacity = self.capacity.vectors_per_board.max(1);

        let mut results = Vec::with_capacity(queries.len());
        let mut stats = IndexedRunStats {
            queries: queries.len(),
            ..IndexedRunStats::default()
        };

        // Which board images (index buckets) have already been loaded. In the
        // deployment the paper describes, every index leaf / hash bucket is a
        // precompiled board image, so revisiting a bucket is free while first use
        // costs one partial reconfiguration.
        let mut loaded: HashSet<u64> = HashSet::new();
        let mut symbols = 0u64;

        for q in queries {
            let candidates = self.index.candidates(q);
            stats.candidates_scanned += candidates.len() as u64;
            stats.traversal_ops += self.index.traversal_cost() as u64;

            for bucket in self.index.bucket_ids(q) {
                if loaded.insert(bucket) {
                    stats.reconfigurations += 1;
                }
            }

            // The AP streams the query once per board-configuration-sized chunk of
            // candidates it must scan.
            let chunks = candidates.len().div_ceil(bucket_capacity).max(1) as u64;
            symbols += chunks * self.design.dims as u64;

            // Functional result: scan exactly the candidate set.
            let mut topk = TopK::new(k);
            for &i in &candidates {
                let dist = q.hamming(&self.dataset_vector(i));
                topk.offer(Neighbor::new(i, dist));
            }
            results.push(topk.into_sorted());
        }
        // The first configuration load is free (pre-loaded before the batch), to be
        // consistent with the linear engine's accounting.
        stats.reconfigurations = stats.reconfigurations.saturating_sub(1);
        stats.symbols_streamed = symbols;
        let _ = layout; // layout retained for future per-window accounting symmetry
        stats.ap_seconds = timing.estimate(symbols, stats.reconfigurations).total_s();
        stats.host_seconds = stats.traversal_ops as f64 * self.host_op_seconds;
        (results, stats)
    }

    fn dataset_vector(&self, i: usize) -> BinaryVector {
        self.index.vector(i)
    }
}

/// Access to the raw vectors behind a bucket index (needed so the AP engine can
/// compute the in-bucket distances the fabric would report).
pub trait IndexedDataAccess {
    /// Returns dataset vector `i`.
    fn vector(&self, i: usize) -> BinaryVector;
}

impl<T: IndexedDataAccess + ?Sized> IndexedDataAccess for &T {
    fn vector(&self, i: usize) -> BinaryVector {
        (**self).vector(i)
    }
}

/// A [`BucketIndex`] bundled with its backing dataset, giving the AP engine direct
/// vector access. This is the form every example and benchmark constructs.
pub struct DatasetBackedIndex<I> {
    /// The wrapped index.
    pub index: I,
    /// The dataset the index was built over (in the same id space).
    pub data: binvec::BinaryDataset,
}

impl<I: BucketIndex> baselines::SearchIndex for DatasetBackedIndex<I> {
    fn len(&self) -> usize {
        self.index.len()
    }
    fn dims(&self) -> usize {
        self.index.dims()
    }
    fn search(&self, query: &BinaryVector, k: usize) -> Vec<Neighbor> {
        self.index.search(query, k)
    }
}

impl<I: BucketIndex> BucketIndex for DatasetBackedIndex<I> {
    fn candidates(&self, query: &BinaryVector) -> Vec<usize> {
        self.index.candidates(query)
    }
    fn traversal_cost(&self) -> usize {
        self.index.traversal_cost()
    }
    fn bucket_ids(&self, query: &BinaryVector) -> Vec<u64> {
        self.index.bucket_ids(query)
    }
}

impl<I> IndexedDataAccess for DatasetBackedIndex<I> {
    fn vector(&self, i: usize) -> BinaryVector {
        self.data.vector(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use baselines::{KdForest, KdForestConfig, LshConfig, LshIndex, SearchIndex};
    use binvec::generate::{clustered_dataset, uniform_queries, ClusterParams};

    fn backed_kdforest(n: usize, dims: usize) -> DatasetBackedIndex<KdForest> {
        let (data, _) = clustered_dataset(
            n,
            dims,
            ClusterParams {
                clusters: 8,
                flip_probability: 0.03,
            },
            42,
        );
        let index = KdForest::build(
            data.clone(),
            KdForestConfig {
                trees: 4,
                bucket_size: 64,
                top_variance_candidates: 5,
                seed: 7,
            },
        );
        DatasetBackedIndex { index, data }
    }

    #[test]
    fn indexed_engine_matches_cpu_indexed_search() {
        let backed = backed_kdforest(800, 32);
        let design = KnnDesign::new(32);
        let engine = IndexedApEngine::new(&backed, design);
        let queries = uniform_queries(10, 32, 9);
        let (ap_results, stats) = engine.search_batch(&queries, 4);
        let cpu_results: Vec<_> = queries.iter().map(|q| backed.index.search(q, 4)).collect();
        assert_eq!(ap_results, cpu_results);
        assert_eq!(stats.queries, 10);
        assert!(stats.candidates_scanned > 0);
        assert!(stats.total_seconds() > 0.0);
    }

    #[test]
    fn repeated_buckets_do_not_recharge_reconfigurations() {
        let backed = backed_kdforest(500, 32);
        let design = KnnDesign::new(32);
        let engine = IndexedApEngine::new(&backed, design);
        let q = uniform_queries(1, 32, 11);
        let (_, once) = engine.search_batch(&q, 2);
        // The same query repeated: the bucket is already loaded, so no additional
        // reconfigurations are charged.
        let repeated: Vec<_> = std::iter::repeat_n(q[0].clone(), 5).collect();
        let (_, five) = engine.search_batch(&repeated, 2);
        assert_eq!(five.reconfigurations, once.reconfigurations);
        assert!(five.candidates_scanned >= once.candidates_scanned * 5);
    }

    #[test]
    fn lsh_backed_engine_works() {
        let (data, _) = clustered_dataset(
            600,
            64,
            ClusterParams {
                clusters: 4,
                flip_probability: 0.02,
            },
            3,
        );
        let index = LshIndex::build(
            data.clone(),
            LshConfig {
                tables: 4,
                bits_per_table: 10,
                probes: 0,
                seed: 5,
            },
        );
        let backed = DatasetBackedIndex { index, data };
        let engine = IndexedApEngine::new(&backed, KnnDesign::new(64));
        let queries = uniform_queries(5, 64, 6);
        let (results, stats) = engine.search_batch(&queries, 3);
        assert_eq!(results.len(), 5);
        assert!(stats.traversal_ops > 0);
        assert!(stats.host_seconds >= 0.0);
    }

    #[test]
    fn host_op_cost_scales_host_seconds() {
        let backed = backed_kdforest(400, 32);
        let design = KnnDesign::new(32);
        let cheap = IndexedApEngine::new(&backed, design).with_host_op_seconds(1e-9);
        let pricey = IndexedApEngine::new(&backed, design).with_host_op_seconds(1e-6);
        let q = uniform_queries(3, 32, 13);
        let (_, a) = cheap.search_batch(&q, 2);
        let (_, b) = pricey.search_batch(&q, 2);
        assert!(b.host_seconds > a.host_seconds);
        assert_eq!(a.candidates_scanned, b.candidates_scanned);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        let backed = backed_kdforest(50, 32);
        let engine = IndexedApEngine::new(&backed, KnnDesign::new(32));
        let _ = engine.search_batch(&uniform_queries(1, 32, 1), 0);
    }
}
