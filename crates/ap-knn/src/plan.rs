//! Frontier-aware execution planning: choosing cycle-accurate simulation vs
//! the behavioural path from the measured cost of the compiled core.
//!
//! The compiled sparse-frontier simulator makes cycle-accurate execution cheap
//! for small fabrics and short streams, but its per-symbol cost still grows
//! with the board's element count (the active frontier of the kNN design is
//! proportional to the fabric: every vector macro walks its ladder on every
//! window). The behavioural path produces bit-identical neighbors and
//! [`crate::engine::ApRunStats`], so when a caller asks for
//! [`binvec::ExecutionPreference::Auto`] the engine is free to pick whichever
//! core answers fastest — cycle-accurate while the simulation budget allows it
//! (the high-fidelity default), behavioural once the estimated simulation time
//! would blow that budget.
//!
//! The cost model is calibrated against the workspace's own measurements in
//! `BENCH_sim.json` (the `sim_throughput` bench, full mode, 1-core container):
//!
//! | shape | board elements | measured symbols/sec | ns per symbol |
//! |---|---|---|---|
//! | tiny (32 × 16-dim vectors/board) | 1 344 | 426 952 | 2 342 |
//! | small-dataset (128 × 64) | 18 432 | 87 070 | 11 485 |
//! | wide (128 × 128) | 36 224 | 52 094 | 19 196 |
//!
//! A linear fit `ns/symbol ≈ 1 700 + 0.48 · elements` reproduces all three
//! points within ~8 %, which is accurate enough to place the crossover: the
//! planner only needs to know whether a run costs milliseconds or minutes.

use crate::engine::ExecutionMode;
use serde::{Deserialize, Serialize};

/// Fixed per-symbol overhead of the compiled core, nanoseconds (fit intercept).
pub const BASE_NS_PER_SYMBOL: f64 = 1_700.0;
/// Incremental per-symbol cost per fabric element, nanoseconds (fit slope).
pub const NS_PER_ELEMENT_SYMBOL: f64 = 0.48;
/// Default simulation budget: runs estimated under this stay cycle-accurate.
pub const DEFAULT_BUDGET_S: f64 = 0.25;
/// How much more one lane-core cycle costs than one scalar symbol step: the
/// lane core touches 64-bit words per element where the scalar core touches
/// a sparse frontier, so a lane cycle is a small constant factor heavier —
/// but a 64-query batch needs ~64× fewer cycles, so the lane path wins
/// whenever the batch fills more than a few lanes (`sim_lanes` bench).
pub const LANE_CYCLE_COST_FACTOR: f64 = 3.0;

/// Picks an [`ExecutionMode`] from fabric size × stream length using the
/// measured `BENCH_sim.json` cost model.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct AutoPlanner {
    /// Fixed per-symbol cost of the compiled core, in nanoseconds.
    pub base_ns_per_symbol: f64,
    /// Additional per-symbol cost per board element, in nanoseconds.
    pub ns_per_element_symbol: f64,
    /// Seconds of estimated simulation time the planner will spend before
    /// falling back to the behavioural path.
    pub budget_s: f64,
}

impl Default for AutoPlanner {
    fn default() -> Self {
        Self::measured()
    }
}

impl AutoPlanner {
    /// The planner calibrated from the committed `BENCH_sim.json` measurements
    /// with the default budget.
    pub fn measured() -> Self {
        Self {
            base_ns_per_symbol: BASE_NS_PER_SYMBOL,
            ns_per_element_symbol: NS_PER_ELEMENT_SYMBOL,
            budget_s: DEFAULT_BUDGET_S,
        }
    }

    /// Overrides the simulation budget (seconds).
    ///
    /// # Panics
    /// Panics if `budget_s` is not finite and positive.
    pub fn with_budget_s(mut self, budget_s: f64) -> Self {
        assert!(
            budget_s.is_finite() && budget_s > 0.0,
            "planner budget must be a positive number of seconds"
        );
        self.budget_s = budget_s;
        self
    }

    /// Estimated wall-clock seconds to simulate `total_symbols` symbols on
    /// boards of `board_elements` fabric elements each. Callers with a
    /// parallel schedule pass their *critical-path* symbol count (symbols on
    /// the most loaded worker), since that is what sets wall-clock time.
    pub fn estimated_simulation_s(&self, board_elements: usize, total_symbols: u64) -> f64 {
        let ns_per_symbol =
            self.base_ns_per_symbol + self.ns_per_element_symbol * board_elements as f64;
        total_symbols as f64 * ns_per_symbol * 1e-9
    }

    /// Estimated wall-clock seconds for the *lane* core to run `lane_cycles`
    /// cycles on boards of `board_elements` elements: the same linear model
    /// scaled by [`LANE_CYCLE_COST_FACTOR`]. Callers pass the critical-path
    /// cycle count (`window_len × passes × critical-path images`).
    pub fn estimated_lane_simulation_s(&self, board_elements: usize, lane_cycles: u64) -> f64 {
        self.estimated_simulation_s(board_elements, lane_cycles) * LANE_CYCLE_COST_FACTOR
    }

    /// The mode the planner selects for a run of this shape: cycle-accurate
    /// while the estimated simulation time fits the budget, behavioural
    /// beyond it. Deterministic in the run shape, so repeated identical
    /// batches always execute the same way.
    pub fn pick(&self, board_elements: usize, total_symbols: u64) -> ExecutionMode {
        if self.estimated_simulation_s(board_elements, total_symbols) <= self.budget_s {
            ExecutionMode::CycleAccurate
        } else {
            ExecutionMode::Behavioral
        }
    }

    /// [`pick`](Self::pick) for engines whose batch qualifies for the lane
    /// core: when `lane_cycles` is `Some`, the cycle-accurate cost is the
    /// *cheaper* of the scalar and lane estimates (the engine routes the batch
    /// to whichever core the threshold selects, and the lane path typically
    /// compresses a full batch into ~1/64 of the symbols). `None` degrades to
    /// the scalar [`pick`](Self::pick).
    pub fn pick_with_lanes(
        &self,
        board_elements: usize,
        total_symbols: u64,
        lane_cycles: Option<u64>,
    ) -> ExecutionMode {
        let scalar_s = self.estimated_simulation_s(board_elements, total_symbols);
        let best_s = match lane_cycles {
            Some(cycles) => scalar_s.min(self.estimated_lane_simulation_s(board_elements, cycles)),
            None => scalar_s,
        };
        if best_s <= self.budget_s {
            ExecutionMode::CycleAccurate
        } else {
            ExecutionMode::Behavioral
        }
    }
}

/// How an engine resolves [`binvec::ExecutionPreference::Auto`].
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum ExecutionPlanner {
    /// Always use this mode (the engine's classic `with_mode` behaviour).
    Fixed(ExecutionMode),
    /// Pick per run from fabric size × stream length.
    Auto(AutoPlanner),
}

impl ExecutionPlanner {
    /// Resolves the mode for a run of the given shape.
    pub fn pick(&self, board_elements: usize, total_symbols: u64) -> ExecutionMode {
        match self {
            Self::Fixed(mode) => *mode,
            Self::Auto(planner) => planner.pick(board_elements, total_symbols),
        }
    }

    /// Resolves the mode when the batch qualifies for the lane core (see
    /// [`AutoPlanner::pick_with_lanes`]). Fixed planners still ignore shape.
    pub fn pick_with_lanes(
        &self,
        board_elements: usize,
        total_symbols: u64,
        lane_cycles: Option<u64>,
    ) -> ExecutionMode {
        match self {
            Self::Fixed(mode) => *mode,
            Self::Auto(planner) => {
                planner.pick_with_lanes(board_elements, total_symbols, lane_cycles)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_model_reproduces_the_bench_points_roughly() {
        let planner = AutoPlanner::measured();
        // (board elements, measured ns/symbol) from BENCH_sim.json, full mode.
        for (elements, measured_ns) in [
            (1_344usize, 2_342.0f64),
            (18_432, 11_485.0),
            (36_224, 19_196.0),
        ] {
            let predicted_ns = planner.estimated_simulation_s(elements, 1) * 1e9;
            let err = (predicted_ns - measured_ns).abs() / measured_ns;
            assert!(
                err < 0.15,
                "elements {elements}: predicted {predicted_ns:.0} ns vs measured {measured_ns} ns"
            );
        }
    }

    #[test]
    fn small_runs_stay_cycle_accurate_large_runs_fall_back() {
        let planner = AutoPlanner::measured();
        // A tiny board and a few windows: well under the budget.
        assert_eq!(planner.pick(1_344, 10_000), ExecutionMode::CycleAccurate);
        // The paper's 2^20-vector regime: thousands of reconfigured windows on
        // full boards — minutes of simulation, so the planner falls back.
        assert_eq!(planner.pick(150_000, 50_000_000), ExecutionMode::Behavioral);
    }

    #[test]
    fn budget_moves_the_crossover() {
        let strict = AutoPlanner::measured().with_budget_s(1e-6);
        assert_eq!(strict.pick(1_344, 10_000), ExecutionMode::Behavioral);
        let generous = AutoPlanner::measured().with_budget_s(1e6);
        assert_eq!(
            generous.pick(150_000, 50_000_000),
            ExecutionMode::CycleAccurate
        );
    }

    #[test]
    fn fixed_planner_ignores_the_shape() {
        let fixed = ExecutionPlanner::Fixed(ExecutionMode::Behavioral);
        assert_eq!(fixed.pick(1, 1), ExecutionMode::Behavioral);
        assert_eq!(
            fixed.pick(usize::MAX >> 1, u64::MAX >> 1),
            ExecutionMode::Behavioral
        );
    }

    #[test]
    #[should_panic(expected = "positive number of seconds")]
    fn zero_budget_panics() {
        let _ = AutoPlanner::measured().with_budget_s(0.0);
    }

    #[test]
    fn lane_compression_keeps_big_batches_cycle_accurate() {
        let planner = AutoPlanner::measured();
        // A 64-query batch on a mid-size board: scalar streaming blows the
        // budget, but one lane pass (1/64 of the symbols at 3× per-cycle
        // cost) stays well inside it.
        let board = 36_224;
        let scalar_symbols = 64 * 4_000u64;
        let lane_cycles = 4_000u64;
        assert_eq!(
            planner.pick(board, scalar_symbols),
            ExecutionMode::Behavioral
        );
        assert_eq!(
            planner.pick_with_lanes(board, scalar_symbols, Some(lane_cycles)),
            ExecutionMode::CycleAccurate
        );
        // No lane option: degrades to the scalar decision.
        assert_eq!(
            planner.pick_with_lanes(board, scalar_symbols, None),
            ExecutionMode::Behavioral
        );
        // Truly huge lane runs still fall back.
        assert_eq!(
            planner.pick_with_lanes(board, u64::MAX >> 8, Some(u64::MAX >> 16)),
            ExecutionMode::Behavioral
        );
    }
}
