//! Decoding reporting-state activations back into per-query neighbor lists.
//!
//! The AP returns `(report code, stream offset)` pairs. The offset within the query
//! window encodes the Hamming distance through the temporal sort
//! ([`StreamLayout::distance_for_report_offset`]); the report code is the vector's
//! local index within its partition. The host merges these partial results — across
//! report batches and across board reconfigurations — with the same bounded top-k
//! selection every other engine in the workspace uses, so AP results are comparable
//! neighbor-for-neighbor with the CPU baselines.

use crate::stream::StreamLayout;
use ap_sim::lanes::LaneReportEvent;
use ap_sim::ReportEvent;
use binvec::{Neighbor, TopK};

/// Decodes raw report events for a batch of `queries` queries into per-query
/// neighbor candidates and merges them into existing top-k accumulators.
///
/// `base_index` is added to every report code to produce global dataset ids.
/// Reports whose window offset falls outside the valid sort phase (which cannot
/// happen for well-formed kNN macros, but may for experimental designs) are ignored.
pub fn merge_reports_into(
    layout: &StreamLayout,
    reports: &[ReportEvent],
    base_index: usize,
    accumulators: &mut [TopK],
) {
    for r in reports {
        let (query_idx, window_offset) = layout.split_offset(r.offset);
        if query_idx >= accumulators.len() {
            continue;
        }
        if let Some(distance) = layout.distance_for_report_offset(window_offset) {
            accumulators[query_idx].offer(Neighbor::new(base_index + r.code as usize, distance));
        }
    }
}

/// Decodes lane-core report events (one 64-query pass, see
/// [`crate::lanes::encode_lane_planes_into`]) into per-query neighbor
/// candidates and merges them into existing top-k accumulators.
///
/// Offsets of lane events are *window* offsets — every lane shares one
/// window — so no [`StreamLayout::split_offset`] division happens here; the
/// query index is `lane_base + lane bit`. `lane_base` is the global index of
/// the pass's lane 0 (pass `p` of a batch has `lane_base = p * 64`), and
/// `base_index` turns report codes into global dataset ids exactly as in
/// [`merge_reports_into`].
pub fn merge_lane_reports_into(
    layout: &StreamLayout,
    reports: &[LaneReportEvent],
    base_index: usize,
    lane_base: usize,
    accumulators: &mut [TopK],
) {
    for r in reports {
        let Some(distance) = layout.distance_for_report_offset(r.offset as usize) else {
            continue;
        };
        let mut lanes = r.lanes;
        while lanes != 0 {
            let lane = lanes.trailing_zeros() as usize;
            lanes &= lanes - 1;
            let query_idx = lane_base + lane;
            if query_idx < accumulators.len() {
                accumulators[query_idx]
                    .offer(Neighbor::new(base_index + r.code as usize, distance));
            }
        }
    }
}

/// Decodes raw report events into fully sorted per-query results (single partition,
/// no pre-existing accumulator).
pub fn decode_reports(
    layout: &StreamLayout,
    reports: &[ReportEvent],
    base_index: usize,
    queries: usize,
    k: usize,
) -> Vec<Vec<Neighbor>> {
    let mut accumulators: Vec<TopK> = (0..queries).map(|_| TopK::new(k)).collect();
    merge_reports_into(layout, reports, base_index, &mut accumulators);
    accumulators.into_iter().map(TopK::into_sorted).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::KnnDesign;
    use ap_sim::ElementId;

    fn layout() -> StreamLayout {
        StreamLayout::for_design(&KnnDesign::new(8))
    }

    fn report(code: u32, offset: u64) -> ReportEvent {
        ReportEvent {
            element: ElementId(0),
            code,
            offset,
        }
    }

    #[test]
    fn decode_single_query_orders_by_temporal_arrival() {
        let l = layout();
        // Vector 3 at distance 0, vector 1 at distance 2, vector 2 at distance 5.
        let reports = vec![
            report(3, l.report_offset_for_distance(0) as u64),
            report(1, l.report_offset_for_distance(2) as u64),
            report(2, l.report_offset_for_distance(5) as u64),
        ];
        let decoded = decode_reports(&l, &reports, 0, 1, 2);
        assert_eq!(decoded.len(), 1);
        assert_eq!(decoded[0], vec![Neighbor::new(3, 0), Neighbor::new(1, 2)]);
    }

    #[test]
    fn decode_assigns_reports_to_the_right_query_window() {
        let l = layout();
        let w = l.window_len() as u64;
        let reports = vec![
            report(0, l.report_offset_for_distance(1) as u64),
            report(0, w + l.report_offset_for_distance(4) as u64),
            report(7, 2 * w + l.report_offset_for_distance(0) as u64),
        ];
        let decoded = decode_reports(&l, &reports, 100, 3, 3);
        assert_eq!(decoded[0], vec![Neighbor::new(100, 1)]);
        assert_eq!(decoded[1], vec![Neighbor::new(100, 4)]);
        assert_eq!(decoded[2], vec![Neighbor::new(107, 0)]);
    }

    #[test]
    fn out_of_phase_reports_are_ignored() {
        let l = layout();
        let reports = vec![report(0, 1), report(0, 0)];
        let decoded = decode_reports(&l, &reports, 0, 1, 2);
        assert!(decoded[0].is_empty());
    }

    #[test]
    fn reports_beyond_query_count_are_dropped() {
        let l = layout();
        let w = l.window_len() as u64;
        let reports = vec![report(0, 5 * w + l.report_offset_for_distance(0) as u64)];
        let decoded = decode_reports(&l, &reports, 0, 2, 1);
        assert!(decoded[0].is_empty() && decoded[1].is_empty());
    }

    #[test]
    fn merge_across_partitions_keeps_global_best() {
        let l = layout();
        let mut acc: Vec<TopK> = vec![TopK::new(2)];
        // Partition A (base 0): vector 0 at distance 3.
        merge_reports_into(
            &l,
            &[report(0, l.report_offset_for_distance(3) as u64)],
            0,
            &mut acc,
        );
        // Partition B (base 10): vector 0 at distance 1, vector 1 at distance 6.
        merge_reports_into(
            &l,
            &[
                report(0, l.report_offset_for_distance(1) as u64),
                report(1, l.report_offset_for_distance(6) as u64),
            ],
            10,
            &mut acc,
        );
        let result = acc.pop().unwrap().into_sorted();
        assert_eq!(result, vec![Neighbor::new(10, 1), Neighbor::new(0, 3)]);
    }
}
