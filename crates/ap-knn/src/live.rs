//! Live (mutable) corpora: epoch-snapshot engines with delta partitions,
//! tombstones, and background compaction.
//!
//! The paper's AP workflow assumes a corpus frozen at configuration time —
//! partial-reconfiguration cost (§III-C) is exactly why [`PreparedEngine`]
//! caches the dataset partitioning and the compiled board images. Production
//! corpora churn, and a full re-`prepare()` per insert throws away every
//! cached image. A [`LiveEngine`] keeps the expensive compiled base immutable
//! and absorbs churn in cheap structures around it:
//!
//! * **Delta partitions** — inserts append to small, immutable delta segments
//!   (at most [`LiveConfig::delta_chunk`] vectors each), re-prepared
//!   incrementally per insert. Each segment is its own [`PreparedEngine`], so
//!   the base's board images are never rebuilt on insert.
//! * **Tombstones** — deletes never touch compiled state; the deleted stable
//!   id joins a sorted tombstone set that is filtered out at the top-k merge.
//!   Per-segment searches over-fetch by the number of tombstones that target
//!   the segment, so the merged top-k is *exact*, not approximate.
//! * **Epoch snapshots** — the whole engine state (base, deltas, tombstones,
//!   generation) lives behind one `Arc`, swapped atomically per mutation.
//!   In-flight query batches keep reading the snapshot they started with;
//!   queries observe every mutation acknowledged before they were submitted.
//! * **Compaction** — once the deltas or the tombstone set exceed
//!   [`LiveConfig::compact_threshold`], a (optionally background) compaction
//!   folds every delta and drops every tombstoned vector into a fresh
//!   prepared base. The fold runs outside the writer lock — mutations land
//!   concurrently — and splices against the then-current snapshot using the
//!   stable-id watermark, so nothing acknowledged is ever lost.
//!
//! Every vector has a **stable id** assigned at insert (the initial corpus
//! occupies ids `0..n` in dataset order) and keeps it across compactions, so
//! neighbor ids stay meaningful across the corpus's whole history. Queries on
//! an *unmutated* epoch (no deltas, no tombstones, identity id map) take the
//! exact zero-allocation [`PreparedEngine::try_search_batch_into`] hot path.
//!
//! Equivalence contract (proptest-enforced in `tests/live_engine.rs`): after
//! any insert/delete sequence, a query returns *bit-identically* the neighbors
//! of a fresh [`ApKnnEngine::prepare`] over the equivalent corpus — the live
//! vectors in stable-id order — with positional ids mapped through that order.

use crate::engine::{ApKnnEngine, ApRunStats};
use crate::prepared::PreparedEngine;
use crate::wal::{self, CheckpointImage, RestoreReport, Wal, WalConfig, WalGauges, WalRecord};
use binvec::{BinaryDataset, BinaryVector, MutAck, Mutation, MutationOp};
use binvec::{Neighbor, QueryOptions, SearchError, TopK};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, OnceLock, RwLock};
use std::thread::JoinHandle;

/// Construction parameters of a [`LiveEngine`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LiveConfig {
    /// Maximum vectors per delta segment. Inserts rebuild the open (tail)
    /// segment until it reaches this size, then seal it and open a new one —
    /// so the per-insert re-prepare cost is bounded by this many vectors.
    pub delta_chunk: usize,
    /// Compaction trigger: once the total delta vectors *or* the tombstone
    /// count reach this threshold, the deltas are folded into a new base.
    pub compact_threshold: usize,
    /// Run compactions on a dedicated background thread (woken by mutations)
    /// instead of only on explicit [`LiveEngine::compact_now`] calls.
    pub background: bool,
    /// Compile each new delta segment's board images when the segment is
    /// built (by the compile pool, or inline when `compile_pool` is 0)
    /// instead of lazily on its first cycle-accurate batch, so serving
    /// traffic never pays a compile. (Behavioral-only deployments should
    /// leave this off: their batches never touch compiled images at all.)
    pub compile_deltas: bool,
    /// Background compile-pool threads that prepare (and, with
    /// [`Self::compile_deltas`], compile) new delta segments off the
    /// mutating thread, so a mutation ack never includes a segment
    /// `prepare()`. `0` prepares inline on the mutating thread (the
    /// pre-pool behavior; segment preparation errors then surface at the
    /// mutation instead of at the first query that touches the segment).
    pub compile_pool: usize,
}

impl Default for LiveConfig {
    fn default() -> Self {
        Self {
            delta_chunk: 64,
            compact_threshold: 256,
            background: true,
            compile_deltas: false,
            compile_pool: 1,
        }
    }
}

impl LiveConfig {
    /// Sets the delta-segment capacity.
    pub fn with_delta_chunk(mut self, vectors: usize) -> Self {
        self.delta_chunk = vectors;
        self
    }

    /// Sets the compaction trigger threshold.
    pub fn with_compact_threshold(mut self, vectors: usize) -> Self {
        self.compact_threshold = vectors;
        self
    }

    /// Enables or disables the background compaction thread.
    pub fn with_background(mut self, background: bool) -> Self {
        self.background = background;
        self
    }

    /// Enables or disables eager compilation of new delta segments.
    pub fn with_compile_deltas(mut self, compile: bool) -> Self {
        self.compile_deltas = compile;
        self
    }

    /// Sets the background compile-pool size (0 = prepare inline).
    pub fn with_compile_pool(mut self, threads: usize) -> Self {
        self.compile_pool = threads;
        self
    }

    fn validate(&self) -> Result<(), SearchError> {
        if self.delta_chunk == 0 {
            return Err(SearchError::InvalidConfig {
                field: "delta_chunk",
                reason: "must be at least 1".to_string(),
            });
        }
        if self.compact_threshold == 0 {
            return Err(SearchError::InvalidConfig {
                field: "compact_threshold",
                reason: "must be at least 1".to_string(),
            });
        }
        Ok(())
    }
}

/// A point-in-time gauge of a live engine's internal shape.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LiveStatus {
    /// Corpus generation: bumped by every applied mutation and compaction.
    pub generation: u64,
    /// Live (queryable) vectors: inserts minus deletes.
    pub live_len: usize,
    /// Vectors held by the compiled base.
    pub base_len: usize,
    /// Vectors held across all delta segments.
    pub delta_vectors: usize,
    /// Delta segments currently stacked on the base.
    pub delta_segments: usize,
    /// Tombstoned (deleted but not yet compacted-away) stable ids.
    pub tombstones: usize,
    /// The configured compaction trigger, echoed so [`Self::fill`] needs no
    /// out-of-band knowledge of the engine's configuration.
    pub compact_threshold: usize,
    /// Compactions completed over the engine's lifetime.
    pub compactions: u64,
    /// The next stable id an insert would be assigned.
    pub next_id: usize,
    /// Delta segments handed to the compile pool but not yet prepared
    /// (queries touching one fall back to preparing it themselves).
    pub compile_backlog: u64,
    /// Write-ahead-log gauges; `None` for a purely in-memory engine.
    pub wal: Option<WalGauges>,
}

impl LiveStatus {
    /// Delta fill fraction relative to `threshold` (1.0 = compaction due).
    pub fn delta_fill(&self, threshold: usize) -> f64 {
        if threshold == 0 {
            return 0.0;
        }
        self.delta_vectors.max(self.tombstones) as f64 / threshold as f64
    }

    /// Delta fill fraction relative to the engine's own configured
    /// [`LiveConfig::compact_threshold`].
    pub fn fill(&self) -> f64 {
        self.delta_fill(self.compact_threshold)
    }
}

/// The immutable compiled base of one epoch: a prepared dataset plus the map
/// from its positional ids back to stable ids.
#[derive(Debug)]
struct BaseSegment {
    data: BinaryDataset,
    prepared: PreparedEngine,
    /// Stable id of each base position, strictly ascending. `None` means the
    /// identity map (position `i` *is* stable id `i`) — the pristine shape
    /// the zero-allocation fast path requires.
    ids: Option<Vec<usize>>,
}

impl BaseSegment {
    fn stable_id(&self, position: usize) -> usize {
        match &self.ids {
            None => position,
            Some(ids) => ids[position],
        }
    }

    /// Whether stable id `id` is physically present in the base.
    fn contains(&self, id: usize) -> bool {
        match &self.ids {
            None => id < self.data.len(),
            Some(ids) => ids.binary_search(&id).is_ok(),
        }
    }
}

/// One immutable delta segment covering the contiguous stable-id range
/// `[first_id, first_id + data.len())`.
///
/// Preparation (partitioning + board images) is deferred: the mutating
/// thread only copies the raw vectors, and the segment's [`PreparedEngine`]
/// is built exactly once — by the compile pool in the background, or by the
/// first query that reaches the segment before the pool does. Whoever loses
/// the `OnceLock` race simply reuses the winner's result, so queries are
/// bit-identical either way.
#[derive(Debug)]
struct DeltaSegment {
    first_id: usize,
    data: BinaryDataset,
    prep: OnceLock<Result<PreparedEngine, SearchError>>,
}

impl DeltaSegment {
    fn new(first_id: usize, data: BinaryDataset) -> Self {
        Self {
            first_id,
            data,
            prep: OnceLock::new(),
        }
    }

    fn len(&self) -> usize {
        self.data.len()
    }

    fn end_id(&self) -> usize {
        self.first_id + self.data.len()
    }

    /// The segment's prepared engine, building (and optionally compiling) it
    /// on first use. A preparation error is sticky: it is stored and
    /// re-surfaced to every caller, exactly as an inline prepare would have
    /// failed the originating insert.
    fn prepared(
        &self,
        engine: &ApKnnEngine,
        compile: bool,
    ) -> Result<&PreparedEngine, SearchError> {
        self.prep
            .get_or_init(|| {
                let prepared = engine.prepare(&self.data)?;
                if compile {
                    prepared.compile()?;
                }
                Ok(prepared)
            })
            .as_ref()
            .map_err(Clone::clone)
    }
}

/// One epoch: a consistent, immutable view of the whole corpus. Readers clone
/// the `Arc` under a read lock and then run lock-free against it; mutations
/// and compactions install a successor with `generation + 1`.
#[derive(Debug)]
struct Snapshot {
    generation: u64,
    base: Arc<BaseSegment>,
    /// Stable-id watermark: every id below it is the base's territory (live
    /// in the base, or compacted away); every id in `[folded_through,
    /// next_id)` lives in exactly one delta segment.
    folded_through: usize,
    deltas: Vec<Arc<DeltaSegment>>,
    /// Deleted stable ids, sorted ascending. Filtered at the top-k merge;
    /// physically dropped by the next compaction.
    tombstones: Arc<Vec<usize>>,
    next_id: usize,
    live_len: usize,
}

impl Snapshot {
    fn tombstoned(&self, id: usize) -> bool {
        self.tombstones.binary_search(&id).is_ok()
    }

    /// Tombstones with stable id in `[lo, hi)`.
    fn tombstones_in(&self, lo: usize, hi: usize) -> usize {
        let from = self.tombstones.partition_point(|&t| t < lo);
        let to = self.tombstones.partition_point(|&t| t < hi);
        to - from
    }

    fn delta_vectors(&self) -> usize {
        self.deltas.iter().map(|d| d.len()).sum()
    }

    fn is_live(&self, id: usize) -> bool {
        if id >= self.next_id || self.tombstoned(id) {
            return false;
        }
        if id >= self.folded_through {
            return true; // every un-tombstoned delta id is live
        }
        self.base.contains(id)
    }

    /// Whether this epoch can serve the unmutated zero-allocation fast path.
    fn is_pristine(&self) -> bool {
        self.deltas.is_empty() && self.tombstones.is_empty() && self.base.ids.is_none()
    }
}

/// Wake-up state shared with the background compaction thread.
#[derive(Default)]
struct CompactorState {
    pending: bool,
    shutdown: bool,
}

struct LiveInner {
    engine: ApKnnEngine,
    config: LiveConfig,
    /// The current epoch. Readers take the read lock only long enough to
    /// clone the `Arc`; writers swap in a successor snapshot.
    state: RwLock<Arc<Snapshot>>,
    /// Serializes mutations (and the splice step of a compaction) so stable
    /// ids are assigned once and snapshots never race each other.
    writer: Mutex<()>,
    /// Serializes compactions; held across the whole fold + splice so the
    /// tombstone set only grows between fold-start and splice.
    compact: Mutex<()>,
    signal: Mutex<CompactorState>,
    wake: Condvar,
    compactions: AtomicU64,
    /// The write-ahead log; `None` for a purely in-memory engine. Appended
    /// under the writer lock (record order = snapshot order), synced outside
    /// it (group commit across acking threads).
    durability: Option<Wal>,
    /// Hand-off to the compile-pool workers; `None` when the pool is off.
    compile_tx: Mutex<Option<mpsc::Sender<Arc<DeltaSegment>>>>,
    compiles_scheduled: AtomicU64,
    compiles_completed: Arc<AtomicU64>,
}

impl LiveInner {
    fn snapshot(&self) -> Arc<Snapshot> {
        Arc::clone(&self.state.read().expect("live state lock poisoned"))
    }

    fn install(&self, next: Snapshot) {
        *self.state.write().expect("live state lock poisoned") = Arc::new(next);
    }

    /// Finishes a freshly built delta segment: hands it to the compile pool
    /// (preparation happens in the background; a query racing ahead of the
    /// pool prepares it itself), or — with the pool off — prepares it here
    /// on the mutating thread, surfacing errors at the mutation.
    fn finish_segment(&self, segment: &Arc<DeltaSegment>) -> Result<(), SearchError> {
        if self.config.compile_pool == 0 {
            segment.prepared(&self.engine, self.config.compile_deltas)?;
            return Ok(());
        }
        let tx = self.compile_tx.lock().expect("compile tx poisoned");
        if let Some(tx) = tx.as_ref() {
            if tx.send(Arc::clone(segment)).is_ok() {
                self.compiles_scheduled.fetch_add(1, Ordering::Relaxed);
            }
        }
        Ok(())
    }

    /// Applies one mutation under the writer lock and returns its ack plus
    /// the WAL commit sequence the caller must [`Wal::sync_through`] before
    /// releasing the ack (`None` for an in-memory engine). The WAL record is
    /// appended *before* the snapshot installs, both under the writer lock,
    /// so log order always equals snapshot order.
    fn apply_logged(&self, mutation: &Mutation) -> Result<(MutAck, Option<u64>), SearchError> {
        let _writer = self.writer.lock().expect("live writer lock poisoned");
        let current = self.snapshot();
        let (ack, seq) = match mutation {
            Mutation::Insert { vector } => {
                if vector.dims() != self.engine.design().dims {
                    return Err(SearchError::DimMismatch {
                        expected: self.engine.design().dims,
                        actual: vector.dims(),
                    });
                }
                let id = current.next_id;
                let mut deltas = current.deltas.clone();
                // Grow the open (tail) segment until it reaches delta_chunk;
                // segments are immutable, so growing means copying it with
                // the new vector appended — bounded by delta_chunk.
                let open = deltas
                    .last()
                    .filter(|d| d.end_id() == id && d.len() < self.config.delta_chunk)
                    .cloned();
                let segment = match open {
                    Some(open) => {
                        let mut data = open.data.clone();
                        data.push(vector);
                        Arc::new(DeltaSegment::new(open.first_id, data))
                    }
                    None => {
                        let mut data = BinaryDataset::with_capacity(vector.dims(), 1);
                        data.push(vector);
                        Arc::new(DeltaSegment::new(id, data))
                    }
                };
                self.finish_segment(&segment)?;
                let replacing = deltas
                    .last()
                    .is_some_and(|d| d.first_id == segment.first_id);
                if replacing {
                    *deltas.last_mut().expect("open tail segment") = segment;
                } else {
                    deltas.push(segment);
                }
                let seq = self.log(&WalRecord::from_mutation(mutation, id as u64))?;
                let generation = current.generation + 1;
                self.install(Snapshot {
                    generation,
                    base: Arc::clone(&current.base),
                    folded_through: current.folded_through,
                    deltas,
                    tombstones: Arc::clone(&current.tombstones),
                    next_id: id + 1,
                    live_len: current.live_len + 1,
                });
                (
                    MutAck {
                        op: MutationOp::Insert,
                        id,
                        generation,
                    },
                    seq,
                )
            }
            Mutation::Delete { id } => {
                if !current.is_live(*id) {
                    return Err(SearchError::Backend {
                        backend: "live".to_string(),
                        reason: format!("delete of unknown or already-deleted id {id}"),
                    });
                }
                let mut tombstones = current.tombstones.as_ref().clone();
                let at = tombstones.partition_point(|&t| t < *id);
                tombstones.insert(at, *id);
                let seq = self.log(&WalRecord::from_mutation(mutation, *id as u64))?;
                let generation = current.generation + 1;
                self.install(Snapshot {
                    generation,
                    base: Arc::clone(&current.base),
                    folded_through: current.folded_through,
                    deltas: current.deltas.clone(),
                    tombstones: Arc::new(tombstones),
                    next_id: current.next_id,
                    live_len: current.live_len - 1,
                });
                (
                    MutAck {
                        op: MutationOp::Delete,
                        id: *id,
                        generation,
                    },
                    seq,
                )
            }
        };
        Ok((ack, seq))
    }

    fn log(&self, record: &WalRecord) -> Result<Option<u64>, SearchError> {
        match &self.durability {
            None => Ok(None),
            Some(wal) => Ok(Some(wal.append(record)?)),
        }
    }

    /// Whether the delta/tombstone load has reached the compaction trigger.
    fn compaction_due(&self) -> bool {
        let snap = self.snapshot();
        snap.delta_vectors() >= self.config.compact_threshold
            || snap.tombstones.len() >= self.config.compact_threshold
    }

    fn nudge_compactor(&self) {
        if !self.config.background || !self.compaction_due() {
            return;
        }
        let mut state = self.signal.lock().expect("compactor signal poisoned");
        state.pending = true;
        self.wake.notify_one();
    }

    /// Folds the current deltas and tombstones into a fresh prepared base.
    ///
    /// The fold runs against a pinned snapshot `S` *outside* the writer lock,
    /// so mutations keep landing while the new base is prepared. The splice
    /// then runs under the writer lock against the then-current snapshot `C`:
    /// delta segments fully below `S.next_id` were folded and are dropped, a
    /// straddling open segment is sliced at the watermark, and the tombstones
    /// folded away (`S`'s) are removed — everything newer survives verbatim.
    /// Compactions are serialized by `self.compact`, so `S.tombstones ⊆
    /// C.tombstones` always holds at splice time.
    fn compact_now(&self) -> Result<bool, SearchError> {
        let _compact = self.compact.lock().expect("live compact lock poisoned");
        let pinned = self.snapshot();
        if pinned.deltas.is_empty() && pinned.tombstones.is_empty() {
            return Ok(false);
        }
        let dims = self.engine.design().dims;

        // Fold: every live vector at the pinned snapshot, in stable-id order.
        let mut folded = BinaryDataset::with_capacity(dims, pinned.live_len);
        let mut ids = Vec::with_capacity(pinned.live_len);
        for position in 0..pinned.base.data.len() {
            let id = pinned.base.stable_id(position);
            if !pinned.tombstoned(id) {
                folded.push(&pinned.base.data.vector(position));
                ids.push(id);
            }
        }
        for delta in &pinned.deltas {
            for local in 0..delta.len() {
                let id = delta.first_id + local;
                if !pinned.tombstoned(id) {
                    folded.push(&delta.data.vector(local));
                    ids.push(id);
                }
            }
        }
        let prepared = self.engine.prepare(&folded)?;
        if self.config.compile_deltas || pinned.base.prepared.is_compiled() {
            prepared.compile()?;
        }
        // The identity map is the fast-path shape; keep it whenever the fold
        // happens to preserve it (no deletions over the corpus's lifetime).
        let ids = if ids.iter().copied().eq(0..folded.len()) {
            None
        } else {
            Some(ids)
        };
        let base = Arc::new(BaseSegment {
            data: folded,
            prepared,
            ids,
        });

        // Splice under the writer lock against the then-current snapshot.
        let _writer = self.writer.lock().expect("live writer lock poisoned");
        let current = self.snapshot();
        let mut deltas = Vec::new();
        for delta in &current.deltas {
            if delta.first_id >= pinned.next_id {
                deltas.push(Arc::clone(delta));
            } else if delta.end_id() > pinned.next_id {
                // The open segment grew past the watermark during the fold:
                // keep only the unfolded tail `[pinned.next_id, end)`.
                let mut data = BinaryDataset::with_capacity(dims, delta.end_id() - pinned.next_id);
                for local in (pinned.next_id - delta.first_id)..delta.len() {
                    data.push(&delta.data.vector(local));
                }
                let segment = Arc::new(DeltaSegment::new(pinned.next_id, data));
                self.finish_segment(&segment)?;
                deltas.push(segment);
            }
        }
        let tombstones: Vec<usize> = current
            .tombstones
            .iter()
            .copied()
            .filter(|&t| !pinned.tombstoned(t))
            .collect();
        self.install(Snapshot {
            generation: current.generation + 1,
            base,
            folded_through: pinned.next_id,
            deltas,
            tombstones: Arc::new(tombstones),
            next_id: current.next_id,
            live_len: current.live_len,
        });
        self.compactions.fetch_add(1, Ordering::Relaxed);
        Ok(true)
    }

    fn status(&self) -> LiveStatus {
        let snap = self.snapshot();
        let scheduled = self.compiles_scheduled.load(Ordering::Relaxed);
        let completed = self.compiles_completed.load(Ordering::Relaxed);
        LiveStatus {
            generation: snap.generation,
            live_len: snap.live_len,
            base_len: snap.base.data.len(),
            delta_vectors: snap.delta_vectors(),
            delta_segments: snap.deltas.len(),
            tombstones: snap.tombstones.len(),
            compact_threshold: self.config.compact_threshold,
            compactions: self.compactions.load(Ordering::Relaxed),
            next_id: snap.next_id,
            compile_backlog: scheduled.saturating_sub(completed),
            wal: self.durability.as_ref().map(Wal::gauges),
        }
    }

    /// Serializes every live vector of `snap` — the base minus tombstones,
    /// plus every un-tombstoned delta id — in stable-id order: the compacted
    /// image a checkpoint persists. This is the same stable-id-watermark fold
    /// [`Self::compact_now`] performs, without touching the in-memory engine.
    fn fold_image(&self, snap: &Snapshot) -> CheckpointImage {
        let mut vectors = Vec::with_capacity(snap.live_len);
        for position in 0..snap.base.data.len() {
            let id = snap.base.stable_id(position);
            if !snap.tombstoned(id) {
                vectors.push((id as u64, snap.base.data.vector(position)));
            }
        }
        for delta in &snap.deltas {
            for local in 0..delta.len() {
                let id = delta.first_id + local;
                if !snap.tombstoned(id) {
                    vectors.push((id as u64, delta.data.vector(local)));
                }
            }
        }
        CheckpointImage {
            generation: snap.generation,
            next_id: snap.next_id as u64,
            dims: self.engine.design().dims,
            vectors,
        }
    }
}

fn zero_stats() -> ApRunStats {
    ApRunStats {
        board_configurations: 0,
        reconfigurations: 0,
        symbols_streamed: 0,
        charged_cycles: 0,
        reports: 0,
        report_bits: 0,
        lane_width: 0,
        lane_fill: 0.0,
        estimate: Default::default(),
    }
}

fn accumulate(total: &mut ApRunStats, part: &ApRunStats) {
    total.board_configurations += part.board_configurations;
    total.reconfigurations += part.reconfigurations;
    total.symbols_streamed += part.symbols_streamed;
    total.charged_cycles += part.charged_cycles;
    total.reports += part.reports;
    total.report_bits += part.report_bits;
    // Lane gauges are peaks, not sums: base + delta partitions run the same
    // batch, so the widest/fullest pass describes the whole search.
    total.lane_width = total.lane_width.max(part.lane_width);
    total.lane_fill = total.lane_fill.max(part.lane_fill);
    total.estimate.streaming_s += part.estimate.streaming_s;
    total.estimate.reconfiguration_s += part.estimate.reconfiguration_s;
    total.estimate.symbols += part.estimate.symbols;
    total.estimate.reconfigurations += part.estimate.reconfigurations;
}

/// An [`ApKnnEngine`] over a *mutable* corpus: an immutable compiled base plus
/// append-only delta partitions, tombstone filtering at the top-k merge, and
/// epoch/generation snapshots. See the module docs for the design.
pub struct LiveEngine {
    inner: Arc<LiveInner>,
    compactor: Option<JoinHandle<()>>,
    compilers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for LiveEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LiveEngine")
            .field("status", &self.status())
            .finish_non_exhaustive()
    }
}

impl LiveEngine {
    /// Builds a live engine over `data` (which becomes stable ids `0..len`).
    ///
    /// # Errors
    /// Configuration errors as [`SearchError::InvalidConfig`]; dataset-shape
    /// errors exactly as [`ApKnnEngine::prepare`].
    pub fn new(
        engine: ApKnnEngine,
        data: &BinaryDataset,
        config: LiveConfig,
    ) -> Result<Self, SearchError> {
        let next_id = data.len();
        Self::build(engine, config, data.clone(), None, next_id, 0, None)
    }

    /// Builds a *durable* live engine: a fresh WAL directory is created in
    /// `dir` (checkpoint 0 = `data`, an empty log extending it) and every
    /// subsequent mutation is logged and group-commit-fsynced before its ack
    /// returns. Refuses to clobber an existing durable corpus — use
    /// [`Self::restore`] for that.
    ///
    /// # Errors
    /// Configuration errors as [`SearchError::InvalidConfig`]; a pre-existing
    /// log or filesystem failures as [`SearchError::Backend`] (`wal`);
    /// dataset-shape errors exactly as [`ApKnnEngine::prepare`].
    pub fn durable(
        engine: ApKnnEngine,
        data: &BinaryDataset,
        config: LiveConfig,
        wal_config: WalConfig,
        dir: impl AsRef<Path>,
    ) -> Result<Self, SearchError> {
        config.validate()?;
        wal_config.validate()?;
        let dims = engine.design().dims;
        if !data.is_empty() && data.dims() != dims {
            return Err(SearchError::DimMismatch {
                expected: dims,
                actual: data.dims(),
            });
        }
        let image = CheckpointImage {
            generation: 0,
            next_id: data.len() as u64,
            dims,
            vectors: data
                .iter()
                .enumerate()
                .map(|(i, v)| (i as u64, v))
                .collect(),
        };
        let durability = Wal::create(dir.as_ref(), wal_config, &image)?;
        let next_id = data.len();
        Self::build(
            engine,
            config,
            data.clone(),
            None,
            next_id,
            0,
            Some(durability),
        )
    }

    /// Restores the durable corpus in `dir`: loads the checkpoint the log
    /// names, replays the log tail (truncating a torn final record), and
    /// serves the recovered corpus — bit-identical to a fresh
    /// [`ApKnnEngine::prepare`] over the surviving vectors, with their
    /// original stable ids. The log is reopened for appending, so mutations
    /// continue where the pre-crash engine stopped.
    ///
    /// # Errors
    /// [`SearchError::Backend`] (`wal`) for a missing or corrupt log/
    /// checkpoint; [`SearchError::DimMismatch`] when the recovered corpus
    /// does not match the engine design's dimensionality.
    pub fn restore(
        engine: ApKnnEngine,
        config: LiveConfig,
        wal_config: WalConfig,
        dir: impl AsRef<Path>,
    ) -> Result<(Self, RestoreReport), SearchError> {
        config.validate()?;
        wal_config.validate()?;
        let (image, durability, report) = wal::recover(dir.as_ref(), wal_config)?;
        if image.dims != engine.design().dims {
            return Err(SearchError::DimMismatch {
                expected: engine.design().dims,
                actual: image.dims,
            });
        }
        let mut data = BinaryDataset::with_capacity(image.dims, image.vectors.len());
        let mut ids = Vec::with_capacity(image.vectors.len());
        for (id, vector) in &image.vectors {
            data.push(vector);
            ids.push(*id as usize);
        }
        // Keep the identity map (the zero-allocation fast-path shape)
        // whenever the surviving ids happen to be dense from zero.
        let len = data.len();
        let ids = (!ids.iter().copied().eq(0..len)).then_some(ids);
        let live = Self::build(
            engine,
            config,
            data,
            ids,
            image.next_id as usize,
            image.generation,
            Some(durability),
        )?;
        Ok((live, report))
    }

    /// Whether `dir` holds a durable corpus a [`Self::restore`] would load.
    pub fn durable_exists(dir: impl AsRef<Path>) -> bool {
        wal::exists(dir.as_ref())
    }

    fn build(
        engine: ApKnnEngine,
        config: LiveConfig,
        base_data: BinaryDataset,
        base_ids: Option<Vec<usize>>,
        next_id: usize,
        generation: u64,
        durability: Option<Wal>,
    ) -> Result<Self, SearchError> {
        config.validate()?;
        let prepared = engine.prepare(&base_data)?;
        let live_len = base_data.len();
        let inner = Arc::new(LiveInner {
            engine,
            config,
            state: RwLock::new(Arc::new(Snapshot {
                generation,
                base: Arc::new(BaseSegment {
                    data: base_data,
                    prepared,
                    ids: base_ids,
                }),
                folded_through: next_id,
                deltas: Vec::new(),
                tombstones: Arc::new(Vec::new()),
                next_id,
                live_len,
            })),
            writer: Mutex::new(()),
            compact: Mutex::new(()),
            signal: Mutex::new(CompactorState::default()),
            wake: Condvar::new(),
            compactions: AtomicU64::new(0),
            durability,
            compile_tx: Mutex::new(None),
            compiles_scheduled: AtomicU64::new(0),
            compiles_completed: Arc::new(AtomicU64::new(0)),
        });
        let compactor = config.background.then(|| {
            let worker = Arc::clone(&inner);
            std::thread::spawn(move || loop {
                let mut state = worker.signal.lock().expect("compactor signal poisoned");
                while !state.pending && !state.shutdown {
                    state = worker.wake.wait(state).expect("compactor signal poisoned");
                }
                if state.shutdown {
                    return;
                }
                state.pending = false;
                drop(state);
                // A failed fold (e.g. a capacity limit) leaves the current
                // snapshot serving; the next mutation re-arms the trigger.
                let _ = worker.compact_now();
            })
        });
        // The compile pool holds only the engine handle and the completion
        // counter — not the inner Arc — so dropping the engine (which closes
        // the channel) is all it takes for the workers to exit.
        let mut compilers = Vec::with_capacity(config.compile_pool);
        if config.compile_pool > 0 {
            let (tx, rx) = mpsc::channel::<Arc<DeltaSegment>>();
            let rx = Arc::new(Mutex::new(rx));
            for _ in 0..config.compile_pool {
                let rx = Arc::clone(&rx);
                let engine = inner.engine.clone();
                let compile = config.compile_deltas;
                let completed = Arc::clone(&inner.compiles_completed);
                compilers.push(std::thread::spawn(move || loop {
                    let segment = {
                        let rx = rx.lock().expect("compile rx poisoned");
                        rx.recv()
                    };
                    match segment {
                        // Preparation errors are sticky in the segment and
                        // re-surface at the first query that touches it.
                        Ok(segment) => {
                            let _ = segment.prepared(&engine, compile);
                            completed.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(_) => return,
                    }
                }));
            }
            *inner.compile_tx.lock().expect("compile tx poisoned") = Some(tx);
        }
        Ok(Self {
            inner,
            compactor,
            compilers,
        })
    }

    /// The engine configuration queries and segment preparations use.
    pub fn engine(&self) -> &ApKnnEngine {
        &self.inner.engine
    }

    /// The construction configuration.
    pub fn config(&self) -> &LiveConfig {
        &self.inner.config
    }

    /// Dimensionality of the served vectors.
    pub fn dims(&self) -> usize {
        self.inner.engine.design().dims
    }

    /// Live (queryable) vectors.
    pub fn len(&self) -> usize {
        self.inner.snapshot().live_len
    }

    /// Whether no live vectors remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The current corpus generation.
    pub fn generation(&self) -> u64 {
        self.inner.snapshot().generation
    }

    /// A point-in-time gauge of the engine's internal shape.
    pub fn status(&self) -> LiveStatus {
        self.inner.status()
    }

    /// Applies one mutation and returns the ack carrying the generation at
    /// which it became visible. On a durable engine the ack only returns
    /// once the mutation's WAL record is fsynced (group commit: concurrent
    /// ackers share one fsync). May wake the background compactor.
    ///
    /// # Errors
    /// [`SearchError::DimMismatch`] for an insert of the wrong width;
    /// [`SearchError::Backend`] for a delete of an unknown or already-deleted
    /// id, or for a WAL failure (the mutation is then **not** durable and
    /// must be treated as failed, even though the crashed process may still
    /// serve it until it exits); segment-preparation errors as from
    /// [`ApKnnEngine::prepare`] when the compile pool is disabled.
    pub fn apply(&self, mutation: &Mutation) -> Result<MutAck, SearchError> {
        self.apply_batch(&[mutation])
            .pop()
            .expect("one outcome per mutation")
    }

    /// Applies a batch of mutations, one outcome each, in order. On a
    /// durable engine the whole batch is covered by a single
    /// [`Wal::sync_through`] — the group-commit fast path the serving
    /// runtime uses — and if that sync fails, *every* ack in the batch is
    /// converted to an error: an un-synced mutation is never acked, even if
    /// an overlapping group commit from another thread happened to persist
    /// its record.
    pub fn apply_batch(&self, mutations: &[&Mutation]) -> Vec<Result<MutAck, SearchError>> {
        let mut outcomes = Vec::with_capacity(mutations.len());
        let mut last_seq = None;
        for mutation in mutations {
            match self.inner.apply_logged(mutation) {
                Ok((ack, seq)) => {
                    if seq.is_some() {
                        last_seq = seq;
                    }
                    outcomes.push(Ok(ack));
                }
                Err(e) => outcomes.push(Err(e)),
            }
        }
        if let (Some(wal), Some(seq)) = (self.inner.durability.as_ref(), last_seq) {
            match wal.sync_through(seq) {
                Ok(()) => self.maybe_auto_checkpoint(),
                Err(e) => {
                    let err = SearchError::from(e);
                    for outcome in &mut outcomes {
                        if outcome.is_ok() {
                            *outcome = Err(err.clone());
                        }
                    }
                }
            }
        }
        self.inner.nudge_compactor();
        outcomes
    }

    /// Serializes the current live corpus as a checkpoint, rotates the WAL
    /// to extend it, and deletes the previous checkpoint — bounding crash
    /// replay to the mutations after this call. Returns `false` (and does
    /// nothing) on an in-memory engine.
    ///
    /// Runs under both the compaction and writer locks: mutations block for
    /// the duration, in-flight acks are drained first.
    ///
    /// # Errors
    /// WAL and filesystem failures as [`SearchError::Backend`] (`wal`).
    pub fn checkpoint_now(&self) -> Result<bool, SearchError> {
        let Some(wal) = self.inner.durability.as_ref() else {
            return Ok(false);
        };
        let _compact = self
            .inner
            .compact
            .lock()
            .expect("live compact lock poisoned");
        let _writer = self.inner.writer.lock().expect("live writer lock poisoned");
        let snap = self.inner.snapshot();
        let image = self.inner.fold_image(&snap);
        wal.checkpoint(&image)?;
        Ok(true)
    }

    fn maybe_auto_checkpoint(&self) {
        let Some(wal) = self.inner.durability.as_ref() else {
            return;
        };
        let Some(every) = wal.config().checkpoint_every else {
            return;
        };
        if wal.records_since_checkpoint() >= every {
            // Best-effort: a failed auto-checkpoint leaves the log longer
            // than intended (or poisoned, in which case the next mutation
            // fails loudly); the acked prefix stays durable either way.
            let _ = self.checkpoint_now();
        }
    }

    /// The WAL gauges of a durable engine (`None` on an in-memory one).
    pub fn wal_gauges(&self) -> Option<WalGauges> {
        self.inner.durability.as_ref().map(Wal::gauges)
    }

    /// Inserts `vector`, returning the ack with its assigned stable id.
    ///
    /// # Errors
    /// As [`Self::apply`].
    pub fn insert(&self, vector: &BinaryVector) -> Result<MutAck, SearchError> {
        self.apply(&Mutation::Insert {
            vector: vector.clone(),
        })
    }

    /// Deletes the vector with stable id `id`.
    ///
    /// # Errors
    /// As [`Self::apply`].
    pub fn delete(&self, id: usize) -> Result<MutAck, SearchError> {
        self.apply(&Mutation::Delete { id })
    }

    /// Folds the current deltas and tombstones into a fresh prepared base
    /// now, on the calling thread. Returns whether a compaction ran (`false`
    /// when the epoch was already fully folded).
    ///
    /// # Errors
    /// Preparation errors as from [`ApKnnEngine::prepare`]; on error the
    /// current snapshot keeps serving unchanged.
    pub fn compact_now(&self) -> Result<bool, SearchError> {
        self.inner.compact_now()
    }

    /// Searches `queries` against the current epoch, writing per-query sorted
    /// neighbors (by **stable id**) into the caller-owned `results`.
    ///
    /// An unmutated epoch — no deltas, no tombstones, identity id map —
    /// delegates straight to the base's zero-allocation
    /// [`PreparedEngine::try_search_batch_into`] hot path. A mutated epoch
    /// searches the base and every delta segment (over-fetching each by the
    /// tombstones that target it), filters tombstoned ids, and merges into an
    /// exact global top-k; the returned [`ApRunStats`] sums all segments.
    ///
    /// # Errors
    /// Exactly the errors of [`PreparedEngine::try_search_batch_into`].
    pub fn try_search_batch_into(
        &self,
        queries: &[BinaryVector],
        options: &QueryOptions,
        results: &mut Vec<Vec<Neighbor>>,
    ) -> Result<ApRunStats, SearchError> {
        let snap = self.inner.snapshot();
        if snap.is_pristine() {
            return snap
                .base
                .prepared
                .try_search_batch_into(queries, options, results);
        }
        options.validate()?;

        let k = options.k;
        let mut merged: Vec<TopK> = (0..queries.len()).map(|_| TopK::new(k)).collect();
        let mut stats = zero_stats();
        let mut segment_results: Vec<Vec<Neighbor>> = Vec::new();

        // Base segment: over-fetch by the tombstones below the watermark
        // (every one of them targets a base vector), then rewrite positional
        // ids to stable ids and drop the tombstoned.
        {
            let overfetch = snap.tombstones_in(0, snap.folded_through);
            let mut seg_options = *options;
            seg_options.k = k + overfetch;
            let part = snap.base.prepared.try_search_batch_into(
                queries,
                &seg_options,
                &mut segment_results,
            )?;
            accumulate(&mut stats, &part);
            for (acc, neighbors) in merged.iter_mut().zip(&segment_results) {
                for n in neighbors {
                    let id = snap.base.stable_id(n.id);
                    if !snap.tombstoned(id) {
                        acc.offer(Neighbor::new(id, n.distance));
                    }
                }
            }
        }

        for delta in &snap.deltas {
            let overfetch = snap.tombstones_in(delta.first_id, delta.end_id());
            let mut seg_options = *options;
            seg_options.k = k + overfetch;
            let part = delta
                .prepared(&self.inner.engine, self.inner.config.compile_deltas)?
                .try_search_batch_into(queries, &seg_options, &mut segment_results)?;
            accumulate(&mut stats, &part);
            for (acc, neighbors) in merged.iter_mut().zip(&segment_results) {
                for n in neighbors {
                    let id = delta.first_id + n.id;
                    if !snap.tombstoned(id) {
                        acc.offer(Neighbor::new(id, n.distance));
                    }
                }
            }
        }

        results.truncate(queries.len());
        while results.len() < queries.len() {
            results.push(Vec::new());
        }
        for (acc, neighbors) in merged.iter_mut().zip(results.iter_mut()) {
            acc.drain_sorted_into(neighbors);
            options.clip(neighbors);
        }
        Ok(stats)
    }

    /// Searches `queries` against the current epoch. See
    /// [`Self::try_search_batch_into`] for the allocation-conscious form and
    /// the id/merge semantics.
    ///
    /// # Errors
    /// Exactly the errors of [`Self::try_search_batch_into`].
    pub fn try_search_batch(
        &self,
        queries: &[BinaryVector],
        options: &QueryOptions,
    ) -> Result<(Vec<Vec<Neighbor>>, ApRunStats), SearchError> {
        let mut results = Vec::new();
        let stats = self.try_search_batch_into(queries, options, &mut results)?;
        Ok((results, stats))
    }
}

impl Drop for LiveEngine {
    fn drop(&mut self) {
        if let Some(handle) = self.compactor.take() {
            {
                let mut state = self.inner.signal.lock().expect("compactor signal poisoned");
                state.shutdown = true;
                self.inner.wake.notify_one();
            }
            let _ = handle.join();
        }
        // Closing the channel is the compile pool's shutdown signal.
        self.inner
            .compile_tx
            .lock()
            .expect("compile tx poisoned")
            .take();
        for handle in self.compilers.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capacity::{BoardCapacity, CapacityModel};
    use crate::design::KnnDesign;
    use crate::engine::ExecutionMode;
    use binvec::generate::{uniform_dataset, uniform_queries};

    fn engine(dims: usize, per_board: usize) -> ApKnnEngine {
        ApKnnEngine::new(KnnDesign::new(dims))
            .with_mode(ExecutionMode::Behavioral)
            .with_capacity(BoardCapacity {
                vectors_per_board: per_board,
                model: CapacityModel::PaperCalibrated,
            })
    }

    fn foreground() -> LiveConfig {
        LiveConfig::default()
            .with_background(false)
            .with_delta_chunk(4)
            .with_compact_threshold(8)
    }

    #[test]
    fn pristine_engine_matches_prepared_and_stays_generation_zero() {
        let dims = 16;
        let data = uniform_dataset(40, dims, 90);
        let engine = engine(dims, 10);
        let live = LiveEngine::new(engine.clone(), &data, foreground()).unwrap();
        let prepared = engine.prepare(&data).unwrap();
        let queries = uniform_queries(3, dims, 91);
        let options = QueryOptions::top(5);
        assert_eq!(
            live.try_search_batch(&queries, &options).unwrap(),
            prepared.try_search_batch(&queries, &options).unwrap(),
        );
        assert_eq!(live.generation(), 0);
        assert_eq!(live.len(), 40);
    }

    #[test]
    fn inserts_become_visible_with_fresh_stable_ids() {
        let dims = 16;
        let data = uniform_dataset(10, dims, 92);
        let live = LiveEngine::new(engine(dims, 8), &data, foreground()).unwrap();
        let extra = uniform_queries(3, dims, 93);
        for (i, v) in extra.iter().enumerate() {
            let ack = live.insert(v).unwrap();
            assert_eq!(ack.id, 10 + i);
            assert_eq!(ack.op, MutationOp::Insert);
            assert_eq!(ack.generation, (i + 1) as u64);
        }
        assert_eq!(live.len(), 13);
        // Query *for* an inserted vector: it must come back at distance 0.
        let (results, _) = live
            .try_search_batch(&extra[..1], &QueryOptions::top(1))
            .unwrap();
        assert_eq!(results[0][0], Neighbor::new(10, 0));
    }

    #[test]
    fn deletes_tombstone_and_never_reappear() {
        let dims = 16;
        let data = uniform_dataset(12, dims, 94);
        let live = LiveEngine::new(engine(dims, 6), &data, foreground()).unwrap();
        // Delete the nearest neighbor of query 0 and re-ask: the old second
        // place must be promoted, and the deleted id must never appear.
        let queries = uniform_queries(1, dims, 95);
        let (before, _) = live
            .try_search_batch(&queries, &QueryOptions::top(12))
            .unwrap();
        let victim = before[0][0].id;
        live.delete(victim).unwrap();
        let (after, _) = live
            .try_search_batch(&queries, &QueryOptions::top(12))
            .unwrap();
        assert_eq!(after[0].len(), 11);
        assert!(after[0].iter().all(|n| n.id != victim));
        assert_eq!(after[0].as_slice(), &before[0][1..]);
        // Double delete is a typed error.
        assert!(matches!(
            live.delete(victim),
            Err(SearchError::Backend { .. })
        ));
        assert!(matches!(live.delete(999), Err(SearchError::Backend { .. })));
    }

    #[test]
    fn compaction_folds_deltas_and_preserves_results() {
        let dims = 16;
        let data = uniform_dataset(9, dims, 96);
        let live = LiveEngine::new(engine(dims, 5), &data, foreground()).unwrap();
        let extra = uniform_queries(10, dims, 97);
        for v in &extra {
            live.insert(v).unwrap();
        }
        live.delete(3).unwrap();
        live.delete(13).unwrap();
        let queries = uniform_queries(4, dims, 98);
        let options = QueryOptions::top(6);
        let (before, _) = live.try_search_batch(&queries, &options).unwrap();
        assert!(live.compact_now().unwrap());
        let status = live.status();
        assert_eq!(status.delta_vectors, 0);
        assert_eq!(status.tombstones, 0);
        assert_eq!(status.base_len, 17);
        assert_eq!(status.live_len, 17);
        assert_eq!(status.compactions, 1);
        let (after, _) = live.try_search_batch(&queries, &options).unwrap();
        assert_eq!(before, after, "compaction must not change any result");
        // A second compaction with nothing to fold is a no-op.
        assert!(!live.compact_now().unwrap());
    }

    #[test]
    fn threshold_triggers_background_compaction() {
        let dims = 16;
        let data = uniform_dataset(6, dims, 99);
        let config = LiveConfig::default()
            .with_delta_chunk(2)
            .with_compact_threshold(4)
            .with_background(true);
        let live = LiveEngine::new(engine(dims, 6), &data, config).unwrap();
        for v in &uniform_queries(5, dims, 100) {
            live.insert(v).unwrap();
        }
        // The background thread owns the fold; wait for it to land.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while live.status().compactions == 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        assert!(live.status().compactions >= 1, "compactor never ran");
        assert_eq!(live.len(), 11);
    }

    #[test]
    fn zero_sized_config_fields_are_rejected() {
        let dims = 8;
        let data = uniform_dataset(4, dims, 101);
        for config in [
            LiveConfig::default().with_delta_chunk(0),
            LiveConfig::default().with_compact_threshold(0),
        ] {
            assert!(matches!(
                LiveEngine::new(engine(dims, 4), &data, config),
                Err(SearchError::InvalidConfig { .. })
            ));
        }
    }

    fn scratch(tag: &str) -> std::path::PathBuf {
        use std::sync::atomic::AtomicUsize;
        static NEXT: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "ap-live-unit-{}-{}-{}",
            std::process::id(),
            tag,
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn durable_engine_restores_bit_identically_after_churn() {
        let dims = 16;
        let dir = scratch("restore");
        let data = uniform_dataset(10, dims, 110);
        let queries = uniform_queries(3, dims, 111);
        let options = QueryOptions::top(4);
        let before = {
            let live = LiveEngine::durable(
                engine(dims, 6),
                &data,
                foreground(),
                WalConfig::default(),
                &dir,
            )
            .unwrap();
            for v in &uniform_queries(5, dims, 112) {
                live.insert(v).unwrap();
            }
            live.delete(2).unwrap();
            live.delete(12).unwrap();
            assert!(live.wal_gauges().unwrap().records >= 7);
            live.try_search_batch(&queries, &options).unwrap().0
            // Dropped without a checkpoint: restore must replay the log.
        };
        let (restored, report) =
            LiveEngine::restore(engine(dims, 6), foreground(), WalConfig::default(), &dir).unwrap();
        assert_eq!(report.replayed, 7);
        assert!(!report.torn);
        assert_eq!(restored.len(), 13);
        let after = restored.try_search_batch(&queries, &options).unwrap().0;
        assert_eq!(before, after, "restore must be bit-identical");

        // Mutations continue from the recovered watermark.
        let v = uniform_queries(1, dims, 113).pop().unwrap();
        let ack = restored.insert(&v).unwrap();
        assert_eq!(ack.id, 15);
        drop(restored);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_bounds_replay_and_preserves_results() {
        let dims = 16;
        let dir = scratch("ckpt");
        let data = uniform_dataset(8, dims, 120);
        let live = LiveEngine::durable(
            engine(dims, 6),
            &data,
            foreground(),
            WalConfig::default(),
            &dir,
        )
        .unwrap();
        for v in &uniform_queries(4, dims, 121) {
            live.insert(v).unwrap();
        }
        live.delete(1).unwrap();
        assert!(live.checkpoint_now().unwrap());
        assert_eq!(live.wal_gauges().unwrap().records_since_checkpoint, 0);
        live.insert(&uniform_queries(1, dims, 122).pop().unwrap())
            .unwrap();
        let queries = uniform_queries(2, dims, 123);
        let options = QueryOptions::top(5);
        let before = live.try_search_batch(&queries, &options).unwrap().0;
        drop(live);

        let (restored, report) =
            LiveEngine::restore(engine(dims, 6), foreground(), WalConfig::default(), &dir).unwrap();
        assert_eq!(report.checkpoint_seq, 1);
        assert_eq!(
            report.replayed, 1,
            "only the post-checkpoint insert replays"
        );
        let after = restored.try_search_batch(&queries, &options).unwrap().0;
        assert_eq!(before, after);
        drop(restored);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn durable_refuses_existing_dir_and_restore_requires_one() {
        let dims = 8;
        let dir = scratch("exists");
        let data = uniform_dataset(3, dims, 130);
        let live = LiveEngine::durable(
            engine(dims, 4),
            &data,
            foreground(),
            WalConfig::default(),
            &dir,
        )
        .unwrap();
        assert!(LiveEngine::durable_exists(&dir));
        assert!(matches!(
            LiveEngine::durable(
                engine(dims, 4),
                &data,
                foreground(),
                WalConfig::default(),
                &dir
            ),
            Err(SearchError::Backend { .. })
        ));
        drop(live);
        let missing = scratch("missing");
        assert!(!LiveEngine::durable_exists(&missing));
        assert!(matches!(
            LiveEngine::restore(
                engine(dims, 4),
                foreground(),
                WalConfig::default(),
                &missing
            ),
            Err(SearchError::Backend { .. })
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compile_pool_drains_its_backlog() {
        let dims = 16;
        let data = uniform_dataset(4, dims, 140);
        let config = LiveConfig::default()
            .with_background(false)
            .with_delta_chunk(3)
            .with_compact_threshold(64)
            .with_compile_pool(2);
        let live = LiveEngine::new(engine(dims, 8), &data, config).unwrap();
        for v in &uniform_queries(6, dims, 141) {
            live.insert(v).unwrap();
        }
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while live.status().compile_backlog > 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        assert_eq!(live.status().compile_backlog, 0, "pool never caught up");
        // And the prepared segments answer identically to a fresh prepare.
        let queries = uniform_queries(2, dims, 142);
        let (results, _) = live
            .try_search_batch(&queries, &QueryOptions::top(3))
            .unwrap();
        assert!(results.iter().all(|r| r.len() == 3));
    }

    #[test]
    fn empty_initial_corpus_grows_from_nothing() {
        let dims = 16;
        let live =
            LiveEngine::new(engine(dims, 4), &BinaryDataset::new(dims), foreground()).unwrap();
        assert!(live.is_empty());
        let vectors = uniform_queries(3, dims, 102);
        for v in &vectors {
            live.insert(v).unwrap();
        }
        let (results, _) = live
            .try_search_batch(&vectors[..1], &QueryOptions::top(3))
            .unwrap();
        assert_eq!(results[0].len(), 3);
        assert_eq!(results[0][0], Neighbor::new(0, 0));
    }
}
