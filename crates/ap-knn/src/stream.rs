//! Query symbol-stream encoding and the temporal-sort offset arithmetic.
//!
//! Each query occupies one fixed-length *window* of the symbol stream (Fig. 2c):
//!
//! ```text
//! offset:   0     1 … d      d+1 … 2d+D+1      2d+D+2
//! symbol:  SOF   q₀ … q_{d−1}   filler ×(d+D+1)   EOF
//! ```
//!
//! where `D` is the collector-tree depth of the design. The filler ("^EOF") symbols
//! give the temporally encoded sort time to run: during the filler phase every
//! vector's inverted-Hamming-distance counter is incremented once per cycle, so the
//! counter of a vector at Hamming distance `dist` crosses its threshold — and its
//! reporting state fires — at window offset `d + D + 2 + dist`. Smaller distances
//! report earlier; the report order *is* the sort.

use crate::design::KnnDesign;
use binvec::BinaryVector;
use serde::{Deserialize, Serialize};

/// Fixed per-query window layout derived from a [`KnnDesign`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct StreamLayout {
    /// Vector dimensionality `d`.
    pub dims: usize,
    /// Collector-tree depth `D`.
    pub collector_depth: usize,
    /// SOF symbol.
    pub sof: u8,
    /// EOF symbol.
    pub eof: u8,
    /// Filler symbol.
    pub filler: u8,
}

impl StreamLayout {
    /// Builds the layout for a design.
    pub fn for_design(design: &KnnDesign) -> Self {
        Self {
            dims: design.dims,
            collector_depth: design.collector_depth(),
            sof: design.alphabet.sof,
            eof: design.alphabet.eof,
            filler: design.alphabet.filler,
        }
    }

    /// Number of filler symbols per window: `d + D + 1`.
    ///
    /// This is the smallest padding that (a) lets a zero-match vector still reach
    /// the threshold before the EOF reset and (b) keeps the sort-phase increments
    /// strictly after the last possible collector-tree increment, so the counter
    /// never sees two enable pulses in one cycle (which would silently drop one on
    /// increment-by-one hardware).
    pub fn filler_count(&self) -> usize {
        self.dims + self.collector_depth + 1
    }

    /// Total symbols per query window: `1 + d + filler + 1 = 2d + D + 3`.
    pub fn window_len(&self) -> usize {
        2 * self.dims + self.collector_depth + 3
    }

    /// Window offset at which a vector at Hamming distance `dist` reports.
    pub fn report_offset_for_distance(&self, dist: u32) -> usize {
        self.dims + self.collector_depth + 2 + dist as usize
    }

    /// Inverse of [`Self::report_offset_for_distance`]: the Hamming distance encoded
    /// by a report at `window_offset`, or `None` for offsets outside the valid
    /// reporting range.
    pub fn distance_for_report_offset(&self, window_offset: usize) -> Option<u32> {
        let first = self.dims + self.collector_depth + 2;
        let last = first + self.dims;
        if (first..=last).contains(&window_offset) {
            Some((window_offset - first) as u32)
        } else {
            None
        }
    }

    /// Splits an absolute stream offset into `(query index, window offset)`.
    pub fn split_offset(&self, absolute_offset: u64) -> (usize, usize) {
        let w = self.window_len() as u64;
        (
            (absolute_offset / w) as usize,
            (absolute_offset % w) as usize,
        )
    }

    /// Encodes a single query vector into one window of symbols, *appending*
    /// to a caller-owned buffer (so a batch encode reuses one allocation).
    ///
    /// # Panics
    /// Panics if the query's dimensionality differs from the layout's.
    pub fn encode_query_into(&self, query: &BinaryVector, out: &mut Vec<u8>) {
        assert_eq!(
            query.dims(),
            self.dims,
            "query dims {} != layout dims {}",
            query.dims(),
            self.dims
        );
        let start = out.len();
        out.reserve(self.window_len());
        out.push(self.sof);
        for i in 0..self.dims {
            out.push(u8::from(query.get(i)));
        }
        out.extend(std::iter::repeat_n(self.filler, self.filler_count()));
        out.push(self.eof);
        debug_assert_eq!(out.len() - start, self.window_len());
    }

    /// Encodes a single query vector into one window of symbols.
    ///
    /// # Panics
    /// Panics if the query's dimensionality differs from the layout's.
    pub fn encode_query(&self, query: &BinaryVector) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.window_len());
        self.encode_query_into(query, &mut out);
        out
    }

    /// Encodes a batch of queries back-to-back into a caller-owned buffer
    /// (cleared first). Steady-state serving reuses one pooled buffer per
    /// batch, so encoding allocates nothing once the buffer has warmed up.
    pub fn encode_batch_into(&self, queries: &[BinaryVector], out: &mut Vec<u8>) {
        out.clear();
        out.reserve(self.window_len() * queries.len());
        for q in queries {
            self.encode_query_into(q, out);
        }
    }

    /// Encodes a batch of queries back-to-back.
    pub fn encode_batch(&self, queries: &[BinaryVector]) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_batch_into(queries, &mut out);
        out
    }

    /// Total symbols streamed for `queries` queries (without building the stream).
    pub fn stream_len(&self, queries: usize) -> u64 {
        self.window_len() as u64 * queries as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use binvec::BinaryVector;

    fn layout(dims: usize) -> StreamLayout {
        StreamLayout::for_design(&KnnDesign::new(dims))
    }

    #[test]
    fn window_structure_for_small_example() {
        // d = 4 with fan-in 8 gives collector depth 1, reproducing the 12-symbol
        // window of the paper's Figure 3 (SOF + 4 query symbols + 6 fillers + EOF).
        let l = layout(4);
        assert_eq!(l.collector_depth, 1);
        assert_eq!(l.filler_count(), 6);
        assert_eq!(l.window_len(), 12);
        let q = BinaryVector::from_bits(&[1, 0, 0, 1]);
        let stream = l.encode_query(&q);
        assert_eq!(stream.len(), 12);
        assert_eq!(stream[0], l.sof);
        assert_eq!(&stream[1..5], &[1, 0, 0, 1]);
        assert!(stream[5..11].iter().all(|&s| s == l.filler));
        assert_eq!(stream[11], l.eof);
    }

    #[test]
    fn report_offset_roundtrip() {
        for dims in [4usize, 64, 128, 256] {
            let l = layout(dims);
            for dist in [0u32, 1, (dims / 2) as u32, dims as u32] {
                let off = l.report_offset_for_distance(dist);
                assert!(off < l.window_len(), "report must land inside the window");
                assert_eq!(l.distance_for_report_offset(off), Some(dist));
            }
            // Offsets before the sort phase decode to nothing.
            assert_eq!(l.distance_for_report_offset(0), None);
            assert_eq!(l.distance_for_report_offset(l.dims), None);
            assert_eq!(
                l.distance_for_report_offset(l.report_offset_for_distance(dims as u32) + 1),
                None
            );
        }
    }

    #[test]
    fn closer_vectors_report_earlier() {
        let l = layout(128);
        let mut prev = 0;
        for dist in 0..=128u32 {
            let off = l.report_offset_for_distance(dist);
            if dist > 0 {
                assert_eq!(off, prev + 1, "temporal sort must be strictly ordered");
            }
            prev = off;
        }
    }

    #[test]
    fn batch_encoding_concatenates_windows() {
        let l = layout(8);
        let queries = vec![
            BinaryVector::from_bits(&[1, 1, 1, 1, 0, 0, 0, 0]),
            BinaryVector::from_bits(&[0, 0, 0, 0, 1, 1, 1, 1]),
        ];
        let stream = l.encode_batch(&queries);
        assert_eq!(stream.len() as u64, l.stream_len(2));
        assert_eq!(stream[0], l.sof);
        assert_eq!(stream[l.window_len()], l.sof);
        let (q, w) = l.split_offset(l.window_len() as u64 + 3);
        assert_eq!((q, w), (1, 3));
    }

    #[test]
    fn into_variants_reuse_the_buffer_and_match_the_allocating_forms() {
        let l = layout(8);
        let queries = vec![
            BinaryVector::from_bits(&[1, 0, 1, 0, 1, 0, 1, 0]),
            BinaryVector::from_bits(&[0, 1, 1, 0, 0, 1, 1, 0]),
        ];
        let mut buf = Vec::new();
        l.encode_batch_into(&queries, &mut buf);
        assert_eq!(buf, l.encode_batch(&queries));
        let capacity = buf.capacity();
        // Re-encoding into the warmed buffer must not grow it.
        l.encode_batch_into(&queries, &mut buf);
        assert_eq!(buf.capacity(), capacity);
        assert_eq!(buf, l.encode_batch(&queries));
        // The single-query form appends.
        let len = buf.len();
        l.encode_query_into(&queries[0], &mut buf);
        assert_eq!(buf.len(), len + l.window_len());
        assert_eq!(&buf[len..], l.encode_query(&queries[0]).as_slice());
    }

    #[test]
    #[should_panic(expected = "query dims")]
    fn wrong_query_dims_panics() {
        let l = layout(16);
        let _ = l.encode_query(&BinaryVector::zeros(8));
    }

    #[test]
    fn larger_fan_in_shrinks_the_window() {
        let narrow = StreamLayout::for_design(&KnnDesign::new(256).with_collector_fan_in(4));
        let wide = StreamLayout::for_design(&KnnDesign::new(256).with_collector_fan_in(64));
        assert!(narrow.window_len() > wide.window_len());
    }
}
