//! Host-side scheduling: multi-board parallel execution and pipelined
//! reconfiguration.
//!
//! The paper's single-board engine (§III-C, reproduced in [`crate::engine`])
//! serializes *load board image → stream queries → load next image*. Two host-side
//! scheduling improvements follow directly from the system architecture in Fig. 1
//! and the non-blocking-API assumption of §IV-B:
//!
//! * **Multi-board / multi-rank parallelism** ([`ParallelApScheduler`]): an AP device
//!   is four ranks of eight AP chips, and nothing stops a host from populating
//!   several ranks (or several boards) with *different* dataset partitions and
//!   broadcasting the same query stream to all of them. Partitions are distributed
//!   over worker threads — each worker standing in for one board — and the per-query
//!   top-k accumulators are merged on the host, exactly as they already are across
//!   sequential reconfigurations.
//! * **Pipelined (double-buffered) reconfiguration** ([`PipelineModel`]): while one
//!   partition is being streamed, the next board image can be transferred, so the
//!   per-partition cost becomes `max(stream, reconfigure)` instead of their sum. On
//!   Gen-1 hardware, where reconfiguration is ~98 % of large-dataset run time
//!   (Table IV), overlapping buys little; on Gen-2 the two terms are comparable and
//!   pipelining approaches a 2× improvement. The model quantifies both.

use crate::capacity::BoardCapacity;
use crate::design::KnnDesign;
use crate::prepared::{arm_accumulators, contiguous_assignment, PoolStats, PreparedBoards};
use ap_sim::TimingModel;
use binvec::{BinaryDataset, BinaryVector, Neighbor, QueryOptions, SearchError};
use serde::{Deserialize, Serialize};

/// Statistics from one parallel scheduled run.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScheduleStats {
    /// Number of dataset partitions (board images) processed.
    pub partitions: usize,
    /// Number of worker threads (simulated boards) actually used.
    pub workers_used: usize,
    /// Partitions assigned to each worker.
    pub partitions_per_worker: Vec<usize>,
    /// Total report events generated across all workers.
    pub reports: u64,
    /// Symbols streamed per worker (each worker streams the full query batch once
    /// per partition it owns).
    pub symbols_per_worker: Vec<u64>,
}

impl ScheduleStats {
    /// Symbols streamed by the most loaded worker — the critical path of the
    /// parallel schedule.
    pub fn critical_path_symbols(&self) -> u64 {
        self.symbols_per_worker.iter().copied().max().unwrap_or(0)
    }

    /// Total symbols streamed across all workers (equals the single-board figure).
    pub fn total_symbols(&self) -> u64 {
        self.symbols_per_worker.iter().sum()
    }
}

/// Drives dataset partitions across several simulated boards in parallel.
#[derive(Clone, Debug)]
pub struct ParallelApScheduler {
    design: KnnDesign,
    capacity: BoardCapacity,
    workers: usize,
    strict_analysis: bool,
}

impl ParallelApScheduler {
    /// Creates a scheduler with the paper-calibrated board capacity and one worker
    /// per available rank of a Gen-1 device (four).
    pub fn new(design: KnnDesign) -> Self {
        Self {
            capacity: BoardCapacity::paper_calibrated(design.dims),
            design,
            workers: 4,
            strict_analysis: false,
        }
    }

    /// Enables strict static analysis of every compiled board image (see
    /// [`crate::engine::ApKnnEngine::with_strict_analysis`]).
    pub fn with_strict_analysis(mut self, strict: bool) -> Self {
        self.strict_analysis = strict;
        self
    }

    /// Overrides the number of worker threads (simulated boards).
    ///
    /// # Panics
    /// Panics if `workers` is zero.
    pub fn with_workers(mut self, workers: usize) -> Self {
        assert!(workers > 0, "scheduler needs at least one worker");
        self.workers = workers;
        self
    }

    /// Overrides the per-board capacity.
    pub fn with_capacity(mut self, capacity: BoardCapacity) -> Self {
        self.capacity = capacity;
        self
    }

    /// The design being scheduled.
    pub fn design(&self) -> &KnnDesign {
        &self.design
    }

    /// The configured number of workers.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Binds this schedule to `data`, partitioning it into board images once.
    /// The returned [`PreparedSchedule`] caches the partitioning and (on first
    /// use) the compiled board images, so repeated batches stream without
    /// rebuilding any network.
    ///
    /// # Errors
    /// [`SearchError::ZeroDims`] for a zero-dimension design and
    /// [`SearchError::DimMismatch`] when the dataset disagrees with it.
    pub fn prepare(&self, data: &BinaryDataset) -> Result<PreparedSchedule, SearchError> {
        Ok(PreparedSchedule {
            boards: PreparedBoards::new(
                self.design,
                data,
                self.capacity.vectors_per_board,
                self.strict_analysis,
            )?,
            scheduler: self.clone(),
        })
    }

    /// Searches `queries` against `data` with every partition simulated cycle-
    /// accurately, distributing partitions over the worker threads and merging the
    /// per-query top-k results on the host.
    ///
    /// The results are identical to [`crate::engine::ApKnnEngine::try_search_batch`]
    /// in cycle-accurate mode; only the execution schedule differs. Each call is a
    /// transient preparation (the board images are rebuilt); use [`Self::prepare`]
    /// to amortize that across batches.
    ///
    /// # Panics
    /// Panics if dataset or query dimensionality differs from the design, or `k` is 0.
    pub fn search_batch(
        &self,
        data: &BinaryDataset,
        queries: &[BinaryVector],
        k: usize,
    ) -> (Vec<Vec<Neighbor>>, ScheduleStats) {
        let run = self
            .prepare(data)
            .and_then(|prepared| prepared.try_search_batch(queries, &QueryOptions::top(k)));
        match run {
            Ok(out) => out,
            Err(e) => panic!("{e}"),
        }
    }
}

/// A [`ParallelApScheduler`] bound to a dataset with its board images cached —
/// created by [`ParallelApScheduler::prepare`].
#[derive(Clone, Debug)]
pub struct PreparedSchedule {
    scheduler: ParallelApScheduler,
    boards: PreparedBoards,
}

impl PreparedSchedule {
    /// The scheduler configuration this preparation was made with.
    pub fn scheduler(&self) -> &ParallelApScheduler {
        &self.scheduler
    }

    /// Vectors served.
    pub fn len(&self) -> usize {
        self.boards.dataset_len()
    }

    /// Whether the prepared dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.boards.dataset_len() == 0
    }

    /// Dimensionality of the served vectors.
    pub fn dims(&self) -> usize {
        self.boards.design().dims
    }

    /// Whether the board images have been built and compiled yet (they are
    /// compiled by the first non-empty batch).
    pub fn is_compiled(&self) -> bool {
        self.boards.is_compiled()
    }

    /// Searches `queries` across the cached board images, distributing them
    /// over the configured workers and merging per-query top-k on the host.
    /// Semantics (results and [`ScheduleStats`]) are identical to
    /// [`ParallelApScheduler::search_batch`]; only the per-call board-image
    /// construction cost is gone. The distance bound and `k` of `options`
    /// apply; the execution preference is ignored (the schedule is inherently
    /// cycle-accurate).
    ///
    /// # Errors
    /// [`SearchError::ZeroK`] / [`SearchError::ZeroDistanceBound`] for invalid
    /// options, [`SearchError::DimMismatch`] for mis-sized queries, and
    /// [`SearchError::Backend`] if a partition network fails validation.
    pub fn try_search_batch(
        &self,
        queries: &[BinaryVector],
        options: &QueryOptions,
    ) -> Result<(Vec<Vec<Neighbor>>, ScheduleStats), SearchError> {
        options.validate()?;
        let dims = self.boards.design().dims;
        for q in queries {
            if q.dims() != dims {
                return Err(SearchError::DimMismatch {
                    expected: dims,
                    actual: q.dims(),
                });
            }
        }
        let k = options.k;
        let layout = self.boards.layout();
        // Reports address their window by a 32-bit stream offset; a batch whose
        // stream is longer than that cannot be decoded unambiguously.
        let stream_len = layout.stream_len(queries.len());
        if stream_len > u64::from(u32::MAX) {
            return Err(SearchError::CapacityExceeded {
                needed: stream_len,
                limit: u64::from(u32::MAX),
            });
        }
        // An empty batch streams nothing: answer without compiling any board
        // image, with the same schedule shape a zero-symbol run would report
        // (the shared `contiguous_assignment` is what the fan-out executes).
        if queries.is_empty() {
            let partitions = self.boards.partitions().len();
            let partitions_per_worker = contiguous_assignment(partitions, self.scheduler.workers);
            let chunks = partitions_per_worker.len();
            return Ok((
                Vec::new(),
                ScheduleStats {
                    partitions,
                    workers_used: chunks.max(1),
                    partitions_per_worker,
                    reports: 0,
                    symbols_per_worker: vec![0; chunks],
                },
            ));
        }
        // The shared pooled partition-execution recipe: encode into pooled
        // scratch, one scoped worker per contiguous image chunk (each standing
        // in for one board), per-worker scratch from the same pool, and a
        // host-side merge identical to the merge across sequential
        // reconfigurations.
        let mut host = self.boards.pool().checkout();
        layout.encode_batch_into(queries, &mut host.stream);
        arm_accumulators(&mut host.accumulators, queries.len(), k);
        let reports = match self.boards.fan_out_into(
            &host.stream,
            k,
            queries.len(),
            self.scheduler.workers,
            &mut host.accumulators,
            &mut host.chunks,
        ) {
            Ok(reports) => reports,
            Err(e) => {
                self.boards.pool().give_back(host);
                return Err(e);
            }
        };

        let workers_used = host.chunks.len().max(1);
        let partitions_per_worker = host.chunks.clone();
        // Each worker streams the full query batch once per image it owns.
        let symbols_per_worker: Vec<u64> = host
            .chunks
            .iter()
            .map(|&images| images as u64 * host.stream.len() as u64)
            .collect();

        let stats = ScheduleStats {
            partitions: self.boards.partitions().len(),
            workers_used,
            partitions_per_worker,
            reports,
            symbols_per_worker,
        };
        let mut results: Vec<Vec<Neighbor>> = Vec::with_capacity(queries.len());
        for acc in host.accumulators.iter_mut().take(queries.len()) {
            let mut neighbors = Vec::new();
            acc.drain_sorted_into(&mut neighbors);
            options.clip(&mut neighbors);
            results.push(neighbors);
        }
        self.boards.pool().give_back(host);
        Ok((results, stats))
    }

    /// Statistics of the shared execution-scratch pool (see
    /// [`crate::PreparedEngine::pool_stats`]).
    pub fn pool_stats(&self) -> PoolStats {
        self.boards.pool().stats()
    }
}

/// Analytical model of pipelined (double-buffered) partial reconfiguration.
#[derive(Clone, Copy, Debug)]
pub struct PipelineModel {
    timing: TimingModel,
}

/// Serial vs. overlapped execution-time estimate for a multi-partition run.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PipelineEstimate {
    /// Seconds with the serial load-then-stream schedule (the engine's default).
    pub serial_s: f64,
    /// Seconds with reconfiguration of partition *i + 1* overlapped with streaming
    /// of partition *i*.
    pub overlapped_s: f64,
    /// Seconds spent streaming one partition's query batch.
    pub stream_per_partition_s: f64,
    /// Seconds per partial reconfiguration.
    pub reconfiguration_s: f64,
    /// Number of partitions.
    pub partitions: usize,
}

impl PipelineEstimate {
    /// Speedup of the overlapped schedule over the serial one (≥ 1).
    pub fn speedup(&self) -> f64 {
        if self.overlapped_s == 0.0 {
            1.0
        } else {
            self.serial_s / self.overlapped_s
        }
    }
}

impl PipelineModel {
    /// Builds a pipeline model for the given device timing.
    pub fn new(timing: TimingModel) -> Self {
        Self { timing }
    }

    /// Estimates serial and overlapped run time for `partitions` board images with
    /// `symbols_per_partition` symbols streamed per image.
    ///
    /// The first image load is excluded from both schedules (it happens before the
    /// query batch starts, matching the engine's accounting); the remaining
    /// `partitions − 1` loads are either serialized with streaming or overlapped
    /// with the previous partition's streaming.
    pub fn estimate(&self, symbols_per_partition: u64, partitions: usize) -> PipelineEstimate {
        let stream = self.timing.streaming_time_s(symbols_per_partition);
        let reconfig = self.timing.reconfiguration_time_s(1);
        let later = partitions.saturating_sub(1) as f64;
        let serial = stream * partitions as f64 + reconfig * later;
        let overlapped = stream + later * stream.max(reconfig);
        PipelineEstimate {
            serial_s: serial,
            overlapped_s: overlapped.min(serial),
            stream_per_partition_s: stream,
            reconfiguration_s: reconfig,
            partitions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capacity::CapacityModel;
    use crate::engine::ApKnnEngine;
    use ap_sim::DeviceConfig;
    use binvec::generate::{uniform_dataset, uniform_queries};

    fn tiny_capacity(vectors_per_board: usize) -> BoardCapacity {
        BoardCapacity {
            vectors_per_board,
            model: CapacityModel::PaperCalibrated,
        }
    }

    #[test]
    fn parallel_results_match_sequential_engine() {
        let dims = 16;
        let data = uniform_dataset(60, dims, 21);
        let queries = uniform_queries(5, dims, 22);
        let design = KnnDesign::new(dims);
        let (expected, _) = ApKnnEngine::new(design)
            .with_capacity(tiny_capacity(9))
            .try_search_batch(&data, &queries, &binvec::QueryOptions::top(4))
            .unwrap();
        for workers in [1usize, 2, 3, 8] {
            let scheduler = ParallelApScheduler::new(design)
                .with_capacity(tiny_capacity(9))
                .with_workers(workers);
            let (got, stats) = scheduler.search_batch(&data, &queries, 4);
            assert_eq!(got, expected, "workers = {workers}");
            assert_eq!(stats.partitions, 7);
            assert_eq!(stats.workers_used, workers.min(7));
            assert_eq!(
                stats.partitions_per_worker.iter().sum::<usize>(),
                stats.partitions
            );
            assert_eq!(stats.reports, 60 * 5);
        }
    }

    #[test]
    fn more_workers_than_partitions_is_fine() {
        let dims = 8;
        let data = uniform_dataset(10, dims, 1);
        let queries = uniform_queries(2, dims, 2);
        let scheduler = ParallelApScheduler::new(KnnDesign::new(dims))
            .with_capacity(tiny_capacity(100))
            .with_workers(16);
        let (results, stats) = scheduler.search_batch(&data, &queries, 3);
        assert_eq!(results.len(), 2);
        assert_eq!(stats.partitions, 1);
        assert_eq!(stats.workers_used, 1);
    }

    #[test]
    fn critical_path_shrinks_with_more_workers() {
        let dims = 8;
        let data = uniform_dataset(64, dims, 5);
        let queries = uniform_queries(2, dims, 6);
        let design = KnnDesign::new(dims);
        let one = ParallelApScheduler::new(design)
            .with_capacity(tiny_capacity(8))
            .with_workers(1);
        let four = ParallelApScheduler::new(design)
            .with_capacity(tiny_capacity(8))
            .with_workers(4);
        let (_, s1) = one.search_batch(&data, &queries, 2);
        let (_, s4) = four.search_batch(&data, &queries, 2);
        assert_eq!(s1.total_symbols(), s4.total_symbols());
        assert!(s4.critical_path_symbols() < s1.critical_path_symbols());
        assert_eq!(s4.critical_path_symbols() * 4, s1.critical_path_symbols());
    }

    #[test]
    fn prepared_schedule_matches_transient_runs_across_batches() {
        let dims = 12;
        let data = uniform_dataset(40, dims, 23);
        let scheduler = ParallelApScheduler::new(KnnDesign::new(dims))
            .with_capacity(tiny_capacity(7))
            .with_workers(3);
        let prepared = scheduler.prepare(&data).unwrap();
        assert_eq!(prepared.len(), 40);
        assert_eq!(prepared.dims(), dims);
        for round in 0..3 {
            let queries = uniform_queries(3, dims, 24 + round);
            let expected = scheduler.search_batch(&data, &queries, 4);
            let got = prepared
                .try_search_batch(&queries, &binvec::QueryOptions::top(4))
                .unwrap();
            assert_eq!(got, expected, "round {round}");
        }
    }

    #[test]
    fn prepared_schedule_empty_batch_builds_nothing() {
        let dims = 8;
        let data = uniform_dataset(20, dims, 29);
        let scheduler = ParallelApScheduler::new(KnnDesign::new(dims))
            .with_capacity(tiny_capacity(6))
            .with_workers(2);
        let prepared = scheduler.prepare(&data).unwrap();
        let (results, stats) = prepared
            .try_search_batch(&[], &binvec::QueryOptions::top(3))
            .unwrap();
        assert!(results.is_empty());
        assert!(
            !prepared.is_compiled(),
            "empty batch must not compile images"
        );
        assert_eq!(stats.reports, 0);
        assert!(stats.symbols_per_worker.iter().all(|&s| s == 0));
        // The schedule shape matches what a streamed run reports.
        let queries = uniform_queries(1, dims, 30);
        let (_, streamed) = scheduler.search_batch(&data, &queries, 3);
        assert_eq!(stats.partitions, streamed.partitions);
        assert_eq!(stats.workers_used, streamed.workers_used);
        assert_eq!(stats.partitions_per_worker, streamed.partitions_per_worker);
        assert_eq!(
            stats.symbols_per_worker.len(),
            streamed.symbols_per_worker.len()
        );
    }

    #[test]
    fn prepared_schedule_reports_typed_errors() {
        let scheduler = ParallelApScheduler::new(KnnDesign::new(8));
        let data = uniform_dataset(6, 8, 25);
        let prepared = scheduler.prepare(&data).unwrap();
        let narrow = uniform_queries(1, 4, 26);
        assert_eq!(
            prepared
                .try_search_batch(&narrow, &binvec::QueryOptions::top(2))
                .unwrap_err(),
            SearchError::DimMismatch {
                expected: 8,
                actual: 4
            }
        );
        assert_eq!(
            prepared
                .try_search_batch(&[], &binvec::QueryOptions::top(0))
                .unwrap_err(),
            SearchError::ZeroK
        );
        let wide = uniform_dataset(4, 16, 27);
        assert!(matches!(
            scheduler.prepare(&wide),
            Err(SearchError::DimMismatch { .. })
        ));
    }

    #[test]
    fn scheduler_exposes_configuration() {
        let scheduler = ParallelApScheduler::new(KnnDesign::new(32)).with_workers(2);
        assert_eq!(scheduler.workers(), 2);
        assert_eq!(scheduler.design().dims, 32);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_panics() {
        let _ = ParallelApScheduler::new(KnnDesign::new(8)).with_workers(0);
    }

    #[test]
    fn pipeline_overlap_never_slower_and_bounded_by_two() {
        for device in [DeviceConfig::gen1(), DeviceConfig::gen2()] {
            let model = PipelineModel::new(TimingModel::new(device));
            for &(symbols, partitions) in &[
                (1_000u64, 1usize),
                (100_000, 4),
                (1_000_000, 64),
                (4_000_000, 1024),
            ] {
                let est = model.estimate(symbols, partitions);
                assert!(est.overlapped_s <= est.serial_s + 1e-12);
                let speedup = est.speedup();
                assert!((1.0..=2.0 + 1e-9).contains(&speedup), "speedup {speedup}");
            }
        }
    }

    #[test]
    fn pipeline_gains_little_when_reconfiguration_dominates() {
        // Gen-1: 45 ms reconfiguration vs. a short stream — overlap hides the small
        // term, so the speedup stays close to 1.
        let model = PipelineModel::new(TimingModel::new(DeviceConfig::gen1()));
        let est = model.estimate(10_000, 100);
        assert!(est.reconfiguration_s > est.stream_per_partition_s * 10.0);
        assert!(est.speedup() < 1.1);

        // When streaming and reconfiguration are comparable the overlap approaches 2x.
        let balanced_symbols = (est.reconfiguration_s
            / TimingModel::new(DeviceConfig::gen1()).streaming_time_s(1))
        .round() as u64;
        let est2 = model.estimate(balanced_symbols, 1000);
        assert!(est2.speedup() > 1.8, "speedup {}", est2.speedup());
    }

    #[test]
    fn single_partition_has_no_pipeline_benefit() {
        let model = PipelineModel::new(TimingModel::new(DeviceConfig::gen2()));
        let est = model.estimate(50_000, 1);
        assert_eq!(est.serial_s, est.overlapped_s);
        assert_eq!(est.speedup(), 1.0);
        assert_eq!(est.partitions, 1);
    }
}
