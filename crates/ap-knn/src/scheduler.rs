//! Host-side scheduling: multi-board parallel execution and pipelined
//! reconfiguration.
//!
//! The paper's single-board engine (§III-C, reproduced in [`crate::engine`])
//! serializes *load board image → stream queries → load next image*. Two host-side
//! scheduling improvements follow directly from the system architecture in Fig. 1
//! and the non-blocking-API assumption of §IV-B:
//!
//! * **Multi-board / multi-rank parallelism** ([`ParallelApScheduler`]): an AP device
//!   is four ranks of eight AP chips, and nothing stops a host from populating
//!   several ranks (or several boards) with *different* dataset partitions and
//!   broadcasting the same query stream to all of them. Partitions are distributed
//!   over worker threads — each worker standing in for one board — and the per-query
//!   top-k accumulators are merged on the host, exactly as they already are across
//!   sequential reconfigurations.
//! * **Pipelined (double-buffered) reconfiguration** ([`PipelineModel`]): while one
//!   partition is being streamed, the next board image can be transferred, so the
//!   per-partition cost becomes `max(stream, reconfigure)` instead of their sum. On
//!   Gen-1 hardware, where reconfiguration is ~98 % of large-dataset run time
//!   (Table IV), overlapping buys little; on Gen-2 the two terms are comparable and
//!   pipelining approaches a 2× improvement. The model quantifies both.

use crate::capacity::BoardCapacity;
use crate::design::KnnDesign;
use crate::stream::StreamLayout;
use ap_sim::TimingModel;
use binvec::{BinaryDataset, BinaryVector, Neighbor, TopK};
use serde::{Deserialize, Serialize};

/// Statistics from one parallel scheduled run.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScheduleStats {
    /// Number of dataset partitions (board images) processed.
    pub partitions: usize,
    /// Number of worker threads (simulated boards) actually used.
    pub workers_used: usize,
    /// Partitions assigned to each worker.
    pub partitions_per_worker: Vec<usize>,
    /// Total report events generated across all workers.
    pub reports: u64,
    /// Symbols streamed per worker (each worker streams the full query batch once
    /// per partition it owns).
    pub symbols_per_worker: Vec<u64>,
}

impl ScheduleStats {
    /// Symbols streamed by the most loaded worker — the critical path of the
    /// parallel schedule.
    pub fn critical_path_symbols(&self) -> u64 {
        self.symbols_per_worker.iter().copied().max().unwrap_or(0)
    }

    /// Total symbols streamed across all workers (equals the single-board figure).
    pub fn total_symbols(&self) -> u64 {
        self.symbols_per_worker.iter().sum()
    }
}

/// Drives dataset partitions across several simulated boards in parallel.
#[derive(Clone, Debug)]
pub struct ParallelApScheduler {
    design: KnnDesign,
    capacity: BoardCapacity,
    workers: usize,
}

impl ParallelApScheduler {
    /// Creates a scheduler with the paper-calibrated board capacity and one worker
    /// per available rank of a Gen-1 device (four).
    pub fn new(design: KnnDesign) -> Self {
        Self {
            capacity: BoardCapacity::paper_calibrated(design.dims),
            design,
            workers: 4,
        }
    }

    /// Overrides the number of worker threads (simulated boards).
    ///
    /// # Panics
    /// Panics if `workers` is zero.
    pub fn with_workers(mut self, workers: usize) -> Self {
        assert!(workers > 0, "scheduler needs at least one worker");
        self.workers = workers;
        self
    }

    /// Overrides the per-board capacity.
    pub fn with_capacity(mut self, capacity: BoardCapacity) -> Self {
        self.capacity = capacity;
        self
    }

    /// The design being scheduled.
    pub fn design(&self) -> &KnnDesign {
        &self.design
    }

    /// The configured number of workers.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Searches `queries` against `data` with every partition simulated cycle-
    /// accurately, distributing partitions over the worker threads and merging the
    /// per-query top-k results on the host.
    ///
    /// The results are identical to [`crate::engine::ApKnnEngine::search_batch`] in
    /// cycle-accurate mode; only the execution schedule differs.
    ///
    /// # Panics
    /// Panics if dataset or query dimensionality differs from the design, or `k` is 0.
    pub fn search_batch(
        &self,
        data: &BinaryDataset,
        queries: &[BinaryVector],
        k: usize,
    ) -> (Vec<Vec<Neighbor>>, ScheduleStats) {
        assert_eq!(data.dims(), self.design.dims, "dataset dims mismatch");
        for q in queries {
            assert_eq!(q.dims(), self.design.dims, "query dims mismatch");
        }
        assert!(k > 0, "k must be positive");

        let layout = StreamLayout::for_design(&self.design);
        let stream = layout.encode_batch(queries);
        let partitions = data.partition(self.capacity.vectors_per_board.max(1));

        // Contiguous assignment: worker w owns partitions [w·span, (w+1)·span).
        let span = partitions
            .len()
            .div_ceil(self.workers.min(partitions.len()).max(1));
        let assignments: Vec<&[binvec::dataset::DatasetPartition]> =
            partitions.chunks(span.max(1)).collect();
        let workers_used = assignments.len().max(1);

        let design = &self.design;
        let queries_len = queries.len();
        let worker_outputs: Vec<(Vec<TopK>, u64, u64)> = std::thread::scope(|scope| {
            let handles: Vec<_> = assignments
                .iter()
                .map(|owned| {
                    let stream = &stream;
                    let layout = &layout;
                    scope.spawn(move || {
                        let mut accumulators: Vec<TopK> =
                            (0..queries_len).map(|_| TopK::new(k)).collect();
                        let mut reports_total = 0u64;
                        let mut symbols = 0u64;
                        // One compiled simulator per partition (built once), one
                        // report allocation reused across the worker's partitions.
                        let mut reports = Vec::new();
                        for partition in owned.iter() {
                            reports_total += crate::engine::run_partition(
                                design,
                                layout,
                                stream,
                                partition,
                                &mut accumulators,
                                &mut reports,
                            )
                            .expect("partition network must be valid");
                            symbols += stream.len() as u64;
                        }
                        (accumulators, reports_total, symbols)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("scheduler worker panicked"))
                .collect()
        });

        // Host-side merge, identical to the merge across sequential reconfigurations.
        let mut merged: Vec<TopK> = (0..queries.len()).map(|_| TopK::new(k)).collect();
        let mut reports = 0u64;
        let mut partitions_per_worker = Vec::with_capacity(worker_outputs.len());
        let mut symbols_per_worker = Vec::with_capacity(worker_outputs.len());
        for (assignment, (accumulators, worker_reports, symbols)) in
            assignments.iter().zip(worker_outputs)
        {
            for (global, local) in merged.iter_mut().zip(&accumulators) {
                global.merge(local);
            }
            reports += worker_reports;
            partitions_per_worker.push(assignment.len());
            symbols_per_worker.push(symbols);
        }

        let stats = ScheduleStats {
            partitions: partitions.len(),
            workers_used,
            partitions_per_worker,
            reports,
            symbols_per_worker,
        };
        (merged.into_iter().map(TopK::into_sorted).collect(), stats)
    }
}

/// Analytical model of pipelined (double-buffered) partial reconfiguration.
#[derive(Clone, Copy, Debug)]
pub struct PipelineModel {
    timing: TimingModel,
}

/// Serial vs. overlapped execution-time estimate for a multi-partition run.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PipelineEstimate {
    /// Seconds with the serial load-then-stream schedule (the engine's default).
    pub serial_s: f64,
    /// Seconds with reconfiguration of partition *i + 1* overlapped with streaming
    /// of partition *i*.
    pub overlapped_s: f64,
    /// Seconds spent streaming one partition's query batch.
    pub stream_per_partition_s: f64,
    /// Seconds per partial reconfiguration.
    pub reconfiguration_s: f64,
    /// Number of partitions.
    pub partitions: usize,
}

impl PipelineEstimate {
    /// Speedup of the overlapped schedule over the serial one (≥ 1).
    pub fn speedup(&self) -> f64 {
        if self.overlapped_s == 0.0 {
            1.0
        } else {
            self.serial_s / self.overlapped_s
        }
    }
}

impl PipelineModel {
    /// Builds a pipeline model for the given device timing.
    pub fn new(timing: TimingModel) -> Self {
        Self { timing }
    }

    /// Estimates serial and overlapped run time for `partitions` board images with
    /// `symbols_per_partition` symbols streamed per image.
    ///
    /// The first image load is excluded from both schedules (it happens before the
    /// query batch starts, matching the engine's accounting); the remaining
    /// `partitions − 1` loads are either serialized with streaming or overlapped
    /// with the previous partition's streaming.
    pub fn estimate(&self, symbols_per_partition: u64, partitions: usize) -> PipelineEstimate {
        let stream = self.timing.streaming_time_s(symbols_per_partition);
        let reconfig = self.timing.reconfiguration_time_s(1);
        let later = partitions.saturating_sub(1) as f64;
        let serial = stream * partitions as f64 + reconfig * later;
        let overlapped = stream + later * stream.max(reconfig);
        PipelineEstimate {
            serial_s: serial,
            overlapped_s: overlapped.min(serial),
            stream_per_partition_s: stream,
            reconfiguration_s: reconfig,
            partitions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capacity::CapacityModel;
    use crate::engine::ApKnnEngine;
    use ap_sim::DeviceConfig;
    use binvec::generate::{uniform_dataset, uniform_queries};

    fn tiny_capacity(vectors_per_board: usize) -> BoardCapacity {
        BoardCapacity {
            vectors_per_board,
            model: CapacityModel::PaperCalibrated,
        }
    }

    #[test]
    fn parallel_results_match_sequential_engine() {
        let dims = 16;
        let data = uniform_dataset(60, dims, 21);
        let queries = uniform_queries(5, dims, 22);
        let design = KnnDesign::new(dims);
        let (expected, _) = ApKnnEngine::new(design)
            .with_capacity(tiny_capacity(9))
            .try_search_batch(&data, &queries, &binvec::QueryOptions::top(4))
            .unwrap();
        for workers in [1usize, 2, 3, 8] {
            let scheduler = ParallelApScheduler::new(design)
                .with_capacity(tiny_capacity(9))
                .with_workers(workers);
            let (got, stats) = scheduler.search_batch(&data, &queries, 4);
            assert_eq!(got, expected, "workers = {workers}");
            assert_eq!(stats.partitions, 7);
            assert_eq!(stats.workers_used, workers.min(7));
            assert_eq!(
                stats.partitions_per_worker.iter().sum::<usize>(),
                stats.partitions
            );
            assert_eq!(stats.reports, 60 * 5);
        }
    }

    #[test]
    fn more_workers_than_partitions_is_fine() {
        let dims = 8;
        let data = uniform_dataset(10, dims, 1);
        let queries = uniform_queries(2, dims, 2);
        let scheduler = ParallelApScheduler::new(KnnDesign::new(dims))
            .with_capacity(tiny_capacity(100))
            .with_workers(16);
        let (results, stats) = scheduler.search_batch(&data, &queries, 3);
        assert_eq!(results.len(), 2);
        assert_eq!(stats.partitions, 1);
        assert_eq!(stats.workers_used, 1);
    }

    #[test]
    fn critical_path_shrinks_with_more_workers() {
        let dims = 8;
        let data = uniform_dataset(64, dims, 5);
        let queries = uniform_queries(2, dims, 6);
        let design = KnnDesign::new(dims);
        let one = ParallelApScheduler::new(design)
            .with_capacity(tiny_capacity(8))
            .with_workers(1);
        let four = ParallelApScheduler::new(design)
            .with_capacity(tiny_capacity(8))
            .with_workers(4);
        let (_, s1) = one.search_batch(&data, &queries, 2);
        let (_, s4) = four.search_batch(&data, &queries, 2);
        assert_eq!(s1.total_symbols(), s4.total_symbols());
        assert!(s4.critical_path_symbols() < s1.critical_path_symbols());
        assert_eq!(s4.critical_path_symbols() * 4, s1.critical_path_symbols());
    }

    #[test]
    fn scheduler_exposes_configuration() {
        let scheduler = ParallelApScheduler::new(KnnDesign::new(32)).with_workers(2);
        assert_eq!(scheduler.workers(), 2);
        assert_eq!(scheduler.design().dims, 32);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_panics() {
        let _ = ParallelApScheduler::new(KnnDesign::new(8)).with_workers(0);
    }

    #[test]
    fn pipeline_overlap_never_slower_and_bounded_by_two() {
        for device in [DeviceConfig::gen1(), DeviceConfig::gen2()] {
            let model = PipelineModel::new(TimingModel::new(device));
            for &(symbols, partitions) in &[
                (1_000u64, 1usize),
                (100_000, 4),
                (1_000_000, 64),
                (4_000_000, 1024),
            ] {
                let est = model.estimate(symbols, partitions);
                assert!(est.overlapped_s <= est.serial_s + 1e-12);
                let speedup = est.speedup();
                assert!((1.0..=2.0 + 1e-9).contains(&speedup), "speedup {speedup}");
            }
        }
    }

    #[test]
    fn pipeline_gains_little_when_reconfiguration_dominates() {
        // Gen-1: 45 ms reconfiguration vs. a short stream — overlap hides the small
        // term, so the speedup stays close to 1.
        let model = PipelineModel::new(TimingModel::new(DeviceConfig::gen1()));
        let est = model.estimate(10_000, 100);
        assert!(est.reconfiguration_s > est.stream_per_partition_s * 10.0);
        assert!(est.speedup() < 1.1);

        // When streaming and reconfiguration are comparable the overlap approaches 2x.
        let balanced_symbols = (est.reconfiguration_s
            / TimingModel::new(DeviceConfig::gen1()).streaming_time_s(1))
        .round() as u64;
        let est2 = model.estimate(balanced_symbols, 1000);
        assert!(est2.speedup() > 1.8, "speedup {}", est2.speedup());
    }

    #[test]
    fn single_partition_has_no_pipeline_benefit() {
        let model = PipelineModel::new(TimingModel::new(DeviceConfig::gen2()));
        let est = model.estimate(50_000, 1);
        assert_eq!(est.serial_s, est.overlapped_s);
        assert_eq!(est.speedup(), 1.0);
        assert_eq!(est.partitions, 1);
    }
}
