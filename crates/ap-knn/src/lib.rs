//! # ap-knn — kNN similarity search automata for the Automata Processor
//!
//! This crate is the reproduction of the primary contribution of *"Similarity Search
//! on Automata Processors"* (Lee et al., IPDPS 2017): a nondeterministic-finite-
//! automata design that answers k-nearest-neighbor queries in Hamming space entirely
//! inside the AP fabric, using a **temporally encoded sort** so that both the
//! distance computation and the top-k selection finish in `O(d)` symbol cycles per
//! query (instead of `O(n·d)` distance work plus `O(n log n)` sorting on a
//! von-Neumann host).
//!
//! The building blocks mirror the paper's Section III:
//!
//! * [`design`] — the symbol alphabet and layout parameters shared by the stream
//!   encoder and the macro builders;
//! * [`stream`] — the query symbol stream: `SOF · q₀…q_{d−1} · filler^(d+D+1) · EOF`
//!   per query, plus the offset ↔ Hamming-distance arithmetic of the temporal sort;
//! * [`macros`] — the *Hamming macro* (guard state, star/match state ladder,
//!   collector reduction tree) and *sorting macro* (inverted-Hamming-distance
//!   counter, sort states, EOF reset, reporting state) for a single encoded vector;
//! * [`builder`] — composition of one NFA per dataset vector into a board-level
//!   automata network;
//! * [`decode`] — turning reporting-state activations back into per-query sorted
//!   neighbor lists;
//! * [`capacity`] — how many vectors fit per board configuration (both a
//!   first-principles placement estimate and the paper-calibrated figures);
//! * [`engine`] — the end-to-end engine: dataset partitioning, partial
//!   reconfiguration across board images, cycle-accurate or analytical execution,
//!   host-side merge of partial results;
//! * [`indexed`] — spatial-indexing front ends (kd-tree / k-means / LSH) with the
//!   index traversal on the host and the bucket scan on the AP (§III-D);
//! * [`packing`] — the vector-packing optimization (§VI-A);
//! * [`multiplex`] — symbol-stream multiplexing of up to 7 parallel queries (§VI-B);
//! * [`reduction`] — statistical activation reduction (§VI-C);
//! * [`extensions`] — the architectural extensions of §VII (counter increment,
//!   dynamic thresholds, STE decomposition) and their analytical gain models;
//! * [`jaccard`] — the Jaccard-similarity variant of the macro (§II-C), reusing the
//!   temporal sort to rank by intersection size;
//! * [`scheduler`] — host-side scheduling: multi-board parallel execution and the
//!   pipelined (double-buffered) reconfiguration model;
//! * [`prepared`] — the amortized prepare/run lifecycle: partition once, build and
//!   compile every board image once, stream many query batches;
//! * [`live`] — mutable corpora over the prepared lifecycle: an immutable
//!   compiled base plus append-only delta partitions, tombstone filtering at
//!   the top-k merge, epoch/generation snapshots, and background compaction;
//! * [`wal`] — durability for live corpora: a CRC-checksummed group-commit
//!   write-ahead log, checkpoint images, crash recovery with torn-tail
//!   truncation, and a deterministic crash-fault-injection harness;
//! * [`plan`] — the frontier-aware auto execution planner (cycle-accurate vs
//!   behavioural from fabric size × stream length, calibrated on `BENCH_sim.json`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod builder;
pub mod capacity;
pub mod decode;
pub mod design;
pub mod engine;
pub mod extensions;
pub mod indexed;
pub mod jaccard;
pub mod lanes;
pub mod live;
pub mod macros;
pub mod multiplex;
pub mod packing;
pub mod plan;
pub mod prepared;
pub mod reduction;
pub mod scheduler;
pub mod stream;
pub mod wal;

pub use binvec::{ExecutionPreference, QueryOptions, SearchError};
pub use builder::PartitionNetwork;
pub use capacity::BoardCapacity;
pub use decode::decode_reports;
pub use design::{KnnDesign, SymbolAlphabet};
pub use engine::{ApKnnEngine, ApRunStats, ExecutionMode};
pub use jaccard::{JaccardNeighbor, JaccardSearcher};
pub use lanes::encode_lane_planes_into;
pub use live::{LiveConfig, LiveEngine, LiveStatus};
pub use plan::{AutoPlanner, ExecutionPlanner};
pub use prepared::{PoolStats, PreparedEngine};
pub use scheduler::{ParallelApScheduler, PipelineModel, PreparedSchedule, ScheduleStats};
pub use stream::StreamLayout;
pub use wal::{FaultPlan, RestoreReport, WalConfig, WalError, WalGauges};
