//! Vector packing (§VI-A): overlaying several Hamming macros on a shared vector
//! ladder.
//!
//! The key insight of the optimization is that Hamming macros share common structure:
//! the guard state and, for every dimension, a `0`-match state and a `1`-match state.
//! A *vector ladder* instantiates that shared structure once (two match states per
//! dimension, fully connected between consecutive dimensions); each packed vector
//! then only needs its own collector tree, counter and sorting macro, wired to the
//! ladder states corresponding to its bit values.
//!
//! The paper found that, on Gen-1 hardware, packing *places* but often fails to fully
//! *route* because of the ladder's high fan-out — so it reports packing as an
//! analytical projection (Table VIII uses groups of 4). This module provides both:
//!
//! * [`append_packed_group`] — a functional packed NFA whose reports are verified
//!   against the unpacked design in the tests, and whose placement exhibits the
//!   routing-pressure increase the paper observed;
//! * [`PackingModel`] — the analytical STE-savings model (1 NFA state ≈ 1 STE) used
//!   for the Table VIII projections.

use crate::design::KnnDesign;
use ap_sim::{AutomataNetwork, ConnectPort, CounterMode, ElementId, StartKind, SymbolClass};
use binvec::BinaryVector;
use serde::{Deserialize, Serialize};

/// Handles for one packed group of vectors sharing a ladder.
#[derive(Clone, Debug)]
pub struct PackedGroupHandles {
    /// The shared guard state.
    pub guard: ElementId,
    /// `ladder[i] = (zero_state, one_state)` for dimension `i`.
    pub ladder: Vec<(ElementId, ElementId)>,
    /// Per-vector counters, in the order the vectors were supplied.
    pub counters: Vec<ElementId>,
    /// Per-vector reporting states.
    pub reporters: Vec<ElementId>,
}

/// Appends a packed group of vector macros sharing one vector ladder.
///
/// `report_codes[i]` is assigned to `vectors[i]`. All vectors must have the design's
/// dimensionality.
pub fn append_packed_group(
    net: &mut AutomataNetwork,
    vectors: &[BinaryVector],
    report_codes: &[u32],
    design: &KnnDesign,
) -> PackedGroupHandles {
    assert!(!vectors.is_empty(), "packed group must contain vectors");
    assert_eq!(
        vectors.len(),
        report_codes.len(),
        "one report code per vector required"
    );
    let d = design.dims;
    for v in vectors {
        assert_eq!(v.dims(), d, "vector dims must match design dims");
    }
    let alpha = design.alphabet;
    let group = report_codes[0];

    // Shared guard state.
    let guard = net.add_ste(
        format!("pack{group}:guard"),
        SymbolClass::single(alpha.sof),
        StartKind::AllInput,
        None,
    );

    // Vector ladder: a 0-state and a 1-state per dimension, each driven by both
    // states of the previous dimension (or the guard for dimension 0).
    let mut ladder: Vec<(ElementId, ElementId)> = Vec::with_capacity(d);
    for i in 0..d {
        let zero = net.add_ste(
            format!("pack{group}:dim{i}=0"),
            SymbolClass::single(alpha.data_symbol(false)),
            StartKind::None,
            None,
        );
        let one = net.add_ste(
            format!("pack{group}:dim{i}=1"),
            SymbolClass::single(alpha.data_symbol(true)),
            StartKind::None,
            None,
        );
        if i == 0 {
            net.connect(guard, zero).expect("ladder");
            net.connect(guard, one).expect("ladder");
        } else {
            let (pz, po) = ladder[i - 1];
            for from in [pz, po] {
                net.connect(from, zero).expect("ladder");
                net.connect(from, one).expect("ladder");
            }
        }
        ladder.push((zero, one));
    }

    // Per-vector collector trees + sorting macros.
    let mut counters = Vec::with_capacity(vectors.len());
    let mut reporters = Vec::with_capacity(vectors.len());
    for (v, &code) in vectors.iter().zip(report_codes.iter()) {
        let tag = format!("pack{group}:v{code}");

        // Leaves of this vector's collector tree: the ladder state matching the
        // vector's bit value at each dimension.
        let leaves: Vec<ElementId> = (0..d)
            .map(|i| if v.get(i) { ladder[i].1 } else { ladder[i].0 })
            .collect();

        // Uniform-depth reduction tree (same construction as the unpacked macro).
        let mut frontier = leaves;
        let mut level = 0usize;
        while frontier.len() > 1 || level == 0 {
            let mut next = Vec::new();
            for (c, chunk) in frontier.chunks(design.collector_fan_in).enumerate() {
                let node = net.add_ste(
                    format!("{tag}:collect{level}_{c}"),
                    SymbolClass::any(),
                    StartKind::None,
                    None,
                );
                for &child in chunk {
                    net.connect(child, node).expect("collector");
                }
                next.push(node);
            }
            frontier = next;
            level += 1;
        }
        let collector_root = frontier[0];

        let counter = net.add_counter(format!("{tag}:ihd"), d as u32, CounterMode::Pulse, None);
        net.connect_port(collector_root, counter, ConnectPort::CountEnable)
            .expect("collector to counter");

        let sort_start = net.add_ste(
            format!("{tag}:sort"),
            SymbolClass::single(alpha.filler),
            StartKind::AllInput,
            None,
        );
        let mut sort_prev = sort_start;
        for j in 0..design.collector_depth() {
            let delay = net.add_ste(
                format!("{tag}:sortdelay{j}"),
                SymbolClass::single(alpha.filler),
                StartKind::None,
                None,
            );
            net.connect(sort_prev, delay).expect("sort delay");
            sort_prev = delay;
        }
        net.connect_port(sort_prev, counter, ConnectPort::CountEnable)
            .expect("sort to counter");

        let eof_state = net.add_ste(
            format!("{tag}:eof"),
            SymbolClass::single(alpha.eof),
            StartKind::None,
            None,
        );
        net.connect(sort_start, eof_state).expect("eof");
        net.connect_port(eof_state, counter, ConnectPort::CountReset)
            .expect("eof reset");

        let reporter = net.add_ste(
            format!("{tag}:report"),
            SymbolClass::any(),
            StartKind::None,
            Some(code),
        );
        net.connect(counter, reporter).expect("report");

        counters.push(counter);
        reporters.push(reporter);
    }

    PackedGroupHandles {
        guard,
        ladder,
        counters,
        reporters,
    }
}

/// Analytical STE-cost model for vector packing (1 NFA state ≈ 1 STE).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PackingModel {
    /// Vectors packed per group.
    pub group_size: usize,
    /// STEs per unpacked vector macro.
    pub unpacked_stes_per_vector: usize,
    /// STEs per packed group.
    pub packed_stes_per_group: usize,
}

impl PackingModel {
    /// Builds the model for a design and group size.
    pub fn new(design: &KnnDesign, group_size: usize) -> Self {
        assert!(group_size >= 1, "group size must be at least 1");
        let per_vector_private = design.collector_nodes() + (1 + design.collector_depth()) + 1 + 1;
        let shared = 1 + 2 * design.dims;
        Self {
            group_size,
            unpacked_stes_per_vector: design.stes_per_vector(),
            packed_stes_per_group: shared + group_size * per_vector_private,
        }
    }

    /// STE cost of `group_size` unpacked macros.
    pub fn unpacked_stes_per_group(&self) -> usize {
        self.unpacked_stes_per_vector * self.group_size
    }

    /// Resource-saving factor (unpacked / packed), the quantity Table VIII compounds.
    pub fn savings_factor(&self) -> f64 {
        self.unpacked_stes_per_group() as f64 / self.packed_stes_per_group as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::macros::append_vector_macro;
    use crate::stream::StreamLayout;
    use ap_sim::{DeviceConfig, Placer, Simulator};
    use binvec::generate::{uniform_dataset, uniform_queries};

    #[test]
    fn packed_group_reports_match_unpacked_macros() {
        let dims = 16;
        let design = KnnDesign::new(dims);
        let layout = StreamLayout::for_design(&design);
        let data = uniform_dataset(6, dims, 21);
        let vectors: Vec<BinaryVector> = data.iter().collect();
        let codes: Vec<u32> = (0..6).collect();

        let mut packed_net = AutomataNetwork::new();
        append_packed_group(&mut packed_net, &vectors, &codes, &design);
        packed_net.validate().unwrap();

        let mut unpacked_net = AutomataNetwork::new();
        for (v, &c) in vectors.iter().zip(codes.iter()) {
            append_vector_macro(&mut unpacked_net, v, c, &design);
        }

        let queries = uniform_queries(4, dims, 22);
        let stream = layout.encode_batch(&queries);

        let mut packed_sim = Simulator::new(&packed_net).unwrap();
        let mut unpacked_sim = Simulator::new(&unpacked_net).unwrap();
        let mut packed_reports: Vec<(u32, u64)> = packed_sim
            .run(&stream)
            .into_iter()
            .map(|r| (r.code, r.offset))
            .collect();
        let mut unpacked_reports: Vec<(u32, u64)> = unpacked_sim
            .run(&stream)
            .into_iter()
            .map(|r| (r.code, r.offset))
            .collect();
        packed_reports.sort_unstable();
        unpacked_reports.sort_unstable();
        assert_eq!(packed_reports, unpacked_reports);
    }

    #[test]
    fn packed_network_uses_fewer_stes_than_unpacked() {
        let dims = 64;
        let design = KnnDesign::new(dims);
        let data = uniform_dataset(8, dims, 30);
        let vectors: Vec<BinaryVector> = data.iter().collect();
        let codes: Vec<u32> = (0..8).collect();

        let mut packed_net = AutomataNetwork::new();
        append_packed_group(&mut packed_net, &vectors, &codes, &design);
        let mut unpacked_net = AutomataNetwork::new();
        for (v, &c) in vectors.iter().zip(codes.iter()) {
            append_vector_macro(&mut unpacked_net, v, c, &design);
        }
        let packed_stes = packed_net.stats().stes;
        let unpacked_stes = unpacked_net.stats().stes;
        assert!(
            packed_stes < unpacked_stes,
            "packed {packed_stes} should beat unpacked {unpacked_stes}"
        );
        // The analytical model matches the constructed networks exactly.
        let model = PackingModel::new(&design, 8);
        assert_eq!(model.packed_stes_per_group, packed_stes);
        assert_eq!(model.unpacked_stes_per_group(), unpacked_stes);
    }

    #[test]
    fn packing_increases_routing_pressure() {
        // The ladder's fan-out (each ladder state drives the next dimension's two
        // states plus every packed vector's collector) is what broke routability in
        // the paper's experiments; the placement heuristic must reflect that.
        let dims = 64;
        let design = KnnDesign::new(dims);
        // 16 vectors: by pigeonhole at least 8 of them agree on every dimension's bit
        // value, so some ladder state fans out to >= 8 collectors plus the next
        // dimension, exceeding the unpacked design's worst fan-in/fan-out.
        let data = uniform_dataset(16, dims, 31);
        let vectors: Vec<BinaryVector> = data.iter().collect();
        let codes: Vec<u32> = (0..16).collect();

        let mut packed_net = AutomataNetwork::new();
        append_packed_group(&mut packed_net, &vectors, &codes, &design);
        let mut unpacked_net = AutomataNetwork::new();
        for (v, &c) in vectors.iter().zip(codes.iter()) {
            append_vector_macro(&mut unpacked_net, v, c, &design);
        }
        let placer = Placer::new(DeviceConfig::gen1());
        let packed = placer.place(&packed_net).unwrap();
        let unpacked = placer.place(&unpacked_net).unwrap();
        assert!(packed.routing_pressure > unpacked.routing_pressure);
    }

    #[test]
    fn analytical_savings_match_paper_magnitudes() {
        // Table VIII projects packing gains of 2.93x / 3.28x / 3.31x for groups of 4
        // on WordEmbed / SIFT / TagSpace. Our macro has slightly different constant
        // overheads, so check the same ballpark (2.5x - 3.6x) and the ordering.
        let gains: Vec<f64> = [64usize, 128, 256]
            .iter()
            .map(|&d| PackingModel::new(&KnnDesign::new(d), 4).savings_factor())
            .collect();
        for g in &gains {
            assert!((2.5..3.7).contains(g), "gain {g}");
        }
        assert!(gains[1] > gains[0]);
        assert!(gains[2] > gains[1]);
    }

    #[test]
    fn savings_grow_with_group_size_but_saturate() {
        let design = KnnDesign::new(128);
        let g2 = PackingModel::new(&design, 2).savings_factor();
        let g4 = PackingModel::new(&design, 4).savings_factor();
        let g16 = PackingModel::new(&design, 16).savings_factor();
        let g256 = PackingModel::new(&design, 256).savings_factor();
        assert!(g2 < g4 && g4 < g16 && g16 < g256);
        // The asymptote is unpacked/private cost; check saturation.
        assert!(g256 - g16 < g16 - g2);
        assert!(PackingModel::new(&design, 1).savings_factor() < 1.0 + 1e-9);
    }

    #[test]
    #[should_panic(expected = "one report code per vector")]
    fn mismatched_codes_panic() {
        let design = KnnDesign::new(8);
        let mut net = AutomataNetwork::new();
        append_packed_group(&mut net, &[BinaryVector::zeros(8)], &[0, 1], &design);
    }
}
