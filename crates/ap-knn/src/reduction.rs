//! Statistical activation reduction (§VI-C): suppressing report traffic.
//!
//! Every encoded vector eventually fires its reporting state during the temporal
//! sort, so a board with `n` vectors produces `32·(n + d)` bits of report traffic per
//! query — a significant fraction of the PCIe budget. Because the symbol stream
//! cannot be modified mid-flight (no dynamic EOF injection) and a global reset NFA
//! would exceed the maximum automaton size, the paper proposes a *local* scheme:
//! vector NFAs are partitioned into groups of `p`; a per-group **local neighbor
//! counter** counts reporting activations and, once `k'` of them have occurred,
//! resets every inverted-Hamming-distance counter in the group, suppressing all
//! further reports. The host then sorts the `R·k'` surviving candidates
//! (`R = n / p` groups) into the global top-k.
//!
//! The scheme is approximate: if more than `k'` of the true top-k fall into a single
//! group, the host cannot recover them. The paper quantifies this with a randomized
//! statistical model (Table VI); [`monte_carlo`] reproduces that experiment, and
//! [`bandwidth_reduction_factor`] the `p / k'` traffic saving.

use binvec::metrics::{is_distance_exact, AccuracyTally};
use binvec::topk::select_k;
use binvec::{BinaryDataset, BinaryVector, Neighbor, TopK};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Parameters of the statistical activation reduction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReductionConfig {
    /// Vector NFAs per group (`p`).
    pub partition_size: usize,
    /// Reports allowed per group before suppression (`k'`).
    pub local_k: usize,
}

impl ReductionConfig {
    /// Creates a configuration.
    ///
    /// # Panics
    /// Panics if either parameter is zero.
    pub fn new(partition_size: usize, local_k: usize) -> Self {
        assert!(partition_size > 0, "partition size must be positive");
        assert!(local_k > 0, "local k must be positive");
        Self {
            partition_size,
            local_k,
        }
    }

    /// Number of groups for a dataset of `n` vectors.
    pub fn groups(&self, n: usize) -> usize {
        n.div_ceil(self.partition_size).max(1)
    }

    /// The paper's guideline check: `k' < k` (there is something to save) and
    /// `k' × R > k` (the surviving candidates can still cover the global top-k).
    pub fn satisfies_guideline(&self, n: usize, k: usize) -> bool {
        self.local_k < k && self.local_k * self.groups(n) > k
    }
}

/// Report-bandwidth reduction factor: only `k'` of every group's `p` reports leave
/// the device, so traffic shrinks by `p / k'`.
pub fn bandwidth_reduction_factor(config: &ReductionConfig) -> f64 {
    config.partition_size as f64 / config.local_k as f64
}

/// The candidates that survive suppression for one query: each group of `p`
/// consecutive vectors contributes its `k'` temporally-first (smallest-distance)
/// reports.
pub fn reduced_candidates(
    data: &BinaryDataset,
    query: &BinaryVector,
    config: &ReductionConfig,
) -> Vec<Neighbor> {
    let mut survivors = Vec::new();
    let mut start = 0usize;
    while start < data.len() {
        let end = (start + config.partition_size).min(data.len());
        let mut local = TopK::new(config.local_k);
        for i in start..end {
            local.offer(Neighbor::new(i, data.hamming_to(i, query)));
        }
        survivors.extend(local.into_sorted());
        start = end;
    }
    survivors
}

/// Runs one query through the reduction scheme and reports whether the global top-k
/// assembled from the surviving candidates is distance-exact.
pub fn query_is_exact(
    data: &BinaryDataset,
    query: &BinaryVector,
    k: usize,
    config: &ReductionConfig,
) -> bool {
    let survivors = reduced_candidates(data, query, config);
    let approx = select_k(k, survivors);
    let exact = select_k(
        k,
        (0..data.len()).map(|i| Neighbor::new(i, data.hamming_to(i, query))),
    );
    is_distance_exact(&approx, &exact)
}

/// Outcome of a Monte-Carlo evaluation of the reduction scheme.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ReductionEvaluation {
    /// Per-run correctness tally (a run is correct when *every* query in it returned
    /// a distance-exact result set).
    pub runs: usize,
    /// Runs in which at least one query was not exact.
    pub incorrect_runs: usize,
    /// Total queries evaluated.
    pub queries: usize,
    /// Queries that were not exact.
    pub incorrect_queries: usize,
    /// Bandwidth reduction factor `p / k'`.
    pub bandwidth_reduction: f64,
}

impl ReductionEvaluation {
    /// Percentage of incorrect runs (the Table VI metric).
    pub fn percent_incorrect_runs(&self) -> f64 {
        if self.runs == 0 {
            0.0
        } else {
            100.0 * self.incorrect_runs as f64 / self.runs as f64
        }
    }

    /// Percentage of individual queries that were not exact.
    pub fn percent_incorrect_queries(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            100.0 * self.incorrect_queries as f64 / self.queries as f64
        }
    }
}

/// Reproduces the paper's randomized evaluation: for each of `runs` runs, generate a
/// fresh random dataset of `n` vectors and `queries_per_run` random queries, execute
/// the reduced kNN, and count runs / queries whose result sets are not exact.
///
/// A run stops early at its first incorrect query (the run is already incorrect), so
/// large `queries_per_run` values — the paper uses 4096-query batches — stay cheap
/// for the configurations that fail often.
pub fn monte_carlo(
    dims: usize,
    n: usize,
    k: usize,
    config: &ReductionConfig,
    runs: usize,
    queries_per_run: usize,
    seed: u64,
) -> ReductionEvaluation {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut tally = AccuracyTally::default();
    let mut eval = ReductionEvaluation {
        bandwidth_reduction: bandwidth_reduction_factor(config),
        ..ReductionEvaluation::default()
    };
    for _ in 0..runs {
        let data = binvec::generate::uniform_dataset(n, dims, rng.gen());
        let mut run_correct = true;
        for _ in 0..queries_per_run {
            let query = binvec::generate::uniform_queries(1, dims, rng.gen())
                .pop()
                .expect("one query");
            let ok = query_is_exact(&data, &query, k, config);
            eval.queries += 1;
            if !ok {
                eval.incorrect_queries += 1;
                run_correct = false;
                break;
            }
        }
        tally.record(run_correct);
    }
    eval.runs = tally.runs;
    eval.incorrect_runs = tally.incorrect;
    eval
}

#[cfg(test)]
mod tests {
    use super::*;
    use binvec::generate::{uniform_dataset, uniform_queries};

    #[test]
    fn config_guideline_checks() {
        let c = ReductionConfig::new(16, 2);
        assert_eq!(c.groups(1024), 64);
        assert!(c.satisfies_guideline(1024, 16));
        // k' >= k: nothing to save.
        assert!(!ReductionConfig::new(16, 16).satisfies_guideline(1024, 16));
        // Too few groups to cover k.
        assert!(!ReductionConfig::new(512, 1).satisfies_guideline(1024, 4));
        assert!((bandwidth_reduction_factor(&c) - 8.0).abs() < 1e-12);
    }

    #[test]
    fn local_k_equal_to_group_size_is_lossless() {
        // If every group may report everything, the reduction is exact by
        // construction.
        let data = uniform_dataset(128, 32, 1);
        let config = ReductionConfig::new(16, 16);
        for q in uniform_queries(10, 32, 2) {
            assert!(query_is_exact(&data, &q, 8, &config));
        }
    }

    #[test]
    fn survivors_come_from_every_group() {
        let data = uniform_dataset(64, 16, 3);
        let config = ReductionConfig::new(8, 2);
        let q = uniform_queries(1, 16, 4).pop().unwrap();
        let survivors = reduced_candidates(&data, &q, &config);
        assert_eq!(survivors.len(), 8 * 2);
        // Exactly two ids per group of eight.
        for g in 0..8 {
            let in_group = survivors.iter().filter(|n| n.id / 8 == g).count();
            assert_eq!(in_group, 2, "group {g}");
        }
    }

    #[test]
    fn tiny_local_k_fails_when_top_k_collide_in_one_group() {
        // Construct an adversarial dataset: the two closest vectors live in the same
        // group, so k' = 1 must lose one of them.
        let dims = 32;
        let mut data = BinaryDataset::new(dims);
        let query = BinaryVector::zeros(dims);
        // Group 0: two vectors at distance 1 and 2.
        let mut v1 = BinaryVector::zeros(dims);
        v1.set(0, true);
        let mut v2 = BinaryVector::zeros(dims);
        v2.set(1, true);
        v2.set(2, true);
        data.push(&v1);
        data.push(&v2);
        // Fill the rest with far-away vectors.
        for _ in 0..30 {
            data.push(&BinaryVector::ones(dims));
        }
        let bad = ReductionConfig::new(16, 1);
        assert!(!query_is_exact(&data, &query, 2, &bad));
        let good = ReductionConfig::new(16, 2);
        assert!(query_is_exact(&data, &query, 2, &good));
    }

    #[test]
    fn monte_carlo_trends_match_table6() {
        // Small-scale version of the Table VI experiment (p = 16): accuracy improves
        // monotonically with k', and k' >= k is always exact.
        let dims = 64;
        let n = 256;
        let k = 4;
        let runs = 20;
        let queries_per_run = 32;
        let p = 16;
        let e1 = monte_carlo(
            dims,
            n,
            k,
            &ReductionConfig::new(p, 1),
            runs,
            queries_per_run,
            7,
        );
        let e2 = monte_carlo(
            dims,
            n,
            k,
            &ReductionConfig::new(p, 2),
            runs,
            queries_per_run,
            7,
        );
        let e4 = monte_carlo(
            dims,
            n,
            k,
            &ReductionConfig::new(p, 4),
            runs,
            queries_per_run,
            7,
        );
        assert!(e1.percent_incorrect_runs() >= e2.percent_incorrect_runs());
        assert!(e2.percent_incorrect_runs() >= e4.percent_incorrect_runs());
        // k' = 4 >= k = 4: every true top-k member survives its group's local top-k',
        // so the scheme is lossless and must be perfect.
        assert_eq!(e4.incorrect_runs, 0);
        assert_eq!(e4.incorrect_queries, 0);
        // k' = 1 with a 32-query batch per run fails most runs (the Table VI "100%"
        // row is a 4096-query batch, which fails essentially always).
        assert!(e1.percent_incorrect_runs() > 50.0);
        assert!((e1.bandwidth_reduction - 16.0).abs() < 1e-12);
    }

    #[test]
    fn monte_carlo_accounting_is_consistent() {
        let eval = monte_carlo(32, 64, 2, &ReductionConfig::new(8, 1), 5, 4, 11);
        assert_eq!(eval.runs, 5);
        assert!(eval.incorrect_runs <= eval.runs);
        assert!(eval.incorrect_queries <= eval.queries);
        assert!(eval.queries <= 5 * 4);
        assert!(eval.queries >= eval.runs);
    }

    #[test]
    #[should_panic(expected = "local k must be positive")]
    fn zero_local_k_panics() {
        let _ = ReductionConfig::new(8, 0);
    }
}
