//! Pass 3 — resource and capacity profiling.
//!
//! Summarizes what the network costs on a Gen-1 board: element counts by
//! kind, connected components, power-of-two fan-in/fan-out histograms, and a
//! [`Placer`] placement (block/STE utilization, routing pressure). When the
//! caller supplies a [`CapacityContext`] — the design-side expectations from
//! the kNN capacity calculator — the pass reconciles the observed network
//! against them and flags disagreements.

use crate::finding::{json_f64, Finding, FindingSink, Severity};
use ap_sim::{AutomataNetwork, DeviceConfig, PlacementReport, Placer};

/// Design-side expectations to reconcile the observed network against.
///
/// `ap-analyze` cannot depend on `ap-knn` (the engine depends on the
/// analyzer for its strict-mode gate), so callers inject the calculator's
/// numbers instead of the analyzer reading them itself.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CapacityContext {
    /// STEs one vector macro is designed to occupy.
    pub stes_per_macro: usize,
    /// Vector macros the capacity calculator says fit on one board.
    pub vectors_per_board: usize,
}

/// Measured resource profile of one network.
#[derive(Clone, Debug, PartialEq)]
pub struct ResourceSummary {
    /// STE count.
    pub stes: usize,
    /// Counter count.
    pub counters: usize,
    /// Boolean gate count.
    pub booleans: usize,
    /// Reporting element count.
    pub reporting: usize,
    /// Connected components (independent NFAs).
    pub components: usize,
    /// Largest fan-in of any element.
    pub max_fan_in: usize,
    /// Largest fan-out of any element.
    pub max_fan_out: usize,
    /// Power-of-two fan-in histogram: bucket 0 counts fan-in 0, bucket `k`
    /// counts fan-in in `[2^(k-1), 2^k)`.
    pub fan_in_hist: Vec<u64>,
    /// Power-of-two fan-out histogram, same bucketing.
    pub fan_out_hist: Vec<u64>,
    /// The most common component STE size (the macro footprint in practice).
    pub modal_component_stes: usize,
    /// Placement on the target device, if the design fits.
    pub placement: Option<PlacementReport>,
}

impl ResourceSummary {
    /// Renders the summary as a JSON object.
    pub fn to_json(&self) -> String {
        let hist = |h: &[u64]| {
            let xs: Vec<String> = h.iter().map(u64::to_string).collect();
            format!("[{}]", xs.join(","))
        };
        let placement = match &self.placement {
            Some(p) => format!(
                "{{\"blocks_used\":{},\"half_cores_used\":{},\"block_utilization\":{},\
                 \"ste_utilization\":{},\"routing_pressure\":{}}}",
                p.blocks_used,
                p.half_cores_used,
                json_f64(p.block_utilization),
                json_f64(p.ste_utilization),
                json_f64(p.routing_pressure),
            ),
            None => "null".to_string(),
        };
        format!(
            "{{\"stes\":{},\"counters\":{},\"booleans\":{},\"reporting\":{},\
             \"components\":{},\"max_fan_in\":{},\"max_fan_out\":{},\
             \"modal_component_stes\":{},\"fan_in_hist\":{},\"fan_out_hist\":{},\
             \"placement\":{}}}",
            self.stes,
            self.counters,
            self.booleans,
            self.reporting,
            self.components,
            self.max_fan_in,
            self.max_fan_out,
            self.modal_component_stes,
            hist(&self.fan_in_hist),
            hist(&self.fan_out_hist),
            placement,
        )
    }
}

/// Bucket index for a power-of-two histogram: 0 → 0, and `k` for values in
/// `[2^(k-1), 2^k)`.
fn bucket(n: usize) -> usize {
    if n == 0 {
        0
    } else {
        usize::BITS as usize - n.leading_zeros() as usize
    }
}

/// Runs the resource pass over `net` for `device`.
pub fn resource_pass(
    net: &AutomataNetwork,
    device: &DeviceConfig,
    ctx: Option<&CapacityContext>,
) -> (ResourceSummary, Vec<Finding>) {
    let mut out = FindingSink::new("resource");
    let stats = net.stats();

    let mut fan_in_hist = Vec::new();
    let mut fan_out_hist = Vec::new();
    for e in net.elements() {
        let bi = bucket(net.predecessors(e.id).len());
        let bo = bucket(net.successors(e.id).len());
        if fan_in_hist.len() <= bi {
            fan_in_hist.resize(bi + 1, 0);
        }
        if fan_out_hist.len() <= bo {
            fan_out_hist.resize(bo + 1, 0);
        }
        fan_in_hist[bi] += 1;
        fan_out_hist[bo] += 1;
    }

    let placer = Placer::new(*device);
    let demands = placer.component_demands(net);
    let components = demands.len();

    // Modal component STE size: the macro footprint as actually constructed.
    let mut sizes: Vec<usize> = demands.iter().map(|d| d.stes).collect();
    sizes.sort_unstable();
    let modal_component_stes = {
        let mut best = (0usize, 0usize);
        let mut i = 0;
        while i < sizes.len() {
            let j = sizes[i..].iter().take_while(|&&s| s == sizes[i]).count();
            if j > best.1 {
                best = (sizes[i], j);
            }
            i += j;
        }
        best.0
    };

    let placement = match placer.place(net) {
        Ok(p) => {
            if p.routing_pressure >= 1.0 {
                out.push(
                    "routing-pressure",
                    Severity::Warn,
                    Vec::new(),
                    format!(
                        "routing-pressure heuristic saturated (max fan-in {}, fan-out {}): \
                         the Gen-1 toolchain would likely place but not fully route this design",
                        stats.max_fan_in, stats.max_fan_out
                    ),
                );
            }
            Some(p)
        }
        Err(e) => {
            out.push(
                "placement-failed",
                Severity::Warn,
                Vec::new(),
                format!("design does not place on the target device: {e}"),
            );
            None
        }
    };

    if let Some(ctx) = ctx {
        if modal_component_stes > ctx.stes_per_macro {
            out.push(
                "macro-size-mismatch",
                Severity::Warn,
                Vec::new(),
                format!(
                    "modal component uses {} STEs but the design calculator budgets {} per \
                     vector macro",
                    modal_component_stes, ctx.stes_per_macro
                ),
            );
        }
        if components > ctx.vectors_per_board {
            out.push(
                "board-overcommit",
                Severity::Warn,
                Vec::new(),
                format!(
                    "network holds {} components but the capacity calculator allows {} \
                     vectors per board",
                    components, ctx.vectors_per_board
                ),
            );
        }
    }

    let summary = ResourceSummary {
        stes: stats.stes,
        counters: stats.counters,
        booleans: stats.booleans,
        reporting: stats.reporting,
        components,
        max_fan_in: stats.max_fan_in,
        max_fan_out: stats.max_fan_out,
        fan_in_hist,
        fan_out_hist,
        modal_component_stes,
        placement,
    };
    (summary, out.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ap_sim::{StartKind, SymbolClass};

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket(0), 0);
        assert_eq!(bucket(1), 1);
        assert_eq!(bucket(2), 2);
        assert_eq!(bucket(3), 2);
        assert_eq!(bucket(4), 3);
        assert_eq!(bucket(7), 3);
        assert_eq!(bucket(8), 4);
    }

    fn chain(net: &mut AutomataNetwork, tag: &str, len: usize, code: u32) {
        let mut prev = net.add_ste(
            format!("{tag}0"),
            SymbolClass::any(),
            StartKind::AllInput,
            None,
        );
        for i in 1..len {
            let n = net.add_ste(
                format!("{tag}{i}"),
                SymbolClass::any(),
                StartKind::None,
                if i == len - 1 { Some(code) } else { None },
            );
            net.connect(prev, n).unwrap();
            prev = n;
        }
    }

    #[test]
    fn summary_counts_and_places() {
        let mut net = AutomataNetwork::new();
        chain(&mut net, "a", 4, 1);
        chain(&mut net, "b", 4, 2);
        chain(&mut net, "c", 6, 3);
        let (summary, findings) = resource_pass(&net, &DeviceConfig::gen1(), None);
        assert!(findings.is_empty(), "unexpected findings: {findings:?}");
        assert_eq!(summary.stes, 14);
        assert_eq!(summary.components, 3);
        assert_eq!(summary.modal_component_stes, 4);
        let p = summary.placement.as_ref().expect("fits easily");
        assert!(p.fits());
        // Histograms cover every element: 3 heads with fan-in 0, 11 with 1.
        assert_eq!(summary.fan_in_hist[0], 3);
        assert_eq!(summary.fan_in_hist[1], 11);
        let json = summary.to_json();
        assert!(json.contains("\"components\":3"));
        assert!(json.contains("\"placement\":{"));
    }

    #[test]
    fn capacity_context_flags_overcommit_and_macro_size() {
        let mut net = AutomataNetwork::new();
        chain(&mut net, "a", 5, 1);
        chain(&mut net, "b", 5, 2);
        chain(&mut net, "c", 5, 3);
        let ctx = CapacityContext {
            stes_per_macro: 4,
            vectors_per_board: 2,
        };
        let (_, findings) = resource_pass(&net, &DeviceConfig::gen1(), Some(&ctx));
        assert!(findings.iter().any(|f| f.code == "macro-size-mismatch"));
        assert!(findings.iter().any(|f| f.code == "board-overcommit"));
        assert!(findings.iter().all(|f| f.severity == Severity::Warn));
    }

    #[test]
    fn saturated_fan_in_warns_about_routing() {
        let mut net = AutomataNetwork::new();
        let col = net.add_ste("col", SymbolClass::any(), StartKind::AllInput, Some(0));
        for i in 0..100 {
            let s = net.add_ste(
                format!("s{i}"),
                SymbolClass::any(),
                StartKind::AllInput,
                None,
            );
            net.connect(s, col).unwrap();
        }
        let (summary, findings) = resource_pass(&net, &DeviceConfig::gen1(), None);
        assert!(findings.iter().any(|f| f.code == "routing-pressure"));
        assert_eq!(summary.max_fan_in, 100);
    }
}
