//! Pass 1 — reachability / liveness.
//!
//! Emits, per network:
//!
//! * `Error`-class mirrors of the liveness checks `AutomataNetwork::validate`
//!   enforces (empty symbol class, counter with only dead enable drivers,
//!   boolean inputs dangling from dead drivers) — these appear only when the
//!   pass is run on a network that bypassed validation;
//! * `Warn` for counters whose threshold provably exceeds the total number of
//!   enable pulses any input stream can deliver (the bound-refined analysis
//!   of [`ap_sim::liveness`]);
//! * `Warn` **`dead-element`** for elements that can never fire *and* whose
//!   removal is individually safe — deleting any one of them leaves the
//!   report stream of every input bit-identical and the network valid (this
//!   is the contract the workspace soundness proptest enforces);
//! * `Warn` for reporting elements that can never fire, `Info` for other
//!   dead or start-unreachable fabric.

#[cfg(test)]
use crate::finding::MAX_PER_CODE;
use crate::finding::{Finding, FindingSink, Severity};
use ap_sim::liveness::{Bound, LivenessAnalysis};
use ap_sim::network::ConnectPort;
use ap_sim::{AutomataNetwork, BooleanFunction, ElementId, ElementKind};

/// Runs the reachability/liveness pass over `net`.
pub fn reach_pass(net: &AutomataNetwork) -> Vec<Finding> {
    let analysis = LivenessAnalysis::of(net);
    let mut out = FindingSink::new("reach");

    for e in net.elements() {
        let id = e.id;
        match &e.kind {
            ElementKind::Ste { symbols, .. } => {
                if symbols.cardinality() == 0 {
                    out.push(
                        "empty-symbol-class",
                        Severity::Error,
                        vec![id.index()],
                        format!(
                            "STE {} ('{}') has an empty symbol class and can never match",
                            id.index(),
                            e.label
                        ),
                    );
                }
            }
            ElementKind::Counter { threshold, .. } => {
                if !analysis.structurally_live(id) {
                    out.push(
                        "counter-target-unreachable",
                        Severity::Error,
                        vec![id.index()],
                        format!(
                            "counter {} ('{}'): every CountEnable driver is structurally dead",
                            id.index(),
                            e.label
                        ),
                    );
                } else if !analysis.can_fire(id) {
                    let achievable = match analysis.counter_increment_bound(id) {
                        Bound::AtMost(v) => v.to_string(),
                        Bound::Unbounded => "unbounded".to_string(),
                    };
                    out.push(
                        "counter-target-unreachable",
                        Severity::Warn,
                        vec![id.index()],
                        format!(
                            "counter {} ('{}'): threshold {} exceeds the at most {} enable \
                             pulses any stream can deliver",
                            id.index(),
                            e.label,
                            threshold,
                            achievable
                        ),
                    );
                }
            }
            ElementKind::Boolean { .. } => {
                for (p, _) in net.predecessors(id) {
                    let from = &net.elements()[p.index()];
                    if (from.is_ste() || from.is_counter()) && !analysis.structurally_live(*p) {
                        out.push(
                            "dangling-boolean-input",
                            Severity::Error,
                            vec![id.index(), p.index()],
                            format!(
                                "boolean gate {} ('{}') input from structurally dead {} ('{}')",
                                id.index(),
                                e.label,
                                p.index(),
                                from.label
                            ),
                        );
                    }
                }
            }
        }

        if !analysis.can_fire(id) {
            if analysis.structurally_live(id) {
                // Bound-refined deadness (counters covered above; this is
                // their downstream cone).
                if !e.is_counter() {
                    out.push(
                        "never-fires",
                        Severity::Info,
                        vec![id.index()],
                        format!(
                            "element {} ('{}') can never fire: it sits behind a counter \
                             whose threshold is unachievable",
                            id.index(),
                            e.label
                        ),
                    );
                }
            } else if individually_removable(net, &analysis, id) {
                out.push(
                    "dead-element",
                    Severity::Warn,
                    vec![id.index()],
                    format!(
                        "element {} ('{}') can never fire and can be deleted without \
                         changing any report stream{}",
                        id.index(),
                        e.label,
                        if e.is_reporting() {
                            " (it is a reporting element that never reports)"
                        } else {
                            ""
                        }
                    ),
                );
            } else if !e.is_counter() && symbol_nonempty(e) {
                let code = if e.is_reporting() {
                    "dead-reporter"
                } else {
                    "never-fires"
                };
                let sev = if e.is_reporting() {
                    Severity::Warn
                } else {
                    Severity::Info
                };
                out.push(
                    code,
                    sev,
                    vec![id.index()],
                    format!(
                        "element {} ('{}') can never fire (no start state reaches it)",
                        id.index(),
                        e.label
                    ),
                );
            }
        } else if !analysis.reachable_from_start(id) && !e.is_start() {
            out.push(
                "unreachable",
                Severity::Info,
                vec![id.index()],
                format!(
                    "element {} ('{}') is not reachable from any start state (it can \
                     still fire: negating gates activate on absent inputs)",
                    id.index(),
                    e.label
                ),
            );
        }
    }

    out.finish()
}

/// True unless the element is an STE with an empty symbol class (those get
/// their own `Error` finding and would be noise to double-report).
fn symbol_nonempty(e: &ap_sim::Element) -> bool {
    match &e.kind {
        ElementKind::Ste { symbols, .. } => symbols.cardinality() > 0,
        _ => true,
    }
}

/// Whether deleting dead element `e` *alone* keeps the network valid and the
/// semantics of every surviving element unchanged.
///
/// `e` must be structurally dead (never fires), so its outgoing edges never
/// carry an activation; deletion only has to preserve:
///
/// * validation arity — every successor keeps at least one other driver on
///   the port that requires one (`Not` gates lose their single input, so any
///   `Not` successor blocks removal);
/// * gate truth tables — a constant-false input is absorbed by `Or`/`Xor`/
///   `Nor` but changes `And`/`Nand` (which read an absent input differently);
/// * liveness verdicts — `e` is structurally dead, so it contributes nothing
///   to any other element's structural liveness and the rebuilt network's
///   `validate()` liveness checks are unchanged.
fn individually_removable(
    net: &AutomataNetwork,
    analysis: &LivenessAnalysis,
    e: ElementId,
) -> bool {
    debug_assert!(!analysis.structurally_live(e));
    for (s, port) in net.successors(e) {
        let target = &net.elements()[s.index()];
        let preds = net.predecessors(*s);
        match (&target.kind, port) {
            (ElementKind::Ste { .. }, _) => {
                if !target.is_start()
                    && !preds
                        .iter()
                        .any(|(p, pp)| *pp == ConnectPort::Activation && *p != e)
                {
                    return false;
                }
            }
            (ElementKind::Counter { .. }, ConnectPort::CountEnable) => {
                if !preds
                    .iter()
                    .any(|(p, pp)| *pp == ConnectPort::CountEnable && *p != e)
                {
                    return false;
                }
            }
            (ElementKind::Counter { .. }, _) => {}
            (ElementKind::Boolean { function, .. }, _) => {
                let absorbs_false = matches!(
                    function,
                    BooleanFunction::Or | BooleanFunction::Xor | BooleanFunction::Nor
                );
                if !absorbs_false || !preds.iter().any(|(p, _)| *p != e) {
                    return false;
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use ap_sim::{CounterMode, StartKind, SymbolClass};

    fn codes(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.code).collect()
    }

    #[test]
    fn clean_chain_has_no_findings() {
        let mut net = AutomataNetwork::new();
        let s = net.add_ste("s", SymbolClass::any(), StartKind::AllInput, None);
        let m = net.add_ste("m", SymbolClass::any(), StartKind::None, Some(1));
        net.connect(s, m).unwrap();
        assert!(reach_pass(&net).is_empty());
    }

    #[test]
    fn empty_mask_is_an_error() {
        let mut net = AutomataNetwork::new();
        net.add_ste("hollow", SymbolClass::empty(), StartKind::AllInput, None);
        let fs = reach_pass(&net);
        assert!(codes(&fs).contains(&"empty-symbol-class"));
        assert_eq!(fs[0].severity, Severity::Error);
    }

    #[test]
    fn dead_fringe_is_removable_but_cycle_members_are_not() {
        // Dead cycle a<->b plus fringe x driven by both; x has no successors.
        let mut net = AutomataNetwork::new();
        let a = net.add_ste("a", SymbolClass::any(), StartKind::None, None);
        let b = net.add_ste("b", SymbolClass::any(), StartKind::None, None);
        net.connect(a, b).unwrap();
        net.connect(b, a).unwrap();
        let x = net.add_ste("x", SymbolClass::any(), StartKind::None, None);
        net.connect(a, x).unwrap();
        net.connect(b, x).unwrap();
        let fs = reach_pass(&net);
        let dead: Vec<usize> = fs
            .iter()
            .filter(|f| f.code == "dead-element")
            .flat_map(|f| f.elements.clone())
            .collect();
        assert_eq!(dead, vec![x.index()], "only the fringe is removable alone");
        // a and b are still reported, just not as removable.
        let never: Vec<usize> = fs
            .iter()
            .filter(|f| f.code == "never-fires")
            .flat_map(|f| f.elements.clone())
            .collect();
        assert!(never.contains(&a.index()) && never.contains(&b.index()));
    }

    #[test]
    fn unachievable_counter_threshold_warns() {
        let mut net = AutomataNetwork::new();
        let sod = net.add_ste("sod", SymbolClass::any(), StartKind::StartOfData, None);
        let c = net.add_counter("c", 5, CounterMode::Pulse, None);
        net.connect_port(sod, c, ConnectPort::CountEnable).unwrap();
        let tail = net.add_ste("tail", SymbolClass::any(), StartKind::None, Some(9));
        net.connect(c, tail).unwrap();
        let fs = reach_pass(&net);
        let cf = fs
            .iter()
            .find(|f| f.code == "counter-target-unreachable")
            .expect("counter finding");
        assert_eq!(cf.severity, Severity::Warn);
        assert!(cf.message.contains("threshold 5"));
        assert!(cf.message.contains("at most 1"));
        // The reporting tail behind it is flagged as never firing.
        assert!(codes(&fs).contains(&"never-fires"));
        // This network still validates and compiles (the weak checks pass).
        net.validate().unwrap();
    }

    #[test]
    fn dead_reporter_is_a_warning() {
        // Reporting element inside a dead cycle (not individually removable
        // because each drives the other).
        let mut net = AutomataNetwork::new();
        let a = net.add_ste("a", SymbolClass::any(), StartKind::None, Some(3));
        let b = net.add_ste("b", SymbolClass::any(), StartKind::None, None);
        net.connect(a, b).unwrap();
        net.connect(b, a).unwrap();
        let fs = reach_pass(&net);
        let dr = fs.iter().find(|f| f.code == "dead-reporter").expect("warn");
        assert_eq!(dr.severity, Severity::Warn);
        assert_eq!(dr.elements, vec![a.index()]);
    }

    #[test]
    fn unreachable_negating_gate_is_info() {
        let mut net = AutomataNetwork::new();
        let a = net.add_ste("a", SymbolClass::any(), StartKind::None, None);
        let b = net.add_ste("b", SymbolClass::any(), StartKind::None, None);
        net.connect(a, b).unwrap();
        net.connect(b, a).unwrap();
        let g = net.add_boolean("nor", BooleanFunction::Nor, None);
        net.connect(a, g).unwrap();
        let fs = reach_pass(&net);
        let un = fs
            .iter()
            .find(|f| f.code == "unreachable" && f.elements == vec![g.index()])
            .expect("info finding for the live but unreachable gate");
        assert_eq!(un.severity, Severity::Info);
        // The gate's dead STE input is an Error mirror of validate's check.
        assert!(codes(&fs).contains(&"dangling-boolean-input"));
    }

    #[test]
    fn finding_cap_truncates_with_summary() {
        let mut net = AutomataNetwork::new();
        // A long dead chain: every element is dead; the chain tail is
        // removable, the rest are not (single-driver chain), so `never-fires`
        // exceeds the cap.
        let mut prev = net.add_ste("d0", SymbolClass::any(), StartKind::None, None);
        net.connect(prev, prev).unwrap();
        for i in 1..40 {
            let n = net.add_ste(format!("d{i}"), SymbolClass::any(), StartKind::None, None);
            net.connect(prev, n).unwrap();
            prev = n;
        }
        let fs = reach_pass(&net);
        let never = fs.iter().filter(|f| f.code == "never-fires").count();
        assert_eq!(never, MAX_PER_CODE + 1, "cap plus one summary finding");
        assert!(fs.iter().any(|f| f.message.contains("more `never-fires`")));
    }
}
