//! Static analysis over automata networks.
//!
//! Four passes, each emitting typed [`Finding`] diagnostics plus two
//! machine-readable summaries, wrapped in an [`AnalysisReport`] with a
//! hand-rolled JSON serializer:
//!
//! 1. **Reachability / liveness** ([`reach`]) — unreachable elements,
//!    elements that can never fire, empty symbol classes, counters whose
//!    thresholds exceed any achievable pulse count, dangling boolean inputs,
//!    and the individually-removable dead elements the workspace soundness
//!    proptest deletes.
//! 2. **Translation validation** ([`transval`]) — every table of a
//!    [`CompiledNetwork`] image cross-checked element-by-element and
//!    edge-by-edge against its source [`AutomataNetwork`].
//! 3. **Resource / capacity** ([`resource`]) — element counts, fan-in/out
//!    histograms, Gen-1 placement and utilization, reconciled against the
//!    kNN capacity calculator via an injected [`CapacityContext`].
//! 4. **Redundancy profiling** ([`redundancy`]) — duplicate-macro content
//!    hashing and shared prefix/suffix chains, quantifying the
//!    vectors-per-board headroom a sharing optimization could claim.
//!
//! The severity contract: [`Severity::Error`] findings mean the artifact is
//! *wrong* (invalid network or corrupted compiled image) — CI and the
//! engines' strict mode gate on a zero-`Error` budget via
//! [`verify_compilation`]; `Warn` and `Info` are advisory.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod finding;
pub mod reach;
pub mod redundancy;
pub mod resource;
pub mod transval;

pub use finding::{json_f64, json_string, Finding, Severity};
pub use reach::reach_pass;
pub use redundancy::{redundancy_pass, RedundancySummary};
pub use resource::{resource_pass, CapacityContext, ResourceSummary};
pub use transval::transval_pass;

use ap_sim::{ApError, AutomataNetwork, CompiledNetwork, DeviceConfig};

/// Everything the analyzer learned about one network.
#[derive(Clone, Debug)]
pub struct AnalysisReport {
    /// Caller-supplied name for the analyzed network (appears in the JSON).
    pub name: String,
    /// All findings from every pass that ran, sorted most severe first.
    pub findings: Vec<Finding>,
    /// Resource profile.
    pub resource: ResourceSummary,
    /// Redundancy profile.
    pub redundancy: RedundancySummary,
}

impl AnalysisReport {
    /// Number of findings at exactly `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == severity)
            .count()
    }

    /// Whether the report contains no [`Severity::Error`] findings.
    pub fn is_clean(&self) -> bool {
        self.count(Severity::Error) == 0
    }

    /// Renders the full report as a JSON object.
    pub fn to_json(&self) -> String {
        let findings: Vec<String> = self.findings.iter().map(Finding::to_json).collect();
        format!(
            "{{\"name\":{},\"errors\":{},\"warnings\":{},\"infos\":{},\"findings\":[{}],\
             \"resource\":{},\"redundancy\":{}}}",
            json_string(&self.name),
            self.count(Severity::Error),
            self.count(Severity::Warn),
            self.count(Severity::Info),
            findings.join(","),
            self.resource.to_json(),
            self.redundancy.to_json(),
        )
    }
}

/// The analyzer: a device target plus optional design-side expectations.
#[derive(Clone, Debug, Default)]
pub struct Analyzer {
    device: Option<DeviceConfig>,
    capacity: Option<CapacityContext>,
}

impl Analyzer {
    /// Creates an analyzer targeting the Gen-1 device with no capacity
    /// context.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overrides the device the resource pass places onto.
    pub fn with_device(mut self, device: DeviceConfig) -> Self {
        self.device = Some(device);
        self
    }

    /// Supplies capacity-calculator expectations for reconciliation.
    pub fn with_capacity_context(mut self, ctx: CapacityContext) -> Self {
        self.capacity = Some(ctx);
        self
    }

    /// Runs the network-level passes (reach, resource, redundancy) over
    /// `net`.
    pub fn analyze_network(
        &self,
        name: impl Into<String>,
        net: &AutomataNetwork,
    ) -> AnalysisReport {
        self.analyze_inner(name.into(), net, None)
    }

    /// Runs every pass, including translation validation of `compiled`
    /// against `net`.
    pub fn analyze_compiled(
        &self,
        name: impl Into<String>,
        net: &AutomataNetwork,
        compiled: &CompiledNetwork,
    ) -> AnalysisReport {
        self.analyze_inner(name.into(), net, Some(compiled))
    }

    fn analyze_inner(
        &self,
        name: String,
        net: &AutomataNetwork,
        compiled: Option<&CompiledNetwork>,
    ) -> AnalysisReport {
        let device = self.device.unwrap_or_else(DeviceConfig::gen1);
        let mut findings = reach_pass(net);
        if let Some(compiled) = compiled {
            findings.extend(transval_pass(net, compiled));
        }
        let (resource, fs) = resource_pass(net, &device, self.capacity.as_ref());
        findings.extend(fs);
        let (redundancy, fs) = redundancy_pass(net, self.capacity.as_ref());
        findings.extend(fs);
        findings.sort_by(|a, b| a.severity.cmp(&b.severity).then(a.pass.cmp(b.pass)));
        AnalysisReport {
            name,
            findings,
            resource,
            redundancy,
        }
    }
}

/// Strict-mode gate: cross-checks `compiled` against `net` and returns a
/// one-line description of the first defect, if any.
///
/// This is what the kNN engines call (behind their `strict_analysis` flag)
/// after compiling each board image, turning a silent mis-translation into a
/// hard error before any stream is served. Only translation-validation
/// findings gate here — liveness warnings about the *source* network are
/// advisory and never block serving.
pub fn verify_compilation(net: &AutomataNetwork, compiled: &CompiledNetwork) -> Result<(), String> {
    let findings = transval_pass(net, compiled);
    match findings.iter().find(|f| f.severity == Severity::Error) {
        None => Ok(()),
        Some(first) => {
            let errors = findings
                .iter()
                .filter(|f| f.severity == Severity::Error)
                .count();
            Err(format!(
                "compiled image disagrees with its source network ({errors} error{}): {first}",
                if errors == 1 { "" } else { "s" }
            ))
        }
    }
}

/// Convenience: compiles `net` (validating it) and runs every pass.
///
/// Validation failures surface as the underlying [`ApError`]; use
/// [`Analyzer::analyze_network`] to analyze a network the compiler would
/// reject (the reach pass mirrors the validator's liveness rules as `Error`
/// findings instead of returning early).
pub fn analyze(name: impl Into<String>, net: &AutomataNetwork) -> Result<AnalysisReport, ApError> {
    let compiled = CompiledNetwork::compile(net)?;
    Ok(Analyzer::new().analyze_compiled(name, net, &compiled))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ap_sim::{CompiledEdge, StartKind, SymbolClass};

    fn dictionary() -> AutomataNetwork {
        let mut net = AutomataNetwork::new();
        for (word, code) in [(b"cat".as_slice(), 1u32), (b"cap", 2), (b"cat", 3)] {
            let mut prev = net.add_ste(
                format!("{code}-0"),
                SymbolClass::single(word[0]),
                StartKind::AllInput,
                None,
            );
            for (i, &s) in word.iter().enumerate().skip(1) {
                let n = net.add_ste(
                    format!("{code}-{i}"),
                    SymbolClass::single(s),
                    StartKind::None,
                    (i == word.len() - 1).then_some(code),
                );
                net.connect(prev, n).unwrap();
                prev = n;
            }
        }
        net
    }

    #[test]
    fn analyze_produces_a_clean_report_with_summaries() {
        let net = dictionary();
        let report = analyze("dictionary", &net).unwrap();
        assert!(report.is_clean());
        assert_eq!(report.count(Severity::Error), 0);
        assert_eq!(report.resource.components, 3);
        assert_eq!(report.redundancy.duplicate_components, 1);
        let json = report.to_json();
        assert!(json.starts_with("{\"name\":\"dictionary\""));
        assert!(json.contains("\"resource\":{"));
        assert!(json.contains("\"redundancy\":{"));
    }

    #[test]
    fn verify_compilation_accepts_clean_and_rejects_corrupted_images() {
        let net = dictionary();
        let mut compiled = CompiledNetwork::compile(&net).unwrap();
        assert!(verify_compilation(&net, &compiled).is_ok());
        compiled
            .inject_successor_fault(0, 0, CompiledEdge::ActivateSte { target: 0 })
            .unwrap();
        let err = verify_compilation(&net, &compiled).unwrap_err();
        assert!(err.contains("successor-edge-mismatch"), "{err}");
    }

    #[test]
    fn findings_sort_errors_first() {
        let mut net = dictionary();
        // A dead STE (fringe, removable) and an empty-class STE.
        net.add_ste("hollow", SymbolClass::empty(), StartKind::AllInput, None);
        let report = Analyzer::new().analyze_network("dirty", &net);
        assert!(!report.is_clean());
        assert_eq!(report.findings[0].severity, Severity::Error);
    }
}
