//! Pass 2 — translation validation.
//!
//! Cross-checks a [`CompiledNetwork`] image against its source
//! [`AutomataNetwork`], element by element and edge by edge, without
//! executing either. The expected side is rebuilt here from the network
//! definition alone (the documented lowering rules of
//! [`ap_sim::compiled`]), so the check is independent of the compiler's
//! own bookkeeping:
//!
//! * element count and reporting count;
//! * per-element symbol masks (all-zero for non-STEs) and report codes;
//! * the counter slot table — ascending element order, thresholds, per-cycle
//!   increment caps, latch flags, and the element → slot back-map;
//! * the boolean slot table — ascending element order, functions, and
//!   activation-port predecessors in connection order;
//! * the 256-entry symbol index (dense bitsets decoded back to lists) against
//!   the `AllInput` STEs whose mask contains each symbol, plus the
//!   `StartOfData` list;
//! * the lane symbol-class planes — the deduplicated per-class 256-bit masks
//!   the lane core matches through *instead of* the per-element masks — both
//!   the first-occurrence class assignment and each plane's content;
//! * the CSR successor edges of every element, in connection order, after
//!   applying the compiler's drop rule (activation edges into boolean gates
//!   are elided because gates pull their inputs).
//!
//! Every mismatch is a [`Severity::Error`] finding: a compiled image that
//! disagrees with its source network would silently corrupt search results.

use crate::finding::{Finding, FindingSink, Severity};
use ap_sim::network::ConnectPort;
use ap_sim::{AutomataNetwork, CompiledEdge, CompiledNetwork, CounterMode, ElementKind, StartKind};

/// Runs translation validation of `compiled` against `net`.
pub fn transval_pass(net: &AutomataNetwork, compiled: &CompiledNetwork) -> Vec<Finding> {
    let mut out = FindingSink::new("translation");
    let view = compiled.view();

    if view.len() != net.len() {
        out.push(
            "element-count-mismatch",
            Severity::Error,
            Vec::new(),
            format!(
                "compiled image has {} elements, source network has {}",
                view.len(),
                net.len()
            ),
        );
        // Nothing else is meaningfully comparable.
        return out.finish();
    }

    let expected_reporting = net.elements().iter().filter(|e| e.is_reporting()).count();
    if view.reporting_count() != expected_reporting {
        out.push(
            "reporting-count-mismatch",
            Severity::Error,
            Vec::new(),
            format!(
                "compiled image records {} reporting elements, source has {}",
                view.reporting_count(),
                expected_reporting
            ),
        );
    }

    // Expected slot tables, rebuilt in the compiler's documented order
    // (ascending element id).
    let mut expected_counters: Vec<usize> = Vec::new();
    let mut expected_booleans: Vec<usize> = Vec::new();
    let mut expected_sod: Vec<u32> = Vec::new();
    let mut per_symbol: Vec<Vec<u32>> = vec![Vec::new(); 256];

    for e in net.elements() {
        let idx = e.id.index();

        // Per-element symbol mask and report code.
        let expected_mask = match &e.kind {
            ElementKind::Ste { symbols, .. } => symbols.to_words(),
            _ => [0u64; 4],
        };
        if view.symbol_mask(idx) != expected_mask {
            out.push(
                "symbol-mask-mismatch",
                Severity::Error,
                vec![idx],
                format!(
                    "element {} ('{}'): compiled symbol mask differs from the source class",
                    idx, e.label
                ),
            );
        }
        if view.report_code(idx) != e.report_code() {
            out.push(
                "report-code-mismatch",
                Severity::Error,
                vec![idx],
                format!(
                    "element {} ('{}'): compiled report code {:?}, source {:?}",
                    idx,
                    e.label,
                    view.report_code(idx),
                    e.report_code()
                ),
            );
        }

        match &e.kind {
            ElementKind::Ste { symbols, start, .. } => {
                match start {
                    StartKind::AllInput => {
                        let words = symbols.to_words();
                        for (wi, &word) in words.iter().enumerate() {
                            let mut bits = word;
                            while bits != 0 {
                                let s = (wi << 6) | bits.trailing_zeros() as usize;
                                per_symbol[s].push(idx as u32);
                                bits &= bits - 1;
                            }
                        }
                    }
                    StartKind::StartOfData => expected_sod.push(idx as u32),
                    StartKind::None => {}
                }
                if view.counter_slot(idx).is_some() {
                    out.push(
                        "slot-kind-mismatch",
                        Severity::Error,
                        vec![idx],
                        format!(
                            "STE {} ('{}') has a counter slot in the image",
                            idx, e.label
                        ),
                    );
                }
            }
            ElementKind::Counter { .. } => {
                let expected_slot = expected_counters.len() as u32;
                expected_counters.push(idx);
                if view.counter_slot(idx) != Some(expected_slot) {
                    out.push(
                        "counter-slot-mismatch",
                        Severity::Error,
                        vec![idx],
                        format!(
                            "counter {} ('{}'): image maps it to slot {:?}, expected {}",
                            idx,
                            e.label,
                            view.counter_slot(idx),
                            expected_slot
                        ),
                    );
                }
            }
            ElementKind::Boolean { .. } => {
                expected_booleans.push(idx);
                if view.counter_slot(idx).is_some() {
                    out.push(
                        "slot-kind-mismatch",
                        Severity::Error,
                        vec![idx],
                        format!(
                            "boolean gate {} ('{}') has a counter slot in the image",
                            idx, e.label
                        ),
                    );
                }
            }
        }
    }

    // Counter slot table.
    if view.counter_count() != expected_counters.len() {
        out.push(
            "counter-table-mismatch",
            Severity::Error,
            Vec::new(),
            format!(
                "image has {} counter slots, source has {} counters",
                view.counter_count(),
                expected_counters.len()
            ),
        );
    }
    for (slot, &idx) in expected_counters
        .iter()
        .enumerate()
        .take(view.counter_count())
    {
        let info = view.counter(slot);
        let e = &net.elements()[idx];
        if let ElementKind::Counter {
            threshold,
            mode,
            max_increment_per_cycle,
            ..
        } = &e.kind
        {
            let expected_latch = *mode == CounterMode::Latch;
            if info.element != idx as u32
                || info.threshold != *threshold
                || info.max_increment_per_cycle != *max_increment_per_cycle
                || info.latch != expected_latch
            {
                out.push(
                    "counter-table-mismatch",
                    Severity::Error,
                    vec![idx],
                    format!(
                        "counter slot {slot}: image (element {}, threshold {}, max_inc {}, \
                         latch {}) vs source (element {}, threshold {}, max_inc {}, latch {})",
                        info.element,
                        info.threshold,
                        info.max_increment_per_cycle,
                        info.latch,
                        idx,
                        threshold,
                        max_increment_per_cycle,
                        expected_latch
                    ),
                );
            }
        }
    }

    // Boolean slot table: ascending element order, functions, activation-port
    // predecessors in connection order.
    if view.boolean_count() != expected_booleans.len() {
        out.push(
            "boolean-table-mismatch",
            Severity::Error,
            Vec::new(),
            format!(
                "image has {} boolean slots, source has {} gates",
                view.boolean_count(),
                expected_booleans.len()
            ),
        );
    }
    for (slot, &idx) in expected_booleans
        .iter()
        .enumerate()
        .take(view.boolean_count())
    {
        let info = view.boolean(slot);
        let e = &net.elements()[idx];
        if let ElementKind::Boolean { function, .. } = &e.kind {
            let expected_preds: Vec<u32> = net
                .predecessors(e.id)
                .iter()
                .filter(|(_, port)| *port == ConnectPort::Activation)
                .map(|(p, _)| p.index() as u32)
                .collect();
            if info.element != idx as u32
                || info.function != *function
                || info.predecessors != expected_preds.as_slice()
            {
                out.push(
                    "boolean-table-mismatch",
                    Severity::Error,
                    vec![idx],
                    format!(
                        "boolean slot {slot}: image (element {}, {:?}, preds {:?}) vs source \
                         (element {}, {:?}, preds {:?})",
                        info.element,
                        info.function,
                        info.predecessors,
                        idx,
                        function,
                        expected_preds
                    ),
                );
            }
        }
    }

    // Start lists and the 256-entry symbol index.
    if view.start_of_data() != expected_sod.as_slice() {
        out.push(
            "start-of-data-mismatch",
            Severity::Error,
            Vec::new(),
            format!(
                "image StartOfData list {:?} differs from source {:?}",
                view.start_of_data(),
                expected_sod
            ),
        );
    }
    for sym in 0u16..256 {
        let s = sym as u8;
        let got = view.symbol_candidates(s);
        if got != per_symbol[sym as usize] {
            out.push(
                "symbol-index-mismatch",
                Severity::Error,
                Vec::new(),
                format!(
                    "symbol {:#04x}{}: image indexes start STEs {:?}, source defines {:?}",
                    s,
                    if view.symbol_is_dense(s) {
                        " (dense)"
                    } else {
                        ""
                    },
                    got,
                    per_symbol[sym as usize]
                ),
            );
        }
    }

    // Lane symbol-class planes. The lane core matches symbols *exclusively*
    // through this table (never the per-element masks), so a corrupt plane
    // diverts every lane of every query while the scalar core stays correct —
    // exactly the kind of silent skew this pass exists to catch. The expected
    // table is rebuilt from the source classes with the compiler's documented
    // dedup rule: one class per distinct mask, ids in first-occurrence
    // element order.
    let mut expected_classes: Vec<[u64; 4]> = Vec::new();
    for e in net.elements() {
        let idx = e.id.index();
        let expected_mask = match &e.kind {
            ElementKind::Ste { symbols, .. } => symbols.to_words(),
            _ => [0u64; 4],
        };
        let expected_class = match expected_classes.iter().position(|m| *m == expected_mask) {
            Some(p) => p,
            None => {
                expected_classes.push(expected_mask);
                expected_classes.len() - 1
            }
        };
        let class = view.symbol_class_of(idx) as usize;
        if class != expected_class {
            out.push(
                "lane-plane-mismatch",
                Severity::Error,
                vec![idx],
                format!(
                    "element {} ('{}'): image assigns lane symbol class {}, \
                     first-occurrence dedup expects {}",
                    idx, e.label, class, expected_class
                ),
            );
            continue;
        }
        if class >= view.symbol_class_count() {
            out.push(
                "lane-plane-table-mismatch",
                Severity::Error,
                vec![idx],
                format!(
                    "element {} ('{}'): lane symbol class {} is out of range \
                     ({} planes stored)",
                    idx,
                    e.label,
                    class,
                    view.symbol_class_count()
                ),
            );
            continue;
        }
        if view.symbol_class_mask(class) != expected_mask {
            out.push(
                "lane-plane-mismatch",
                Severity::Error,
                vec![idx],
                format!(
                    "element {} ('{}'): lane symbol plane {} differs from the source \
                     class — the lane core would match a different symbol set than \
                     the scalar core",
                    idx, e.label, class
                ),
            );
        }
    }
    if view.symbol_class_count() != expected_classes.len() {
        out.push(
            "lane-plane-table-mismatch",
            Severity::Error,
            Vec::new(),
            format!(
                "image stores {} lane symbol planes, source masks deduplicate to {}",
                view.symbol_class_count(),
                expected_classes.len()
            ),
        );
    }

    // CSR successor edges, in connection order, applying the drop rule.
    let counter_slot_of = |idx: usize| {
        expected_counters
            .iter()
            .position(|&c| c == idx)
            .map(|s| s as u32)
    };
    for e in net.elements() {
        let idx = e.id.index();
        let mut expected: Vec<CompiledEdge> = Vec::new();
        for (t, port) in net.successors(e.id) {
            let target = t.index();
            match port {
                ConnectPort::Activation => {
                    if net.elements()[target].is_ste() {
                        expected.push(CompiledEdge::ActivateSte {
                            target: target as u32,
                        });
                    }
                }
                ConnectPort::CountEnable => {
                    if let Some(slot) = counter_slot_of(target) {
                        expected.push(CompiledEdge::CountEnable { slot });
                    }
                }
                ConnectPort::CountReset => {
                    if let Some(slot) = counter_slot_of(target) {
                        expected.push(CompiledEdge::CountReset { slot });
                    }
                }
            }
        }
        let got = view.successor_edges(idx);
        if got != expected {
            out.push(
                "successor-edge-mismatch",
                Severity::Error,
                vec![idx],
                format!(
                    "element {} ('{}'): image successor edges {:?} differ from source \
                     connections {:?}",
                    idx, e.label, got, expected
                ),
            );
        }
    }

    out.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ap_sim::{AutomataNetwork, BooleanFunction, StartKind, SymbolClass};

    fn sample_network() -> AutomataNetwork {
        let mut net = AutomataNetwork::new();
        let a = net.add_ste("a", SymbolClass::single(b'a'), StartKind::AllInput, None);
        let b = net.add_ste("b", SymbolClass::range(b'a', b'z'), StartKind::None, None);
        net.connect(a, b).unwrap();
        let c = net.add_counter("c", 2, ap_sim::CounterMode::Pulse, Some(7));
        net.connect_port(b, c, ConnectPort::CountEnable).unwrap();
        net.connect_port(a, c, ConnectPort::CountReset).unwrap();
        let sod = net.add_ste("sod", SymbolClass::any(), StartKind::StartOfData, None);
        let g = net.add_boolean("g", BooleanFunction::Or, Some(9));
        net.connect(sod, g).unwrap();
        net.connect(b, g).unwrap();
        net
    }

    #[test]
    fn clean_image_validates() {
        let net = sample_network();
        let compiled = CompiledNetwork::compile(&net).unwrap();
        assert!(transval_pass(&net, &compiled).is_empty());
    }

    #[test]
    fn corrupted_successor_edge_is_detected() {
        let net = sample_network();
        let mut compiled = CompiledNetwork::compile(&net).unwrap();
        // Element 1 ('b') has edges [CountEnable{0}]; flip it to a reset.
        compiled
            .inject_successor_fault(1, 0, CompiledEdge::CountReset { slot: 0 })
            .unwrap();
        let fs = transval_pass(&net, &compiled);
        let f = fs
            .iter()
            .find(|f| f.code == "successor-edge-mismatch")
            .expect("edge mismatch finding");
        assert_eq!(f.severity, Severity::Error);
        assert_eq!(f.elements, vec![1]);
    }

    #[test]
    fn flipped_lane_plane_bit_is_pinned_to_the_element() {
        let net = sample_network();
        let mut compiled = CompiledNetwork::compile(&net).unwrap();
        // Flip one bit of element 1's ('b', class [a-z]) shared symbol plane:
        // the lane core would now see 'q' outside the class while the scalar
        // core still matches it.
        compiled.inject_class_plane_fault(1, b'q').unwrap();
        let fs = transval_pass(&net, &compiled);
        let f = fs
            .iter()
            .find(|f| f.code == "lane-plane-mismatch")
            .expect("lane plane mismatch finding");
        assert_eq!(f.severity, Severity::Error);
        assert_eq!(f.elements, vec![1]);
        // The scalar-side checks stay green: only the lane table is corrupt.
        assert!(fs.iter().all(|f| f.code == "lane-plane-mismatch"));
    }

    #[test]
    fn wrong_source_network_is_detected_wholesale() {
        let net = sample_network();
        let compiled = CompiledNetwork::compile(&net).unwrap();
        // Validate against a *different* network with the same element count.
        let mut other = AutomataNetwork::new();
        for i in 0..net.len() {
            other.add_ste(
                format!("x{i}"),
                SymbolClass::single(b'q'),
                StartKind::AllInput,
                None,
            );
        }
        let fs = transval_pass(&other, &compiled);
        assert!(fs.iter().all(|f| f.severity == Severity::Error));
        assert!(fs.iter().any(|f| f.code == "symbol-mask-mismatch"));
        assert!(fs.iter().any(|f| f.code == "counter-table-mismatch"));
        assert!(fs.iter().any(|f| f.code == "symbol-index-mismatch"));
    }

    #[test]
    fn element_count_mismatch_short_circuits() {
        let net = sample_network();
        let compiled = CompiledNetwork::compile(&net).unwrap();
        let mut small = AutomataNetwork::new();
        small.add_ste("only", SymbolClass::any(), StartKind::AllInput, None);
        let fs = transval_pass(&small, &compiled);
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0].code, "element-count-mismatch");
    }
}
