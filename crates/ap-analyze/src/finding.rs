//! Typed diagnostics: findings, severities and the JSON report envelope.
//!
//! The JSON is hand-rolled (the workspace's offline `serde` shim does not
//! serialize), mirroring the idiom of the `bench` crate's record writers.

use std::fmt;

/// How bad a finding is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// The construction is wrong: it would be rejected by
    /// `AutomataNetwork::validate`, or the compiled image disagrees with its
    /// source network. CI gates on a zero-`Error` budget.
    Error,
    /// Structurally wasteful or almost certainly unintended (dead elements,
    /// unreachable fabric, unachievable counter targets).
    Warn,
    /// Measurement or observation; no action implied.
    Info,
}

impl Severity {
    /// Stable lowercase name used in the JSON report.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warn => "warn",
            Severity::Info => "info",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One diagnostic produced by an analysis pass.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// The pass that produced it: `reach`, `translation`, `resource` or
    /// `redundancy`.
    pub pass: &'static str,
    /// Stable machine-readable code, e.g. `dead-element`.
    pub code: &'static str,
    /// Severity class.
    pub severity: Severity,
    /// Element ids the finding is about (may be empty for whole-network
    /// findings).
    pub elements: Vec<usize>,
    /// Human explanation.
    pub message: String,
}

impl Finding {
    /// Renders this finding as a JSON object.
    pub fn to_json(&self) -> String {
        let ids: Vec<String> = self.elements.iter().map(usize::to_string).collect();
        format!(
            "{{\"pass\":{},\"code\":{},\"severity\":{},\"elements\":[{}],\"message\":{}}}",
            json_string(self.pass),
            json_string(self.code),
            json_string(self.severity.as_str()),
            ids.join(","),
            json_string(&self.message),
        )
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {}/{}: {}",
            self.severity, self.pass, self.code, self.message
        )
    }
}

/// Escapes `s` as a JSON string literal (quotes included).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats an `f64` for JSON: finite, shortest-ish fixed representation.
pub fn json_f64(v: f64) -> String {
    if !v.is_finite() {
        return "null".to_string();
    }
    let s = format!("{v:.4}");
    // Trim trailing zeros but keep at least one decimal digit ("1.0").
    let trimmed = s.trim_end_matches('0');
    if trimmed.ends_with('.') {
        format!("{trimmed}0")
    } else {
        trimmed.to_string()
    }
}

/// Per-code cap applied by [`FindingSink`] so a degenerate network cannot
/// produce a megabyte report.
pub(crate) const MAX_PER_CODE: usize = 32;

/// Collects findings with a per-code cap, appending one summary finding per
/// truncated code when finished.
pub(crate) struct FindingSink {
    pass: &'static str,
    findings: Vec<Finding>,
    truncated: Vec<(&'static str, Severity, usize)>,
}

impl FindingSink {
    pub(crate) fn new(pass: &'static str) -> Self {
        Self {
            pass,
            findings: Vec::new(),
            truncated: Vec::new(),
        }
    }

    pub(crate) fn push(
        &mut self,
        code: &'static str,
        severity: Severity,
        elements: Vec<usize>,
        message: String,
    ) {
        let emitted = self.findings.iter().filter(|f| f.code == code).count();
        if emitted >= MAX_PER_CODE {
            match self.truncated.iter_mut().find(|(c, ..)| *c == code) {
                Some((_, _, n)) => *n += 1,
                None => self.truncated.push((code, severity, 1)),
            }
            return;
        }
        self.findings.push(Finding {
            pass: self.pass,
            code,
            severity,
            elements,
            message,
        });
    }

    pub(crate) fn finish(mut self) -> Vec<Finding> {
        for (code, severity, n) in std::mem::take(&mut self.truncated) {
            self.findings.push(Finding {
                pass: self.pass,
                code,
                severity,
                elements: Vec::new(),
                message: format!("... and {n} more `{code}` findings (capped at {MAX_PER_CODE})"),
            });
        }
        self.findings
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_ordering_and_names() {
        assert!(Severity::Error < Severity::Warn);
        assert!(Severity::Warn < Severity::Info);
        assert_eq!(Severity::Error.as_str(), "error");
        assert_eq!(Severity::Warn.to_string(), "warn");
    }

    #[test]
    fn finding_serializes_to_json() {
        let f = Finding {
            pass: "reach",
            code: "dead-element",
            severity: Severity::Warn,
            elements: vec![3, 9],
            message: "say \"hi\"\n".to_string(),
        };
        assert_eq!(
            f.to_json(),
            "{\"pass\":\"reach\",\"code\":\"dead-element\",\"severity\":\"warn\",\
             \"elements\":[3,9],\"message\":\"say \\\"hi\\\"\\n\"}"
        );
        assert!(f.to_string().contains("reach/dead-element"));
    }

    #[test]
    fn json_f64_trims() {
        assert_eq!(json_f64(1.0), "1.0");
        assert_eq!(json_f64(0.125), "0.125");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(33.3333333), "33.3333");
    }
}
