//! Pass 4 — redundancy profiling.
//!
//! Measures how much of the fabric is structurally repeated, which is the
//! measurement half of the roadmap's "raise vectors-per-board" item: before
//! building a sharing optimization, quantify what sharing is available.
//!
//! Two mechanisms are profiled:
//!
//! * **Duplicate macros** — connected components are canonicalized (element
//!   ids relabelled to component-local indices, report *codes* abstracted to
//!   a has-report bit, edges sorted) and content-hashed; components equal
//!   under canonicalization are duplicates. Two vector macros encoding the
//!   same binary vector differ only in their report code, so they hash
//!   together — exactly the copies a dedup optimization could share.
//! * **Shared prefix/suffix chains** — each *distinct* component is
//!   linearized into a deterministic spine (DFS from its start elements in
//!   id order) of per-element descriptors, and the spines are folded into a
//!   trie. Elements beyond the trie's node count are prefix-shareable: the
//!   classic dictionary-automaton trie merge. The same computation over
//!   reversed spines measures suffix sharing.
//!
//! The headline number, [`RedundancySummary::headroom_factor`], is the
//! multiplier on fabric capacity if duplicates were shared and common
//! prefixes merged; with a [`CapacityContext`] it is also projected onto
//! vectors-per-board.

use std::collections::{HashMap, HashSet};

use crate::finding::{json_f64, Finding, FindingSink, Severity};
use crate::resource::CapacityContext;
use ap_sim::network::ConnectPort;
use ap_sim::{AutomataNetwork, BooleanFunction, CounterMode, ElementId, ElementKind, StartKind};

/// Measured redundancy profile of one network.
#[derive(Clone, Debug, PartialEq)]
pub struct RedundancySummary {
    /// Connected components (macros) in the network.
    pub components: usize,
    /// Components remaining after collapsing canonical duplicates.
    pub distinct_components: usize,
    /// Components that are duplicates of an earlier one.
    pub duplicate_components: usize,
    /// `duplicate_components / components`, as a percentage.
    pub duplicate_macro_pct: f64,
    /// Elements inside duplicate copies (freed entirely if copies shared).
    pub duplicate_element_savings: usize,
    /// Elements shareable by merging common spine prefixes across the
    /// distinct components.
    pub prefix_shared_elements: usize,
    /// Elements shareable by merging common spine suffixes.
    pub suffix_shared_elements: usize,
    /// Total elements in the network.
    pub total_elements: usize,
    /// `total / (total - duplicate_savings - prefix_shared)`: the capacity
    /// multiplier available to a sharing optimization (≥ 1.0).
    pub headroom_factor: f64,
    /// Capacity-calculator vectors per board, when a context was supplied.
    pub vectors_per_board: Option<usize>,
    /// `vectors_per_board × headroom_factor`, rounded down.
    pub projected_vectors_per_board: Option<usize>,
}

impl RedundancySummary {
    /// Renders the summary as a JSON object.
    pub fn to_json(&self) -> String {
        let opt = |v: Option<usize>| v.map_or("null".to_string(), |v| v.to_string());
        format!(
            "{{\"components\":{},\"distinct_components\":{},\"duplicate_components\":{},\
             \"duplicate_macro_pct\":{},\"duplicate_element_savings\":{},\
             \"prefix_shared_elements\":{},\"suffix_shared_elements\":{},\
             \"total_elements\":{},\"headroom_factor\":{},\"vectors_per_board\":{},\
             \"projected_vectors_per_board\":{}}}",
            self.components,
            self.distinct_components,
            self.duplicate_components,
            json_f64(self.duplicate_macro_pct),
            self.duplicate_element_savings,
            self.prefix_shared_elements,
            self.suffix_shared_elements,
            self.total_elements,
            json_f64(self.headroom_factor),
            opt(self.vectors_per_board),
            opt(self.projected_vectors_per_board),
        )
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over a word stream.
fn fnv(words: &[u64]) -> u64 {
    let mut h = FNV_OFFSET;
    for &w in words {
        for byte in w.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(FNV_PRIME);
        }
    }
    h
}

/// Canonical per-element descriptor words: kind, parameters, has-report.
/// Report *codes* are deliberately abstracted away — macros that differ only
/// in which code they report are share-candidates.
fn element_words(net: &AutomataNetwork, id: ElementId, out: &mut Vec<u64>) {
    let e = &net.elements()[id.index()];
    out.push(u64::from(e.is_reporting()));
    match &e.kind {
        ElementKind::Ste { symbols, start, .. } => {
            out.push(1);
            out.push(match start {
                StartKind::None => 0,
                StartKind::StartOfData => 1,
                StartKind::AllInput => 2,
            });
            out.extend_from_slice(&symbols.to_words());
        }
        ElementKind::Counter {
            threshold,
            mode,
            max_increment_per_cycle,
            ..
        } => {
            out.push(2);
            out.push(u64::from(*threshold));
            out.push(u64::from(*mode == CounterMode::Latch));
            out.push(u64::from(*max_increment_per_cycle));
        }
        ElementKind::Boolean { function, .. } => {
            out.push(3);
            out.push(match function {
                BooleanFunction::And => 0,
                BooleanFunction::Or => 1,
                BooleanFunction::Nand => 2,
                BooleanFunction::Nor => 3,
                BooleanFunction::Xor => 4,
                BooleanFunction::Not => 5,
            });
        }
    }
}

/// Canonical serialized form of one component: element descriptors in local
/// order followed by the sorted local edge list.
fn component_words(net: &AutomataNetwork, comp: &[ElementId]) -> Vec<u64> {
    let local: HashMap<usize, u64> = comp
        .iter()
        .enumerate()
        .map(|(i, id)| (id.index(), i as u64))
        .collect();
    let mut words = Vec::with_capacity(comp.len() * 8);
    words.push(comp.len() as u64);
    for &id in comp {
        element_words(net, id, &mut words);
    }
    let mut edges: Vec<(u64, u64, u64)> = Vec::new();
    for &id in comp {
        for (t, port) in net.successors(id) {
            let p = match port {
                ConnectPort::Activation => 0,
                ConnectPort::CountEnable => 1,
                ConnectPort::CountReset => 2,
            };
            edges.push((local[&id.index()], local[&t.index()], p));
        }
    }
    edges.sort_unstable();
    for (f, t, p) in edges {
        words.push(f);
        words.push(t);
        words.push(p);
    }
    words
}

/// Deterministic linearization of a component: DFS from its start elements
/// (falling back to driver-less then lowest-id elements) following successors
/// in the stored connection order, each element once. Returns one descriptor
/// hash per element, in visit order.
fn spine(net: &AutomataNetwork, comp: &[ElementId]) -> Vec<u64> {
    let in_comp: HashSet<usize> = comp.iter().map(|id| id.index()).collect();
    let mut visited: HashSet<usize> = HashSet::new();
    let mut order = Vec::with_capacity(comp.len());
    let mut stack: Vec<ElementId> = Vec::new();

    let mut roots: Vec<ElementId> = comp
        .iter()
        .copied()
        .filter(|&id| net.elements()[id.index()].is_start())
        .collect();
    if roots.is_empty() {
        roots = comp
            .iter()
            .copied()
            .filter(|&id| net.predecessors(id).is_empty())
            .collect();
    }
    // Remaining elements (cycles, boolean pull-ins) seed the DFS afterwards
    // in id order, so every element lands in the spine exactly once.
    for seed in roots.into_iter().chain(comp.iter().copied()) {
        if !visited.insert(seed.index()) {
            continue;
        }
        stack.push(seed);
        while let Some(id) = stack.pop() {
            order.push(id);
            for (t, _) in net.successors(id).iter().rev() {
                if in_comp.contains(&t.index()) && visited.insert(t.index()) {
                    stack.push(*t);
                }
            }
        }
    }

    let mut scratch = Vec::new();
    order
        .iter()
        .map(|&id| {
            scratch.clear();
            element_words(net, id, &mut scratch);
            fnv(&scratch)
        })
        .collect()
}

/// Folds descriptor sequences into a trie and returns the number of elements
/// saved by sharing: `sum(len) - nodes`.
fn trie_savings(spines: &[&[u64]]) -> usize {
    let mut next: HashMap<(u32, u64), u32> = HashMap::new();
    let mut nodes = 0u32;
    let mut total = 0usize;
    for s in spines {
        total += s.len();
        let mut at = u32::MAX; // root
        for &d in *s {
            at = *next.entry((at, d)).or_insert_with(|| {
                nodes += 1;
                nodes - 1
            });
        }
    }
    total - nodes as usize
}

/// Runs the redundancy pass over `net`.
pub fn redundancy_pass(
    net: &AutomataNetwork,
    ctx: Option<&CapacityContext>,
) -> (RedundancySummary, Vec<Finding>) {
    let mut out = FindingSink::new("redundancy");
    let comps = net.connected_components();
    let components = comps.len();
    let total_elements = net.len();

    // Group components by canonical content (hash bucket + full compare).
    let mut groups: HashMap<u64, Vec<(usize, Vec<u64>)>> = HashMap::new();
    let mut duplicate_components = 0usize;
    let mut duplicate_element_savings = 0usize;
    let mut representatives: Vec<usize> = Vec::new();
    for (ci, comp) in comps.iter().enumerate() {
        let words = component_words(net, comp);
        let h = fnv(&words);
        let bucket = groups.entry(h).or_default();
        if bucket.iter().any(|(_, w)| *w == words) {
            duplicate_components += 1;
            duplicate_element_savings += comp.len();
        } else {
            representatives.push(ci);
            bucket.push((ci, words));
        }
    }
    let distinct_components = components - duplicate_components;

    // Prefix/suffix sharing across the distinct representatives.
    let spines: Vec<Vec<u64>> = representatives
        .iter()
        .map(|&ci| spine(net, &comps[ci]))
        .collect();
    let forward: Vec<&[u64]> = spines.iter().map(Vec::as_slice).collect();
    let prefix_shared_elements = trie_savings(&forward);
    let reversed: Vec<Vec<u64>> = spines
        .iter()
        .map(|s| s.iter().rev().copied().collect())
        .collect();
    let backward: Vec<&[u64]> = reversed.iter().map(Vec::as_slice).collect();
    let suffix_shared_elements = trie_savings(&backward);

    let duplicate_macro_pct = if components == 0 {
        0.0
    } else {
        duplicate_components as f64 / components as f64 * 100.0
    };
    let kept = total_elements
        .saturating_sub(duplicate_element_savings)
        .saturating_sub(prefix_shared_elements)
        .max(1);
    let headroom_factor = if total_elements == 0 {
        1.0
    } else {
        total_elements as f64 / kept as f64
    };

    let vectors_per_board = ctx.map(|c| c.vectors_per_board);
    let projected_vectors_per_board =
        vectors_per_board.map(|v| (v as f64 * headroom_factor) as usize);

    if duplicate_components > 0 {
        out.push(
            "duplicate-macros",
            Severity::Info,
            Vec::new(),
            format!(
                "{duplicate_components} of {components} macros ({duplicate_macro_pct:.1}%) are \
                 canonical duplicates; sharing them frees {duplicate_element_savings} elements"
            ),
        );
    }
    if prefix_shared_elements > 0 {
        out.push(
            "shared-prefix",
            Severity::Info,
            Vec::new(),
            format!(
                "merging common prefixes across {distinct_components} distinct macros would \
                 share {prefix_shared_elements} elements (headroom factor {headroom_factor:.2})"
            ),
        );
    }

    let summary = RedundancySummary {
        components,
        distinct_components,
        duplicate_components,
        duplicate_macro_pct,
        duplicate_element_savings,
        prefix_shared_elements,
        suffix_shared_elements,
        total_elements,
        headroom_factor,
        vectors_per_board,
        projected_vectors_per_board,
    };
    (summary, out.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ap_sim::{AutomataNetwork, StartKind, SymbolClass};

    fn chain(net: &mut AutomataNetwork, tag: &str, symbols: &[u8], code: u32) {
        let mut prev = net.add_ste(
            format!("{tag}0"),
            SymbolClass::single(symbols[0]),
            StartKind::AllInput,
            None,
        );
        for (i, &s) in symbols.iter().enumerate().skip(1) {
            let n = net.add_ste(
                format!("{tag}{i}"),
                SymbolClass::single(s),
                StartKind::None,
                (i == symbols.len() - 1).then_some(code),
            );
            net.connect(prev, n).unwrap();
            prev = n;
        }
    }

    #[test]
    fn identical_macros_with_different_report_codes_are_duplicates() {
        let mut net = AutomataNetwork::new();
        chain(&mut net, "a", b"cat", 1);
        chain(&mut net, "b", b"cat", 2);
        chain(&mut net, "c", b"dog", 3);
        let (summary, findings) = redundancy_pass(&net, None);
        assert_eq!(summary.components, 3);
        assert_eq!(summary.distinct_components, 2);
        assert_eq!(summary.duplicate_components, 1);
        assert_eq!(summary.duplicate_element_savings, 3);
        assert!((summary.duplicate_macro_pct - 100.0 / 3.0).abs() < 1e-6);
        assert!(summary.headroom_factor > 1.0);
        assert!(findings.iter().any(|f| f.code == "duplicate-macros"));
    }

    #[test]
    fn shared_prefixes_are_measured_across_distinct_macros() {
        let mut net = AutomataNetwork::new();
        chain(&mut net, "a", b"cart", 1);
        chain(&mut net, "b", b"carp", 2);
        let (summary, findings) = redundancy_pass(&net, None);
        assert_eq!(summary.duplicate_components, 0);
        // "car" differs only at the report bit on the last element: the
        // shared spine prefix is c-a-r = 3 elements.
        assert_eq!(summary.prefix_shared_elements, 3);
        assert!(findings.iter().any(|f| f.code == "shared-prefix"));
        let json = summary.to_json();
        assert!(json.contains("\"prefix_shared_elements\":3"));
        assert!(json.contains("\"vectors_per_board\":null"));
    }

    #[test]
    fn suffixes_share_under_reversal() {
        let mut net = AutomataNetwork::new();
        chain(&mut net, "a", b"stung", 1);
        chain(&mut net, "b", b"flung", 1);
        let (summary, _) = redundancy_pass(&net, None);
        // Reporting tails match: u-n-g plus the report element descriptor
        // boundary — "ung" = 3 shared elements.
        assert_eq!(summary.suffix_shared_elements, 3);
        assert_eq!(summary.prefix_shared_elements, 0);
    }

    #[test]
    fn capacity_context_projects_vectors_per_board() {
        let mut net = AutomataNetwork::new();
        chain(&mut net, "a", b"zip", 1);
        chain(&mut net, "b", b"zip", 2);
        let ctx = CapacityContext {
            stes_per_macro: 3,
            vectors_per_board: 100,
        };
        let (summary, _) = redundancy_pass(&net, Some(&ctx));
        assert_eq!(summary.vectors_per_board, Some(100));
        let projected = summary.projected_vectors_per_board.unwrap();
        assert!(projected >= 150, "projected = {projected}");
    }

    #[test]
    fn empty_network_is_harmless() {
        let net = AutomataNetwork::new();
        let (summary, findings) = redundancy_pass(&net, None);
        assert_eq!(summary.components, 0);
        assert_eq!(summary.headroom_factor, 1.0);
        assert!(findings.is_empty());
    }
}
