//! The concurrent serving runtime: worker-owned backends fed by a bounded,
//! deadline/priority-aware admission queue, with per-ticket completion
//! channels.
//!
//! The synchronous [`crate::SearchService`] is a pull loop over `&mut self`:
//! one caller, one backend, no overlap between encoding, streaming, and
//! decoding. The paper's throughput story (§VI: query multiplexing fills the
//! symbol stream, batches dispatch at the multiplex width) assumes a server
//! that is *continuously fed* — which takes concurrency:
//!
//! ```text
//!  callers ──try_submit──▶ ScheduledQueue ──pop_batch──▶ worker 0 ─┐
//!  (any thread;            (bounded; priority ▸          owns its  │ per-ticket
//!   QueueFull = shed)       deadline ▸ FIFO;             backend / ├─▶ channels
//!                           expired entries fail         prepared  │ (callers
//!                           *without* dispatch)          engine)   │  block on
//!                                                       worker N ─┘  their result)
//! ```
//!
//! * **Admission** — [`ServiceRuntime::try_submit`] validates the query,
//!   answers cache hits instantly, fails already-expired deadlines with
//!   [`SearchError::DeadlineExceeded`] (never dispatched), and otherwise
//!   enqueues. A full queue refuses with [`SearchError::QueueFull`] instead of
//!   blocking the caller or growing without bound — that is the backpressure
//!   contract.
//! * **Scheduling** — the queue orders by [`binvec::Priority`], then deadline
//!   (earliest first), then submission order. Workers pop up to one batch of
//!   entries whose result-affecting options ([`binvec::ResultKey`]) match, so
//!   a dispatch always carries queries that can share one backend call.
//! * **Execution** — each worker owns its backend (typically a
//!   [`crate::ApEngineBackend`] holding a [`ap_knn::PreparedEngine`], whose
//!   pooled scratch makes the steady-state batch allocation-free). Workers
//!   never share execution state; only the queue, cache, and stats are shared.
//! * **Completion** — every ticket carries its own channel. Callers block on
//!   *their* [`TicketHandle`], not on a global drain, so a slow batch never
//!   delays the delivery of an unrelated finished one.
//!
//! Every admitted query resolves exactly once — as a [`Completed`] or a
//! [`FailedQuery`] — and the [`ServiceStats`] conservation invariant
//! `submitted == served + failed + deadline_expired` holds once all tickets
//! have resolved.

use crate::backend::SimilarityBackend;
use crate::cache::{ResultCache, MAX_CACHE_CAPACITY};
use crate::dispatch;
use crate::queue::{PushRefused, QueryTicket, Scheduled, ScheduledQueue};
use crate::service::{Completed, FailedQuery};
use crate::stats::ServiceStats;
use ap_knn::multiplex::MAX_SLICES;
use binvec::{BinaryVector, MutAck, Mutation, QueryOptions, SearchError};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Configuration for a [`ServiceRuntime`].
#[derive(Clone, Copy, Debug)]
pub struct RuntimeConfig {
    /// Worker threads, each owning one backend instance.
    pub workers: usize,
    /// Maximum queries pending in the admission queue before `try_submit`
    /// refuses with [`SearchError::QueueFull`].
    pub queue_capacity: usize,
    /// Queries per dispatched batch (defaults to the §VI-B multiplex width).
    pub batch_size: usize,
    /// Default per-query options for [`ServiceRuntime::try_submit`];
    /// [`ServiceRuntime::try_submit_with`] overrides them per query.
    pub options: QueryOptions,
    /// Result-cache entries (0 disables caching).
    pub cache_capacity: usize,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        Self {
            workers: std::thread::available_parallelism().map_or(1, |p| p.get()),
            queue_capacity: 1024,
            batch_size: MAX_SLICES,
            options: QueryOptions::top(10),
            cache_capacity: 1024,
        }
    }
}

impl RuntimeConfig {
    /// Overrides the worker count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Overrides the admission-queue capacity.
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// Overrides the batch size.
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size;
        self
    }

    /// Overrides the default query options.
    pub fn with_options(mut self, options: QueryOptions) -> Self {
        self.options = options;
        self
    }

    /// Overrides the cache capacity.
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    /// [`SearchError::InvalidConfig`] for a zero worker count, queue capacity,
    /// or batch size (or an absurd cache capacity), plus whatever
    /// [`QueryOptions::validate`] rejects.
    pub fn build(self) -> Result<Self, SearchError> {
        if self.workers == 0 {
            return Err(SearchError::InvalidConfig {
                field: "workers",
                reason: "need at least one worker".to_string(),
            });
        }
        if self.queue_capacity == 0 {
            return Err(SearchError::InvalidConfig {
                field: "queue_capacity",
                reason: "need room for at least one pending query".to_string(),
            });
        }
        if self.batch_size == 0 {
            return Err(SearchError::InvalidConfig {
                field: "batch_size",
                reason: "must be at least 1".to_string(),
            });
        }
        if self.cache_capacity > MAX_CACHE_CAPACITY {
            return Err(SearchError::InvalidConfig {
                field: "cache_capacity",
                reason: format!(
                    "{} entries exceeds the sanity limit of {MAX_CACHE_CAPACITY}",
                    self.cache_capacity
                ),
            });
        }
        self.options.validate()?;
        Ok(self)
    }
}

/// What a worker (or the admission path) delivers through a ticket's channel.
pub type TicketResult = Result<Completed, FailedQuery>;

/// A completion callback registered through [`TicketHandle::on_complete`]:
/// invoked exactly once, after the ticket's result becomes observable.
type CompletionWaker = Box<dyn FnOnce() + Send>;

/// Waker registration state shared between a [`TicketHandle`] and the
/// runtime-side [`Completion`] that will resolve it.
#[derive(Default)]
struct WakeState {
    /// Set (under the lock) strictly *after* the result is observable on the
    /// ticket's channel, so a waker firing implies `try_wait` succeeds.
    resolved: bool,
    waker: Option<CompletionWaker>,
}

/// The runtime's side of one ticket: the channel sender plus the waker slot.
/// Delivery and teardown both fire the waker exactly once, and only after the
/// outcome (a result, or the channel's disconnection) is observable.
struct Completion {
    /// `None` only transiently during [`Drop`], where the sender is released
    /// *before* the waker fires so a woken consumer observes the
    /// disconnection instead of an empty, still-connected channel.
    tx: Option<mpsc::Sender<TicketResult>>,
    wake: Arc<Mutex<WakeState>>,
    delivered: bool,
}

impl Completion {
    /// Creates the linked completion/handle pair for one ticket.
    fn channel(ticket: QueryTicket) -> (Self, TicketHandle) {
        let (tx, rx) = mpsc::channel();
        let wake = Arc::new(Mutex::new(WakeState::default()));
        (
            Self {
                tx: Some(tx),
                wake: Arc::clone(&wake),
                delivered: false,
            },
            TicketHandle { ticket, rx, wake },
        )
    }

    /// Sends the result and fires any registered waker. The send happens
    /// first, so by the time a waker (or any later registration) observes
    /// `resolved`, `try_wait` is guaranteed to return the result.
    fn deliver(&mut self, result: TicketResult) {
        if let Some(tx) = &self.tx {
            let _ = tx.send(result);
        }
        self.delivered = true;
        self.fire();
    }

    fn fire(&self) {
        let waker = {
            let mut state = self.wake.lock().expect("waker state poisoned");
            state.resolved = true;
            state.waker.take()
        };
        if let Some(waker) = waker {
            waker();
        }
    }
}

impl Drop for Completion {
    fn drop(&mut self) {
        if !self.delivered {
            // Torn down without a result (the runtime died): release the
            // sender first so the receiver reads as disconnected, then wake —
            // the consumer resolves the ticket as the disconnection failure
            // instead of waiting forever.
            self.tx = None;
            self.fire();
        }
    }
}

/// The caller's side of one submitted query: block on [`Self::wait`] for
/// *this* query's result — no global drain, no ordering coupling to other
/// callers' tickets — or register a completion waker via
/// [`Self::on_complete`] so a multiplexer (e.g. [`crate::net::CompletionSet`])
/// can track thousands of in-flight tickets without polling any of them.
pub struct TicketHandle {
    ticket: QueryTicket,
    rx: mpsc::Receiver<TicketResult>,
    wake: Arc<Mutex<WakeState>>,
}

impl std::fmt::Debug for TicketHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TicketHandle")
            .field("ticket", &self.ticket)
            .finish_non_exhaustive()
    }
}

impl TicketHandle {
    /// The ticket identifying this submission.
    pub fn ticket(&self) -> QueryTicket {
        self.ticket
    }

    /// Registers a callback fired exactly once when this ticket resolves —
    /// the non-blocking completion surface. If the ticket has already
    /// resolved (including a cache hit delivered at admission, or a runtime
    /// torn down before serving it), the callback runs immediately on the
    /// registering thread; otherwise it runs on the thread that resolves the
    /// ticket. Either way, by the time it runs [`Self::try_wait`] returns
    /// `Some`. Registering again replaces an unfired callback.
    pub fn on_complete(&self, waker: impl FnOnce() + Send + 'static) {
        let mut state = self.wake.lock().expect("waker state poisoned");
        if state.resolved {
            drop(state);
            waker();
        } else {
            state.waker = Some(Box::new(waker));
        }
    }

    /// The failure delivered when the completion channel disconnected without
    /// a result — the runtime was torn down before this ticket was served.
    fn disconnected(&self) -> FailedQuery {
        FailedQuery {
            ticket: self.ticket,
            query: BinaryVector::zeros(0),
            error: SearchError::Backend {
                backend: "runtime".to_string(),
                reason: "completion channel disconnected".to_string(),
            },
        }
    }

    /// Blocks until the query resolves.
    ///
    /// # Errors
    /// The per-ticket [`FailedQuery`] if the batch failed at dispatch, the
    /// deadline expired, or the runtime shut down before delivering.
    pub fn wait(self) -> Result<Completed, FailedQuery> {
        match self.rx.recv() {
            Ok(result) => result,
            Err(_) => Err(self.disconnected()),
        }
    }

    /// Returns the result if it is already available, without blocking.
    /// `None` strictly means "still pending": a ticket whose channel has
    /// disconnected (the runtime died before delivering) resolves as the
    /// disconnection [`FailedQuery`] rather than reading as pending forever.
    pub fn try_wait(&self) -> Option<TicketResult> {
        match self.rx.try_recv() {
            Ok(result) => Some(result),
            Err(mpsc::TryRecvError::Empty) => None,
            Err(mpsc::TryRecvError::Disconnected) => Some(Err(self.disconnected())),
        }
    }

    /// Blocks up to `timeout` for the result. `None` strictly means the
    /// timeout elapsed with the query still pending; a disconnected channel
    /// resolves as the disconnection [`FailedQuery`] (see [`Self::try_wait`]).
    pub fn wait_timeout(&self, timeout: Duration) -> Option<TicketResult> {
        match self.rx.recv_timeout(timeout) {
            Ok(result) => Some(result),
            Err(mpsc::RecvTimeoutError::Timeout) => None,
            Err(mpsc::RecvTimeoutError::Disconnected) => Some(Err(self.disconnected())),
        }
    }
}

/// A worker-side view of one shared backend: delegates every call through the
/// `Arc`, so [`ServiceRuntime::try_shared`] can hand a single prepared
/// backend to every worker without the workers owning copies.
struct SharedBackend(Arc<dyn SimilarityBackend>);

impl SimilarityBackend for SharedBackend {
    fn name(&self) -> String {
        self.0.name()
    }

    fn len(&self) -> usize {
        self.0.len()
    }

    fn dims(&self) -> usize {
        self.0.dims()
    }

    fn serve_batch(&self, queries: &[BinaryVector], k: usize) -> crate::backend::BackendBatch {
        self.0.serve_batch(queries, k)
    }

    fn try_serve_batch(
        &self,
        queries: &[BinaryVector],
        options: &QueryOptions,
    ) -> Result<crate::backend::BackendBatch, SearchError> {
        self.0.try_serve_batch(queries, options)
    }

    fn apply_mutation(&self, mutation: &Mutation) -> Result<MutAck, SearchError> {
        self.0.apply_mutation(mutation)
    }

    fn apply_mutations(&self, mutations: &[&Mutation]) -> Vec<Result<MutAck, SearchError>> {
        self.0.apply_mutations(mutations)
    }

    fn live_status(&self) -> Option<ap_knn::live::LiveStatus> {
        self.0.live_status()
    }
}

/// What one admitted ticket asks a worker to do: dispatch a query, or apply
/// a corpus mutation. Both flavors ride the same priority ▸ deadline ▸ FIFO
/// queue; workers never batch the two kinds together.
enum Work {
    Query(BinaryVector),
    Mutation(Mutation),
}

impl Work {
    /// The vector delivered back in the ticket's result: the query itself,
    /// an insert's vector, or an empty placeholder for a delete.
    fn into_vector(self) -> BinaryVector {
        match self {
            Self::Query(query) => query,
            Self::Mutation(Mutation::Insert { vector }) => vector,
            Self::Mutation(Mutation::Delete { .. }) => BinaryVector::zeros(0),
        }
    }
}

/// One queued ticket: everything a worker needs to execute and deliver it.
struct Pending {
    work: Work,
    options: QueryOptions,
    completion: Completion,
    /// When the ticket was admitted — dispatch time minus this is the queue
    /// wait recorded into [`ServiceStats::queue_wait`] (for queries) or the
    /// submit→visible staleness recorded into
    /// [`ServiceStats::mutation_staleness`] (for mutations).
    submitted_at: Instant,
}

/// State shared between the submission front and the workers.
struct Shared {
    queue: ScheduledQueue<Pending>,
    cache: Mutex<ResultCache>,
    stats: Mutex<ServiceStats>,
}

/// A concurrent query-serving runtime over worker-owned
/// [`SimilarityBackend`]s. See the module docs for the architecture.
pub struct ServiceRuntime {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    config: RuntimeConfig,
    backend_name: String,
    dims: usize,
    next_ticket: AtomicU64,
    started: Instant,
}

impl ServiceRuntime {
    /// Creates a runtime whose `config.workers` workers each own the backend
    /// `factory(worker_index)` builds for them — the worker-owned form:
    /// nothing about execution (prepared board images, scratch pools) is
    /// shared between workers.
    ///
    /// # Errors
    /// Whatever [`RuntimeConfig::build`] or the factory rejects, plus
    /// [`SearchError::InvalidConfig`] if the per-worker backends disagree on
    /// dimensionality.
    pub fn try_new<F>(config: RuntimeConfig, mut factory: F) -> Result<Self, SearchError>
    where
        F: FnMut(usize) -> Result<Box<dyn SimilarityBackend>, SearchError>,
    {
        let config = config.build()?;
        let backends: Vec<Box<dyn SimilarityBackend>> = (0..config.workers)
            .map(&mut factory)
            .collect::<Result<_, _>>()?;
        let dims = backends[0].dims();
        let backend_name = backends[0].name();
        if let Some(other) = backends.iter().find(|b| b.dims() != dims) {
            return Err(SearchError::InvalidConfig {
                field: "workers",
                reason: format!(
                    "worker backends disagree on dimensionality ({} vs {})",
                    dims,
                    other.dims()
                ),
            });
        }

        let shared = Arc::new(Shared {
            queue: ScheduledQueue::new(config.queue_capacity),
            cache: Mutex::new(ResultCache::new(config.cache_capacity)),
            stats: Mutex::new(ServiceStats::default()),
        });
        let handles = backends
            .into_iter()
            .enumerate()
            .map(|(index, backend)| {
                let shared = Arc::clone(&shared);
                let batch_size = config.batch_size;
                std::thread::Builder::new()
                    .name(format!("ap-serve-worker-{index}"))
                    .spawn(move || worker_loop(&shared, backend, batch_size))
                    .expect("spawn runtime worker")
            })
            .collect();

        Ok(Self {
            shared,
            handles,
            config,
            backend_name,
            dims,
            next_ticket: AtomicU64::new(0),
            started: Instant::now(),
        })
    }

    /// Creates a runtime whose workers all serve the *same* backend through an
    /// [`Arc`] — the shared form: one prepared board-image set (and one
    /// execution-scratch pool) serves every worker. Backends are `Sync`, so
    /// this is safe; prefer [`Self::try_new`] when per-worker isolation (own
    /// images, own pool) matters more than memory.
    ///
    /// # Errors
    /// Whatever [`RuntimeConfig::build`] rejects.
    pub fn try_shared(
        config: RuntimeConfig,
        backend: Arc<dyn SimilarityBackend>,
    ) -> Result<Self, SearchError> {
        Self::try_new(config, |_| {
            Ok(Box::new(SharedBackend(Arc::clone(&backend))) as Box<dyn SimilarityBackend>)
        })
    }

    /// The backend's label.
    pub fn backend_name(&self) -> String {
        self.backend_name.clone()
    }

    /// The runtime configuration.
    pub fn config(&self) -> &RuntimeConfig {
        &self.config
    }

    /// Dimensionality of the served vectors.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Worker threads serving dispatches.
    pub fn worker_count(&self) -> usize {
        self.handles.len()
    }

    /// Queries admitted but not yet popped by a worker.
    pub fn pending(&self) -> usize {
        self.shared.queue.len()
    }

    /// Submits one query under the runtime's configured default options.
    ///
    /// # Errors
    /// See [`Self::try_submit_with`].
    pub fn try_submit(&self, query: BinaryVector) -> Result<TicketHandle, SearchError> {
        let options = self.config.options;
        self.try_submit_with(query, &options)
    }

    /// Submits one query with per-query options. The scheduling fields
    /// (`priority`, `deadline`) steer the queue; the result-affecting fields
    /// (`k`, `within`, `execution`) travel to the backend, and workers only
    /// batch queries whose result-affecting fields match.
    ///
    /// A cache hit or an already-expired deadline resolves the ticket
    /// immediately (as [`Completed`] / [`FailedQuery`] with
    /// [`SearchError::DeadlineExceeded`]) without entering the queue.
    ///
    /// # Errors
    /// * [`SearchError::ZeroDims`] / [`SearchError::DimMismatch`] — malformed
    ///   query, rejected before a ticket is minted;
    /// * [`SearchError::ZeroK`] / [`SearchError::ZeroDistanceBound`] — invalid
    ///   options;
    /// * [`SearchError::QueueFull`] — the bounded queue is at capacity
    ///   (backpressure; no ticket was minted, retry or shed);
    /// * [`SearchError::Backend`] — the runtime has been shut down.
    pub fn try_submit_with(
        &self,
        query: BinaryVector,
        options: &QueryOptions,
    ) -> Result<TicketHandle, SearchError> {
        options.validate()?;
        if query.dims() == 0 {
            return Err(SearchError::ZeroDims);
        }
        if query.dims() != self.dims {
            return Err(SearchError::DimMismatch {
                expected: self.dims,
                actual: query.dims(),
            });
        }

        // An already-expired deadline is failed at admission — typed, ticketed,
        // and never dispatched.
        if options.deadline.is_some_and(|d| d.is_expired()) {
            let ticket = self.mint_ticket();
            {
                let mut stats = self.lock_stats();
                stats.queries_submitted += 1;
                stats.deadline_expired += 1;
            }
            let (mut completion, handle) = Completion::channel(ticket);
            completion.deliver(Err(FailedQuery {
                ticket,
                query,
                error: SearchError::DeadlineExceeded,
            }));
            return Ok(handle);
        }

        // Cache hits complete instantly without occupying the queue.
        let cached = self
            .shared
            .cache
            .lock()
            .expect("runtime cache poisoned")
            .get(&query, options);
        if let Some(neighbors) = cached {
            let ticket = self.mint_ticket();
            {
                let mut stats = self.lock_stats();
                stats.queries_submitted += 1;
                stats.queries_served += 1;
            }
            let (mut completion, handle) = Completion::channel(ticket);
            completion.deliver(Ok(Completed {
                ticket,
                query,
                neighbors,
                mutation: None,
            }));
            return Ok(handle);
        }

        let ticket = self.mint_ticket();
        let (completion, handle) = Completion::channel(ticket);
        let entry = Scheduled {
            ticket,
            priority: options.priority,
            deadline: options.deadline,
            payload: Pending {
                work: Work::Query(query),
                options: *options,
                completion,
                submitted_at: Instant::now(),
            },
        };
        match self.shared.queue.try_push(entry) {
            Ok(()) => {
                self.lock_stats().queries_submitted += 1;
                Ok(handle)
            }
            Err(PushRefused::Full(_)) => {
                self.lock_stats().queue_full_rejections += 1;
                Err(SearchError::QueueFull {
                    capacity: self.shared.queue.capacity(),
                })
            }
            Err(PushRefused::Closed(_)) => Err(SearchError::Backend {
                backend: self.backend_name.clone(),
                reason: "runtime has been shut down".to_string(),
            }),
        }
    }

    /// Submits one corpus mutation (insert or delete) as a ticket riding the
    /// same priority ▸ deadline ▸ FIFO queue as queries. The worker that pops
    /// it applies the mutation on its backend, advances the result cache to
    /// the new corpus generation (flushing pre-mutation entries), records the
    /// submit→visible staleness, and only then resolves the ticket as a
    /// [`Completed`] whose [`Completed::mutation`] carries the [`MutAck`] —
    /// so once the caller sees the ack, no stale neighbors can be served.
    ///
    /// Only the scheduling fields of `options` (`priority`, `deadline`)
    /// matter for a mutation; the result-affecting fields are ignored. An
    /// already-expired deadline resolves the ticket immediately as a
    /// [`FailedQuery`] with [`SearchError::DeadlineExceeded`]. Frozen-corpus
    /// backends fail the ticket at application time with
    /// [`SearchError::Unsupported`].
    ///
    /// # Errors
    /// * [`SearchError::ZeroDims`] / [`SearchError::DimMismatch`] — a
    ///   malformed insert vector, rejected before a ticket is minted;
    /// * [`SearchError::QueueFull`] — backpressure, no ticket minted;
    /// * [`SearchError::Backend`] — the runtime has been shut down.
    pub fn try_submit_mutation(
        &self,
        mutation: Mutation,
        options: &QueryOptions,
    ) -> Result<TicketHandle, SearchError> {
        options.validate()?;
        if let Mutation::Insert { vector } = &mutation {
            if vector.dims() == 0 {
                return Err(SearchError::ZeroDims);
            }
            if vector.dims() != self.dims {
                return Err(SearchError::DimMismatch {
                    expected: self.dims,
                    actual: vector.dims(),
                });
            }
        }

        if options.deadline.is_some_and(|d| d.is_expired()) {
            let ticket = self.mint_ticket();
            {
                let mut stats = self.lock_stats();
                stats.mutations_submitted += 1;
                stats.mutations_failed += 1;
            }
            let (mut completion, handle) = Completion::channel(ticket);
            completion.deliver(Err(FailedQuery {
                ticket,
                query: Work::Mutation(mutation).into_vector(),
                error: SearchError::DeadlineExceeded,
            }));
            return Ok(handle);
        }

        let ticket = self.mint_ticket();
        let (completion, handle) = Completion::channel(ticket);
        let entry = Scheduled {
            ticket,
            priority: options.priority,
            deadline: options.deadline,
            payload: Pending {
                work: Work::Mutation(mutation),
                options: *options,
                completion,
                submitted_at: Instant::now(),
            },
        };
        match self.shared.queue.try_push(entry) {
            Ok(()) => {
                self.lock_stats().mutations_submitted += 1;
                Ok(handle)
            }
            Err(PushRefused::Full(_)) => {
                self.lock_stats().queue_full_rejections += 1;
                Err(SearchError::QueueFull {
                    capacity: self.shared.queue.capacity(),
                })
            }
            Err(PushRefused::Closed(_)) => Err(SearchError::Backend {
                backend: self.backend_name.clone(),
                reason: "runtime has been shut down".to_string(),
            }),
        }
    }

    /// A snapshot of the service statistics.
    pub fn stats(&self) -> ServiceStats {
        let mut stats = self.lock_stats().clone();
        stats.batch_size = self.config.batch_size;
        stats.workers = self.handles.len();
        {
            let cache = self.shared.cache.lock().expect("runtime cache poisoned");
            stats.cache_hits = cache.hits();
            stats.cache_misses = cache.misses();
        }
        stats.uptime = self.started.elapsed();
        stats
    }

    /// Closes the admission queue, lets the workers drain every pending query
    /// (each ticket still resolves exactly once), joins them, and returns the
    /// final statistics.
    pub fn shutdown(mut self) -> ServiceStats {
        self.shutdown_impl();
        self.stats()
    }

    fn shutdown_impl(&mut self) {
        self.shared.queue.close();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }

    fn mint_ticket(&self) -> QueryTicket {
        QueryTicket(self.next_ticket.fetch_add(1, Ordering::Relaxed))
    }

    fn lock_stats(&self) -> std::sync::MutexGuard<'_, ServiceStats> {
        self.shared.stats.lock().expect("runtime stats poisoned")
    }
}

impl Drop for ServiceRuntime {
    fn drop(&mut self) {
        self.shutdown_impl();
    }
}

/// One worker: pop a deadline-checked, schedule-compatible batch; dispatch it
/// (queries) or apply it (mutations) on the worker's own backend; deliver
/// per-ticket results; repeat until the queue is closed and drained.
fn worker_loop(shared: &Shared, backend: Box<dyn SimilarityBackend>, batch_size: usize) {
    let mut batch: Vec<Scheduled<Pending>> = Vec::with_capacity(batch_size);
    let mut expired: Vec<Scheduled<Pending>> = Vec::new();
    let mut queries: Vec<BinaryVector> = Vec::with_capacity(batch_size);
    loop {
        let open = shared
            .queue
            .pop_batch(batch_size, &mut batch, &mut expired, |a, b| {
                // Queries batch with queries sharing one ResultKey (they can
                // share a backend call); mutations batch only with mutations
                // (they are applied sequentially, never dispatched).
                match (&a.work, &b.work) {
                    (Work::Query(_), Work::Query(_)) => {
                        a.options.result_key() == b.options.result_key()
                    }
                    (Work::Mutation(_), Work::Mutation(_)) => true,
                    _ => false,
                }
            });

        // Expired entries fail without dispatch — the fabric never sees them.
        if !expired.is_empty() {
            {
                let mut stats = shared.stats.lock().expect("runtime stats poisoned");
                for entry in &expired {
                    match entry.payload.work {
                        Work::Query(_) => stats.deadline_expired += 1,
                        Work::Mutation(_) => stats.mutations_failed += 1,
                    }
                }
            }
            for entry in expired.drain(..) {
                let Pending {
                    work,
                    mut completion,
                    ..
                } = entry.payload;
                completion.deliver(Err(FailedQuery {
                    ticket: entry.ticket,
                    query: work.into_vector(),
                    error: SearchError::DeadlineExceeded,
                }));
            }
        }

        if batch.is_empty() {
            if !open {
                return;
            }
            continue;
        }

        // Mutation batches take their own path: applied, never dispatched.
        if matches!(batch[0].payload.work, Work::Mutation(_)) {
            apply_mutations(shared, backend.as_ref(), &mut batch);
            if !open && shared.queue.len() == 0 {
                return;
            }
            continue;
        }

        // All entries in the batch share one ResultKey by construction.
        let dispatch_started = Instant::now();
        let options = batch[0].payload.options;
        queries.clear();
        queries.extend(batch.iter().filter_map(|e| match &e.payload.work {
            Work::Query(query) => Some(query.clone()),
            Work::Mutation(_) => None,
        }));
        // The corpus generation bracketing the dispatch: results are only
        // offered to the cache when it did not move, so a mutation landing
        // mid-dispatch cannot re-poison the cache with pre-swap neighbors.
        let generation_before = backend.live_status().map_or(0, |s| s.generation);
        let dispatched = dispatch::execute_batch(backend.as_ref(), &queries, &options);
        {
            let mut stats = shared.stats.lock().expect("runtime stats poisoned");
            dispatch::record_dispatch(&mut stats, &dispatched, batch.len(), batch_size);
            for entry in &batch {
                stats
                    .queue_wait
                    .record(dispatch_started.saturating_duration_since(entry.payload.submitted_at));
            }
        }

        match dispatched.outcome {
            Ok(result) => {
                let generation_after = backend.live_status().map_or(0, |s| s.generation);
                if generation_before == generation_after {
                    // The dispatch vec provides the cache keys, so each query
                    // is cloned exactly once per dispatch (the entry's own
                    // copy travels back in the Completed). `insert_at` drops
                    // the offer if the cache has already moved past this
                    // generation.
                    let mut cache = shared.cache.lock().expect("runtime cache poisoned");
                    for (query, neighbors) in queries.drain(..).zip(&result.results) {
                        cache.insert_at(generation_after, query, &options, neighbors.clone());
                    }
                }
                shared
                    .stats
                    .lock()
                    .expect("runtime stats poisoned")
                    .queries_served += batch.len() as u64;
                for (entry, neighbors) in batch.drain(..).zip(result.results) {
                    let Pending {
                        work,
                        mut completion,
                        ..
                    } = entry.payload;
                    completion.deliver(Ok(Completed {
                        ticket: entry.ticket,
                        query: work.into_vector(),
                        neighbors,
                        mutation: None,
                    }));
                }
            }
            Err(error) => {
                // Fail the batch's tickets individually and move on: the next
                // batch is independent, so one poison batch delays nothing.
                for entry in batch.drain(..) {
                    let Pending {
                        work,
                        mut completion,
                        ..
                    } = entry.payload;
                    completion.deliver(Err(FailedQuery {
                        ticket: entry.ticket,
                        query: work.into_vector(),
                        error: error.clone(),
                    }));
                }
            }
        }

        if !open && shared.queue.len() == 0 {
            // Closed and drained: one final pop_batch would also return false,
            // but exiting here saves a wakeup.
            return;
        }
    }
}

/// Applies one popped batch of mutations in scheduling order, then advances
/// the cache and gauges, and only then delivers the acks.
///
/// The ordering is the serving layer's linearization contract: by the time a
/// caller observes a [`MutAck`], the result cache has been flushed past every
/// pre-mutation entry, so no subsequent lookup can serve neighbors computed
/// before the mutation.
fn apply_mutations(
    shared: &Shared,
    backend: &dyn SimilarityBackend,
    batch: &mut Vec<Scheduled<Pending>>,
) {
    let mutations: Vec<&Mutation> = batch
        .iter()
        .filter_map(|entry| match &entry.payload.work {
            Work::Mutation(mutation) => Some(mutation),
            Work::Query(_) => None,
        })
        .collect();
    // The batch call lets a durable backend cover every mutation with one
    // group-committed fsync instead of one per record — the acked-means-
    // durable contract still holds per outcome.
    let outcomes: Vec<Result<MutAck, SearchError>> = if mutations.len() == batch.len() {
        backend.apply_mutations(&mutations)
    } else {
        // Unreachable by batch construction (kinds never mix); kept typed
        // rather than panicking a worker.
        batch
            .iter()
            .map(|entry| match &entry.payload.work {
                Work::Mutation(mutation) => backend.apply_mutation(mutation),
                Work::Query(_) => Err(SearchError::Backend {
                    backend: backend.name(),
                    reason: "query entry in a mutation batch".to_string(),
                }),
            })
            .collect()
    };

    if outcomes.iter().any(|o| o.is_ok()) {
        match backend.live_status() {
            Some(status) => {
                shared
                    .cache
                    .lock()
                    .expect("runtime cache poisoned")
                    .advance_generation(status.generation);
                let mut stats = shared.stats.lock().expect("runtime stats poisoned");
                stats.generation = status.generation;
                stats.delta_vectors = status.delta_vectors as u64;
                stats.tombstones = status.tombstones as u64;
                stats.delta_fill = status.fill();
                if let Some(wal) = status.wal {
                    stats.wal_records = wal.records;
                    stats.wal_bytes = wal.bytes;
                    stats.wal_fsyncs = wal.fsyncs;
                    stats.wal_group_max = wal.group_max;
                    stats.wal_group_mean = wal.group_mean();
                    stats.wal_checkpoints = wal.checkpoints;
                    stats.wal_replayed = wal.replayed;
                    stats.wal_truncated_bytes = wal.truncated_bytes;
                }
            }
            // A backend that applied a mutation but exposes no live status:
            // flush unconditionally — correctness over hit rate.
            None => shared.cache.lock().expect("runtime cache poisoned").flush(),
        }
    }

    let visible_at = Instant::now();
    {
        let mut stats = shared.stats.lock().expect("runtime stats poisoned");
        for (entry, outcome) in batch.iter().zip(&outcomes) {
            match outcome {
                Ok(_) => {
                    stats.mutations_applied += 1;
                    stats
                        .mutation_staleness
                        .record(visible_at.saturating_duration_since(entry.payload.submitted_at));
                }
                Err(_) => stats.mutations_failed += 1,
            }
        }
    }

    for (entry, outcome) in batch.drain(..).zip(outcomes) {
        let Pending {
            work,
            mut completion,
            ..
        } = entry.payload;
        let vector = work.into_vector();
        match outcome {
            Ok(ack) => completion.deliver(Ok(Completed {
                ticket: entry.ticket,
                query: vector,
                neighbors: Vec::new(),
                mutation: Some(ack),
            })),
            Err(error) => completion.deliver(Err(FailedQuery {
                ticket: entry.ticket,
                query: vector,
                error,
            })),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::ApEngineBackend;
    use ap_knn::{ApKnnEngine, ExecutionMode, KnnDesign};
    use baselines::{LinearScan, SearchIndex};
    use binvec::generate::{uniform_dataset, uniform_queries};
    use binvec::Deadline;

    fn linear_runtime(n: usize, dims: usize, config: RuntimeConfig) -> ServiceRuntime {
        let data = uniform_dataset(n, dims, 31);
        ServiceRuntime::try_new(config, move |_| {
            Ok(Box::new(LinearScan::new(data.clone())) as Box<dyn SimilarityBackend>)
        })
        .unwrap()
    }

    #[test]
    fn results_match_direct_search_and_tickets_resolve() {
        let dims = 16;
        let data = uniform_dataset(60, dims, 31);
        let direct = LinearScan::new(data.clone());
        let config = RuntimeConfig::default()
            .with_workers(2)
            .with_batch_size(3)
            .with_cache_capacity(0)
            .with_options(QueryOptions::top(4));
        let runtime = ServiceRuntime::try_new(config, move |_| {
            Ok(Box::new(LinearScan::new(data.clone())) as Box<dyn SimilarityBackend>)
        })
        .unwrap();
        assert_eq!(runtime.worker_count(), 2);

        let queries = uniform_queries(20, dims, 32);
        let handles: Vec<TicketHandle> = queries
            .iter()
            .map(|q| runtime.try_submit(q.clone()).unwrap())
            .collect();
        for (handle, query) in handles.into_iter().zip(&queries) {
            let completed = handle.wait().expect("runtime dispatch");
            assert_eq!(&completed.query, query);
            assert_eq!(completed.neighbors, direct.search(query, 4));
        }
        let stats = runtime.shutdown();
        assert_eq!(stats.queries_submitted, 20);
        assert_eq!(stats.queries_served, 20);
        assert_eq!(stats.failed_queries + stats.deadline_expired, 0);
    }

    #[test]
    fn ap_prepared_backend_serves_through_the_runtime() {
        let dims = 16;
        let data = uniform_dataset(48, dims, 41);
        let direct = LinearScan::new(data.clone());
        let config = RuntimeConfig::default()
            .with_workers(2)
            .with_batch_size(4)
            .with_options(QueryOptions::top(5));
        // The worker-owned form: each worker prepares its own board images.
        let runtime = ServiceRuntime::try_new(config, move |_| {
            let engine =
                ApKnnEngine::new(KnnDesign::new(dims)).with_mode(ExecutionMode::CycleAccurate);
            Ok(Box::new(ApEngineBackend::try_new(engine, data.clone())?)
                as Box<dyn SimilarityBackend>)
        })
        .unwrap();
        let queries = uniform_queries(9, dims, 42);
        let handles: Vec<TicketHandle> = queries
            .iter()
            .map(|q| runtime.try_submit(q.clone()).unwrap())
            .collect();
        for (handle, query) in handles.into_iter().zip(&queries) {
            assert_eq!(handle.wait().unwrap().neighbors, direct.search(query, 5));
        }
    }

    #[test]
    fn expired_deadline_fails_at_admission_without_dispatch() {
        let runtime = linear_runtime(
            20,
            16,
            RuntimeConfig::default()
                .with_workers(1)
                .with_cache_capacity(0),
        );
        let query = uniform_queries(1, 16, 33).pop().unwrap();
        let handle = runtime
            .try_submit_with(
                query,
                &QueryOptions::top(3).by(Deadline::at(Instant::now() - Duration::from_millis(1))),
            )
            .unwrap();
        let failed = handle.wait().unwrap_err();
        assert_eq!(failed.error, SearchError::DeadlineExceeded);
        let stats = runtime.shutdown();
        assert_eq!(stats.deadline_expired, 1);
        assert_eq!(stats.batches_dispatched, 0, "never dispatched");
        assert_eq!(
            stats.queries_submitted,
            stats.queries_served + stats.failed_queries + stats.deadline_expired
        );
    }

    #[test]
    fn malformed_queries_are_rejected_before_a_ticket_is_minted() {
        let runtime = linear_runtime(10, 16, RuntimeConfig::default().with_workers(1));
        assert_eq!(
            runtime.try_submit(BinaryVector::zeros(8)).unwrap_err(),
            SearchError::DimMismatch {
                expected: 16,
                actual: 8
            }
        );
        assert_eq!(
            runtime.try_submit(BinaryVector::zeros(0)).unwrap_err(),
            SearchError::ZeroDims
        );
        assert_eq!(runtime.stats().queries_submitted, 0);
    }

    #[test]
    fn cache_hits_resolve_instantly_and_respect_the_options_key() {
        let dims = 16;
        let data = uniform_dataset(30, dims, 35);
        let direct = LinearScan::new(data.clone());
        let config = RuntimeConfig::default()
            .with_workers(1)
            .with_batch_size(1)
            .with_cache_capacity(64)
            .with_options(QueryOptions::top(5));
        let runtime = ServiceRuntime::try_new(config, move |_| {
            Ok(Box::new(LinearScan::new(data.clone())) as Box<dyn SimilarityBackend>)
        })
        .unwrap();
        let query = uniform_queries(1, dims, 36).pop().unwrap();
        let first = runtime.try_submit(query.clone()).unwrap().wait().unwrap();
        // Same options: a hit. Different bound: a miss that dispatches anew
        // (the cache-key regression — bound is part of the key).
        let hit = runtime.try_submit(query.clone()).unwrap().wait().unwrap();
        assert_eq!(first.neighbors, hit.neighbors);
        let bounded = runtime
            .try_submit_with(query.clone(), &QueryOptions::top(5).within(3))
            .unwrap()
            .wait()
            .unwrap();
        let expected: Vec<_> = direct
            .search(&query, 5)
            .into_iter()
            .filter(|n| n.distance < 3)
            .collect();
        assert_eq!(bounded.neighbors, expected);
        let stats = runtime.shutdown();
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.batches_dispatched, 2);
    }

    #[test]
    fn shutdown_drains_pending_queries() {
        let dims = 16;
        let runtime = linear_runtime(
            40,
            dims,
            RuntimeConfig::default()
                .with_workers(1)
                .with_batch_size(4)
                .with_cache_capacity(0),
        );
        let queries = uniform_queries(11, dims, 37);
        let handles: Vec<TicketHandle> = queries
            .iter()
            .map(|q| runtime.try_submit(q.clone()).unwrap())
            .collect();
        let stats = runtime.shutdown();
        for handle in handles {
            assert!(handle.wait().is_ok(), "drained ticket must resolve Ok");
        }
        assert_eq!(stats.queries_served, 11);
    }

    #[test]
    fn config_validation_rejects_bad_values() {
        assert!(matches!(
            RuntimeConfig::default().with_workers(0).build(),
            Err(SearchError::InvalidConfig {
                field: "workers",
                ..
            })
        ));
        assert!(matches!(
            RuntimeConfig::default().with_queue_capacity(0).build(),
            Err(SearchError::InvalidConfig {
                field: "queue_capacity",
                ..
            })
        ));
        assert!(matches!(
            RuntimeConfig::default().with_batch_size(0).build(),
            Err(SearchError::InvalidConfig {
                field: "batch_size",
                ..
            })
        ));
        assert_eq!(
            RuntimeConfig::default()
                .with_options(QueryOptions::top(0))
                .build()
                .unwrap_err(),
            SearchError::ZeroK
        );
        assert!(RuntimeConfig::default().build().is_ok());
    }

    #[test]
    fn on_complete_wakes_after_resolution_and_immediately_for_resolved_tickets() {
        let dims = 16;
        let runtime = linear_runtime(
            30,
            dims,
            RuntimeConfig::default()
                .with_workers(1)
                .with_batch_size(1)
                .with_cache_capacity(0)
                .with_options(QueryOptions::top(3)),
        );
        let query = uniform_queries(1, dims, 51).pop().unwrap();

        // Registered before resolution: fires when the worker delivers, and by
        // then try_wait is guaranteed to observe the result.
        let handle = runtime.try_submit(query.clone()).unwrap();
        let (tx, rx) = mpsc::channel();
        handle.on_complete(move || tx.send(()).unwrap());
        rx.recv_timeout(Duration::from_secs(30)).expect("waker");
        assert!(handle.try_wait().expect("resolved after wake").is_ok());

        // Registered after resolution (an admission-path completion): fires
        // immediately on the registering thread.
        let expired = runtime
            .try_submit_with(
                query,
                &QueryOptions::top(3).by(Deadline::at(Instant::now() - Duration::from_millis(1))),
            )
            .unwrap();
        let fired = std::sync::Arc::new(AtomicU64::new(0));
        let observer = std::sync::Arc::clone(&fired);
        expired.on_complete(move || {
            observer.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(fired.load(Ordering::SeqCst), 1, "immediate fire");
        assert_eq!(
            expired.wait().unwrap_err().error,
            SearchError::DeadlineExceeded
        );
        runtime.shutdown();
    }

    #[test]
    fn runtime_teardown_wakes_undelivered_tickets_as_disconnections() {
        // A runtime dropped mid-flight must still fire every registered waker,
        // and the woken handle must resolve (as the disconnection failure)
        // rather than read as pending. Gate the backend so the ticket cannot
        // be delivered before the drop.
        let dims = 16;
        let data = uniform_dataset(10, dims, 52);
        let runtime = ServiceRuntime::try_new(
            RuntimeConfig::default()
                .with_workers(1)
                .with_batch_size(1)
                .with_cache_capacity(0)
                .with_options(QueryOptions::top(2)),
            move |_| Ok(Box::new(LinearScan::new(data.clone())) as Box<dyn SimilarityBackend>),
        )
        .unwrap();
        let query = uniform_queries(1, dims, 53).pop().unwrap();
        let handle = runtime.try_submit(query).unwrap();
        let (tx, rx) = mpsc::channel();
        handle.on_complete(move || tx.send(()).unwrap());
        drop(runtime); // shutdown drains: the ticket is delivered, waker fires
        rx.recv_timeout(Duration::from_secs(30)).expect("waker");
        assert!(handle.try_wait().is_some(), "woken handle must resolve");
    }

    fn live_runtime(n: usize, dims: usize, config: RuntimeConfig) -> ServiceRuntime {
        let data = uniform_dataset(n, dims, 61);
        let engine = ApKnnEngine::new(KnnDesign::new(dims));
        let backend: Arc<dyn SimilarityBackend> = Arc::new(
            crate::live::LiveBackend::try_new(engine, &data, ap_knn::live::LiveConfig::default())
                .unwrap(),
        );
        ServiceRuntime::try_shared(config, backend).unwrap()
    }

    #[test]
    fn mutation_tickets_resolve_with_acks_and_conservation_holds() {
        let dims = 16;
        let runtime = live_runtime(
            20,
            dims,
            RuntimeConfig::default()
                .with_workers(1)
                .with_batch_size(4)
                .with_options(QueryOptions::top(3)),
        );
        let options = QueryOptions::top(3);
        let vectors = uniform_queries(3, dims, 62);
        let mut acks = Vec::new();
        for vector in &vectors {
            let handle = runtime
                .try_submit_mutation(
                    binvec::Mutation::Insert {
                        vector: vector.clone(),
                    },
                    &options,
                )
                .unwrap();
            let completed = handle.wait().expect("insert must apply");
            acks.push(completed.mutation.expect("mutation ticket carries an ack"));
        }
        // Ids are assigned in submission order, past the base corpus.
        assert_eq!(
            acks.iter().map(|a| a.id).collect::<Vec<_>>(),
            vec![20, 21, 22]
        );
        assert!(acks.windows(2).all(|w| w[0].generation < w[1].generation));

        let deleted = runtime
            .try_submit_mutation(binvec::Mutation::Delete { id: 21 }, &options)
            .unwrap()
            .wait()
            .unwrap()
            .mutation
            .unwrap();
        assert_eq!(deleted.op, binvec::MutationOp::Delete);

        // A mutation with an already-expired deadline sheds as a mutation
        // failure, never touching the query conservation invariant.
        let shed = runtime
            .try_submit_mutation(
                binvec::Mutation::Delete { id: 20 },
                &QueryOptions::top(3).by(Deadline::at(Instant::now() - Duration::from_millis(1))),
            )
            .unwrap()
            .wait()
            .unwrap_err();
        assert_eq!(shed.error, SearchError::DeadlineExceeded);

        let stats = runtime.shutdown();
        assert_eq!(stats.mutations_submitted, 5);
        assert_eq!(stats.mutations_applied, 4);
        assert_eq!(stats.mutations_failed, 1);
        assert_eq!(
            stats.mutations_submitted,
            stats.mutations_applied + stats.mutations_failed
        );
        assert_eq!(stats.deadline_expired, 0, "queries untouched by the shed");
        assert_eq!(stats.generation, 4);
        assert_eq!(stats.delta_vectors, 3);
        assert_eq!(stats.tombstones, 1);
        assert!(stats.mutation_staleness_percentiles_ms().is_some());
    }

    #[test]
    fn cache_serves_fresh_results_after_a_mutation() {
        // The regression: a cached result must not outlive the corpus epoch
        // that produced it. Query, mutate, re-query — the second answer must
        // see the mutation even though the first was cached.
        let dims = 16;
        let runtime = live_runtime(
            20,
            dims,
            RuntimeConfig::default()
                .with_workers(1)
                .with_batch_size(1)
                .with_cache_capacity(64)
                .with_options(QueryOptions::top(2)),
        );
        let query = uniform_queries(1, dims, 63).pop().unwrap();
        let before = runtime.try_submit(query.clone()).unwrap().wait().unwrap();
        assert_ne!(before.neighbors[0].distance, 0, "query not in base corpus");

        // Insert the query itself: an exact match at distance 0 with id 20.
        // By MutAck delivery the cache is already flushed.
        let ack = runtime
            .try_submit_mutation(
                binvec::Mutation::Insert {
                    vector: query.clone(),
                },
                &QueryOptions::top(2),
            )
            .unwrap()
            .wait()
            .unwrap()
            .mutation
            .unwrap();
        assert_eq!(ack.id, 20);

        let after = runtime.try_submit(query.clone()).unwrap().wait().unwrap();
        assert_eq!(after.neighbors[0].id, 20, "fresh result, not the stale hit");
        assert_eq!(after.neighbors[0].distance, 0);

        // The post-mutation result is cached at the new generation: a third
        // submission is a pure cache hit.
        let hit = runtime.try_submit(query).unwrap().wait().unwrap();
        assert_eq!(hit.neighbors, after.neighbors);
        let stats = runtime.shutdown();
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(
            stats.batches_dispatched, 2,
            "two query dispatches; mutations are applied, not dispatched"
        );
    }

    #[test]
    fn shared_backend_form_serves_all_workers_from_one_arc() {
        let dims = 16;
        let data = uniform_dataset(30, dims, 39);
        let direct = LinearScan::new(data.clone());
        let backend: Arc<dyn SimilarityBackend> = Arc::new(LinearScan::new(data));
        let runtime = ServiceRuntime::try_shared(
            RuntimeConfig::default()
                .with_workers(3)
                .with_batch_size(2)
                .with_cache_capacity(0)
                .with_options(QueryOptions::top(3)),
            backend,
        )
        .unwrap();
        let queries = uniform_queries(10, dims, 40);
        let handles: Vec<TicketHandle> = queries
            .iter()
            .map(|q| runtime.try_submit(q.clone()).unwrap())
            .collect();
        for (handle, query) in handles.into_iter().zip(&queries) {
            assert_eq!(handle.wait().unwrap().neighbors, direct.search(query, 3));
        }
    }
}
